#include "service/hyperq_service.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <optional>
#include <thread>

#include "common/fault.h"
#include "common/hash.h"
#include "common/stopwatch.h"
#include "common/str_util.h"
#include "emulation/macro.h"
#include "emulation/merge.h"
#include "frontend/feature_scan.h"
#include "observability/metric_names.h"

namespace hyperq::service {

using backend::BackendResult;
using sql::StmtKind;
namespace obs = observability;
namespace names = observability::names;

namespace {
// Copies the connector's retry accounting into the outcome's timing
// breakdown so clients see attempts/backoff next to the Figure 9 split.
void AbsorbResilienceStats(QueryOutcome* out) {
  out->timing.execution_attempts += out->result.attempts;
  out->timing.retry_backoff_micros += out->result.retry_backoff_micros;
}

// Spill accounting (DESIGN.md §8): how many result bytes this statement's
// store pushed to disk, surfaced in the timing breakdown. (The per-query
// QueryContext accounting is updated by the connector itself.)
void AbsorbSpillBytes(QueryOutcome* out) {
  if (out->result.store == nullptr) return;
  out->timing.spill_bytes += out->result.store->spilled_bytes();
}

// The translation cache shares the process memory ceiling with the live
// result stores unless the caller configured a dedicated governor for it,
// and registers its counters in the service's registry.
TranslationCacheOptions CacheOptionsFor(TranslationCacheOptions cache,
                                        std::shared_ptr<ResourceGovernor> gov,
                                        obs::MetricsRegistry* metrics) {
  if (!cache.governor) cache.governor = std::move(gov);
  if (cache.metrics == nullptr) cache.metrics = metrics;
  return cache;
}

// True for the statuses a cancelled/expired request surfaces; these say
// nothing about the statement itself.
bool IsLifecycleStatus(const Status& s) {
  return s.IsCancelled() || s.IsDeadlineExceeded();
}
}  // namespace

HyperQService::HyperQService(vdb::Engine* engine, ServiceOptions options)
    : engine_(engine),
      options_(std::move(options)),
      transformer_(options_.profile),
      serializer_(options_.profile),
      frontend_dialect_(sql::Dialect::Teradata()),
      owned_metrics_(options_.metrics == nullptr
                         ? std::make_unique<obs::MetricsRegistry>()
                         : nullptr),
      metrics_(options_.metrics != nullptr ? options_.metrics
                                           : owned_metrics_.get()),
      trace_ring_(std::max<size_t>(1, options_.trace_ring_capacity)),
      translation_cache_(CacheOptionsFor(options_.translation_cache,
                                         options_.governor, metrics_)),
      profile_digest_(options_.profile.CacheKeyDigest()),
      default_settings_digest_(SettingsDigest(SessionInfo())) {
  // Every series the service touches per query is registered once here;
  // the hot path then pays one relaxed atomic RMW per event.
  c_queries_ok_ = metrics_->counter(
      obs::LabeledName(names::kQueries, {{"outcome", "ok"}}));
  c_queries_error_ = metrics_->counter(
      obs::LabeledName(names::kQueries, {{"outcome", "error"}}));
  c_queries_cancelled_ = metrics_->counter(
      obs::LabeledName(names::kQueries, {{"outcome", "cancelled"}}));
  c_queries_deadline_ = metrics_->counter(
      obs::LabeledName(names::kQueries, {{"outcome", "deadline"}}));
  c_slow_queries_ = metrics_->counter(names::kSlowQueries);
  c_failovers_ = metrics_->counter(names::kFailoverReplays);
  c_statements_replayed_ =
      metrics_->counter(names::kFailoverStatementsReplayed);
  c_aborted_in_txn_ = metrics_->counter(names::kFailoverAbortedInTxn);
  c_journal_overflows_ = metrics_->counter(names::kFailoverJournalOverflows);
  c_failover_cross_replica_ =
      metrics_->counter(names::kFailoverCrossReplica);
  c_failover_incompatible_ =
      metrics_->counter(names::kFailoverIncompatible);
  c_wire_requests_ = metrics_->counter(names::kWireRequests);
  h_wire_convert_ = metrics_->histogram(names::kWireConvertMicros);
  c_submit_statements_ =
      metrics_->counter(names::kTranslateSubmitStatements);
  c_translate_statements_ =
      metrics_->counter(names::kTranslateOnlyStatements);
  c_translate_cache_hits_ = metrics_->counter(names::kTranslateCacheHits);
  h_translate_ = metrics_->histogram(names::kTranslateMicros);
  c_cancelled_ = metrics_->counter(names::kLifecycleCancelled);
  c_deadline_expired_ = metrics_->counter(names::kLifecycleDeadlineExpired);
  c_client_gone_ = metrics_->counter(names::kLifecycleClientGone);
  c_killed_ = metrics_->counter(names::kLifecycleKilled);
  c_spill_bytes_ = metrics_->counter(names::kLifecycleSpillBytes);
  h_result_bytes_ = metrics_->histogram(
      names::kResultBytes, obs::Histogram::SizeBucketsBytes());
  c_hedge_launched_ = metrics_->counter(names::kHedgeLaunched);
  c_hedge_wins_ = metrics_->counter(names::kHedgeWins);
  c_hedge_losses_ = metrics_->counter(names::kHedgeLosses);
  c_hedge_cancelled_ = metrics_->counter(names::kHedgeCancelled);
  c_hedge_denied_budget_ = metrics_->counter(names::kHedgeDeniedBudget);
  c_hedge_denied_load_ = metrics_->counter(names::kHedgeDeniedLoad);
  c_hedge_denied_no_replica_ =
      metrics_->counter(names::kHedgeDeniedNoReplica);
  h_hedge_execute_ = metrics_->histogram(names::kHedgeExecuteMicros);

  // Tail tolerance (DESIGN.md §11): the budget and brownout controllers are
  // always constructed — both are inert no-ops while disabled — and must
  // exist before the pool, whose connector options carry the budget.
  retry_budget_ = std::make_unique<RetryBudget>(options_.tail.retry_budget);
  brownout_ = std::make_unique<BrownoutController>(options_.tail.brownout,
                                                   options_.governor.get());

  // Fleet mode (DESIGN.md §10): registered backends get a pool + router;
  // sessions are then placed by the router instead of binding the engine.
  if (!options_.fleet.backends.empty()) {
    backend::PoolOptions pool_options;
    pool_options.health = options_.fleet.health;
    pool_options.connector = options_.connector;
    pool_options.connector.retry_budget = retry_budget_.get();
    pool_options.adaptive_limit = options_.tail.adaptive_limit;
    pool_options.governor = options_.governor;
    pool_options.metrics = metrics_;
    pool_ = std::make_unique<backend::BackendPool>(
        engine_, options_.fleet.backends, std::move(pool_options));
    router_ =
        std::make_unique<backend::Router>(pool_.get(),
                                          options_.fleet.route_seed);
    pool_->Start();
  }
}

HyperQService::~HyperQService() {
  // Hedge-loser threads hold pool connectors; every one must drain before
  // the pool (and its breakers/governor hooks) shuts down.
  ReapHedgeStragglers(/*all=*/true);
  if (pool_ != nullptr) pool_->Stop();
}

Result<uint32_t> HyperQService::OpenSession(
    const std::string& user, const std::string& default_database) {
  auto session = std::make_unique<Session>();
  session->id = next_session_.fetch_add(1);
  session->info.user = user.empty() ? "dbc" : user;
  session->info.session_id = static_cast<int>(session->id);
  if (!default_database.empty()) {
    session->info.default_database = default_database;
  }
  if (pool_ != nullptr) {
    // Fleet placement: the router picks the session's home backend by
    // health, load, and capability match with the emitted profile.
    backend::RouteConstraints constraints;
    constraints.emitted = &options_.profile;
    HQ_ASSIGN_OR_RETURN(backend::RouteDecision route,
                        router_->Pick(constraints));
    RecordRoute(route);
    session->backend_index = route.backend;
    session->connector = pool_->CreateConnector(route.backend, session->id);
  } else {
    // Result buffering/spill for this session is charged against the
    // shared governor under the session's id (DESIGN.md §8).
    backend::ConnectorOptions connector_options = options_.connector;
    if (connector_options.governor == nullptr) {
      connector_options.governor = options_.governor;
    }
    connector_options.session_tag = session->id;
    if (connector_options.metrics == nullptr) {
      connector_options.metrics = metrics_;
    }
    if (connector_options.retry_budget == nullptr) {
      connector_options.retry_budget = retry_budget_.get();
    }
    session->connector = std::make_unique<backend::BackendConnector>(
        engine_, connector_options);
  }
  session->backend_epoch = session->connector->connection_epoch();
  session->settings_digest = SettingsDigest(session->info);
  uint32_t id = session->id;
  std::lock_guard<std::mutex> lock(mutex_);
  sessions_.emplace(id, std::move(session));
  return id;
}

void HyperQService::CloseSession(uint32_t session_id) {
  std::unique_ptr<Session> session;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) return;
    session = std::move(it->second);
    sessions_.erase(it);
  }
  // Volatile tables are session-scoped: drop them on logoff.
  for (const std::string& table : session->volatile_tables) {
    (void)session->connector->Execute("DROP TABLE IF EXISTS " + table);
    std::lock_guard<std::mutex> lock(mutex_);
    if (catalog_.HasTable(table)) (void)catalog_.DropTable(table);
    auto it = volatile_names_.find(table);
    if (it != volatile_names_.end() && --it->second <= 0) {
      volatile_names_.erase(it);
    }
  }
  if (!session->volatile_tables.empty()) {
    InvalidateTranslationCacheAfterDdl();
  }
}

Result<HyperQService::Session*> HyperQService::GetSession(uint32_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(id);
  if (it == sessions_.end()) {
    return Status::InvalidArgument("unknown session ", id);
  }
  return it->second.get();
}

WorkloadFeatureStats HyperQService::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

void HyperQService::ResetStats() {
  std::lock_guard<std::mutex> lock(mutex_);
  stats_ = WorkloadFeatureStats();
}

// The deprecated typed accessors are views over the registry now: each
// field reads the counter (or histogram sum) that replaced it.
ServiceResilienceStats HyperQService::resilience_stats() const {
  ServiceResilienceStats out;
  out.failovers = c_failovers_->value();
  out.statements_replayed = c_statements_replayed_->value();
  out.aborted_in_txn = c_aborted_in_txn_->value();
  out.journal_overflows = c_journal_overflows_->value();
  out.wire_requests = c_wire_requests_->value();
  out.wire_conversion_micros = h_wire_convert_->snapshot().sum;
  return out;
}

TranslationActivityStats HyperQService::translation_activity() const {
  TranslationActivityStats out;
  out.submit_statements = c_submit_statements_->value();
  out.translate_statements = c_translate_statements_->value();
  out.cache_hits = c_translate_cache_hits_->value();
  out.translate_micros = h_translate_->snapshot().sum;
  return out;
}

ServiceLifecycleStats HyperQService::lifecycle_stats() const {
  ServiceLifecycleStats out;
  out.cancelled = c_cancelled_->value();
  out.deadline_expired = c_deadline_expired_->value();
  out.client_gone = c_client_gone_->value();
  out.killed = c_killed_->value();
  out.spill_bytes = c_spill_bytes_->value();
  if (options_.governor != nullptr) {
    out.shed_queries = options_.governor->stats().shed_queries;
  }
  return out;
}

size_t HyperQService::open_sessions() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return sessions_.size();
}

// ---------------------------------------------------------------------------
// Stats/admin surface (DESIGN.md §9)
// ---------------------------------------------------------------------------

void HyperQService::MirrorExternalGauges() const {
  if (options_.governor != nullptr) {
    ResourceGovernorStats g = options_.governor->stats();
    metrics_->gauge(names::kGovernorMemoryBytes)->Set(g.memory_bytes);
    metrics_->gauge(names::kGovernorPeakMemoryBytes)
        ->Set(g.peak_memory_bytes);
    metrics_->gauge(names::kGovernorSpillBytes)->Set(g.spill_bytes);
    metrics_->gauge(names::kGovernorTotalSpillBytes)
        ->Set(g.total_spill_bytes);
    metrics_->gauge(names::kGovernorMemoryDenials)->Set(g.memory_denials);
    metrics_->gauge(names::kGovernorSpillDenials)->Set(g.spill_denials);
    metrics_->gauge(names::kGovernorShedQueries)->Set(g.shed_queries);
    metrics_->gauge(names::kGovernorBackendSlotDenials)
        ->Set(g.backend_slot_denials);
  }
  // Per-backend health/in-flight levels and the per-state backend counts
  // (the lint-checked kHealthStateMetrics table).
  if (pool_ != nullptr) pool_->MirrorGauges();
  // Tail-tolerance levels (DESIGN.md §11): budget tokens and brownout
  // state, mirrored so one scrape shows the whole control loop.
  {
    RetryBudgetStats b = retry_budget_->stats();
    metrics_->gauge(names::kRetryBudgetTokens)
        ->Set(static_cast<int64_t>(b.tokens));
    metrics_->gauge(names::kRetryBudgetDeposits)->Set(b.deposits);
    metrics_->gauge(names::kRetryBudgetWithdrawals)->Set(b.withdrawals);
    metrics_->gauge(names::kRetryBudgetDenials)->Set(b.denials);
    BrownoutStats br = brownout_->stats();
    metrics_->gauge(names::kBrownoutActive)->Set(br.active ? 1 : 0);
    metrics_->gauge(names::kBrownoutEntries)->Set(br.entries);
    metrics_->gauge(names::kBrownoutExits)->Set(br.exits);
    metrics_->gauge(names::kBrownoutShedRequests)->Set(br.shed_requests);
    metrics_->gauge(names::kBrownoutQueueDepth)->Set(br.queue_depth);
    // Effective trigger: the adaptive percentile once observations exist,
    // else the configured floor (0 when hedging is off entirely).
    int64_t threshold = hedge_threshold_micros_.load(std::memory_order_relaxed);
    if (threshold == 0 && options_.tail.hedge.enabled) {
      threshold =
          static_cast<int64_t>(options_.tail.hedge.min_threshold_micros);
    }
    metrics_->gauge(names::kHedgeThresholdMicros)->Set(threshold);
  }
  // Resident cache levels are shard-computed; export them as gauges.
  TranslationCacheStats c = translation_cache_.stats();
  metrics_->gauge(names::kCacheEntries)->Set(c.entries);
  metrics_->gauge(names::kCacheBytes)->Set(static_cast<int64_t>(c.bytes));
  metrics_->gauge(names::kSessionsOpen)
      ->Set(static_cast<int64_t>(open_sessions()));
  // Fault-injection visibility: every declared point's hit/fire counts,
  // published through the lint-checked table in metric_names.h.
  FaultInjector& inj = FaultInjector::Global();
  for (size_t i = 0; i < names::kFaultPointMetricCount; ++i) {
    const auto& fp = names::kFaultPointMetrics[i];
    metrics_->gauge(std::string(fp.metric) + ".hits")->Set(inj.hits(fp.point));
    metrics_->gauge(std::string(fp.metric) + ".fires")
        ->Set(inj.fires(fp.point));
  }
}

ServiceStatsSnapshot HyperQService::StatsSnapshot() const {
  MirrorExternalGauges();
  ServiceStatsSnapshot snap;
  snap.metrics = metrics_->Snapshot();
  snap.features = stats();
  snap.resilience = resilience_stats();
  snap.lifecycle = lifecycle_stats();
  snap.translation_cache = translation_cache_.stats();
  snap.translation_activity = translation_activity();
  snap.open_sessions = open_sessions();
  return snap;
}

std::string HyperQService::ScrapeText() {
  MirrorExternalGauges();
  return metrics_->RenderText();
}

const char* HyperQService::OutcomeLabel(const Status& status,
                                        const QueryContext* ctx) {
  (void)ctx;
  if (status.ok()) return "ok";
  if (status.IsDeadlineExceeded()) return "deadline";
  if (status.IsCancelled()) return "cancelled";
  return "error";
}

void HyperQService::RecordQueryOutcome(const Status& status) {
  if (status.ok()) {
    c_queries_ok_->Inc();
  } else if (status.IsDeadlineExceeded()) {
    c_queries_deadline_->Inc();
  } else if (status.IsCancelled()) {
    c_queries_cancelled_->Inc();
  } else {
    c_queries_error_->Inc();
  }
  if (options_.query_outcome_hook) {
    options_.query_outcome_hook(OutcomeLabel(status, nullptr));
  }
}

void HyperQService::RecordFinishedTrace(
    const std::shared_ptr<const obs::QueryTrace>& trace) {
  if (trace == nullptr) return;
  double total = trace->total_micros();
  metrics_
      ->histogram(obs::LabeledName(names::kQueryMicros,
                                   {{"class", trace->session_class()}}))
      ->Observe(total);
  for (const auto& span : trace->spans()) {
    if (span.id == 0 || span.duration_micros < 0) continue;
    metrics_
        ->histogram(
            obs::LabeledName(names::kStageMicros, {{"stage", span.name}}))
        ->Observe(span.duration_micros);
  }
  trace_ring_.Add(trace);
  if (options_.slow_query_micros > 0 &&
      total >= options_.slow_query_micros) {
    c_slow_queries_->Inc();
    std::string line = trace->ToJson();
    if (options_.slow_query_sink) {
      options_.slow_query_sink(line);
    } else {
      std::fprintf(stderr, "%s\n", line.c_str());
    }
  }
}

void HyperQService::OnQueryTraceFinished(
    std::shared_ptr<const obs::QueryTrace> trace) {
  RecordFinishedTrace(trace);
}

// ---------------------------------------------------------------------------
// Lifecycle (DESIGN.md §8)
// ---------------------------------------------------------------------------

void HyperQService::RegisterActiveQuery(uint32_t session_id,
                                        QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_queries_[session_id] = ctx;
}

void HyperQService::UnregisterActiveQuery(uint32_t session_id,
                                          QueryContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_queries_.find(session_id);
  if (it != active_queries_.end() && it->second == ctx) {
    active_queries_.erase(it);
  }
}

bool HyperQService::KillQuery(uint32_t session_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = active_queries_.find(session_id);
  if (it == active_queries_.end()) return false;
  it->second->Cancel(
      CancelCause::kKill,
      Status::Cancelled("query killed by operator (session ", session_id,
                        ")"));
  return true;
}

void HyperQService::RecordLifecycleFailure(const Status& status,
                                           const QueryContext* ctx) {
  if (status.IsDeadlineExceeded()) {
    c_deadline_expired_->Inc();
    return;
  }
  if (!status.IsCancelled()) return;
  c_cancelled_->Inc();
  if (ctx == nullptr) return;
  switch (ctx->cause()) {
    case CancelCause::kClientGone:
      c_client_gone_->Inc();
      break;
    case CancelCause::kKill:
      c_killed_->Inc();
      break;
    default:
      break;
  }
}

// ---------------------------------------------------------------------------
// Translation cache (DESIGN.md §7)
// ---------------------------------------------------------------------------

bool HyperQService::IsCacheableShape(const sql::NormalizedStatement& norm) {
  if (norm.has_parameters) return false;
  const std::string& k = norm.first_keyword;
  // Single-statement query/DML pipeline shapes only. DDL, session
  // commands, macros, MERGE, and WITH (recursive emulation) bypass.
  return k == "SEL" || k == "SELECT" || k == "INS" || k == "INSERT" ||
         k == "UPD" || k == "UPDATE" || k == "DEL" || k == "DELETE";
}

bool HyperQService::TouchesVolatileName(
    const std::vector<std::string>& idents) const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (volatile_names_.empty()) return false;
  for (const std::string& id : idents) {
    if (volatile_names_.count(id) > 0) return true;
  }
  return false;
}

uint64_t HyperQService::SettingsDigest(const SessionInfo& info) {
  // Only settings that can change the produced SQL-B participate; user and
  // session_id deliberately do not, so sessions with identical settings
  // share cache entries.
  uint64_t h = Fnv1a64(info.default_database);
  h = Fnv1a64("\x1f", h);
  h = Fnv1a64(info.charset, h);
  h = Fnv1a64("\x1f", h);
  h = Fnv1a64(info.transaction_semantics, h);
  h = Fnv1a64("\x1f", h);
  h = Fnv1a64(info.collation, h);
  return h;
}

std::string HyperQService::MakeCacheKey(uint64_t settings_digest,
                                        const sql::NormalizedStatement& norm,
                                        int64_t catalog_version) const {
  std::string key;
  key.reserve(norm.template_sql.size() + norm.literal_signature.size() +
              profile_digest_.size() + 48);
  key += norm.template_sql;
  key += '\x1f';
  key += norm.literal_signature;
  key += '\x1f';
  key += profile_digest_;
  key += '\x1f';
  key += std::to_string(settings_digest);
  key += '\x1f';
  key += std::to_string(catalog_version);
  return key;
}

Result<std::string> HyperQService::TranslatePipelineSql(
    const std::string& sql_a) {
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                      sql::ParseStatement(sql_a, frontend_dialect_));
  switch (stmt->kind) {
    case StmtKind::kSelect:
    case StmtKind::kInsert:
    case StmtKind::kUpdate:
    case StmtKind::kDelete:
      break;
    default:
      return Status::NotSupported("not a single pipeline statement");
  }
  binder::Binder binder(&catalog_, frontend_dialect_);
  xtra::OpPtr plan;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    HQ_ASSIGN_OR_RETURN(plan, binder.BindStatement(*stmt));
  }
  FeatureSet fs = binder.features();
  binder::ColIdGenerator ids;
  for (int i = 0; i < 1000000; ++i) ids.Next();
  HQ_RETURN_IF_ERROR(
      transformer_.Run(transform::Stage::kBinding, &plan, &ids, &fs,
                       &catalog_));
  if (plan->kind == xtra::OpKind::kRecursiveCte) {
    return Status::NotSupported("recursive emulation is not cacheable");
  }
  HQ_RETURN_IF_ERROR(
      transformer_.Run(transform::Stage::kSerialization, &plan, &ids, &fs,
                       &catalog_));
  return serializer_.Serialize(*plan);
}

Result<CachedTranslation> HyperQService::BuildTemplateViaSentinels(
    const sql::NormalizedStatement& norm, const std::string& sql_b,
    std::vector<std::string>* sql_b_idents) {
  if (norm.literals.empty()) {
    return Status::NotSupported("no literals to disambiguate");
  }
  std::vector<sql::ExtractedLiteral> sentinels;
  sentinels.reserve(norm.literals.size());
  for (size_t k = 0; k < norm.literals.size(); ++k) {
    sentinels.push_back(MakeSentinelLiteral(norm.literals[k], k));
  }
  HQ_ASSIGN_OR_RETURN(
      std::string sentinel_sql,
      SubstituteTemplateLiterals(norm.template_sql, sentinels));
  HQ_ASSIGN_OR_RETURN(sql::NormalizedStatement sentinel_norm,
                      sql::NormalizeStatement(sentinel_sql));
  if (sentinel_norm.template_sql != norm.template_sql ||
      sentinel_norm.literals.size() != norm.literals.size()) {
    return Status::NotSupported("sentinel statement changed shape");
  }
  HQ_ASSIGN_OR_RETURN(std::string sentinel_sql_b,
                      TranslatePipelineSql(sentinel_sql));
  HQ_ASSIGN_OR_RETURN(
      CachedTranslation built,
      BuildTranslationTemplate(sentinel_sql_b, sentinel_norm, sql_b_idents));
  // Slot modes carried over from the sentinels are correct (same token
  // kind and typed-literal context), but the temporal-coercion guard must
  // record what the REAL creator literals were canonical under.
  for (TemplateSlot& slot : built.slots) {
    if (slot.mode == sql::SpliceMode::kString) {
      slot.temporal_mask =
          sql::TemporalCanonicalMask(norm.literals[slot.param_index].text);
    }
  }
  // End-to-end verification: splicing the original literals into the
  // sentinel-derived template must reproduce the original translation
  // byte-for-byte, or the template is rejected. This catches every
  // divergence class at once (folding, reordering, coercion).
  HQ_ASSIGN_OR_RETURN(std::string respliced,
                      SpliceTranslationTemplate(built, norm));
  if (respliced != sql_b) {
    return Status::NotSupported("sentinel template failed verification");
  }
  return built;
}

void HyperQService::MaybeCacheTranslation(
    const std::string& cache_key, const sql::NormalizedStatement& norm,
    const std::string& sql_b, const FeatureSet& features,
    int64_t catalog_version, const QueryContext* ctx) {
  // Emulation markers (e.g. the recursive-query comment) are not
  // executable SQL-B and must never be replayed from the cache.
  if (sql_b.rfind("--", 0) == 0) {
    translation_cache_.RecordBypass();
    return;
  }
  std::vector<std::string> sql_b_idents;
  auto built = BuildTranslationTemplate(sql_b, norm, &sql_b_idents);
  if (!built.ok()) {
    // Direct site matching failed — usually duplicate literals. Probe
    // with sentinel literals to recover the site mapping.
    sql_b_idents.clear();
    built = BuildTemplateViaSentinels(norm, sql_b, &sql_b_idents);
  }
  if (!built.ok()) {
    translation_cache_.RecordBypass();
    // Negative-cache the shape so permanently uncacheable statements do
    // not pay the sentinel probe's second translation on every miss. A
    // cancelled request never plants the marker: its probe may have been
    // cut short, which proves nothing about the shape — the next cold run
    // re-probes with full effort.
    if (ctx != nullptr && ctx->cancelled()) return;
    if (IsLifecycleStatus(built.status())) return;
    CachedTranslation marker;
    marker.uncacheable = true;
    marker.catalog_version = catalog_version;
    translation_cache_.Insert(cache_key, std::move(marker));
    return;
  }
  // A view or macro can smuggle a session-scoped volatile table into the
  // serialized text even when SQL-A never names it.
  if (TouchesVolatileName(sql_b_idents)) {
    translation_cache_.RecordBypass();
    return;
  }
  built->features = features;
  built->catalog_version = catalog_version;
  translation_cache_.Insert(cache_key, std::move(*built));
}

void HyperQService::InvalidateTranslationCacheAfterDdl() {
  if (!options_.translation_cache.enabled) return;
  // Versioned keys already make stale entries unreachable; the sweep
  // reclaims their bytes and counts them as invalidations.
  translation_cache_.InvalidateCatalogVersion(catalog_.version());
}

void HyperQService::RecordTranslationActivity(bool translate_path,
                                              bool cache_hit, double micros) {
  if (translate_path) {
    c_translate_statements_->Inc();
  } else {
    c_submit_statements_->Inc();
  }
  if (cache_hit) c_translate_cache_hits_->Inc();
  h_translate_->Observe(micros);
}

Result<QueryOutcome> HyperQService::ExecuteCachedStatement(
    Session* session, const CachedTranslation& entry, std::string sql_b,
    const Stopwatch& translation, QueryContext* ctx, bool select_shape) {
  translation_cache_.RecordHit();
  QueryOutcome out;
  out.features = entry.features;
  out.timing.cache_hits = 1;
  // The whole parse→bind→transform→serialize pipeline was skipped;
  // translation cost is normalize + lookup + splice. The cached template
  // was emitted under the active dialect (it is part of the cache key).
  out.timing.translation_micros = translation.ElapsedMicros();
  out.timing.dialect = serializer_.dialect().Name();
  out.backend_sql.push_back(sql_b);
  Stopwatch execution;
  {
    obs::SpanScope exec_span(ctx, "backend.execute");
    HQ_ASSIGN_OR_RETURN(out.result,
                        ExecuteOnBackend(session, sql_b, ctx, select_shape));
  }
  out.timing.execution_micros = execution.ElapsedMicros();
  out.timing.hedges += out.result.hedges;
  out.timing.hedge_won = out.result.hedge_won;
  AbsorbResilienceStats(&out);
  AbsorbSpillBytes(&out);
  return out;
}

size_t HyperQService::journal_size(uint32_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? 0 : it->second->journal.size();
}

// ---------------------------------------------------------------------------
// Failover: session journal & replay (DESIGN.md §6, "Failover & overload")
// ---------------------------------------------------------------------------

void HyperQService::AppendJournal(Session* session, JournalEntry entry) {
  if (session->journal_overflow) return;
  if (session->journal.size() >= options_.failover.max_journal_entries) {
    // Past the cap the journal can no longer reproduce the session: drop it
    // entirely (a truncated replay would be silently wrong) and degrade
    // failover to a clean error.
    session->journal_overflow = true;
    session->journal.clear();
    session->journal.shrink_to_fit();
    return;
  }
  session->journal.push_back(std::move(entry));
}

void HyperQService::CompactJournal(Session* session,
                                   const std::string& table) {
  auto& j = session->journal;
  j.erase(std::remove_if(j.begin(), j.end(),
                         [&](const JournalEntry& e) {
                           return !e.table.empty() && e.table == table;
                         }),
          j.end());
}

bool HyperQService::IsVolatileTable(const Session* session,
                                    const std::string& name) const {
  for (const auto& t : session->volatile_tables) {
    if (t == name) return true;
  }
  return false;
}

bool HyperQService::StatementIsNonIdempotent(const sql::Statement& stmt) {
  switch (stmt.kind) {
    case StmtKind::kInsert:
    case StmtKind::kUpdate:
    case StmtKind::kDelete:
    case StmtKind::kMerge:
    case StmtKind::kExecMacro:  // macro bodies may contain DML
      return true;
    default:
      return false;
  }
}

Result<int> HyperQService::ReplaySessionJournal(Session* session) {
  if (session->journal_overflow) {
    c_journal_overflows_->Inc();
    return Status::Unavailable(
        "backend session lost and the session journal overflowed (limit ",
        options_.failover.max_journal_entries,
        " entries); session state cannot be replayed");
  }
  int replayed = 0;
  for (const auto& entry : session->journal) {
    if (entry.kind == JournalEntry::Kind::kSetSession) {
      // Mid-tier state: it survives in the DTM; nothing reaches the target.
      ++replayed;
      continue;
    }
    if (entry.kind == JournalEntry::Kind::kTempTableDdl &&
        !entry.table.empty()) {
      // Cross-replica replay may land where an orphaned copy of the
      // volatile table still exists (compute replicas over shared
      // storage); clear it so the journaled CREATE cannot collide.
      (void)session->connector->Execute("DROP TABLE IF EXISTS " +
                                        entry.table);
    }
    auto result = session->connector->Execute(entry.sql);
    if (!result.ok()) {
      return result.status().WithContext("session journal replay of '" +
                                         entry.sql + "'");
    }
    if (entry.kind == JournalEntry::Kind::kTempTableDdl &&
        !entry.table.empty()) {
      // The (possibly new) connector must track the recreated table as
      // session-scoped so a later loss drops it again.
      session->connector->NoteSessionTable(entry.table);
    }
    ++replayed;
  }
  session->backend_epoch = session->connector->connection_epoch();
  c_failovers_->Inc();
  c_statements_replayed_->Inc(replayed);
  return replayed;
}

Result<QueryOutcome> HyperQService::SubmitWithFailover(
    Session* session, const std::string& sql_a, QueryContext* ctx) {
  if (pool_ != nullptr) return SubmitWithFleetFailover(session, sql_a, ctx);
  auto outcome = SubmitInternal(session, sql_a, 0, ctx);
  if (outcome.ok() || !outcome.status().IsSessionLost()) return outcome;
  if (!options_.failover.enabled) {
    return Status::Unavailable("backend session lost (failover disabled): ",
                               outcome.status().message());
  }
  // A cancelled/expired request gets no transparent failover retry; the
  // session is still repaired so the next statement finds it healthy.
  if (ctx != nullptr) {
    Status alive = ctx->CheckAlive();
    if (!alive.ok()) {
      (void)ReplaySessionJournal(session);
      return alive;
    }
  }

  // Idempotency fence: a statement with side effects that died inside an
  // open transaction cannot be transparently re-run — the transaction is
  // gone with the session, and re-executing DML could double-apply it.
  // The session itself is still repaired for subsequent statements.
  bool non_idempotent = false;
  auto parsed = sql::ParseStatement(sql_a, frontend_dialect_);
  if (parsed.ok()) non_idempotent = StatementIsNonIdempotent(**parsed);
  if (session->txn_depth > 0 && non_idempotent) {
    (void)ReplaySessionJournal(session);  // best-effort session repair
    session->txn_depth = 0;  // the backend transaction died with the session
    c_aborted_in_txn_->Inc();
    return Status::Aborted(
        "backend session lost while a non-idempotent statement was in "
        "flight inside an open transaction; transaction rolled back — "
        "resubmit the transaction (", outcome.status().message(), ")");
  }

  HQ_ASSIGN_OR_RETURN(int replayed, ReplaySessionJournal(session));
  auto retried = SubmitInternal(session, sql_a, 0, ctx);
  if (retried.ok()) {
    retried->timing.failovers += 1;
    retried->timing.journal_replays += replayed;
  }
  return retried;
}

// ---------------------------------------------------------------------------
// Fleet routing & cross-replica failover (DESIGN.md §10)
// ---------------------------------------------------------------------------

namespace {
// Failures worth trying elsewhere: the session/replica died (kSessionLost),
// or nothing was even attempted because the instance is down — the breaker
// rejected the call or the pool knows the backend is killed. A plain
// kUnavailable (one flaked call, already retried in place) and every
// permanent error ("query bad") stay put: re-routing them would waste
// another replica's time on the same outcome.
bool FailoverEligible(const Status& s) {
  if (s.IsSessionLost()) return true;
  return s.IsUnavailable() && (s.detail() == StatusDetail::kBreakerOpen ||
                               s.detail() == StatusDetail::kBackendDown);
}
}  // namespace

bool HyperQService::JournalRequiresProfile(const Session* session) {
  for (const auto& entry : session->journal) {
    if (entry.kind == JournalEntry::Kind::kSetSession) return true;
  }
  return false;
}

void HyperQService::RecordRoute(const backend::RouteDecision& route) {
  if (pool_ == nullptr || route.backend < 0) return;
  metrics_
      ->counter(obs::LabeledName(
          names::kBackendRoute,
          {{"backend", pool_->spec(route.backend).name},
           {"reason", route.reason}}))
      ->Inc();
}

Status HyperQService::RebindSession(Session* session, int target) {
  if (session->backend_index == target) return Status::OK();
  if (session->connector != nullptr && session->backend_index >= 0) {
    session->parked_connectors[session->backend_index] =
        std::move(session->connector);
  }
  auto parked = session->parked_connectors.find(target);
  if (parked != session->parked_connectors.end() &&
      parked->second != nullptr) {
    session->connector = std::move(parked->second);
    session->parked_connectors.erase(parked);
  } else {
    session->connector = pool_->CreateConnector(target, session->id);
  }
  session->backend_index = target;
  session->backend_epoch = session->connector->connection_epoch();
  return Status::OK();
}

Result<QueryOutcome> HyperQService::SubmitWithFleetFailover(
    Session* session, const std::string& sql_a, QueryContext* ctx) {
  const int max_attempts = std::max(1, options_.fleet.max_failover_attempts);
  std::vector<int> failed;   // backends that failed this query
  bool needs_replay = false;  // same-replica session loss pending repair
  int failovers = 0;
  int total_replayed = 0;
  Status last_error;

  // The open-transaction fence (same semantics as single-backend mode):
  // the backend transaction died with the session/replica, and a statement
  // with side effects must not be transparently re-run.
  auto txn_fence = [&](const Status& cause) -> Status {
    if (session->txn_depth <= 0) return Status::OK();
    bool non_idempotent = false;
    auto parsed = sql::ParseStatement(sql_a, frontend_dialect_);
    if (parsed.ok()) non_idempotent = StatementIsNonIdempotent(**parsed);
    session->txn_depth = 0;  // the backend transaction is gone either way
    if (!non_idempotent) return Status::OK();
    c_aborted_in_txn_->Inc();
    return Status::Aborted(
        "backend lost while a non-idempotent statement was in flight "
        "inside an open transaction; transaction rolled back — resubmit "
        "the transaction (",
        cause.message(), ")");
  };

  // Every re-placement after the first attempt is a retry from the
  // backend's point of view and must win a token from the global retry
  // budget (DESIGN.md §11); the typed denial is deliberately not
  // failover-eligible, which is what stops the amplification chain.
  auto budget_gate = [&](const Status& cause) -> Status {
    if (retry_budget_->TryWithdraw()) return Status::OK();
    return cause.WithDetail(StatusDetail::kRetryBudgetExhausted);
  };

  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    backend::RouteConstraints constraints;
    constraints.emitted = &options_.profile;
    constraints.sticky = session->backend_index;
    constraints.exclude = failed;
    if (JournalRequiresProfile(session) && session->backend_index >= 0) {
      // Journaled SET SESSION state is only valid under the profile it was
      // created with: restrict failover to digest-identical replicas and
      // let the router surface kFailoverIncompatible when none exists.
      constraints.require_profile_digest = true;
      constraints.profile_digest =
          pool_->profile_digest(session->backend_index);
    }
    auto route = router_->Pick(constraints);
    if (!route.ok()) {
      Status s = route.status();
      if (s.detail() == StatusDetail::kFailoverIncompatible) {
        c_failover_incompatible_->Inc();
      }
      if (!last_error.ok()) {
        return s.WithContext("failing over from: " + last_error.ToString());
      }
      return s;
    }
    RecordRoute(*route);
    if (route->backend != session->backend_index) {
      // Cross-replica move: proactive (the bound backend is ejected or
      // killed) or reactive (it just failed this query). Fence the open
      // transaction, rebind, and replay the session journal there.
      HQ_RETURN_IF_ERROR(txn_fence(last_error));
      HQ_RETURN_IF_ERROR(RebindSession(session, route->backend));
      auto replayed = ReplaySessionJournal(session);
      if (!replayed.ok()) {
        if (FailoverEligible(replayed.status())) {
          last_error = replayed.status();
          failed.push_back(route->backend);
          HQ_RETURN_IF_ERROR(budget_gate(last_error));
          continue;
        }
        return replayed.status();
      }
      needs_replay = false;
      total_replayed += *replayed;
      ++failovers;
      c_failover_cross_replica_->Inc();
    } else if (needs_replay) {
      // Same-replica session loss (transient, not a dead instance): repair
      // in place, exactly like single-backend failover.
      HQ_ASSIGN_OR_RETURN(int replayed, ReplaySessionJournal(session));
      needs_replay = false;
      total_replayed += replayed;
      ++failovers;
    }

    Status acquired = pool_->Acquire(route->backend);
    if (!acquired.ok()) {
      last_error = acquired;
      failed.push_back(route->backend);
      if (FailoverEligible(acquired) || acquired.IsResourceExhausted()) {
        HQ_RETURN_IF_ERROR(budget_gate(last_error));
        continue;  // in-flight cap or just-killed: try another replica
      }
      return acquired;
    }
    auto outcome = SubmitInternal(session, sql_a, 0, ctx);
    // When a hedge replica produced the result, the primary's slot is the
    // losing leg: release it without feeding the scorer or the limiter
    // (the hedge path already released the winner with real timing).
    bool hedge_won = outcome.ok() && outcome->result.hedge_won;
    pool_->Release(route->backend,
                   outcome.ok() ? Status::OK() : outcome.status(),
                   outcome.ok() && !hedge_won
                       ? outcome->timing.execution_micros
                       : -1,
                   hedge_won ? backend::BackendPool::ReleaseKind::kHedgeLoser
                             : backend::BackendPool::ReleaseKind::kNormal);
    if (outcome.ok()) {
      outcome->timing.failovers += failovers;
      outcome->timing.journal_replays += total_replayed;
      return outcome;
    }
    Status s = outcome.status();
    // A cancelled/expired request gets no more attempts anywhere.
    if (ctx != nullptr) {
      Status alive = ctx->CheckAlive();
      if (!alive.ok()) return alive;
    }
    if (!FailoverEligible(s)) return s;
    if (!options_.failover.enabled) {
      return Status::Unavailable("backend lost (failover disabled): ",
                                 s.message());
    }
    HQ_RETURN_IF_ERROR(txn_fence(s));
    last_error = s;
    if (s.IsSessionLost() && s.detail() == StatusDetail::kNone) {
      // The session flaked but the instance may be fine: allow a sticky
      // retry after journal replay instead of burning a replica.
      needs_replay = true;
    } else {
      failed.push_back(route->backend);
    }
    HQ_RETURN_IF_ERROR(budget_gate(last_error));
  }
  return last_error;
}

// ---------------------------------------------------------------------------
// Hedged execution (DESIGN.md §11)
// ---------------------------------------------------------------------------

bool HyperQService::HedgeEligible(const Session* session) const {
  if (!options_.tail.hedge.enabled) return false;
  // A hedge needs a second replica to race.
  if (pool_ == nullptr || router_ == nullptr || pool_->size() < 2) {
    return false;
  }
  if (session->backend_index < 0) return false;
  // Side-effect fence: a statement inside an open transaction, or against
  // session-scoped (volatile) backend state, must run exactly once on
  // exactly the bound backend. SET SESSION journal entries are mid-tier
  // state already baked into the SQL-B text, so they do not disqualify.
  if (session->txn_depth > 0) return false;
  if (!session->volatile_tables.empty()) return false;
  for (const auto& e : session->journal) {
    if (e.kind != JournalEntry::Kind::kSetSession) return false;
  }
  return true;
}

void HyperQService::ObserveHedgeLatency(double micros) {
  h_hedge_execute_->Observe(micros);
  int64_t n = hedge_observations_.fetch_add(1, std::memory_order_relaxed) + 1;
  // The percentile over a streaming histogram is cheap but not free:
  // refresh the cached trigger every few observations rather than per
  // query.
  if (n % 32 != 0 &&
      hedge_threshold_micros_.load(std::memory_order_relaxed) != 0) {
    return;
  }
  obs::HistogramSnapshot snap = h_hedge_execute_->snapshot();
  double q = snap.Quantile(options_.tail.hedge.percentile);
  auto threshold = static_cast<int64_t>(
      std::max(q, options_.tail.hedge.min_threshold_micros));
  hedge_threshold_micros_.store(threshold, std::memory_order_relaxed);
}

int64_t HyperQService::HedgeThresholdMicros() {
  int64_t cached = hedge_threshold_micros_.load(std::memory_order_relaxed);
  if (cached > 0) return cached;
  // Cold start: no eligible executions observed yet; hedge only past the
  // configured floor.
  return static_cast<int64_t>(options_.tail.hedge.min_threshold_micros);
}

void HyperQService::ReapHedgeStragglers(bool all) {
  std::vector<HedgeStraggler> to_join;
  {
    std::lock_guard<std::mutex> lock(stragglers_mutex_);
    if (all) {
      to_join.swap(stragglers_);
    } else {
      for (auto it = stragglers_.begin(); it != stragglers_.end();) {
        if (it->done->load(std::memory_order_acquire)) {
          to_join.push_back(std::move(*it));
          it = stragglers_.erase(it);
        } else {
          ++it;
        }
      }
    }
  }
  for (auto& s : to_join) {
    if (s.thread.joinable()) s.thread.join();
  }
}

Result<BackendResult> HyperQService::ExecuteOnBackend(
    Session* session, const std::string& sql_b, QueryContext* ctx,
    bool hedge_eligible) {
  // With the tail layer off (or the statement/session ineligible) this is
  // byte-identical to the pre-hedging call.
  if (!hedge_eligible || !HedgeEligible(session)) {
    return session->connector->Execute(sql_b, ctx);
  }
  return HedgedExecute(session, sql_b, ctx);
}

Result<BackendResult> HyperQService::HedgedExecute(Session* session,
                                                   const std::string& sql_b,
                                                   QueryContext* ctx) {
  // First-completion-wins over two legs (DESIGN.md §11). The primary leg
  // runs on its own thread with its own connector and child context, so a
  // straggling loser can never pin the caller, the session's connector, or
  // the winner's result. The hedge leg (if admitted) runs inline on the
  // caller's thread.
  struct Shared {
    std::mutex mutex;
    std::condition_variable cv;
    bool primary_done = false;
    std::optional<Result<BackendResult>> primary_result;
    // Set while a hedge is in flight so the primary, on winning, can
    // cancel the loser promptly instead of letting it run to completion.
    std::shared_ptr<QueryContext> hedge_ctx;
  };
  auto shared = std::make_shared<Shared>();
  auto primary_ctx = std::make_shared<QueryContext>();
  if (ctx != nullptr && ctx->has_deadline()) {
    primary_ctx->SetDeadline(ctx->deadline());
  }
  const int primary_backend = session->backend_index;
  std::shared_ptr<backend::BackendConnector> primary_conn =
      pool_->CreateConnector(primary_backend, session->id);
  auto primary_finished = std::make_shared<std::atomic<bool>>(false);

  ReapHedgeStragglers(/*all=*/false);
  // The closure owns everything it touches (no `this`): it may outlive
  // this call as a parked straggler; the destructor joins it before the
  // pool stops.
  std::thread primary_thread([shared, primary_ctx, primary_conn, sql_b,
                              primary_finished]() {
    auto r = primary_conn->Execute(sql_b, primary_ctx.get());
    std::shared_ptr<QueryContext> loser;
    {
      std::lock_guard<std::mutex> lock(shared->mutex);
      bool won = r.ok();
      shared->primary_result.emplace(std::move(r));
      shared->primary_done = true;
      if (won && shared->hedge_ctx != nullptr) loser = shared->hedge_ctx;
    }
    shared->cv.notify_all();
    if (loser != nullptr) {
      loser->Cancel(CancelCause::kHedgeLoser,
                    Status::Cancelled("hedge lost: primary completed first"));
    }
    primary_finished->store(true, std::memory_order_release);
  });

  auto park_primary = [&]() {
    std::lock_guard<std::mutex> lock(stragglers_mutex_);
    stragglers_.push_back({std::move(primary_thread), primary_finished});
  };
  auto harvest_primary = [&](double waited_micros)
      -> Result<BackendResult> {
    primary_thread.join();
    Result<BackendResult> r = std::move(*shared->primary_result);
    if (r.ok()) ObserveHedgeLatency(waited_micros);
    return r;
  };

  // Phase 1: give the primary the adaptive threshold to answer.
  const int64_t threshold = HedgeThresholdMicros();
  const auto slice = std::chrono::milliseconds(
      std::max(1, options_.tail.hedge.poll_interval_ms));
  Stopwatch waited;
  {
    std::unique_lock<std::mutex> lock(shared->mutex);
    while (!shared->primary_done &&
           waited.ElapsedMicros() < static_cast<double>(threshold)) {
      shared->cv.wait_for(lock, slice);
      if (ctx != nullptr && ctx->cancelled()) break;
    }
    if (shared->primary_done) {
      lock.unlock();
      return harvest_primary(waited.ElapsedMicros());
    }
  }
  if (ctx != nullptr) {
    Status alive = ctx->CheckAlive();
    if (!alive.ok()) {
      // The whole request died while we waited: cancel the primary leg and
      // park it; it unwinds at its next batch boundary.
      primary_ctx->Cancel(CancelCause::kHedgeLoser, alive);
      park_primary();
      return alive;
    }
  }

  // Phase 2: the primary is slow — try to admit a hedge. Every denial
  // falls back to simply waiting the primary out.
  auto wait_out_primary = [&]() -> Result<BackendResult> {
    std::unique_lock<std::mutex> lock(shared->mutex);
    while (!shared->primary_done) {
      shared->cv.wait_for(lock, slice);
      if (ctx != nullptr) {
        Status alive = ctx->CheckAlive();
        if (!alive.ok()) {
          lock.unlock();
          primary_ctx->Cancel(CancelCause::kHedgeLoser, alive);
          park_primary();
          return alive;
        }
      }
    }
    lock.unlock();
    return harvest_primary(waited.ElapsedMicros());
  };

  // Gate 1: a hedge is a retry from the fleet's point of view and spends a
  // retry-budget token.
  if (!retry_budget_->TryWithdraw()) {
    c_hedge_denied_budget_->Inc();
    return wait_out_primary();
  }
  // Gate 2: hedges may not exceed the configured fraction of in-flight
  // load, so a slow fleet cannot double its own traffic.
  int total_in_flight = 0;
  for (size_t i = 0; i < pool_->size(); ++i) {
    total_in_flight += pool_->in_flight(i);
  }
  int max_hedges = std::max(
      1, static_cast<int>(options_.tail.hedge.max_hedge_fraction *
                          static_cast<double>(total_in_flight)));
  if (hedges_in_flight_.load(std::memory_order_relaxed) >= max_hedges) {
    c_hedge_denied_load_->Inc();
    return wait_out_primary();
  }
  // Gate 3: a distinct healthy replica must exist.
  backend::RouteConstraints constraints;
  constraints.emitted = &options_.profile;
  constraints.exclude.push_back(primary_backend);
  if (JournalRequiresProfile(session)) {
    constraints.require_profile_digest = true;
    constraints.profile_digest = pool_->profile_digest(primary_backend);
  }
  auto route = router_->Pick(constraints);
  if (!route.ok()) {
    c_hedge_denied_no_replica_->Inc();
    return wait_out_primary();
  }
  const int hedge_backend = route->backend;
  Status acquired = pool_->Acquire(hedge_backend);
  if (!acquired.ok()) {
    c_hedge_denied_load_->Inc();
    return wait_out_primary();
  }

  auto hedge_ctx = std::make_shared<QueryContext>();
  if (ctx != nullptr && ctx->has_deadline()) {
    hedge_ctx->SetDeadline(ctx->deadline());
  }
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    if (shared->primary_done) {
      // The primary answered while we were routing: no race to run.
      pool_->Release(hedge_backend, Status::OK(), -1,
                     backend::BackendPool::ReleaseKind::kHedgeLoser);
      return harvest_primary(waited.ElapsedMicros());
    }
    shared->hedge_ctx = hedge_ctx;
  }

  c_hedge_launched_->Inc();
  hedges_in_flight_.fetch_add(1, std::memory_order_relaxed);
  Result<BackendResult> hedge_result = [&]() {
    obs::SpanScope hedge_span(ctx, "backend.hedge");
    hedge_span.Annotate("backend", pool_->spec(hedge_backend).name);
    std::unique_ptr<backend::BackendConnector> hedge_conn =
        pool_->CreateConnector(hedge_backend, session->id);
    return hedge_conn->Execute(sql_b, hedge_ctx.get());
  }();
  hedges_in_flight_.fetch_sub(1, std::memory_order_relaxed);
  double hedge_latency = waited.ElapsedMicros();

  bool primary_done_now;
  bool primary_won;
  {
    std::lock_guard<std::mutex> lock(shared->mutex);
    shared->hedge_ctx = nullptr;  // the race is over either way
    primary_done_now = shared->primary_done;
    primary_won = primary_done_now && shared->primary_result->ok();
  }

  if (hedge_result.ok() && !primary_won) {
    // Hedge wins: cancel the straggling primary leg and hand its slot
    // release (as a hedge loser) to the fleet loop via the result flags.
    c_hedge_wins_->Inc();
    if (!primary_done_now) {
      c_hedge_cancelled_->Inc();
      primary_ctx->Cancel(
          CancelCause::kHedgeLoser,
          Status::Cancelled("hedge lost: hedge replica completed first"));
      park_primary();
    } else {
      primary_thread.join();
    }
    pool_->Release(hedge_backend, Status::OK(), hedge_latency,
                   backend::BackendPool::ReleaseKind::kNormal);
    hedge_result->hedges = 1;
    hedge_result->hedge_won = true;
    hedge_result->hedge_backend = hedge_backend;
    return hedge_result;
  }

  // Hedge lost: either the primary beat it (and cancelled it), or the
  // hedge itself failed. A cancelled/failed-by-cancel leg must not feed the
  // scorer or the limiter; a genuine hedge error scores normally.
  bool hedge_cancelled = !hedge_result.ok() &&
                         (hedge_result.status().IsCancelled() ||
                          hedge_result.status().IsDeadlineExceeded());
  if (hedge_cancelled) c_hedge_cancelled_->Inc();
  pool_->Release(hedge_backend,
                 hedge_result.ok() ? Status::OK() : hedge_result.status(),
                 -1,
                 hedge_result.ok() || hedge_cancelled
                     ? backend::BackendPool::ReleaseKind::kHedgeLoser
                     : backend::BackendPool::ReleaseKind::kNormal);
  c_hedge_losses_->Inc();
  auto out = wait_out_primary();
  if (out.ok()) {
    out->hedges = 1;
  } else if (!primary_won && !hedge_result.ok() && !hedge_cancelled) {
    // Both legs genuinely failed: surface the hedge error as context only
    // when the primary failed too (the primary error is authoritative).
    return out.status().WithContext("hedge also failed: " +
                                    hedge_result.status().ToString());
  }
  return out;
}

// ---------------------------------------------------------------------------
// Local result packaging
// ---------------------------------------------------------------------------

BackendResult HyperQService::PackageLocal(
    const emulation::LocalResult& local) {
  BackendResult out;
  std::vector<SqlType> types;
  types.reserve(local.columns.size());
  for (const auto& col : local.columns) {
    out.columns.push_back({col.name, col.type});
    types.push_back(col.type);
  }
  out.store = std::make_shared<backend::ResultStore>();
  out.store->set_schema(out.columns);
  std::shared_ptr<const vdb::ColumnBatch> batch =
      vdb::BatchFromRows(types, local.rows, 0, local.rows.size());
  (void)out.store->AppendBatch(batch, 0, batch->rows);
  out.command_tag = "HELP";
  return out;
}

BackendResult HyperQService::CommandResult(const std::string& tag,
                                           int64_t activity) {
  BackendResult out;
  out.command_tag = tag;
  out.affected_rows = activity;
  return out;
}

// ---------------------------------------------------------------------------
// Submission
// ---------------------------------------------------------------------------

Result<QueryOutcome> HyperQService::Submit(uint32_t session_id,
                                           const std::string& sql_a,
                                           QueryContext* ctx) {
  QueryRequest request;
  request.session_id = session_id;
  request.sql = sql_a;
  request.ctx = ctx;
  return Submit(request);
}

Result<QueryOutcome> HyperQService::Submit(const QueryRequest& request) {
  // Tail tolerance (DESIGN.md §11): each request tops up the retry budget,
  // and under brownout the low-priority session classes are shed before
  // any work — no trace, no session lookup, one typed error frame.
  retry_budget_->NoteRequest();
  if (Status shed = brownout_->Admit(request.session_class); !shed.ok()) {
    RecordQueryOutcome(shed);
    return shed;
  }
  // Library callers without a context still get governance: the service
  // mints one so KillQuery and the default deadline apply uniformly.
  QueryContext local_ctx;
  QueryContext* ctx = request.ctx != nullptr ? request.ctx : &local_ctx;
  if (options_.default_query_deadline_ms > 0) {
    ctx->TightenDeadline(Deadline::After(options_.default_query_deadline_ms));
  }
  // Library-path tracing: mint a span tree when the context carries none.
  // A trace attached by the wire path stays externally owned — the server
  // closes wire.write and finishes it after this returns.
  std::shared_ptr<obs::QueryTrace> minted;
  if (options_.tracing && request.trace && ctx->trace() == nullptr) {
    minted = std::make_shared<obs::QueryTrace>();
    minted->set_session_id(request.session_id);
    minted->set_query(request.sql);
    minted->set_session_class(request.session_class);
    ctx->set_trace(minted);
  }
  auto finish = [&](const Status& st) {
    RecordQueryOutcome(st);
    if (minted == nullptr) return;
    minted->set_outcome(OutcomeLabel(st, ctx));
    minted->Finish();
    RecordFinishedTrace(minted);
    // Detach so a reused context never feeds spans into a finished trace.
    ctx->set_trace(nullptr);
  };
  auto session_or = GetSession(request.session_id);
  if (!session_or.ok()) {
    finish(session_or.status());
    return session_or.status();
  }
  Session* session = *session_or;
  RegisterActiveQuery(request.session_id, ctx);
  auto outcome = SubmitWithFailover(session, request.sql, ctx);
  UnregisterActiveQuery(request.session_id, ctx);
  finish(outcome.ok() ? Status::OK() : outcome.status());
  if (!outcome.ok()) {
    RecordLifecycleFailure(outcome.status(), ctx);
    return outcome.status();
  }
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.AddQuery(outcome->features);
  }
  c_spill_bytes_->Inc(outcome->timing.spill_bytes);
  if (outcome->result.store != nullptr) {
    h_result_bytes_->Observe(
        static_cast<double>(outcome->result.store->memory_bytes()) +
        static_cast<double>(outcome->result.store->spilled_bytes()));
  }
  if (minted != nullptr) outcome->trace = minted;
  return outcome;
}

Result<QueryOutcome> HyperQService::SubmitInternal(Session* session,
                                                   const std::string& sql_a,
                                                   int depth,
                                                   QueryContext* ctx) {
  if (depth > 8) {
    return Status::ExecutionError("statement expansion too deep (macro "
                                  "recursion?)");
  }
  // Translating-phase gate: a request cancelled before (or between)
  // statements never enters the pipeline.
  if (ctx != nullptr) {
    HQ_RETURN_IF_ERROR(ctx->CheckAlive());
  }
  Stopwatch translation;
  // The normalize+lookup probe is one stage span; a hit then proceeds to
  // backend.execute as a sibling (never nested under the lookup).
  obs::SpanScope cache_span(ctx, "cache.lookup");
  HQ_ASSIGN_OR_RETURN(sql::NormalizedStatement norm,
                      sql::NormalizeStatement(sql_a));

  // Translation cache fast path: a repeat shape skips the whole
  // parse→bind→transform→serialize pipeline (and the feature scan — the
  // cached entry carries the cold run's feature footprint).
  bool cache_candidate = false;
  std::string cache_key;
  int64_t catalog_version = 0;
  if (options_.translation_cache.enabled) {
    if (!IsCacheableShape(norm) ||
        TouchesVolatileName(norm.identifiers)) {
      translation_cache_.RecordBypass();
    } else {
      cache_candidate = true;
      catalog_version = catalog_.version();
      cache_key =
          MakeCacheKey(session->settings_digest, norm, catalog_version);
      if (auto entry = translation_cache_.Lookup(cache_key)) {
        if (entry->uncacheable) {
          // Negative marker: this shape was probed before and proven
          // non-parameterizable. Translate cold, don't re-probe.
          translation_cache_.RecordBypass();
          cache_candidate = false;
        } else if (auto spliced = SpliceTranslationTemplate(*entry, norm);
                   spliced.ok()) {
          cache_span.End();
          bool select_shape = norm.first_keyword == "SEL" ||
                              norm.first_keyword == "SELECT";
          auto outcome = ExecuteCachedStatement(session, *entry,
                                                std::move(*spliced),
                                                translation, ctx,
                                                select_shape);
          if (outcome.ok()) {
            RecordTranslationActivity(/*translate_path=*/false,
                                      /*cache_hit=*/true,
                                      outcome->timing.translation_micros);
          }
          return outcome;
        } else {
          // This statement's literals cannot be safely spliced into the
          // incumbent template (e.g. temporal-coercion guard); take the
          // cold path without replacing the entry.
          translation_cache_.RecordBypass();
          cache_candidate = false;
        }
      }
    }
  }

  cache_span.End();
  FeatureSet features;
  obs::SpanScope parse_span(ctx, "parse");
  HQ_RETURN_IF_ERROR(
      frontend::ScanTranslationFeatures(sql_a, &features));
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                      sql::ParseStatement(sql_a, frontend_dialect_));
  parse_span.End();
  double parse_micros = translation.ElapsedMicros();
  bool pipeline_kind = stmt->kind == StmtKind::kSelect ||
                       stmt->kind == StmtKind::kInsert ||
                       stmt->kind == StmtKind::kUpdate ||
                       stmt->kind == StmtKind::kDelete;
  PipelineArtifacts artifacts;
  auto executed = ExecuteStatement(session, *stmt, sql_a, std::move(features),
                                   depth, ctx, &artifacts);
  if (!executed.ok()) {
    // Cancellation that struck after serialization does not impugn the
    // translation itself: admit the template so the inevitable retry of
    // this shape hits the cache instead of re-translating (DESIGN.md §8).
    if (cache_candidate && pipeline_kind && artifacts.serialized &&
        IsLifecycleStatus(executed.status())) {
      MaybeCacheTranslation(cache_key, norm, artifacts.sql_b,
                            artifacts.features, catalog_version, ctx);
    }
    return executed.status();
  }
  QueryOutcome outcome = std::move(*executed);
  outcome.timing.translation_micros += parse_micros;
  if (cache_candidate && pipeline_kind && outcome.backend_sql.size() == 1) {
    MaybeCacheTranslation(cache_key, norm, outcome.backend_sql[0],
                          outcome.features, catalog_version, ctx);
  }
  RecordTranslationActivity(/*translate_path=*/false, /*cache_hit=*/false,
                            outcome.timing.translation_micros);
  return outcome;
}

Result<QueryOutcome> HyperQService::ExecuteStatement(
    Session* session, const sql::Statement& stmt, const std::string& sql_a,
    FeatureSet features, int depth, QueryContext* ctx,
    PipelineArtifacts* artifacts) {
  switch (stmt.kind) {
    case StmtKind::kSelect:
    case StmtKind::kInsert:
    case StmtKind::kUpdate:
    case StmtKind::kDelete:
      return RunPipeline(session, stmt, std::move(features), ctx, artifacts);

    case StmtKind::kCreateTable:
      return HandleCreateTable(session,
                               *stmt.As<sql::CreateTableStatement>(),
                               std::move(features), ctx);
    case StmtKind::kDropTable:
      return HandleDropTable(session, *stmt.As<sql::DropTableStatement>(),
                             std::move(features), ctx);

    case StmtKind::kCreateView:
    case StmtKind::kReplaceView: {
      const auto* cv = stmt.As<sql::CreateViewStatement>();
      ViewDef view;
      view.name = Catalog::NormalizeName(cv->view);
      view.column_names = cv->columns;
      view.definition_sql = cv->query_sql;
      std::lock_guard<std::mutex> lock(mutex_);
      if (stmt.kind == StmtKind::kReplaceView && catalog_.HasView(cv->view)) {
        HQ_RETURN_IF_ERROR(catalog_.DropView(cv->view));
      }
      HQ_RETURN_IF_ERROR(catalog_.CreateView(std::move(view)));
      InvalidateTranslationCacheAfterDdl();
      QueryOutcome out;
      out.result = CommandResult("CREATE VIEW");
      out.features = std::move(features);
      return out;
    }
    case StmtKind::kDropView: {
      std::lock_guard<std::mutex> lock(mutex_);
      HQ_RETURN_IF_ERROR(
          catalog_.DropView(stmt.As<sql::DropViewStatement>()->view));
      InvalidateTranslationCacheAfterDdl();
      QueryOutcome out;
      out.result = CommandResult("DROP VIEW");
      out.features = std::move(features);
      return out;
    }

    case StmtKind::kCreateMacro: {
      const auto* cm = stmt.As<sql::CreateMacroStatement>();
      MacroDef macro;
      macro.name = Catalog::NormalizeName(cm->macro);
      for (const auto& p : cm->params) {
        macro.params.push_back(
            {p.name, p.type, p.default_literal, p.has_default});
      }
      macro.body_statements = cm->body_statements;
      features.Record(Feature::kMacros);
      std::lock_guard<std::mutex> lock(mutex_);
      HQ_RETURN_IF_ERROR(catalog_.CreateMacro(std::move(macro)));
      InvalidateTranslationCacheAfterDdl();
      QueryOutcome out;
      out.result = CommandResult("CREATE MACRO");
      out.features = std::move(features);
      return out;
    }
    case StmtKind::kDropMacro: {
      features.Record(Feature::kMacros);
      std::lock_guard<std::mutex> lock(mutex_);
      HQ_RETURN_IF_ERROR(
          catalog_.DropMacro(stmt.As<sql::DropMacroStatement>()->macro));
      InvalidateTranslationCacheAfterDdl();
      QueryOutcome out;
      out.result = CommandResult("DROP MACRO");
      out.features = std::move(features);
      return out;
    }

    case StmtKind::kExecMacro: {
      const auto* exec = stmt.As<sql::ExecMacroStatement>();
      features.Record(Feature::kMacros);
      const MacroDef* macro;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        HQ_ASSIGN_OR_RETURN(macro, catalog_.GetMacro(exec->macro));
      }
      HQ_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          emulation::ExpandMacro(*macro, *exec));
      QueryOutcome combined;
      combined.features = std::move(features);
      int64_t total_activity = 0;
      for (const std::string& body_sql : statements) {
        HQ_ASSIGN_OR_RETURN(QueryOutcome one,
                            SubmitInternal(session, body_sql, depth + 1,
                                           ctx));
        total_activity += one.result.affected_rows;
        combined.timing.translation_micros += one.timing.translation_micros;
        combined.timing.execution_micros += one.timing.execution_micros;
        combined.timing.retry_backoff_micros +=
            one.timing.retry_backoff_micros;
        combined.timing.execution_attempts += one.timing.execution_attempts;
        combined.timing.cache_hits += one.timing.cache_hits;
        if (combined.timing.dialect.empty()) {
          combined.timing.dialect = one.timing.dialect;
        }
        combined.features.Merge(one.features);
        combined.backend_sql.insert(combined.backend_sql.end(),
                                    one.backend_sql.begin(),
                                    one.backend_sql.end());
        combined.result = std::move(one.result);
      }
      combined.result.affected_rows = total_activity;
      return combined;
    }

    case StmtKind::kMerge: {
      features.Record(Feature::kMerge);
      HQ_ASSIGN_OR_RETURN(
          std::vector<sql::StatementPtr> parts,
          emulation::LowerMerge(*stmt.As<sql::MergeStatement>()));
      QueryOutcome combined;
      combined.features = std::move(features);
      int64_t total_activity = 0;
      for (const auto& part : parts) {
        HQ_ASSIGN_OR_RETURN(QueryOutcome one,
                            RunPipeline(session, *part, FeatureSet(), ctx));
        total_activity += one.result.affected_rows;
        combined.timing.translation_micros += one.timing.translation_micros;
        combined.timing.execution_micros += one.timing.execution_micros;
        combined.timing.retry_backoff_micros +=
            one.timing.retry_backoff_micros;
        combined.timing.execution_attempts += one.timing.execution_attempts;
        combined.timing.cache_hits += one.timing.cache_hits;
        if (combined.timing.dialect.empty()) {
          combined.timing.dialect = one.timing.dialect;
        }
        combined.features.Merge(one.features);
        combined.backend_sql.insert(combined.backend_sql.end(),
                                    one.backend_sql.begin(),
                                    one.backend_sql.end());
        combined.result = std::move(one.result);
      }
      combined.result.affected_rows = total_activity;
      combined.result.command_tag = "MERGE";
      return combined;
    }

    case StmtKind::kHelp: {
      features.Record(Feature::kSessionCommands);
      emulation::LocalResult local;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        HQ_ASSIGN_OR_RETURN(local,
                            emulation::AnswerHelp(
                                *stmt.As<sql::HelpStatement>(),
                                session->info, catalog_));
      }
      QueryOutcome out;
      out.result = PackageLocal(local);
      out.features = std::move(features);
      return out;
    }
    case StmtKind::kSetSession: {
      features.Record(Feature::kSessionCommands);
      HQ_RETURN_IF_ERROR(emulation::ApplySetSession(
          *stmt.As<sql::SetSessionStatement>(), &session->info));
      // New settings → new cache-key digest: every entry built under the
      // old settings becomes unreachable for this session at once.
      session->settings_digest = SettingsDigest(session->info);
      AppendJournal(session,
                    {JournalEntry::Kind::kSetSession, sql_a, ""});
      QueryOutcome out;
      out.result = CommandResult("SET SESSION");
      out.features = std::move(features);
      return out;
    }

    case StmtKind::kCollectStats: {
      // "Statements in SQL-A need to be translated into zero, one, or more
      // terms": physical-design statements translate to zero statements.
      features.Record(Feature::kStatsElimination);
      QueryOutcome out;
      out.result = CommandResult("COLLECT STATISTICS");
      out.features = std::move(features);
      return out;
    }

    case StmtKind::kBeginTxn:
      features.Record(Feature::kTxnShorthand);
      ++session->txn_depth;
      {
        QueryOutcome out;
        out.result = CommandResult("BEGIN TRANSACTION");
        out.features = std::move(features);
        return out;
      }
    case StmtKind::kEndTxn:
      features.Record(Feature::kTxnShorthand);
      if (session->txn_depth > 0) --session->txn_depth;
      {
        QueryOutcome out;
        out.result = CommandResult("END TRANSACTION");
        out.features = std::move(features);
        return out;
      }
    case StmtKind::kCommit:
    case StmtKind::kRollback: {
      QueryOutcome out;
      out.result = CommandResult(stmt.kind == StmtKind::kCommit ? "COMMIT"
                                                                : "ROLLBACK");
      out.features = std::move(features);
      return out;
    }
  }
  (void)sql_a;
  return Status::Internal("unhandled statement kind in service");
}

// ---------------------------------------------------------------------------
// Query/DML pipeline
// ---------------------------------------------------------------------------

Result<QueryOutcome> HyperQService::RunPipeline(Session* session,
                                                const sql::Statement& stmt,
                                                FeatureSet features,
                                                QueryContext* ctx,
                                                PipelineArtifacts* artifacts) {
  if (ctx != nullptr) {
    HQ_RETURN_IF_ERROR(ctx->CheckAlive());
  }
  Stopwatch translation;
  xtra::OpPtr plan;
  binder::Binder binder(&catalog_, frontend_dialect_);
  {
    obs::SpanScope bind_span(ctx, "bind");
    std::lock_guard<std::mutex> lock(mutex_);  // catalog reads
    HQ_ASSIGN_OR_RETURN(plan, binder.BindStatement(stmt));
  }
  features.Merge(binder.features());

  binder::ColIdGenerator ids;
  for (int i = 0; i < 1000000; ++i) ids.Next();  // fresh id space for rules
  obs::SpanScope transform_span(ctx, "transform");
  HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kBinding, &plan,
                                      &ids, &features, &catalog_));

  QueryOutcome out;

  // Recursive queries need mid-tier emulation rather than serialization.
  if (plan->kind == xtra::OpKind::kRecursiveCte) {
    HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kSerialization,
                                        &plan, &ids, &features, &catalog_));
    transform_span.End();
    out.timing.translation_micros += translation.ElapsedMicros();
    out.timing.dialect = serializer_.dialect().Name();
    Stopwatch execution;
    obs::SpanScope exec_span(ctx, "backend.execute");
    emulation::RecursionDriver driver(&serializer_,
                                      session->connector.get());
    HQ_ASSIGN_OR_RETURN(out.result, driver.Execute(*plan, nullptr, ctx));
    exec_span.End();
    out.timing.execution_micros = execution.ElapsedMicros();
    AbsorbResilienceStats(&out);
    AbsorbSpillBytes(&out);
    out.features = std::move(features);
    return out;
  }

  HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kSerialization,
                                      &plan, &ids, &features, &catalog_));
  if (plan->kind == xtra::OpKind::kInsert) {
    HQ_RETURN_IF_ERROR(ExpandPeriodInsert(plan.get(), &features));
  }
  transform_span.End();
  obs::SpanScope serialize_span(ctx, "serialize");
  serialize_span.Annotate("dialect", serializer_.dialect().Name());
  HQ_ASSIGN_OR_RETURN(std::string sql_b, serializer_.Serialize(*plan));
  serialize_span.End();
  out.timing.translation_micros += translation.ElapsedMicros();
  out.timing.dialect = serializer_.dialect().Name();
  out.backend_sql.push_back(sql_b);
  if (artifacts != nullptr) {
    // Translation is complete; record it so a cancellation during the
    // execution below does not throw the template away (DESIGN.md §8).
    artifacts->serialized = true;
    artifacts->sql_b = sql_b;
    artifacts->features = features;
  }

  Stopwatch execution;
  {
    obs::SpanScope exec_span(ctx, "backend.execute");
    HQ_ASSIGN_OR_RETURN(out.result,
                        ExecuteOnBackend(session, sql_b, ctx,
                                         stmt.kind == StmtKind::kSelect));
  }
  out.timing.execution_micros = execution.ElapsedMicros();
  out.timing.hedges += out.result.hedges;
  out.timing.hedge_won = out.result.hedge_won;
  AbsorbResilienceStats(&out);
  AbsorbSpillBytes(&out);
  // DML against a session-scoped table is part of the replayable session
  // state: without it a re-established backend session would see the
  // volatile table empty.
  if (plan->kind == xtra::OpKind::kInsert ||
      plan->kind == xtra::OpKind::kUpdate ||
      plan->kind == xtra::OpKind::kDelete) {
    std::string target = Catalog::NormalizeName(plan->target_table);
    if (IsVolatileTable(session, target)) {
      AppendJournal(session,
                    {JournalEntry::Kind::kTempTableDml, sql_b, target});
    }
  }
  out.features = std::move(features);
  return out;
}

Status HyperQService::ExpandPeriodInsert(xtra::Op* insert_op,
                                         FeatureSet* features) {
  const TableDef* table;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (!catalog_.HasTable(insert_op->target_table)) return Status::OK();
    HQ_ASSIGN_OR_RETURN(table, catalog_.GetTable(insert_op->target_table));
  }
  // Find PERIOD columns in the insert list.
  std::vector<size_t> period_positions;
  for (size_t i = 0; i < insert_op->target_columns.size(); ++i) {
    int idx = table->FindColumn(insert_op->target_columns[i]);
    if (idx >= 0 &&
        table->columns[idx].type.kind == TypeKind::kPeriodDate) {
      period_positions.push_back(i);
    }
  }
  if (period_positions.empty()) return Status::OK();
  features->Record(Feature::kPeriodType);
  if (insert_op->children[0]->kind != xtra::OpKind::kValues) {
    return Status::NotSupported(
        "INSERT ... SELECT into PERIOD columns is not supported; PERIOD "
        "columns are emulated as two DATE columns");
  }
  // Expand columns back-to-front to keep earlier positions stable.
  for (auto it = period_positions.rbegin(); it != period_positions.rend();
       ++it) {
    size_t pos = *it;
    std::string name = insert_op->target_columns[pos];
    insert_op->target_columns[pos] = name + "_BEGIN";
    insert_op->target_columns.insert(
        insert_op->target_columns.begin() + pos + 1, name + "_END");
    for (auto& row : insert_op->children[0]->rows) {
      xtra::ExprPtr value = std::move(row[pos]);
      xtra::ExprPtr begin_e, end_e;
      if (value->kind == xtra::ExprKind::kFunc &&
          value->func_name == "PERIOD") {
        begin_e = std::move(value->children[0]);
        end_e = std::move(value->children[1]);
      } else if (value->kind == xtra::ExprKind::kConst &&
                 value->value.is_period()) {
        auto p = value->value.period_val();
        begin_e = xtra::Const(Datum::Date(p.begin_days), SqlType::Date());
        end_e = xtra::Const(Datum::Date(p.end_days), SqlType::Date());
      } else if (value->kind == xtra::ExprKind::kConst &&
                 value->value.is_null()) {
        begin_e = xtra::Const(Datum::Null(), SqlType::Date());
        end_e = xtra::Const(Datum::Null(), SqlType::Date());
      } else {
        return Status::NotSupported(
            "PERIOD column values must be PERIOD(d1, d2) constructors");
      }
      row[pos] = std::move(begin_e);
      row.insert(row.begin() + pos + 1, std::move(end_e));
    }
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// DDL translation
// ---------------------------------------------------------------------------

namespace {
// Renders a column default expression for the DTM catalog.
Result<std::string> RenderDefault(const sql::Expr& e) {
  if (e.kind == sql::ExprKind::kFunc) {
    return ToUpper(e.func_name);  // niladic: CURRENT_DATE etc.
  }
  return emulation::RenderConstExpr(e);
}

bool IsConstantDefault(const sql::Expr& e) {
  return e.kind == sql::ExprKind::kConst ||
         (e.kind == sql::ExprKind::kUnary &&
          e.uop == sql::UnaryOp::kNeg &&
          e.children[0]->kind == sql::ExprKind::kConst);
}
}  // namespace

Result<QueryOutcome> HyperQService::HandleCreateTable(
    Session* session, const sql::CreateTableStatement& ct,
    FeatureSet features, QueryContext* ctx) {
  if (ct.as_select) {
    // CREATE TABLE AS: emulate as CREATE TABLE + INSERT ... SELECT.
    binder::Binder binder(&catalog_, frontend_dialect_);
    xtra::OpPtr plan;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      HQ_ASSIGN_OR_RETURN(plan, binder.BindSelect(*ct.as_select));
    }
    features.Merge(binder.features());
    // Register the table shape, then funnel the data through the pipeline.
    TableDef def;
    def.name = Catalog::NormalizeName(ct.table);
    std::string ddl = "CREATE TABLE " + def.name + " (";
    for (size_t i = 0; i < plan->output.size(); ++i) {
      ColumnDef col;
      col.name = ToUpper(plan->output[i].name);
      col.type = plan->output[i].type;
      if (col.type.kind == TypeKind::kNull) col.type = SqlType::Varchar(0);
      if (i > 0) ddl += ", ";
      ddl += col.name + " " + col.type.ToString();
      def.columns.push_back(std::move(col));
    }
    ddl += ")";
    {
      std::lock_guard<std::mutex> lock(mutex_);
      HQ_RETURN_IF_ERROR(catalog_.CreateTable(def));
    }
    InvalidateTranslationCacheAfterDdl();
    QueryOutcome out;
    Stopwatch execution;
    auto ddl_result = session->connector->Execute(ddl, ctx);
    if (!ddl_result.ok()) {
      {
        std::lock_guard<std::mutex> lock(mutex_);
        (void)catalog_.DropTable(def.name);
      }
      InvalidateTranslationCacheAfterDdl();
      return ddl_result.status();
    }
    out.backend_sql.push_back(ddl);
    if (ct.with_data) {
      binder::ColIdGenerator ids;
      for (int i = 0; i < 1000000; ++i) ids.Next();
      HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kBinding, &plan,
                                          &ids, &features, &catalog_));
      HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kSerialization,
                                          &plan, &ids, &features, &catalog_));
      HQ_ASSIGN_OR_RETURN(std::string select_sql,
                          serializer_.Serialize(*plan));
      std::string insert_sql =
          "INSERT INTO " + def.name + " " + select_sql;
      out.backend_sql.push_back(insert_sql);
      HQ_ASSIGN_OR_RETURN(out.result,
                          session->connector->Execute(insert_sql, ctx));
    } else {
      out.result = CommandResult("CREATE TABLE");
    }
    out.timing.execution_micros = execution.ElapsedMicros();
    AbsorbResilienceStats(&out);
    out.result.command_tag = "CREATE TABLE";
    out.features = std::move(features);
    return out;
  }

  TableDef def;
  def.name = Catalog::NormalizeName(ct.table);
  def.semantics =
      ct.set_semantics ? TableSemantics::kSet : TableSemantics::kMultiset;
  def.is_global_temporary = ct.global_temporary || ct.volatile_table;
  if (ct.set_semantics) features.Record(Feature::kSetSemantics);
  if (def.is_global_temporary) features.Record(Feature::kTemporaryTables);

  std::string ddl = "CREATE TABLE " + def.name + " (";
  bool first = true;
  for (const auto& c : ct.columns) {
    ColumnDef col;
    col.name = ToUpper(c.name);
    col.type = c.type;
    col.nullable = !c.not_null;
    if (c.not_case_specific) {
      col.props.case_insensitive = true;
      features.Record(Feature::kColumnProperties);
    }
    if (c.default_expr) {
      HQ_ASSIGN_OR_RETURN(col.props.default_expr,
                          RenderDefault(*c.default_expr));
      col.props.has_default = true;
      if (!IsConstantDefault(*c.default_expr)) {
        features.Record(Feature::kColumnProperties);
      }
    }
    auto emit = [&](const std::string& name, const SqlType& type,
                    bool not_null) {
      if (!first) ddl += ", ";
      first = false;
      ddl += name + " " + type.ToString();
      if (not_null) ddl += " NOT NULL";
    };
    if (c.type.kind == TypeKind::kPeriodDate) {
      // PERIOD has no target equivalent: two DATE columns + DTM metadata
      // (paper §2.2.2 "Assumed Independence").
      features.Record(Feature::kPeriodType);
      emit(col.name + "_BEGIN", SqlType::Date(), c.not_null);
      emit(col.name + "_END", SqlType::Date(), c.not_null);
    } else {
      emit(col.name, c.type, c.not_null);
    }
    def.columns.push_back(std::move(col));
  }
  ddl += ")";
  // PRIMARY INDEX is physical design: not portable, intentionally dropped
  // (paper Appendix A, Schema Conversion).

  {
    std::lock_guard<std::mutex> lock(mutex_);
    HQ_RETURN_IF_ERROR(catalog_.CreateTable(def));
  }
  InvalidateTranslationCacheAfterDdl();
  Stopwatch execution;
  auto exec_result = session->connector->Execute(ddl, ctx);
  if (!exec_result.ok()) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      (void)catalog_.DropTable(def.name);
    }
    InvalidateTranslationCacheAfterDdl();
    return exec_result.status();
  }
  if (ct.volatile_table) {
    session->volatile_tables.push_back(def.name);
    // Session-scoped on a real backend: record it for failover replay and
    // tell the connector so a lost session drops its backend shadow.
    session->connector->NoteSessionTable(def.name);
    AppendJournal(session,
                  {JournalEntry::Kind::kTempTableDdl, ddl, def.name});
    // Register the name globally: other sessions' cache lookups must
    // bypass statements touching it (a cached plan may not leak a
    // session-scoped table).
    std::lock_guard<std::mutex> lock(mutex_);
    ++volatile_names_[def.name];
  }
  QueryOutcome out;
  out.backend_sql.push_back(ddl);
  out.result = std::move(exec_result).value();
  out.result.command_tag = "CREATE TABLE";
  out.timing.execution_micros = execution.ElapsedMicros();
  AbsorbResilienceStats(&out);
  out.features = std::move(features);
  return out;
}

Result<QueryOutcome> HyperQService::HandleDropTable(
    Session* session, const sql::DropTableStatement& dt,
    FeatureSet features, QueryContext* ctx) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (catalog_.HasTable(dt.table)) {
      HQ_RETURN_IF_ERROR(catalog_.DropTable(dt.table));
    } else if (!dt.if_exists) {
      return Status::CatalogError("table '", dt.table, "' does not exist");
    }
  }
  Stopwatch execution;
  std::string normalized = Catalog::NormalizeName(dt.table);
  std::string ddl = "DROP TABLE " +
                    std::string(dt.if_exists ? "IF EXISTS " : "") +
                    normalized;
  HQ_ASSIGN_OR_RETURN(BackendResult result,
                      session->connector->Execute(ddl, ctx));
  if (IsVolatileTable(session, normalized)) {
    auto& vt = session->volatile_tables;
    vt.erase(std::remove(vt.begin(), vt.end(), normalized), vt.end());
    session->connector->ForgetSessionTable(normalized);
    CompactJournal(session, normalized);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = volatile_names_.find(normalized);
    if (it != volatile_names_.end() && --it->second <= 0) {
      volatile_names_.erase(it);
    }
  }
  InvalidateTranslationCacheAfterDdl();
  QueryOutcome out;
  out.backend_sql.push_back(ddl);
  out.result = std::move(result);
  out.result.command_tag = "DROP TABLE";
  out.timing.execution_micros = execution.ElapsedMicros();
  AbsorbResilienceStats(&out);
  out.features = std::move(features);
  return out;
}

// ---------------------------------------------------------------------------
// Script submission with single-row DML batching (paper §4.3)
// ---------------------------------------------------------------------------

Result<QueryOutcome> HyperQService::SubmitScript(uint32_t session_id,
                                                 const std::string& script,
                                                 QueryContext* ctx) {
  QueryRequest request;
  request.session_id = session_id;
  request.sql = script;
  request.ctx = ctx;
  request.session_class = "script";
  return SubmitScript(request);
}

Result<QueryOutcome> HyperQService::SubmitScript(
    const QueryRequest& request) {
  // Same brownout/budget protocol as Submit — the script path does not
  // funnel through it (DESIGN.md §11).
  retry_budget_->NoteRequest();
  if (Status shed = brownout_->Admit(request.session_class); !shed.ok()) {
    RecordQueryOutcome(shed);
    return shed;
  }
  uint32_t session_id = request.session_id;
  const std::string& script = request.sql;
  QueryContext local_ctx;
  QueryContext* ctx = request.ctx != nullptr ? request.ctx : &local_ctx;
  if (options_.default_query_deadline_ms > 0) {
    ctx->TightenDeadline(Deadline::After(options_.default_query_deadline_ms));
  }
  // One trace covers the whole script; each statement's stage spans nest
  // under the same root.
  std::shared_ptr<obs::QueryTrace> minted;
  if (options_.tracing && request.trace && ctx->trace() == nullptr) {
    minted = std::make_shared<obs::QueryTrace>();
    minted->set_session_id(session_id);
    minted->set_query(script);
    minted->set_session_class(request.session_class);
    ctx->set_trace(minted);
  }
  auto finish = [&](const Status& st) {
    RecordQueryOutcome(st);
    if (minted == nullptr) return;
    minted->set_outcome(OutcomeLabel(st, ctx));
    minted->Finish();
    RecordFinishedTrace(minted);
    ctx->set_trace(nullptr);
  };
  auto statements_or = sql::SplitStatements(script);
  if (!statements_or.ok()) {
    finish(statements_or.status());
    return statements_or.status();
  }
  std::vector<std::string> statements = std::move(*statements_or);
  auto session_or = GetSession(session_id);
  if (!session_or.ok()) {
    finish(session_or.status());
    return session_or.status();
  }
  Session* session = *session_or;

  // Batch runs of single-row INSERT ... VALUES into the same table.
  std::vector<std::string> batched;
  size_t i = 0;
  while (i < statements.size()) {
    const std::string& stmt = statements[i];
    auto parsed = sql::ParseStatement(stmt, frontend_dialect_);
    bool single_row_insert =
        options_.batch_single_row_dml && parsed.ok() &&
        (*parsed)->kind == StmtKind::kInsert &&
        (*parsed)->As<sql::InsertStatement>()->values_rows.size() == 1 &&
        (*parsed)->As<sql::InsertStatement>()->source == nullptr;
    if (!single_row_insert) {
      batched.push_back(stmt);
      ++i;
      continue;
    }
    // Extend the run while the statements share the prefix up to VALUES.
    auto prefix_of = [](const std::string& s) -> std::string {
      auto pos = ToUpper(s).find("VALUES");
      return pos == std::string::npos ? s : ToUpper(s.substr(0, pos));
    };
    std::string prefix = prefix_of(stmt);
    std::string merged = stmt;
    size_t j = i + 1;
    while (j < statements.size()) {
      const std::string& next = statements[j];
      if (prefix_of(next) != prefix) break;
      auto next_parsed = sql::ParseStatement(next, frontend_dialect_);
      if (!next_parsed.ok() ||
          (*next_parsed)->kind != StmtKind::kInsert ||
          (*next_parsed)->As<sql::InsertStatement>()->values_rows.size() !=
              1) {
        break;
      }
      auto vpos = ToUpper(next).find("VALUES");
      merged += ", " + std::string(Trim(next.substr(vpos + 6)));
      ++j;
    }
    batched.push_back(std::move(merged));
    i = j;
  }

  QueryOutcome last;
  RegisterActiveQuery(session_id, ctx);
  for (const std::string& stmt : batched) {
    auto one = SubmitWithFailover(session, stmt, ctx);
    if (!one.ok()) {
      UnregisterActiveQuery(session_id, ctx);
      RecordLifecycleFailure(one.status(), ctx);
      finish(one.status());
      return one.status();
    }
    last = std::move(*one);
    c_spill_bytes_->Inc(last.timing.spill_bytes);
    std::lock_guard<std::mutex> lock(mutex_);
    stats_.AddQuery(last.features);
  }
  UnregisterActiveQuery(session_id, ctx);
  finish(Status::OK());
  if (minted != nullptr) last.trace = minted;
  return last;
}

Result<std::vector<std::string>> HyperQService::Translate(
    const std::string& sql_a, FeatureSet* features) {
  return Translate(sql_a, features, nullptr);
}

Result<std::vector<std::string>> HyperQService::Translate(
    const std::string& sql_a, FeatureSet* features,
    TimingBreakdown* timing) {
  Stopwatch translation;
  auto out = TranslateInternal(sql_a, features, 0);
  if (timing != nullptr) {
    // Attribute the translation to the dialect it serialized under, so
    // differential-run traces are attributable even on cache hits (the
    // cached template was emitted under this same dialect — it keys on
    // the profile digest, which includes the dialect).
    timing->translation_micros += translation.ElapsedMicros();
    timing->dialect = serializer_.dialect().Name();
  }
  return out;
}

Status HyperQService::SwitchBackendDialect(const std::string& dialect_name) {
  const serializer::SQLDialectGenerator* gen =
      serializer::FindDialect(dialect_name);
  if (gen == nullptr) {
    return Status::InvalidArgument("unknown SQL-B dialect '", dialect_name,
                                   "'");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (pool_ != nullptr) {
    return Status::InvalidArgument(
        "cannot switch dialect in fleet mode: registered replicas were "
        "validated against the configured profile");
  }
  if (!active_queries_.empty()) {
    return Status::InvalidArgument(
        "cannot switch dialect with queries in flight");
  }
  // Adopt the generator's capability matrix wholesale: the dialect decides
  // which serialization-stage rewrites fire, not just the surface syntax.
  options_.profile = gen->Profile();
  transformer_ = transform::Transformer(options_.profile);
  serializer_ = serializer::Serializer(options_.profile);
  // Re-keying the cache is automatic: the profile digest embeds the
  // dialect, so entries of the previous dialect can no longer be looked up
  // (they age out of the LRU; no flush required for correctness).
  profile_digest_ = options_.profile.CacheKeyDigest();
  return Status::OK();
}

Result<std::vector<std::string>> HyperQService::TranslateInternal(
    const std::string& sql_a, FeatureSet* features, int depth) {
  if (depth > 8) {
    return Status::ExecutionError("statement expansion too deep (macro "
                                  "recursion?)");
  }
  Stopwatch translation;
  FeatureSet local;
  FeatureSet* fs = features != nullptr ? features : &local;
  HQ_ASSIGN_OR_RETURN(sql::NormalizedStatement norm,
                      sql::NormalizeStatement(sql_a));

  // Same cache protocol as the execute path (satellite: both entry points
  // account translation uniformly). Translation-only requests carry no
  // session, so they key on the default session settings.
  bool cache_candidate = false;
  std::string cache_key;
  int64_t catalog_version = 0;
  if (options_.translation_cache.enabled) {
    if (!IsCacheableShape(norm) ||
        TouchesVolatileName(norm.identifiers)) {
      translation_cache_.RecordBypass();
    } else {
      cache_candidate = true;
      catalog_version = catalog_.version();
      cache_key =
          MakeCacheKey(default_settings_digest_, norm, catalog_version);
      if (auto entry = translation_cache_.Lookup(cache_key)) {
        if (entry->uncacheable) {
          // Negative marker: proven non-parameterizable, translate cold.
          translation_cache_.RecordBypass();
          cache_candidate = false;
        } else if (auto spliced = SpliceTranslationTemplate(*entry, norm);
                   spliced.ok()) {
          translation_cache_.RecordHit();
          fs->Merge(entry->features);
          RecordTranslationActivity(/*translate_path=*/true,
                                    /*cache_hit=*/true,
                                    translation.ElapsedMicros());
          return std::vector<std::string>{std::move(*spliced)};
        } else {
          translation_cache_.RecordBypass();
          cache_candidate = false;
        }
      }
    }
  }

  HQ_RETURN_IF_ERROR(frontend::ScanTranslationFeatures(sql_a, fs));
  HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                      sql::ParseStatement(sql_a, frontend_dialect_));
  auto finish = [&](std::vector<std::string> out)
      -> Result<std::vector<std::string>> {
    if (cache_candidate && out.size() == 1) {
      MaybeCacheTranslation(cache_key, norm, out[0], *fs, catalog_version,
                            /*ctx=*/nullptr);
    }
    RecordTranslationActivity(/*translate_path=*/true, /*cache_hit=*/false,
                              translation.ElapsedMicros());
    return out;
  };
  std::vector<std::string> out;
  switch (stmt->kind) {
    case StmtKind::kSelect:
    case StmtKind::kInsert:
    case StmtKind::kUpdate:
    case StmtKind::kDelete: {
      binder::Binder binder(&catalog_, frontend_dialect_);
      xtra::OpPtr plan;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        HQ_ASSIGN_OR_RETURN(plan, binder.BindStatement(*stmt));
      }
      fs->Merge(binder.features());
      binder::ColIdGenerator ids;
      for (int i = 0; i < 1000000; ++i) ids.Next();
      HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kBinding, &plan,
                                          &ids, fs, &catalog_));
      if (plan->kind == xtra::OpKind::kRecursiveCte) {
        out.push_back("-- recursive query: emulated via temp tables");
        return finish(std::move(out));
      }
      HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kSerialization,
                                          &plan, &ids, fs, &catalog_));
      HQ_ASSIGN_OR_RETURN(std::string sql_b, serializer_.Serialize(*plan));
      out.push_back(std::move(sql_b));
      return finish(std::move(out));
    }
    case StmtKind::kMerge: {
      fs->Record(Feature::kMerge);
      HQ_ASSIGN_OR_RETURN(
          std::vector<sql::StatementPtr> parts,
          emulation::LowerMerge(*stmt->As<sql::MergeStatement>()));
      for (const auto& part : parts) {
        binder::Binder binder(&catalog_, frontend_dialect_);
        xtra::OpPtr plan;
        {
          std::lock_guard<std::mutex> lock(mutex_);
          HQ_ASSIGN_OR_RETURN(plan, binder.BindStatement(*part));
        }
        fs->Merge(binder.features());
        binder::ColIdGenerator ids;
        for (int i = 0; i < 1000000; ++i) ids.Next();
        HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kBinding,
                                            &plan, &ids, fs, &catalog_));
        HQ_RETURN_IF_ERROR(transformer_.Run(transform::Stage::kSerialization,
                                            &plan, &ids, fs, &catalog_));
        HQ_ASSIGN_OR_RETURN(std::string sql_b, serializer_.Serialize(*plan));
        out.push_back(std::move(sql_b));
      }
      return finish(std::move(out));
    }
    case StmtKind::kExecMacro: {
      // Expand the macro body and translate each statement; body
      // statements are themselves cacheable even though EXEC is not.
      fs->Record(Feature::kMacros);
      const auto* exec = stmt->As<sql::ExecMacroStatement>();
      const MacroDef* macro;
      {
        std::lock_guard<std::mutex> lock(mutex_);
        HQ_ASSIGN_OR_RETURN(macro, catalog_.GetMacro(exec->macro));
      }
      HQ_ASSIGN_OR_RETURN(std::vector<std::string> statements,
                          emulation::ExpandMacro(*macro, *exec));
      for (const std::string& body_sql : statements) {
        HQ_ASSIGN_OR_RETURN(std::vector<std::string> sub,
                            TranslateInternal(body_sql, fs, depth + 1));
        out.insert(out.end(), sub.begin(), sub.end());
      }
      return finish(std::move(out));
    }
    case StmtKind::kHelp:
    case StmtKind::kSetSession:
      fs->Record(Feature::kSessionCommands);
      return finish(std::move(out));
    case StmtKind::kCollectStats:
      fs->Record(Feature::kStatsElimination);
      return finish(std::move(out));
    default:
      return finish(std::move(out));
  }
}

// ---------------------------------------------------------------------------
// protocol::RequestHandler
// ---------------------------------------------------------------------------

Result<protocol::LogonResponse> HyperQService::Logon(
    const protocol::LogonRequest& request) {
  HQ_ASSIGN_OR_RETURN(uint32_t id,
                      OpenSession(request.user, request.default_database));
  protocol::LogonResponse resp;
  resp.ok = true;
  resp.session_id = id;
  resp.message = "session established";
  int backend = session_backend(id);
  if (pool_ != nullptr && backend >= 0) {
    resp.message += " on " + pool_->spec(backend).name;
  }
  return resp;
}

int HyperQService::session_backend(uint32_t session_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) return -1;
  return it->second->backend_index;
}

void HyperQService::Logoff(uint32_t session_id) { CloseSession(session_id); }

Result<protocol::WireResponse> HyperQService::Run(uint32_t session_id,
                                                  const std::string& sql,
                                                  QueryContext* ctx) {
  c_wire_requests_->Inc();
  QueryRequest request;
  request.session_id = session_id;
  request.sql = sql;
  request.ctx = ctx;
  request.session_class = "wire";
  HQ_ASSIGN_OR_RETURN(QueryOutcome outcome, Submit(request));

  protocol::WireResponse resp;
  resp.success.activity_count =
      static_cast<uint64_t>(outcome.result.affected_rows);
  resp.success.tag = outcome.result.command_tag;
  resp.success.translation_micros = outcome.timing.translation_micros;
  resp.success.execution_micros = outcome.timing.execution_micros;

  if (outcome.result.is_rowset()) {
    Stopwatch conversion;
    convert::ConverterOptions conv_opts;
    conv_opts.parallelism = options_.convert_parallelism;
    conv_opts.metrics = metrics_;
    convert::ResultConverter converter(conv_opts);
    obs::SpanScope convert_span(ctx, "convert");
    auto converted_result = converter.Convert(outcome.result, ctx);
    convert_span.End();
    if (!converted_result.ok()) {
      // Streaming-phase cancellation (Submit already counted its own).
      RecordLifecycleFailure(converted_result.status(), ctx);
      return converted_result.status();
    }
    convert::ConversionResult converted = std::move(*converted_result);
    // Derive the per-request conversion time from the *last* convert span
    // when a trace is attached: a request that re-entered conversion after
    // streaming a first batch (cancel + failover retry) must not count the
    // abandoned attempt twice. The stopwatch remains the traceless
    // fallback.
    obs::QueryTrace* trace = ctx != nullptr ? ctx->trace() : nullptr;
    double convert_micros = conversion.ElapsedMicros();
    if (trace != nullptr) {
      double last = trace->LastDuration("convert");
      if (last > 0) convert_micros = last;
    }
    outcome.timing.conversion_micros = convert_micros;
    resp.success.conversion_micros = outcome.timing.conversion_micros;
    resp.has_rowset = true;
    resp.header.columns = std::move(converted.columns);
    resp.header.total_rows = converted.total_rows;
    resp.batches = std::move(converted.batches);
    resp.success.activity_count = converted.total_rows;
    h_wire_convert_->Observe(outcome.timing.conversion_micros);
  }
  return resp;
}

}  // namespace hyperq::service
