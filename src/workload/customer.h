// Synthesizer for the two customer workloads of the paper's §7.1 study
// (Table 1, Figure 8).
//
// The real workloads are proprietary (a Health and a Telco customer); what
// Figure 8 reports are *fractions*: which of the 27 tracked features appear
// at least once (8a) and what share of distinct queries each rewrite class
// affects (8b). The synthesizer reproduces those fractions exactly over a
// deterministic population of distinct queries, each tagged with the
// features it exercises; the instrumented engine then re-measures the
// fractions end-to-end (nothing is taken on faith from the generator).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/features.h"
#include "common/result.h"
#include "service/hyperq_service.h"

namespace hyperq::workload {

/// \brief One distinct query of a synthesized workload.
struct WorkloadQuery {
  std::string sql;            // SQL-A text
  int64_t replay_count = 1;   // times the customer ran it (Table 1 totals)
  FeatureSet intended;        // features the generator embedded (oracle)
};

/// \brief Paper-aligned profile of one customer workload.
struct CustomerProfile {
  std::string name;    // "Customer 1 (Health)" etc.
  std::string sector;
  int64_t total_queries;     // Table 1
  int64_t distinct_queries;  // Table 1
  /// Which of the 9 tracked features per class appear at least once
  /// (Figure 8a): indexes 0-8 within the class.
  std::vector<int> translation_features;
  std::vector<int> transformation_features;
  std::vector<int> emulation_features;
  /// Fraction of distinct queries affected per class (Figure 8b).
  double translation_fraction;
  double transformation_fraction;
  double emulation_fraction;

  static CustomerProfile Customer1Health();
  static CustomerProfile Customer2Telco();
};

/// \brief Creates the schema objects the synthesized queries reference
/// (tables, a view, a macro, a SET table, a GTT, a PERIOD column, a
/// NOT CASESPECIFIC column).
Status SetUpCustomerSchema(service::HyperQService* service,
                           uint32_t session_id);

/// \brief Generates the distinct-query population for a profile.
/// `scale` in (0, 1] shrinks the distinct count (replays rescale so Table 1
/// totals keep their ratio).
std::vector<WorkloadQuery> SynthesizeWorkload(const CustomerProfile& profile,
                                              double scale = 1.0,
                                              uint64_t seed = 7);

}  // namespace hyperq::workload
