#include "workload/customer.h"

#include <cmath>

namespace hyperq::workload {

CustomerProfile CustomerProfile::Customer1Health() {
  CustomerProfile p;
  p.name = "Customer 1";
  p.sector = "Health";
  p.total_queries = 39731;
  p.distinct_queries = 3778;
  // Figure 8a: 55.6% (5/9) translation, 77.8% (7/9) transformation,
  // 33.3% (3/9) emulation features observed.
  p.translation_features = {0, 1, 5, 6, 7};        // SEL, INS, CHARS,
                                                   // ZEROIFNULL, TOP
  p.transformation_features = {0, 1, 2, 3, 5, 6, 8};
  p.emulation_features = {1, 3, 5};                // recursion, DML on
                                                   // views, column props
  // Figure 8b.
  p.translation_fraction = 0.014;
  p.transformation_fraction = 0.336;
  p.emulation_fraction = 0.002;
  return p;
}

CustomerProfile CustomerProfile::Customer2Telco() {
  CustomerProfile p;
  p.name = "Customer 2";
  p.sector = "Telco";
  p.total_queries = 192753;
  p.distinct_queries = 10446;
  // Figure 8a: 22.2% (2/9), 66.7% (6/9), 33.3% (3/9).
  p.translation_features = {0, 8};                 // SEL, COLLECT STATS
  p.transformation_features = {1, 2, 3, 5, 6, 7};
  p.emulation_features = {0, 4, 6};                // macros, session
                                                   // commands, SET tables
  // Figure 8b: the Telco customer wrapped its business logic in macros,
  // hence the dominant emulation share.
  p.translation_fraction = 0.002;
  p.transformation_fraction = 0.040;
  p.emulation_fraction = 0.791;
  return p;
}

Status SetUpCustomerSchema(service::HyperQService* service,
                           uint32_t session_id) {
  const char* ddl[] = {
      "CREATE TABLE T_PAT (ID INTEGER, NAME VARCHAR(40) NOT CASESPECIFIC, "
      "SCORE INTEGER, VISIT_DATE DATE, REGION INTEGER)",
      "CREATE TABLE T_CLAIM (ID INTEGER, PAT_ID INTEGER, AMOUNT "
      "DECIMAL(12,2), NET DECIMAL(12,2), CLAIM_DATE DATE)",
      "CREATE SET TABLE SETT (K INTEGER, V INTEGER)",
      "CREATE GLOBAL TEMPORARY TABLE GTT_WORK (K INTEGER, V INTEGER)",
      "CREATE TABLE T_COVER (ID INTEGER, SPAN PERIOD(DATE))",
      "CREATE VIEW V_PAT AS SELECT ID, NAME, SCORE FROM T_PAT",
      "CREATE MACRO M_REPORT (LIM DECIMAL(12,2)) AS "
      "(SELECT COUNT(*) AS N FROM T_CLAIM WHERE AMOUNT > :LIM;)",
  };
  for (const char* stmt : ddl) {
    auto r = service->Submit(session_id, stmt);
    HQ_RETURN_IF_ERROR(r.status());
  }
  return Status::OK();
}

namespace {

// Builds one distinct query exercising the given tracked feature; `v`
// varies literals so every query text is distinct.
WorkloadQuery MakeFeatureQuery(RewriteClass cls, int idx, int64_t v) {
  WorkloadQuery q;
  std::string n = std::to_string(v);
  auto feature = static_cast<Feature>(static_cast<int>(cls) *
                                          kFeaturesPerClass +
                                      idx);
  q.intended.Record(feature);
  switch (feature) {
    case Feature::kSelAbbrev:
      q.sql = "SEL ID, SCORE FROM T_PAT WHERE ID > " + n;
      break;
    case Feature::kInsAbbrev:
      q.sql = "INS INTO T_CLAIM VALUES (" + n + ", 1, 10.00, 9.00, DATE "
              "'2014-01-02')";
      break;
    case Feature::kUpdAbbrev:
      q.sql = "UPD T_PAT SET SCORE = " + n + " WHERE ID = " + n;
      break;
    case Feature::kDelAbbrev:
      q.sql = "DEL FROM T_CLAIM WHERE ID = " + n;
      break;
    case Feature::kTxnShorthand:
      q.sql = "BT";
      break;
    case Feature::kBuiltinRename:
      q.sql = "SELECT ID FROM T_PAT WHERE CHARS(NAME) > " + n;
      break;
    case Feature::kNullFuncs:
      q.sql = "SELECT ZEROIFNULL(SCORE) + " + n + " FROM T_PAT";
      break;
    case Feature::kTopToLimit:
      q.sql = "SELECT TOP " + std::to_string(1 + v % 50) +
              " ID FROM T_PAT ORDER BY SCORE DESC";
      break;
    case Feature::kStatsElimination:
      q.sql = "COLLECT STATISTICS ON T_PAT COLUMN (SCORE)";
      break;
    case Feature::kQualify:
      q.sql = "SELECT ID FROM T_PAT QUALIFY RANK() OVER (ORDER BY SCORE "
              "DESC) <= " + n;
      break;
    case Feature::kImplicitJoin:
      q.sql = "SELECT T_PAT.ID FROM T_PAT WHERE T_PAT.ID = "
              "T_CLAIM.PAT_ID AND T_CLAIM.AMOUNT > " + n;
      break;
    case Feature::kChainedProjections:
      q.sql = "SELECT SCORE AS BASE, BASE + " + n + " AS ADJ FROM T_PAT";
      break;
    case Feature::kOrdinalGroupBy:
      q.sql = "SELECT REGION, COUNT(*) FROM T_PAT WHERE ID > " + n +
              " GROUP BY 1";
      break;
    case Feature::kGroupingExtensions:
      q.sql = "SELECT REGION, SCORE, COUNT(*) FROM T_PAT WHERE ID > " + n +
              " GROUP BY ROLLUP(REGION, SCORE)";
      break;
    case Feature::kDateArithmetic:
      q.sql = "SELECT ID FROM T_PAT WHERE VISIT_DATE > DATE '2014-01-01' + " +
              std::to_string(1 + v % 300);
      break;
    case Feature::kDateIntComparison:
      q.sql = "SELECT ID FROM T_PAT WHERE VISIT_DATE > " +
              std::to_string(1140101 + v % 300);
      break;
    case Feature::kVectorSubquery:
      q.sql = "SELECT ID FROM T_CLAIM WHERE (AMOUNT, NET) > ANY (SELECT "
              "AMOUNT, NET FROM T_CLAIM WHERE ID < " + n + ")";
      break;
    case Feature::kOrderedAnalytics:
      q.sql = "SELECT ID FROM T_PAT QUALIFY RANK(SCORE DESC) <= " + n;
      q.intended.Record(Feature::kQualify);
      break;
    case Feature::kMacros:
      q.sql = "EXEC M_REPORT(" + std::to_string(v % 1000) + ".50)";
      break;
    case Feature::kRecursiveQuery:
      q.sql = "WITH RECURSIVE R (ID) AS (SELECT ID FROM T_PAT WHERE ID = " +
              n +
              " UNION ALL SELECT T_PAT.ID FROM T_PAT, R WHERE T_PAT.ID = "
              "R.ID + 1 AND T_PAT.ID < " + n + " + 3) SELECT ID FROM R";
      break;
    case Feature::kMerge:
      q.sql = "MERGE INTO SETT USING T_PAT ON SETT.K = T_PAT.ID WHEN "
              "MATCHED THEN UPDATE SET V = " + n +
              " WHEN NOT MATCHED THEN INSERT (K, V) VALUES (T_PAT.ID, " + n +
              ")";
      break;
    case Feature::kDmlOnViews:
      q.sql = "UPDATE V_PAT SET SCORE = " + n + " WHERE ID = " + n;
      break;
    case Feature::kSessionCommands:
      q.sql = (v % 2 == 0) ? "HELP SESSION"
                           : "SET SESSION DATABASE DB_" + n;
      break;
    case Feature::kColumnProperties:
      q.sql = "SELECT ID FROM T_PAT WHERE NAME = 'case" + n + "'";
      break;
    case Feature::kSetSemantics:
      q.sql = "INSERT INTO SETT VALUES (" + n + ", " + n + ")";
      break;
    case Feature::kTemporaryTables:
      q.sql = "SELECT K, V FROM GTT_WORK WHERE K > " + n;
      break;
    case Feature::kPeriodType:
      q.sql = "SELECT ID FROM T_COVER WHERE BEGIN(SPAN) > DATE "
              "'2014-01-01' AND ID > " + n;
      break;
    default:
      q.sql = "SELECT " + n;
      break;
  }
  return q;
}

WorkloadQuery MakePlainQuery(int64_t v) {
  WorkloadQuery q;
  switch (v % 4) {
    case 0:
      q.sql = "SELECT ID, SCORE FROM T_PAT WHERE SCORE > " +
              std::to_string(v);
      break;
    case 1:
      q.sql = "SELECT PAT_ID, SUM(AMOUNT) AS TOTAL FROM T_CLAIM WHERE ID > " +
              std::to_string(v) + " GROUP BY PAT_ID";
      break;
    case 2:
      q.sql = "SELECT COUNT(*) FROM T_PAT WHERE REGION = " +
              std::to_string(v % 50);
      break;
    default:
      q.sql = "SELECT P.ID, C.AMOUNT FROM T_PAT P INNER JOIN T_CLAIM C ON "
              "P.ID = C.PAT_ID WHERE C.AMOUNT > " + std::to_string(v);
      break;
  }
  return q;
}

}  // namespace

std::vector<WorkloadQuery> SynthesizeWorkload(const CustomerProfile& profile,
                                              double scale, uint64_t seed) {
  int64_t distinct = std::max<int64_t>(
      50, static_cast<int64_t>(std::llround(profile.distinct_queries * scale)));
  int64_t total = std::max<int64_t>(
      distinct,
      static_cast<int64_t>(std::llround(profile.total_queries * scale)));

  auto count_for = [&](double fraction) {
    return static_cast<int64_t>(std::llround(fraction * distinct));
  };
  int64_t n_translation = count_for(profile.translation_fraction);
  int64_t n_transformation = count_for(profile.transformation_fraction);
  int64_t n_emulation = count_for(profile.emulation_fraction);

  std::vector<WorkloadQuery> out;
  out.reserve(distinct);
  int64_t v = static_cast<int64_t>(seed);

  auto emit_class = [&](RewriteClass cls, const std::vector<int>& features,
                        int64_t count) {
    for (int64_t i = 0; i < count; ++i) {
      int idx = features[i % features.size()];
      // Guarantee every listed feature appears at least once even for tiny
      // class fractions.
      out.push_back(MakeFeatureQuery(cls, idx, ++v));
    }
  };
  emit_class(RewriteClass::kTranslation, profile.translation_features,
             std::max<int64_t>(
                 n_translation,
                 static_cast<int64_t>(profile.translation_features.size())));
  emit_class(RewriteClass::kTransformation, profile.transformation_features,
             std::max<int64_t>(
                 n_transformation,
                 static_cast<int64_t>(
                     profile.transformation_features.size())));
  emit_class(RewriteClass::kEmulation, profile.emulation_features,
             std::max<int64_t>(
                 n_emulation,
                 static_cast<int64_t>(profile.emulation_features.size())));

  while (static_cast<int64_t>(out.size()) < distinct) {
    out.push_back(MakePlainQuery(++v));
  }

  // Spread Table 1 replay counts over the distinct queries.
  int64_t base = total / distinct;
  int64_t remainder = total - base * distinct;
  for (auto& q : out) q.replay_count = base;
  for (int64_t i = 0; i < remainder; ++i) {
    ++out[i % out.size()].replay_count;
  }
  return out;
}

}  // namespace hyperq::workload
