// TPC-H workload for the Figure 9 experiments: a dbgen-style deterministic
// data generator, schema DDL in the source dialect, and the 22 benchmark
// queries hand-ported to the Teradata-ish frontend dialect (SEL, TOP, date
// arithmetic, EXTRACT, ordinal-free grouping).
//
// The paper ran 1TB (SF 1000) on a 2-node cloud cluster; vdb is an embedded
// interpreter, so the default scale factor is small. Figure 9 reports
// relative overhead, which is scale-robust on the translation side (per
// statement text) and dominated by execution on the data side.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq::workload {

struct TpchOptions {
  double scale_factor = 0.01;
  uint64_t seed = 19620718;
};

/// \brief The 8 CREATE TABLE statements in the source (SQL-A) dialect.
std::vector<std::string> TpchSchemaSqlA();

/// \brief The 22 TPC-H queries in the source dialect, index 0 = Q1.
const std::vector<std::string>& TpchQueries();

/// \brief Creates the schema through Hyper-Q (exercising DDL translation)
/// and bulk-loads generated data directly into the target engine's storage
/// (stand-in for the offline content transfer of paper Appendix A.2).
Status LoadTpch(service::HyperQService* service, uint32_t session_id,
                vdb::Engine* engine, const TpchOptions& options = {});

/// \brief Row counts per table for a scale factor (introspection/tests).
struct TpchCardinalities {
  int64_t region, nation, supplier, part, partsupp, customer, orders,
      lineitem;
};
TpchCardinalities CardinalitiesFor(double scale_factor);

}  // namespace hyperq::workload
