// placeholder translation unit; replaced as the module is implemented
namespace hyperq {
namespace workload_detail {
int anchor;
}
}
