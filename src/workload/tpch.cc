#include "workload/tpch.h"

#include <cmath>

#include "types/date.h"

namespace hyperq::workload {

namespace {

// Deterministic splitmix64 RNG.
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }
  int64_t Uniform(int64_t lo, int64_t hi) {  // inclusive
    return lo + static_cast<int64_t>(Next() % (hi - lo + 1));
  }
  double Fraction() { return (Next() >> 11) * (1.0 / (1ull << 53)); }
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Next() % v.size()];
  }

 private:
  uint64_t state_;
};

const std::vector<std::string> kRegions = {"AFRICA", "AMERICA", "ASIA",
                                           "EUROPE", "MIDDLE EAST"};
const std::vector<std::string> kNations = {
    "ALGERIA", "ARGENTINA", "BRAZIL",  "CANADA",         "EGYPT",
    "ETHIOPIA", "FRANCE",   "GERMANY", "INDIA",          "INDONESIA",
    "IRAN",     "IRAQ",     "JAPAN",   "JORDAN",         "KENYA",
    "MOROCCO",  "MOZAMBIQUE", "PERU",  "CHINA",          "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM",
    "UNITED STATES"};
// region of each nation (TPC-H mapping).
const int kNationRegion[25] = {0, 1, 1, 1, 4, 0, 3, 3, 2, 2, 4, 4, 2,
                               4, 0, 0, 0, 1, 2, 3, 4, 2, 3, 3, 1};

const std::vector<std::string> kTypes1 = {"STANDARD", "SMALL",   "MEDIUM",
                                          "LARGE",    "ECONOMY", "PROMO"};
const std::vector<std::string> kTypes2 = {"ANODIZED", "BURNISHED", "PLATED",
                                          "POLISHED", "BRUSHED"};
const std::vector<std::string> kTypes3 = {"TIN", "NICKEL", "BRASS", "STEEL",
                                          "COPPER"};
const std::vector<std::string> kContainers = {
    "SM CASE", "SM BOX",  "MED BAG", "MED BOX", "LG CASE",
    "LG BOX",  "JUMBO PKG", "WRAP CASE", "WRAP BOX", "JUMBO BOX"};
const std::vector<std::string> kColors = {
    "green",  "blue",  "red",    "ivory", "salmon", "peach",
    "yellow", "azure", "plum",   "khaki", "linen",  "navy"};
const std::vector<std::string> kNouns = {
    "packages", "ideas",   "accounts", "theodolites", "dependencies",
    "foxes",    "pinto beans", "instructions", "requests", "deposits"};
const std::vector<std::string> kSegments = {"AUTOMOBILE", "BUILDING",
                                            "FURNITURE", "MACHINERY",
                                            "HOUSEHOLD"};
const std::vector<std::string> kPriorities = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                                              "4-NOT SPECIFIED", "5-LOW"};
const std::vector<std::string> kShipModes = {"REG AIR", "AIR",  "RAIL",
                                             "SHIP",    "TRUCK", "MAIL",
                                             "FOB"};
const std::vector<std::string> kInstructs = {
    "DELIVER IN PERSON", "COLLECT COD", "NONE", "TAKE BACK RETURN"};

std::string Comment(Rng& rng, int max_len) {
  std::string c = rng.Pick(kColors) + " " + rng.Pick(kNouns) + " " +
                  (rng.Next() % 20 == 0 ? "special requests "
                                        : rng.Pick(kColors) + " ") +
                  (rng.Next() % 30 == 0 ? "Customer Complaints"
                                        : rng.Pick(kNouns));
  if (static_cast<int>(c.size()) > max_len) c.resize(max_len);
  return c;
}

std::string Phone(Rng& rng, int nation) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%02d-%03d-%03d-%04d", 10 + nation,
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(100, 999)),
                static_cast<int>(rng.Uniform(1000, 9999)));
  return buf;
}

Datum Dec2(int64_t cents) { return Datum::MakeDecimal(Decimal{cents, 2}); }

}  // namespace

TpchCardinalities CardinalitiesFor(double sf) {
  TpchCardinalities c;
  c.region = 5;
  c.nation = 25;
  c.supplier = std::max<int64_t>(3, static_cast<int64_t>(10000 * sf));
  c.part = std::max<int64_t>(10, static_cast<int64_t>(200000 * sf));
  c.partsupp = c.part * 4;
  c.customer = std::max<int64_t>(5, static_cast<int64_t>(150000 * sf));
  c.orders = c.customer * 10;
  c.lineitem = 0;  // derived: ~4 per order
  return c;
}

std::vector<std::string> TpchSchemaSqlA() {
  return {
      "CREATE TABLE REGION (R_REGIONKEY INTEGER NOT NULL, R_NAME CHAR(25), "
      "R_COMMENT VARCHAR(152))",
      "CREATE TABLE NATION (N_NATIONKEY INTEGER NOT NULL, N_NAME CHAR(25), "
      "N_REGIONKEY INTEGER, N_COMMENT VARCHAR(152))",
      "CREATE TABLE SUPPLIER (S_SUPPKEY INTEGER NOT NULL, S_NAME CHAR(25), "
      "S_ADDRESS VARCHAR(40), S_NATIONKEY INTEGER, S_PHONE CHAR(15), "
      "S_ACCTBAL DECIMAL(15,2), S_COMMENT VARCHAR(101))",
      "CREATE TABLE PART (P_PARTKEY INTEGER NOT NULL, P_NAME VARCHAR(55), "
      "P_MFGR CHAR(25), P_BRAND CHAR(10), P_TYPE VARCHAR(25), P_SIZE "
      "INTEGER, P_CONTAINER CHAR(10), P_RETAILPRICE DECIMAL(15,2), "
      "P_COMMENT VARCHAR(23))",
      "CREATE TABLE PARTSUPP (PS_PARTKEY INTEGER NOT NULL, PS_SUPPKEY "
      "INTEGER NOT NULL, PS_AVAILQTY INTEGER, PS_SUPPLYCOST DECIMAL(15,2), "
      "PS_COMMENT VARCHAR(199))",
      "CREATE TABLE CUSTOMER (C_CUSTKEY INTEGER NOT NULL, C_NAME "
      "VARCHAR(25), C_ADDRESS VARCHAR(40), C_NATIONKEY INTEGER, C_PHONE "
      "CHAR(15), C_ACCTBAL DECIMAL(15,2), C_MKTSEGMENT CHAR(10), C_COMMENT "
      "VARCHAR(117))",
      "CREATE TABLE ORDERS (O_ORDERKEY INTEGER NOT NULL, O_CUSTKEY INTEGER, "
      "O_ORDERSTATUS CHAR(1), O_TOTALPRICE DECIMAL(15,2), O_ORDERDATE DATE, "
      "O_ORDERPRIORITY CHAR(15), O_CLERK CHAR(15), O_SHIPPRIORITY INTEGER, "
      "O_COMMENT VARCHAR(79))",
      "CREATE TABLE LINEITEM (L_ORDERKEY INTEGER NOT NULL, L_PARTKEY "
      "INTEGER, L_SUPPKEY INTEGER, L_LINENUMBER INTEGER, L_QUANTITY "
      "DECIMAL(15,2), L_EXTENDEDPRICE DECIMAL(15,2), L_DISCOUNT "
      "DECIMAL(15,2), L_TAX DECIMAL(15,2), L_RETURNFLAG CHAR(1), "
      "L_LINESTATUS CHAR(1), L_SHIPDATE DATE, L_COMMITDATE DATE, "
      "L_RECEIPTDATE DATE, L_SHIPINSTRUCT CHAR(25), L_SHIPMODE CHAR(10), "
      "L_COMMENT VARCHAR(44))",
  };
}

Status LoadTpch(service::HyperQService* service, uint32_t session_id,
                vdb::Engine* engine, const TpchOptions& options) {
  // Schema flows through Hyper-Q's DDL translation.
  for (const std::string& ddl : TpchSchemaSqlA()) {
    auto r = service->Submit(session_id, ddl);
    HQ_RETURN_IF_ERROR(r.status());
  }

  // Bulk data load (content transfer, paper Appendix A.2) goes straight to
  // the target's storage.
  Rng rng(options.seed);
  TpchCardinalities n = CardinalitiesFor(options.scale_factor);
  auto table = [&](const char* name) -> Result<vdb::Table*> {
    return engine->storage()->GetTable(name);
  };

  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("REGION"));
    for (int64_t i = 0; i < n.region; ++i) {
      t->rows.push_back({Datum::Int(i), Datum::String(kRegions[i]),
                         Datum::String(Comment(rng, 100))});
    }
  }
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("NATION"));
    for (int64_t i = 0; i < n.nation; ++i) {
      t->rows.push_back({Datum::Int(i), Datum::String(kNations[i]),
                         Datum::Int(kNationRegion[i]),
                         Datum::String(Comment(rng, 100))});
    }
  }
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("SUPPLIER"));
    for (int64_t i = 1; i <= n.supplier; ++i) {
      int nation = static_cast<int>(rng.Uniform(0, 24));
      t->rows.push_back(
          {Datum::Int(i), Datum::String("Supplier#" + std::to_string(i)),
           Datum::String("addr " + std::to_string(rng.Uniform(1, 9999))),
           Datum::Int(nation), Datum::String(Phone(rng, nation)),
           Dec2(rng.Uniform(-99999, 999999)),
           Datum::String(Comment(rng, 101))});
    }
  }
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("PART"));
    for (int64_t i = 1; i <= n.part; ++i) {
      int m = static_cast<int>(rng.Uniform(1, 5));
      int nb = static_cast<int>(rng.Uniform(1, 5));
      std::string type = rng.Pick(kTypes1) + " " + rng.Pick(kTypes2) + " " +
                         rng.Pick(kTypes3);
      t->rows.push_back(
          {Datum::Int(i),
           Datum::String(rng.Pick(kColors) + " " + rng.Pick(kColors) + " " +
                         rng.Pick(kNouns)),
           Datum::String("Manufacturer#" + std::to_string(m)),
           Datum::String("Brand#" + std::to_string(m) + std::to_string(nb)),
           Datum::String(type), Datum::Int(rng.Uniform(1, 50)),
           Datum::String(rng.Pick(kContainers)),
           Dec2(90000 + (i % 200) * 100), Datum::String(Comment(rng, 23))});
    }
  }
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("PARTSUPP"));
    for (int64_t p = 1; p <= n.part; ++p) {
      for (int s = 0; s < 4; ++s) {
        int64_t suppkey = 1 + (p + s * (n.supplier / 4 + 1)) % n.supplier;
        t->rows.push_back({Datum::Int(p), Datum::Int(suppkey),
                           Datum::Int(rng.Uniform(1, 9999)),
                           Dec2(rng.Uniform(100, 100000)),
                           Datum::String(Comment(rng, 150))});
      }
    }
  }
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * t, table("CUSTOMER"));
    for (int64_t i = 1; i <= n.customer; ++i) {
      int nation = static_cast<int>(rng.Uniform(0, 24));
      t->rows.push_back(
          {Datum::Int(i),
           Datum::String("Customer#" + std::to_string(i)),
           Datum::String("addr " + std::to_string(rng.Uniform(1, 9999))),
           Datum::Int(nation), Datum::String(Phone(rng, nation)),
           Dec2(rng.Uniform(-99999, 999999)),
           Datum::String(rng.Pick(kSegments)),
           Datum::String(Comment(rng, 117))});
    }
  }
  int32_t epoch92 = DaysFromCivil(1992, 1, 1);
  int32_t last_order_day = DaysFromCivil(1998, 8, 2);
  {
    HQ_ASSIGN_OR_RETURN(vdb::Table * orders, table("ORDERS"));
    HQ_ASSIGN_OR_RETURN(vdb::Table * lineitem, table("LINEITEM"));
    for (int64_t o = 1; o <= n.orders; ++o) {
      int64_t cust = rng.Uniform(1, n.customer);
      int32_t odate = static_cast<int32_t>(
          rng.Uniform(epoch92, last_order_day - 151));
      int nlines = static_cast<int>(rng.Uniform(1, 7));
      int64_t total_cents = 0;
      int open_lines = 0;
      for (int l = 1; l <= nlines; ++l) {
        int64_t part = rng.Uniform(1, n.part);
        int64_t supp = 1 + (part + l) % n.supplier;
        int64_t qty = rng.Uniform(1, 50);
        int64_t price_cents = qty * (90000 + (part % 200) * 100) / 10;
        int64_t disc = rng.Uniform(0, 10);   // 0.00 - 0.10
        int64_t tax = rng.Uniform(0, 8);     // 0.00 - 0.08
        int32_t sdate = odate + static_cast<int32_t>(rng.Uniform(1, 121));
        int32_t cdate = odate + static_cast<int32_t>(rng.Uniform(30, 90));
        int32_t rdate = sdate + static_cast<int32_t>(rng.Uniform(1, 30));
        const char* rflag;
        const char* lstatus;
        int32_t cutoff = DaysFromCivil(1995, 6, 17);
        if (rdate <= cutoff) {
          rflag = rng.Next() % 2 ? "R" : "A";
          lstatus = "F";
        } else {
          rflag = "N";
          lstatus = sdate > cutoff ? "O" : "F";
          if (lstatus[0] == 'O') ++open_lines;
        }
        total_cents += price_cents;
        lineitem->rows.push_back(
            {Datum::Int(o), Datum::Int(part), Datum::Int(supp), Datum::Int(l),
             Dec2(qty * 100), Dec2(price_cents), Dec2(disc), Dec2(tax),
             Datum::String(rflag), Datum::String(lstatus), Datum::Date(sdate),
             Datum::Date(cdate), Datum::Date(rdate),
             Datum::String(rng.Pick(kInstructs)),
             Datum::String(rng.Pick(kShipModes)),
             Datum::String(Comment(rng, 44))});
      }
      const char* ostatus = open_lines == nlines ? "O"
                            : open_lines == 0    ? "F"
                                                 : "P";
      orders->rows.push_back(
          {Datum::Int(o), Datum::Int(cust), Datum::String(ostatus),
           Dec2(total_cents), Datum::Date(odate),
           Datum::String(rng.Pick(kPriorities)),
           Datum::String("Clerk#" + std::to_string(rng.Uniform(1, 1000))),
           Datum::Int(0), Datum::String(Comment(rng, 79))});
    }
  }
  return Status::OK();
}

const std::vector<std::string>& TpchQueries() {
  static const std::vector<std::string> kQueries = {
      // Q1: pricing summary report.
      R"(SEL L_RETURNFLAG, L_LINESTATUS,
  SUM(L_QUANTITY) AS SUM_QTY,
  SUM(L_EXTENDEDPRICE) AS SUM_BASE_PRICE,
  SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS SUM_DISC_PRICE,
  SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT) * (1 + L_TAX)) AS SUM_CHARGE,
  AVG(L_QUANTITY) AS AVG_QTY,
  AVG(L_EXTENDEDPRICE) AS AVG_PRICE,
  AVG(L_DISCOUNT) AS AVG_DISC,
  COUNT(*) AS COUNT_ORDER
FROM LINEITEM
WHERE L_SHIPDATE <= DATE '1998-12-01' - 90
GROUP BY L_RETURNFLAG, L_LINESTATUS
ORDER BY L_RETURNFLAG, L_LINESTATUS)",

      // Q2: minimum cost supplier.
      R"(SEL TOP 100 S_ACCTBAL, S_NAME, N_NAME, P_PARTKEY, P_MFGR,
  S_ADDRESS, S_PHONE, S_COMMENT
FROM PART, SUPPLIER, PARTSUPP, NATION, REGION
WHERE P_PARTKEY = PS_PARTKEY AND S_SUPPKEY = PS_SUPPKEY
  AND P_SIZE = 15 AND P_TYPE LIKE '%BRASS'
  AND S_NATIONKEY = N_NATIONKEY AND N_REGIONKEY = R_REGIONKEY
  AND R_NAME = 'EUROPE'
  AND PS_SUPPLYCOST = (
    SEL MIN(PS_SUPPLYCOST)
    FROM PARTSUPP, SUPPLIER, NATION, REGION
    WHERE P_PARTKEY = PS_PARTKEY AND S_SUPPKEY = PS_SUPPKEY
      AND S_NATIONKEY = N_NATIONKEY AND N_REGIONKEY = R_REGIONKEY
      AND R_NAME = 'EUROPE')
ORDER BY S_ACCTBAL DESC, N_NAME, S_NAME, P_PARTKEY)",

      // Q3: shipping priority.
      R"(SEL TOP 10 L_ORDERKEY,
  SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE,
  O_ORDERDATE, O_SHIPPRIORITY
FROM CUSTOMER, ORDERS, LINEITEM
WHERE C_MKTSEGMENT = 'BUILDING' AND C_CUSTKEY = O_CUSTKEY
  AND L_ORDERKEY = O_ORDERKEY
  AND O_ORDERDATE < DATE '1995-03-15' AND L_SHIPDATE > DATE '1995-03-15'
GROUP BY L_ORDERKEY, O_ORDERDATE, O_SHIPPRIORITY
ORDER BY REVENUE DESC, O_ORDERDATE)",

      // Q4: order priority checking.
      R"(SEL O_ORDERPRIORITY, COUNT(*) AS ORDER_COUNT
FROM ORDERS
WHERE O_ORDERDATE >= DATE '1993-07-01'
  AND O_ORDERDATE < DATE '1993-07-01' + INTERVAL '3' MONTH
  AND EXISTS (
    SEL * FROM LINEITEM
    WHERE L_ORDERKEY = O_ORDERKEY AND L_COMMITDATE < L_RECEIPTDATE)
GROUP BY O_ORDERPRIORITY
ORDER BY O_ORDERPRIORITY)",

      // Q5: local supplier volume.
      R"(SEL N_NAME, SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE
FROM CUSTOMER, ORDERS, LINEITEM, SUPPLIER, NATION, REGION
WHERE C_CUSTKEY = O_CUSTKEY AND L_ORDERKEY = O_ORDERKEY
  AND L_SUPPKEY = S_SUPPKEY AND C_NATIONKEY = S_NATIONKEY
  AND S_NATIONKEY = N_NATIONKEY AND N_REGIONKEY = R_REGIONKEY
  AND R_NAME = 'ASIA'
  AND O_ORDERDATE >= DATE '1994-01-01'
  AND O_ORDERDATE < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY N_NAME
ORDER BY REVENUE DESC)",

      // Q6: forecasting revenue change.
      R"(SEL SUM(L_EXTENDEDPRICE * L_DISCOUNT) AS REVENUE
FROM LINEITEM
WHERE L_SHIPDATE >= DATE '1994-01-01'
  AND L_SHIPDATE < DATE '1994-01-01' + INTERVAL '1' YEAR
  AND L_DISCOUNT BETWEEN 0.05 AND 0.07
  AND L_QUANTITY < 24)",

      // Q7: volume shipping.
      R"(SEL SUPP_NATION, CUST_NATION, L_YEAR, SUM(VOLUME) AS REVENUE
FROM (
  SEL N1.N_NAME AS SUPP_NATION, N2.N_NAME AS CUST_NATION,
    EXTRACT(YEAR FROM L_SHIPDATE) AS L_YEAR,
    L_EXTENDEDPRICE * (1 - L_DISCOUNT) AS VOLUME
  FROM SUPPLIER, LINEITEM, ORDERS, CUSTOMER, NATION N1, NATION N2
  WHERE S_SUPPKEY = L_SUPPKEY AND O_ORDERKEY = L_ORDERKEY
    AND C_CUSTKEY = O_CUSTKEY AND S_NATIONKEY = N1.N_NATIONKEY
    AND C_NATIONKEY = N2.N_NATIONKEY
    AND ((N1.N_NAME = 'FRANCE' AND N2.N_NAME = 'GERMANY')
      OR (N1.N_NAME = 'GERMANY' AND N2.N_NAME = 'FRANCE'))
    AND L_SHIPDATE BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
) AS SHIPPING
GROUP BY SUPP_NATION, CUST_NATION, L_YEAR
ORDER BY SUPP_NATION, CUST_NATION, L_YEAR)",

      // Q8: national market share.
      R"(SEL O_YEAR,
  SUM(CASE WHEN NATION = 'BRAZIL' THEN VOLUME ELSE 0 END) / SUM(VOLUME)
    AS MKT_SHARE
FROM (
  SEL EXTRACT(YEAR FROM O_ORDERDATE) AS O_YEAR,
    L_EXTENDEDPRICE * (1 - L_DISCOUNT) AS VOLUME,
    N2.N_NAME AS NATION
  FROM PART, SUPPLIER, LINEITEM, ORDERS, CUSTOMER, NATION N1, NATION N2,
    REGION
  WHERE P_PARTKEY = L_PARTKEY AND S_SUPPKEY = L_SUPPKEY
    AND L_ORDERKEY = O_ORDERKEY AND O_CUSTKEY = C_CUSTKEY
    AND C_NATIONKEY = N1.N_NATIONKEY AND N1.N_REGIONKEY = R_REGIONKEY
    AND R_NAME = 'AMERICA' AND S_NATIONKEY = N2.N_NATIONKEY
    AND O_ORDERDATE BETWEEN DATE '1995-01-01' AND DATE '1996-12-31'
    AND P_TYPE = 'ECONOMY ANODIZED STEEL'
) AS ALL_NATIONS
GROUP BY O_YEAR
ORDER BY O_YEAR)",

      // Q9: product type profit measure.
      R"(SEL NATION, O_YEAR, SUM(AMOUNT) AS SUM_PROFIT
FROM (
  SEL N_NAME AS NATION, EXTRACT(YEAR FROM O_ORDERDATE) AS O_YEAR,
    L_EXTENDEDPRICE * (1 - L_DISCOUNT) - PS_SUPPLYCOST * L_QUANTITY
      AS AMOUNT
  FROM PART, SUPPLIER, LINEITEM, PARTSUPP, ORDERS, NATION
  WHERE S_SUPPKEY = L_SUPPKEY AND PS_SUPPKEY = L_SUPPKEY
    AND PS_PARTKEY = L_PARTKEY AND P_PARTKEY = L_PARTKEY
    AND O_ORDERKEY = L_ORDERKEY AND S_NATIONKEY = N_NATIONKEY
    AND P_NAME LIKE '%green%'
) AS PROFIT
GROUP BY NATION, O_YEAR
ORDER BY NATION, O_YEAR DESC)",

      // Q10: returned item reporting.
      R"(SEL TOP 20 C_CUSTKEY, C_NAME,
  SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE,
  C_ACCTBAL, N_NAME, C_ADDRESS, C_PHONE, C_COMMENT
FROM CUSTOMER, ORDERS, LINEITEM, NATION
WHERE C_CUSTKEY = O_CUSTKEY AND L_ORDERKEY = O_ORDERKEY
  AND O_ORDERDATE >= DATE '1993-10-01'
  AND O_ORDERDATE < DATE '1993-10-01' + INTERVAL '3' MONTH
  AND L_RETURNFLAG = 'R' AND C_NATIONKEY = N_NATIONKEY
GROUP BY C_CUSTKEY, C_NAME, C_ACCTBAL, C_PHONE, N_NAME, C_ADDRESS,
  C_COMMENT
ORDER BY REVENUE DESC)",

      // Q11: important stock identification.
      R"(SEL PS_PARTKEY, SUM(PS_SUPPLYCOST * PS_AVAILQTY) AS VALUE1
FROM PARTSUPP, SUPPLIER, NATION
WHERE PS_SUPPKEY = S_SUPPKEY AND S_NATIONKEY = N_NATIONKEY
  AND N_NAME = 'GERMANY'
GROUP BY PS_PARTKEY
HAVING SUM(PS_SUPPLYCOST * PS_AVAILQTY) > (
  SEL SUM(PS_SUPPLYCOST * PS_AVAILQTY) * 0.001
  FROM PARTSUPP, SUPPLIER, NATION
  WHERE PS_SUPPKEY = S_SUPPKEY AND S_NATIONKEY = N_NATIONKEY
    AND N_NAME = 'GERMANY')
ORDER BY VALUE1 DESC)",

      // Q12: shipping modes and order priority.
      R"(SEL L_SHIPMODE,
  SUM(CASE WHEN O_ORDERPRIORITY = '1-URGENT'
        OR O_ORDERPRIORITY = '2-HIGH' THEN 1 ELSE 0 END)
    AS HIGH_LINE_COUNT,
  SUM(CASE WHEN O_ORDERPRIORITY <> '1-URGENT'
        AND O_ORDERPRIORITY <> '2-HIGH' THEN 1 ELSE 0 END)
    AS LOW_LINE_COUNT
FROM ORDERS, LINEITEM
WHERE O_ORDERKEY = L_ORDERKEY AND L_SHIPMODE IN ('MAIL', 'SHIP')
  AND L_COMMITDATE < L_RECEIPTDATE AND L_SHIPDATE < L_COMMITDATE
  AND L_RECEIPTDATE >= DATE '1994-01-01'
  AND L_RECEIPTDATE < DATE '1994-01-01' + INTERVAL '1' YEAR
GROUP BY L_SHIPMODE
ORDER BY L_SHIPMODE)",

      // Q13: customer distribution (derived-table column aliases).
      R"(SEL C_COUNT, COUNT(*) AS CUSTDIST
FROM (
  SEL C_CUSTKEY, COUNT(O_ORDERKEY)
  FROM CUSTOMER LEFT OUTER JOIN ORDERS
    ON C_CUSTKEY = O_CUSTKEY
    AND O_COMMENT NOT LIKE '%special%requests%'
  GROUP BY C_CUSTKEY
) AS C_ORDERS (C_CUSTKEY, C_COUNT)
GROUP BY C_COUNT
ORDER BY CUSTDIST DESC, C_COUNT DESC)",

      // Q14: promotion effect.
      R"(SEL 100.00 * SUM(CASE WHEN P_TYPE LIKE 'PROMO%'
    THEN L_EXTENDEDPRICE * (1 - L_DISCOUNT) ELSE 0 END)
  / SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS PROMO_REVENUE
FROM LINEITEM, PART
WHERE L_PARTKEY = P_PARTKEY
  AND L_SHIPDATE >= DATE '1995-09-01'
  AND L_SHIPDATE < DATE '1995-09-01' + INTERVAL '1' MONTH)",

      // Q15: top supplier (common table expression).
      R"(WITH REVENUE (SUPPLIER_NO, TOTAL_REVENUE) AS (
  SEL L_SUPPKEY, SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT))
  FROM LINEITEM
  WHERE L_SHIPDATE >= DATE '1996-01-01'
    AND L_SHIPDATE < DATE '1996-01-01' + INTERVAL '3' MONTH
  GROUP BY L_SUPPKEY)
SEL S_SUPPKEY, S_NAME, S_ADDRESS, S_PHONE, TOTAL_REVENUE
FROM SUPPLIER, REVENUE
WHERE S_SUPPKEY = SUPPLIER_NO
  AND TOTAL_REVENUE = (SEL MAX(TOTAL_REVENUE) FROM REVENUE)
ORDER BY S_SUPPKEY)",

      // Q16: parts/supplier relationship.
      R"(SEL P_BRAND, P_TYPE, P_SIZE,
  COUNT(DISTINCT PS_SUPPKEY) AS SUPPLIER_CNT
FROM PARTSUPP, PART
WHERE P_PARTKEY = PS_PARTKEY AND P_BRAND <> 'Brand#45'
  AND P_TYPE NOT LIKE 'MEDIUM POLISHED%'
  AND P_SIZE IN (49, 14, 23, 45, 19, 3, 36, 9)
  AND PS_SUPPKEY NOT IN (
    SEL S_SUPPKEY FROM SUPPLIER
    WHERE S_COMMENT LIKE '%Customer%Complaints%')
GROUP BY P_BRAND, P_TYPE, P_SIZE
ORDER BY SUPPLIER_CNT DESC, P_BRAND, P_TYPE, P_SIZE)",

      // Q17: small-quantity-order revenue.
      R"(SEL SUM(L_EXTENDEDPRICE) / 7.0 AS AVG_YEARLY
FROM LINEITEM, PART
WHERE P_PARTKEY = L_PARTKEY AND P_BRAND = 'Brand#23'
  AND P_CONTAINER = 'MED BOX'
  AND L_QUANTITY < (
    SEL 0.2 * AVG(L_QUANTITY) FROM LINEITEM
    WHERE L_PARTKEY = P_PARTKEY))",

      // Q18: large volume customers.
      R"(SEL TOP 100 C_NAME, C_CUSTKEY, O_ORDERKEY, O_ORDERDATE,
  O_TOTALPRICE, SUM(L_QUANTITY) AS TOTAL_QTY
FROM CUSTOMER, ORDERS, LINEITEM
WHERE O_ORDERKEY IN (
    SEL L_ORDERKEY FROM LINEITEM
    GROUP BY L_ORDERKEY HAVING SUM(L_QUANTITY) > 200)
  AND C_CUSTKEY = O_CUSTKEY AND O_ORDERKEY = L_ORDERKEY
GROUP BY C_NAME, C_CUSTKEY, O_ORDERKEY, O_ORDERDATE, O_TOTALPRICE
ORDER BY O_TOTALPRICE DESC, O_ORDERDATE)",

      // Q19: discounted revenue.
      R"(SEL SUM(L_EXTENDEDPRICE * (1 - L_DISCOUNT)) AS REVENUE
FROM LINEITEM, PART
WHERE (P_PARTKEY = L_PARTKEY AND P_BRAND = 'Brand#12'
    AND P_CONTAINER IN ('SM CASE', 'SM BOX')
    AND L_QUANTITY >= 1 AND L_QUANTITY <= 11
    AND P_SIZE BETWEEN 1 AND 5
    AND L_SHIPMODE IN ('AIR', 'REG AIR')
    AND L_SHIPINSTRUCT = 'DELIVER IN PERSON')
  OR (P_PARTKEY = L_PARTKEY AND P_BRAND = 'Brand#23'
    AND P_CONTAINER IN ('MED BAG', 'MED BOX')
    AND L_QUANTITY >= 10 AND L_QUANTITY <= 20
    AND P_SIZE BETWEEN 1 AND 10
    AND L_SHIPMODE IN ('AIR', 'REG AIR')
    AND L_SHIPINSTRUCT = 'DELIVER IN PERSON')
  OR (P_PARTKEY = L_PARTKEY AND P_BRAND = 'Brand#34'
    AND P_CONTAINER IN ('LG CASE', 'LG BOX')
    AND L_QUANTITY >= 20 AND L_QUANTITY <= 30
    AND P_SIZE BETWEEN 1 AND 15
    AND L_SHIPMODE IN ('AIR', 'REG AIR')
    AND L_SHIPINSTRUCT = 'DELIVER IN PERSON'))",

      // Q20: potential part promotion.
      R"(SEL S_NAME, S_ADDRESS
FROM SUPPLIER, NATION
WHERE S_SUPPKEY IN (
    SEL PS_SUPPKEY FROM PARTSUPP
    WHERE PS_PARTKEY IN (
        SEL P_PARTKEY FROM PART WHERE P_NAME LIKE 'green%')
      AND PS_AVAILQTY > (
        SEL 0.5 * SUM(L_QUANTITY) FROM LINEITEM
        WHERE L_PARTKEY = PS_PARTKEY AND L_SUPPKEY = PS_SUPPKEY
          AND L_SHIPDATE >= DATE '1994-01-01'
          AND L_SHIPDATE < DATE '1994-01-01' + INTERVAL '1' YEAR))
  AND S_NATIONKEY = N_NATIONKEY AND N_NAME = 'CANADA'
ORDER BY S_NAME)",

      // Q21: suppliers who kept orders waiting.
      R"(SEL TOP 100 S_NAME, COUNT(*) AS NUMWAIT
FROM SUPPLIER, LINEITEM L1, ORDERS, NATION
WHERE S_SUPPKEY = L1.L_SUPPKEY AND O_ORDERKEY = L1.L_ORDERKEY
  AND O_ORDERSTATUS = 'F' AND L1.L_RECEIPTDATE > L1.L_COMMITDATE
  AND EXISTS (
    SEL * FROM LINEITEM L2
    WHERE L2.L_ORDERKEY = L1.L_ORDERKEY
      AND L2.L_SUPPKEY <> L1.L_SUPPKEY)
  AND NOT EXISTS (
    SEL * FROM LINEITEM L3
    WHERE L3.L_ORDERKEY = L1.L_ORDERKEY
      AND L3.L_SUPPKEY <> L1.L_SUPPKEY
      AND L3.L_RECEIPTDATE > L3.L_COMMITDATE)
  AND S_NATIONKEY = N_NATIONKEY AND N_NAME = 'SAUDI ARABIA'
GROUP BY S_NAME
ORDER BY NUMWAIT DESC, S_NAME)",

      // Q22: global sales opportunity.
      R"(SEL CNTRYCODE, COUNT(*) AS NUMCUST, SUM(C_ACCTBAL) AS TOTACCTBAL
FROM (
  SEL SUBSTR(C_PHONE, 1, 2) AS CNTRYCODE, C_ACCTBAL
  FROM CUSTOMER
  WHERE SUBSTR(C_PHONE, 1, 2) IN ('13', '31', '23', '29', '30', '18', '17')
    AND C_ACCTBAL > (
      SEL AVG(C_ACCTBAL) FROM CUSTOMER
      WHERE C_ACCTBAL > 0.00
        AND SUBSTR(C_PHONE, 1, 2)
          IN ('13', '31', '23', '29', '30', '18', '17'))
    AND NOT EXISTS (
      SEL * FROM ORDERS WHERE O_CUSTKEY = C_CUSTKEY)
) AS CUSTSALE
GROUP BY CNTRYCODE
ORDER BY CNTRYCODE)",
  };
  return kQueries;
}

}  // namespace hyperq::workload
