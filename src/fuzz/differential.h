// Differential execution harness: one SQL-A statement is translated to
// every registered SQL-B dialect, each translation is executed against its
// own embedded vdb instance (identical schema + data), and the result sets
// are compared as canonical multisets. Any divergence — translation,
// execution, or results — is a finding the reducer (fuzz/reducer.h)
// shrinks to a minimal repro. See DESIGN.md §12.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq::fuzz {

/// \brief How a differential run of one query ended.
enum class OutcomeClass {
  kOk,                  // every dialect agreed
  kRejected,            // every dialect rejected it identically-shaped
                        // (frontend or engine) — not a finding
  kTranslateDivergence, // some dialects translated, others refused
  kExecuteDivergence,   // some executions succeeded, others errored
  kResultMismatch,      // executions succeeded with different multisets
};

const char* OutcomeClassName(OutcomeClass cls);

/// \brief One dialect's leg of a differential run.
struct DialectRun {
  std::string dialect;
  bool translated = false;
  bool executed = false;
  std::string error;                  // translate/execute failure message
  std::vector<std::string> sql_b;     // statements sent to the engine
  std::vector<std::string> rows;      // canonical sorted row strings
};

struct DifferentialOutcome {
  OutcomeClass cls = OutcomeClass::kOk;
  std::string detail;  // human-readable divergence description
  std::vector<DialectRun> runs;

  /// True for the three divergence classes — the fuzzer's findings.
  bool IsFinding() const {
    return cls == OutcomeClass::kTranslateDivergence ||
           cls == OutcomeClass::kExecuteDivergence ||
           cls == OutcomeClass::kResultMismatch;
  }
};

struct HarnessOptions {
  /// Dialects under test; every name must resolve via serializer
  /// FindDialect(). Order is preserved in DifferentialOutcome::runs.
  std::vector<std::string> dialects = {"ansi", "sierra", "granite"};
  /// Seed/shape of the deterministic fuzz data set (query_gen DataDml).
  uint64_t data_seed = 42;
  int rows0 = 24;
  int rows1 = 18;
  /// Test hook: rewrites the SQL-B text of one dialect before execution,
  /// used to plant a known mismatch and exercise the reducer end to end.
  /// Called as (dialect, sql_b) -> sql_b'. null = identity.
  std::function<std::string(const std::string&, const std::string&)>
      sql_b_override;
};

/// \brief Owns one {engine, service, session} per dialect, all loaded with
/// the same deterministic data set, and runs one query differentially.
class DifferentialHarness {
 public:
  /// Builds all targets and applies SchemaDdl()/DataDml() through each
  /// service (via SQL-A, so the data path is the product path too).
  /// Dies via Status-check on setup failure — setup uses fixed statements.
  explicit DifferentialHarness(HarnessOptions options = {});
  ~DifferentialHarness();

  DifferentialHarness(const DifferentialHarness&) = delete;
  DifferentialHarness& operator=(const DifferentialHarness&) = delete;

  /// Translates + executes `sql_a` on every dialect and classifies.
  DifferentialOutcome Run(const std::string& sql_a);

  const std::vector<std::string>& dialects() const {
    return options_.dialects;
  }

 private:
  struct Target {
    std::string dialect;
    std::unique_ptr<vdb::Engine> engine;
    std::unique_ptr<service::HyperQService> service;
    uint32_t session = 0;
  };

  HarnessOptions options_;
  std::vector<Target> targets_;
};

/// \brief Canonical multiset rendering of a vdb result: one string per row
/// (columns '|'-joined, doubles normalized to %.6g, NULL as "<null>"),
/// sorted. Two dialects agree iff their canonical vectors are equal.
std::vector<std::string> CanonicalRows(const vdb::QueryResult& result);

}  // namespace hyperq::fuzz
