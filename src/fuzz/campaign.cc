#include "fuzz/campaign.h"

#include <chrono>
#include <filesystem>
#include <fstream>

#include "fuzz/query_gen.h"
#include "fuzz/reducer.h"

namespace hyperq::fuzz {

namespace {

void AppendJson(std::string* out, const std::string& s) {
  *out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
      case '\r':
      case '\t':
        *out += ' ';
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += ' ';
        } else {
          *out += c;
        }
    }
  }
  *out += '"';
}

void WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

// Writes the minimal repro into the golden corpus layout: the SQL-A text
// at <dir>/<name>.sql, the first dialect's translation at
// <dir>/<name>.expected, the other dialects' at <dir>/<dialect>/<name>.expected
// — matching what tests/golden_test.cc regenerates, so the appended case is
// green immediately, not only after a HQ_REGEN_GOLDEN pass.
std::string AppendGolden(const std::string& dir, const std::string& name,
                         const std::string& sql_a,
                         const DifferentialOutcome& outcome) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  std::string sql_path = dir + "/" + name + ".sql";
  WriteFile(sql_path, sql_a + "\n");
  for (size_t i = 0; i < outcome.runs.size(); ++i) {
    const DialectRun& run = outcome.runs[i];
    if (!run.translated) continue;
    std::string joined;
    for (const auto& s : run.sql_b) {
      joined += s;
      joined += '\n';
    }
    std::string expected_path;
    if (i == 0) {
      expected_path = dir + "/" + name + ".expected";
    } else {
      fs::create_directories(dir + "/" + run.dialect, ec);
      expected_path = dir + "/" + run.dialect + "/" + name + ".expected";
    }
    WriteFile(expected_path, joined);
  }
  return sql_path;
}

}  // namespace

std::string CampaignSummary::ToJson() const {
  std::string out = "{";
  out += "\"seed\":" + std::to_string(seed);
  out += ",\"generated\":" + std::to_string(generated);
  out += ",\"translated\":" + std::to_string(translated);
  out += ",\"executed\":" + std::to_string(executed);
  out += ",\"rejected\":" + std::to_string(rejected);
  out += ",\"mismatched\":" + std::to_string(mismatched);
  out += ",\"reduced\":" + std::to_string(reduced);
  out += ",\"unreduced\":" + std::to_string(unreduced());
  char secs[32];
  std::snprintf(secs, sizeof(secs), "%.3f", seconds);
  out += ",\"seconds\":" + std::string(secs);
  out += ",\"mismatches\":[";
  for (size_t i = 0; i < mismatches.size(); ++i) {
    const MismatchReport& m = mismatches[i];
    if (i > 0) out += ',';
    out += "{\"index\":" + std::to_string(m.index);
    out += ",\"class\":";
    AppendJson(&out, m.classification);
    out += ",\"detail\":";
    AppendJson(&out, m.detail);
    out += ",\"original_clauses\":" + std::to_string(m.original_clauses);
    out += ",\"reduced_clauses\":" + std::to_string(m.reduced_clauses);
    out += ",\"reduced\":" + std::string(m.reduced ? "true" : "false");
    out += ",\"original_sql\":";
    AppendJson(&out, m.original_sql);
    out += ",\"reduced_sql\":";
    AppendJson(&out, m.reduced_sql);
    out += ",\"golden_path\":";
    AppendJson(&out, m.golden_path);
    out += '}';
  }
  out += "]}";
  return out;
}

CampaignSummary RunCampaign(const CampaignOptions& options) {
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  CampaignSummary summary;
  summary.seed = options.seed;

  HarnessOptions hopts;
  hopts.dialects = options.dialects;
  hopts.sql_b_override = options.sql_b_override;
  DifferentialHarness harness(hopts);

  for (uint64_t i = 0;; ++i) {
    if (options.count > 0 && i >= static_cast<uint64_t>(options.count)) break;
    if (options.max_seconds > 0 && elapsed() >= options.max_seconds) break;
    if (options.count <= 0 && options.max_seconds <= 0) break;  // no bound

    QuerySpec spec = GenerateQuery(options.seed, i);
    ++summary.generated;
    DifferentialOutcome outcome = harness.Run(spec.ToSql());
    if (outcome.cls == OutcomeClass::kRejected) {
      ++summary.rejected;
      continue;
    }
    bool all_translated = true;
    bool all_executed = true;
    for (const auto& r : outcome.runs) {
      all_translated = all_translated && r.translated;
      all_executed = all_executed && r.executed;
    }
    if (all_translated) ++summary.translated;
    if (all_executed) ++summary.executed;
    if (!outcome.IsFinding()) continue;

    // A finding: minimize it. "Still fails" means *any* divergence class —
    // a mismatch that simplifies into an execute divergence is still the
    // same bug surfacing earlier, and the smaller repro wins.
    ++summary.mismatched;
    MismatchReport report;
    report.index = i;
    report.classification = OutcomeClassName(outcome.cls);
    report.detail = outcome.detail;
    report.original_sql = spec.ToSql();
    report.original_clauses = spec.ClauseCount();

    ReductionResult reduction =
        ReduceQuery(spec, [&harness](const QuerySpec& candidate) {
          return harness.Run(candidate.ToSql()).IsFinding();
        });
    report.reduced = reduction.converged;
    report.reduced_sql = reduction.minimal.ToSql();
    report.reduced_clauses = reduction.final_clauses;
    if (reduction.converged) ++summary.reduced;

    if (!options.golden_append_dir.empty() && reduction.converged) {
      DifferentialOutcome minimal_outcome = harness.Run(report.reduced_sql);
      std::string name = "fz_" + std::to_string(options.seed) + "_" +
                         std::to_string(i);
      report.golden_path = AppendGolden(options.golden_append_dir, name,
                                        report.reduced_sql, minimal_outcome);
    }
    summary.mismatches.push_back(std::move(report));
  }

  summary.seconds = elapsed();
  return summary;
}

}  // namespace hyperq::fuzz
