// Delta-debugging query reducer: given a QuerySpec that reproduces a
// differential finding and a predicate that re-checks it, greedily drops
// clauses (set operation, joins, WHERE conjuncts, grouping, ordering, row
// limit, surplus select items) until no single drop preserves the failure.
// The result is the minimal repro appended to tests/golden/. DESIGN.md §12.

#pragma once

#include <functional>

#include "fuzz/query_gen.h"

namespace hyperq::fuzz {

/// \brief Re-checks a candidate: returns true when the (re-rendered)
/// candidate still reproduces the original failure. A candidate whose
/// simplification breaks validity simply stops failing differentially
/// (uniform rejection classifies as kRejected, not a finding), so the
/// predicate doubles as the validity check — no separate grammar oracle.
using StillFails = std::function<bool(const QuerySpec&)>;

struct ReductionResult {
  QuerySpec minimal;       // smallest spec that still fails
  int initial_clauses = 0; // ClauseCount() of the input
  int final_clauses = 0;   // ClauseCount() of `minimal`
  int probes = 0;          // candidate evaluations performed
  /// True when at least one clause was removed (or none were removable).
  bool converged = true;
};

/// \brief Greedy clause-dropping to fixed point. Deterministic: candidate
/// order is fixed, so the same (spec, predicate) pair always minimizes to
/// the same repro. `still_fails(spec)` must be true on entry; if it is
/// not (a flaky finding), the input is returned with converged = false.
ReductionResult ReduceQuery(const QuerySpec& spec,
                            const StillFails& still_fails);

}  // namespace hyperq::fuzz
