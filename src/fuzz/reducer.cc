#include "fuzz/reducer.h"

#include <cstddef>
#include <string>
#include <vector>

namespace hyperq::fuzz {

namespace {

// Drops order_by entries whose expression text starts with `expr` (order
// items are rendered as "<select expr> [ASC|DESC] [NULLS ...]").
void DropOrderItemsFor(QuerySpec* spec, const std::string& expr) {
  std::vector<std::string> kept;
  for (auto& item : spec->order_by) {
    if (item.rfind(expr, 0) != 0) kept.push_back(std::move(item));
  }
  spec->order_by = std::move(kept);
}

}  // namespace

ReductionResult ReduceQuery(const QuerySpec& spec,
                            const StillFails& still_fails) {
  ReductionResult out;
  out.initial_clauses = spec.ClauseCount();
  out.minimal = spec.Clone();
  if (!still_fails(out.minimal)) {
    // Flaky or mis-reported finding: nothing to minimize safely.
    out.final_clauses = out.initial_clauses;
    out.converged = false;
    return out;
  }

  // `try_drop` applies `mutate` to a clone; keeps it iff it still fails.
  auto try_drop = [&](const std::function<void(QuerySpec*)>& mutate) {
    QuerySpec candidate = out.minimal.Clone();
    mutate(&candidate);
    ++out.probes;
    if (still_fails(candidate)) {
      out.minimal = std::move(candidate);
      return true;
    }
    return false;
  };

  bool progress = true;
  while (progress) {
    progress = false;

    // 1. The set operation: dropping the whole right operand is the
    //    single biggest shrink available, so it goes first.
    if (out.minimal.setop_right != nullptr) {
      progress |= try_drop([](QuerySpec* q) {
        q->setop_kw.clear();
        q->setop_right.reset();
      });
    }

    // 2. Clauses of the right operand (when the set operation survives).
    if (out.minimal.setop_right != nullptr) {
      QuerySpec right_min = out.minimal.setop_right->Clone();
      ReductionResult inner = ReduceQuery(right_min, [&](const QuerySpec& r) {
        QuerySpec whole = out.minimal.Clone();
        *whole.setop_right = r.Clone();
        ++out.probes;
        return still_fails(whole);
      });
      if (inner.final_clauses < out.minimal.setop_right->ClauseCount()) {
        *out.minimal.setop_right = inner.minimal.Clone();
        progress = true;
      }
    }

    // 3. The row limit. With TOP gone the total-order ORDER BY becomes
    //    droppable too (multiset comparison needs no order), so try the
    //    combined drop first, then TOP alone.
    if (out.minimal.top >= 0) {
      progress |= try_drop([](QuerySpec* q) {
        q->top = -1;
        q->order_by.clear();
      });
    }
    if (out.minimal.top >= 0) {
      progress |= try_drop([](QuerySpec* q) { q->top = -1; });
    }

    // 4. Joins, last first (later joins may reference earlier aliases; a
    //    drop that orphans a reference fails to bind uniformly, the
    //    predicate rejects it, and the clause survives — no oracle needed).
    for (int j = static_cast<int>(out.minimal.joins.size()) - 1; j >= 0;
         --j) {
      progress |= try_drop([j](QuerySpec* q) {
        q->joins.erase(q->joins.begin() + j);
      });
    }

    // 5. WHERE conjuncts.
    for (int w = static_cast<int>(out.minimal.where.size()) - 1; w >= 0;
         --w) {
      progress |= try_drop(
          [w](QuerySpec* q) { q->where.erase(q->where.begin() + w); });
    }

    // 6. HAVING.
    if (!out.minimal.having.empty()) {
      progress |= try_drop([](QuerySpec* q) { q->having.clear(); });
    }

    // 7. Group keys, paired with their select item (and any order item
    //    built from it) so the candidate still binds.
    for (int g = static_cast<int>(out.minimal.group_by.size()) - 1; g >= 0;
         --g) {
      std::string expr = out.minimal.group_by[g];
      progress |= try_drop([g, &expr](QuerySpec* q) {
        q->group_by.erase(q->group_by.begin() + g);
        for (size_t s = 0; s < q->select_items.size(); ++s) {
          if (q->select_items[s] == expr && q->select_items.size() > 1) {
            q->select_items.erase(q->select_items.begin() + s);
            break;
          }
        }
        DropOrderItemsFor(q, expr);
      });
    }

    // 8. ORDER BY items individually — only once TOP is gone, so a
    //    partial order under a row limit can never masquerade as a
    //    "minimal" (but actually order-nondeterministic) repro.
    if (out.minimal.top < 0) {
      for (int o = static_cast<int>(out.minimal.order_by.size()) - 1; o >= 0;
           --o) {
        progress |= try_drop([o](QuerySpec* q) {
          q->order_by.erase(q->order_by.begin() + o);
        });
      }
    }

    // 9. Surplus select items (at least one stays), with their order items.
    for (int s = static_cast<int>(out.minimal.select_items.size()) - 1;
         s >= 0 && out.minimal.select_items.size() > 1; --s) {
      std::string expr = out.minimal.select_items[s];
      progress |= try_drop([s, &expr](QuerySpec* q) {
        if (q->select_items.size() <= 1) return;
        q->select_items.erase(q->select_items.begin() + s);
        DropOrderItemsFor(q, expr);
      });
    }

    // 10. DISTINCT.
    if (out.minimal.distinct) {
      progress |= try_drop([](QuerySpec* q) { q->distinct = false; });
    }
  }

  out.final_clauses = out.minimal.ClauseCount();
  return out;
}

}  // namespace hyperq::fuzz
