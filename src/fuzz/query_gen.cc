#include "fuzz/query_gen.h"

namespace hyperq::fuzz {

namespace {

// Column model of the fuzz schema. Type tags: i = integer, s = string,
// d = decimal, t = date.
struct Col {
  const char* name;
  char type;
};

constexpr Col kT0Cols[] = {
    {"ID", 'i'}, {"GRP", 's'}, {"AMT", 'd'}, {"QTY", 'i'}, {"D", 't'}};
constexpr Col kT1Cols[] = {
    {"ID", 'i'}, {"REF", 'i'}, {"NAME", 's'}, {"PRICE", 'd'}, {"D", 't'}};

struct TableModel {
  const char* name;
  const Col* cols;
  int ncols;
};

constexpr TableModel kTables[] = {
    {"FZ_T0", kT0Cols, 5},
    {"FZ_T1", kT1Cols, 5},
};

// A table reference in scope: alias + its column model.
struct ScopeRef {
  std::string alias;
  const TableModel* model;
};

// Expression generation context: tables in scope (outer scopes included for
// correlated subqueries) and a recursion budget.
struct GenCtx {
  Rng* rng;
  std::vector<ScopeRef> scope;
  int depth = 0;        // expression nesting depth
  int subq_budget = 1;  // nested subqueries remaining
};

std::string ColOfType(GenCtx* ctx, char type) {
  // Collect matching columns across the scope; fall back to a literal when
  // none (cannot happen with the current schema, every table has all types).
  std::vector<std::string> cands;
  for (const auto& ref : ctx->scope) {
    for (int i = 0; i < ref.model->ncols; ++i) {
      if (ref.model->cols[i].type == type) {
        cands.push_back(ref.alias + "." + ref.model->cols[i].name);
      }
    }
  }
  if (cands.empty()) return "0";
  return cands[ctx->rng->Int(0, static_cast<int>(cands.size()) - 1)];
}

std::string IntLit(Rng* rng) { return std::to_string(rng->Int(0, 9)); }

std::string DecLit(Rng* rng) {
  return std::to_string(rng->Int(1, 40)) + "." +
         std::to_string(rng->Int(0, 9)) + "0";
}

std::string DateLit(Rng* rng) {
  int m = rng->Int(1, 3);
  int d = rng->Int(1, 28);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "2024-%02d-%02d", m, d);
  return std::string("DATE '") + buf + "'";
}

std::string StrLit(Rng* rng) {
  static const char* kVals[] = {"'ALPHA'", "'BETA'", "'GAMMA'", "'A'", "'B'"};
  return kVals[rng->Int(0, 4)];
}

std::string NumExpr(GenCtx* ctx);
std::string Pred(GenCtx* ctx);

std::string DateExpr(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  int pick = rng->Int(0, 9);
  if (pick < 5 || ctx->depth > 2) return ColOfType(ctx, 't');
  if (pick < 7) return DateLit(rng);
  ++ctx->depth;
  std::string col = ColOfType(ctx, 't');
  std::string out;
  if (pick == 7) {
    out = "(" + col + " + INTERVAL '" + std::to_string(rng->Int(1, 30)) +
          "' DAY)";
  } else if (pick == 8) {
    out = "(" + col + " - INTERVAL '" + std::to_string(rng->Int(1, 30)) +
          "' DAY)";
  } else {
    // Native Teradata day arithmetic: DATE + n.
    out = "(" + col + " + " + std::to_string(rng->Int(1, 30)) + ")";
  }
  --ctx->depth;
  return out;
}

std::string StrExpr(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  int pick = rng->Int(0, 9);
  if (pick < 6 || ctx->depth > 2) return ColOfType(ctx, 's');
  if (pick < 8) return StrLit(rng);
  return "UPPER(" + ColOfType(ctx, 's') + ")";
}

// An uncorrelated single-row scalar subquery (aggregate over one table).
std::string ScalarSubq(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  const TableModel& t = kTables[rng->Int(0, 1)];
  std::string alias = "S" + std::to_string(rng->Int(0, 99));
  static const char* kAggs[] = {"MIN", "MAX", "SUM", "COUNT"};
  const char* agg = kAggs[rng->Int(0, 3)];
  // Aggregate an int column for a stable integer-ish result.
  std::string col;
  for (int i = 0; i < t.ncols; ++i) {
    if (t.cols[i].type == 'i') col = alias + "." + t.cols[i].name;
  }
  return std::string("(SEL ") + agg + "(" + col + ") FROM " + t.name + " " +
         alias + ")";
}

std::string NumExpr(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  int pick = rng->Int(0, 19);
  if (pick < 8 || ctx->depth > 2) {
    return ColOfType(ctx, rng->Chance(60) ? 'i' : 'd');
  }
  if (pick < 10) return IntLit(rng);
  if (pick < 11) return DecLit(rng);
  ++ctx->depth;
  std::string out;
  if (pick < 13) {
    out = "(" + NumExpr(ctx) + " + " + NumExpr(ctx) + ")";
  } else if (pick < 14) {
    out = "(" + NumExpr(ctx) + " - " + NumExpr(ctx) + ")";
  } else if (pick < 15) {
    out = "(" + ColOfType(ctx, rng->Chance(50) ? 'i' : 'd') + " * " +
          IntLit(rng) + ")";
  } else if (pick < 16) {
    out = "MOD(" + ColOfType(ctx, 'i') + ", " +
          std::to_string(rng->Int(2, 7)) + ")";
  } else if (pick < 17) {
    out = "EXTRACT(YEAR FROM " + ColOfType(ctx, 't') + ")";
  } else if (pick < 19) {
    out = "CASE WHEN " + Pred(ctx) + " THEN " + NumExpr(ctx) + " ELSE " +
          NumExpr(ctx) + " END";
  } else if (ctx->subq_budget > 0) {
    --ctx->subq_budget;
    out = ScalarSubq(ctx);
  } else {
    out = ColOfType(ctx, 'i');
  }
  --ctx->depth;
  return out;
}

const char* CompOp(Rng* rng) {
  static const char* kOps[] = {"=", "<>", "<", "<=", ">", ">="};
  return kOps[rng->Int(0, 5)];
}

// A correlated or membership subquery predicate. Negation is deliberately
// never generated around these: NOT IN / NOT(ANY) with NULLs in the
// subquery is a three-valued-logic minefield whose Teradata-vs-rewrite
// semantics deserve a dedicated (non-smoke) campaign.
std::string SubqPred(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  const TableModel& t = kTables[rng->Int(0, 1)];
  std::string alias = "Q" + std::to_string(rng->Int(0, 99));
  std::string inner_int = alias + ".ID";
  std::string corr;
  if (!ctx->scope.empty()) {
    GenCtx inner = *ctx;
    corr = inner_int + " " + CompOp(rng) + " " + ColOfType(&inner, 'i');
  } else {
    corr = inner_int + " > " + IntLit(rng);
  }
  int pick = rng->Int(0, 3);
  if (pick == 0) {
    return "EXISTS (SEL " + alias + ".ID FROM " + t.name + " " + alias +
           " WHERE " + corr + ")";
  }
  std::string outer_col = ColOfType(ctx, 'i');
  if (pick == 1) {
    return outer_col + " IN (SEL " + inner_int + " FROM " + t.name + " " +
           alias + " WHERE " + corr + ")";
  }
  const char* quant = rng->Chance(50) ? "ANY" : "ALL";
  return outer_col + " " + std::string(CompOp(rng)) + " " + quant + " (SEL " +
         inner_int + " FROM " + t.name + " " + alias + " WHERE " + corr + ")";
}

std::string Pred(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  int pick = rng->Int(0, 19);
  if (ctx->depth > 2) pick = rng->Int(0, 9);
  ++ctx->depth;
  std::string out;
  if (pick < 5) {
    out = "(" + NumExpr(ctx) + " " + CompOp(rng) + " " +
          (rng->Chance(60) ? NumExpr(ctx) : IntLit(rng)) + ")";
  } else if (pick < 7) {
    out = "(" + DateExpr(ctx) + " " + CompOp(rng) + " " + DateExpr(ctx) + ")";
  } else if (pick < 8) {
    out = "(" + StrExpr(ctx) + " " + (rng->Chance(70) ? "=" : "<>") + " " +
          StrLit(rng) + ")";
  } else if (pick < 9) {
    out = "(" + ColOfType(ctx, rng->Chance(50) ? 'i' : 's') +
          (rng->Chance(50) ? " IS NULL)" : " IS NOT NULL)");
  } else if (pick < 10) {
    std::string lo = IntLit(rng);
    std::string hi = std::to_string(rng->Int(5, 15));
    out = "(" + ColOfType(ctx, 'i') + " BETWEEN " + lo + " AND " + hi + ")";
  } else if (pick < 11) {
    out = "(" + ColOfType(ctx, 's') + " LIKE " +
          (rng->Chance(50) ? "'A%'" : "'%A%'") + ")";
  } else if (pick < 12) {
    out = "(" + ColOfType(ctx, 'i') + " IN (" + IntLit(rng) + ", " +
          IntLit(rng) + ", " + IntLit(rng) + "))";
  } else if (pick < 13) {
    out = "(NOT (" + NumExpr(ctx) + " " + CompOp(rng) + " " + IntLit(rng) +
          "))";
  } else if (pick < 15) {
    out = "(" + Pred(ctx) + (rng->Chance(60) ? " AND " : " OR ") + Pred(ctx) +
          ")";
  } else if (pick < 17 && ctx->subq_budget > 0) {
    --ctx->subq_budget;
    out = SubqPred(ctx);
  } else {
    out = "(" + ColOfType(ctx, 'd') + " > " + DecLit(rng) + ")";
  }
  --ctx->depth;
  return out;
}

std::string AggCall(GenCtx* ctx) {
  Rng* rng = ctx->rng;
  int pick = rng->Int(0, 5);
  if (pick == 0) return "COUNT(*)";
  char type = rng->Chance(50) ? 'i' : 'd';
  std::string col = ColOfType(ctx, type);
  switch (pick) {
    case 1:
      return "SUM(" + col + ")";
    case 2:
      return "MIN(" + col + ")";
    case 3:
      return "MAX(" + col + ")";
    case 4:
      return "COUNT(" + col + ")";
    default:
      return "COUNT(DISTINCT " + col + ")";
  }
}

// Generates one SELECT block (no set operation); `sig` is the output type
// signature to honor (empty = free choice, filled with the choice made).
void GenBlock(GenCtx* ctx, QuerySpec* spec, std::vector<char>* sig,
              int table_pick, int alias_base) {
  Rng* rng = ctx->rng;
  const TableModel& base = kTables[table_pick];
  spec->table = base.name;
  spec->alias = "A" + std::to_string(alias_base);
  ctx->scope.push_back({spec->alias, &base});

  // Joins (0-2). LEFT joins introduce NULLs on the right side, which is
  // exactly the sort-order/three-valued-logic surface the dialects differ
  // on — keep them common.
  int njoins = rng->Chance(55) ? rng->Int(1, 2) : 0;
  for (int j = 0; j < njoins; ++j) {
    QuerySpec::Join join;
    const TableModel& jt = kTables[rng->Int(0, 1)];
    join.kind = rng->Chance(50) ? "INNER JOIN" : "LEFT JOIN";
    join.table = jt.name;
    join.alias = "A" + std::to_string(alias_base + j + 1);
    // Equi-join on int columns keeps result sizes civilized.
    std::string left_col = ColOfType(ctx, 'i');
    ctx->scope.push_back({join.alias, &jt});
    std::string right_col;
    for (int i = 0; i < jt.ncols; ++i) {
      if (jt.cols[i].type == 'i') right_col = join.alias + "." + jt.cols[i].name;
    }
    join.on = left_col + " = " + right_col;
    spec->joins.push_back(std::move(join));
  }

  bool grouped = rng->Chance(30);
  if (grouped && !sig->empty()) {
    // Right operand of a set operation under a fixed output signature:
    // group keys supply the typed slots, aggregates the numeric ones.
    for (char t : *sig) {
      if (t == 'n') {
        spec->select_items.push_back(AggCall(ctx));
        continue;
      }
      char want = (t == 's') ? 's' : (t == 't') ? 't' : 'i';
      std::string expr = ColOfType(ctx, want);
      bool dup = false;
      for (const auto& e : spec->group_by) dup = dup || e == expr;
      if (!dup) spec->group_by.push_back(expr);
      spec->select_items.push_back(expr);
    }
    if (rng->Chance(35)) {
      spec->having = "(" + AggCall(ctx) + " " + CompOp(rng) + " " +
                     std::to_string(rng->Int(0, 20)) + ")";
    }
  } else if (grouped) {
    int ngroups = rng->Int(1, 2);
    for (int g = 0; g < ngroups; ++g) {
      char t = rng->Chance(60) ? 's' : 'i';
      std::string expr = ColOfType(ctx, t);
      // Distinct group exprs only; duplicates confuse nothing but waste.
      bool dup = false;
      for (const auto& e : spec->group_by) dup = dup || e == expr;
      if (dup) continue;
      spec->group_by.push_back(expr);
      spec->select_items.push_back(expr);
      sig->push_back(t);
    }
    int naggs = rng->Int(1, 2);
    for (int a = 0; a < naggs; ++a) {
      spec->select_items.push_back(AggCall(ctx));
      sig->push_back('n');
    }
    if (rng->Chance(35)) {
      spec->having = "(" + AggCall(ctx) + " " + CompOp(rng) + " " +
                     std::to_string(rng->Int(0, 20)) + ")";
    }
  } else {
    spec->distinct = rng->Chance(20);
    if (!sig->empty()) {
      // Honor the set-operation signature of the left operand.
      for (char t : *sig) {
        switch (t) {
          case 'i':
          case 'n':
            spec->select_items.push_back(NumExpr(ctx));
            break;
          case 's':
            spec->select_items.push_back(StrExpr(ctx));
            break;
          case 't':
            spec->select_items.push_back(DateExpr(ctx));
            break;
          default:
            spec->select_items.push_back(ColOfType(ctx, 'd'));
        }
      }
    } else {
      int nitems = rng->Int(1, 4);
      for (int i = 0; i < nitems; ++i) {
        int tp = rng->Int(0, 9);
        if (tp < 5) {
          spec->select_items.push_back(NumExpr(ctx));
          sig->push_back('n');
        } else if (tp < 7) {
          spec->select_items.push_back(StrExpr(ctx));
          sig->push_back('s');
        } else if (tp < 9) {
          spec->select_items.push_back(DateExpr(ctx));
          sig->push_back('t');
        } else {
          spec->select_items.push_back(
              "CASE WHEN " + Pred(ctx) + " THEN " + StrLit(rng) +
              " ELSE " + StrLit(rng) + " END");
          sig->push_back('s');
        }
      }
    }
  }

  int nwhere = rng->Chance(75) ? rng->Int(1, 3) : 0;
  for (int w = 0; w < nwhere; ++w) spec->where.push_back(Pred(ctx));
}

}  // namespace

std::string QuerySpec::ToSql() const {
  std::string sql = "SEL ";
  if (distinct) sql += "DISTINCT ";
  if (top >= 0) sql += "TOP " + std::to_string(top) + " ";
  for (size_t i = 0; i < select_items.size(); ++i) {
    if (i > 0) sql += ", ";
    sql += select_items[i] + " AS C" + std::to_string(i + 1);
  }
  sql += " FROM " + table + " " + alias;
  for (const auto& j : joins) {
    sql += " " + j.kind + " " + j.table + " " + j.alias + " ON " + j.on;
  }
  if (!where.empty()) {
    sql += " WHERE ";
    for (size_t i = 0; i < where.size(); ++i) {
      if (i > 0) sql += " AND ";
      sql += where[i];
    }
  }
  if (!group_by.empty()) {
    sql += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += group_by[i];
    }
  }
  if (!having.empty()) sql += " HAVING " + having;
  if (!setop_kw.empty() && setop_right != nullptr) {
    sql += " " + setop_kw + " " + setop_right->ToSql();
  }
  if (!order_by.empty()) {
    sql += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i > 0) sql += ", ";
      sql += order_by[i];
    }
  }
  return sql;
}

int QuerySpec::ClauseCount() const {
  int n = static_cast<int>(joins.size() + where.size() + group_by.size() +
                           order_by.size());
  n += static_cast<int>(select_items.size()) - 1;
  if (!having.empty()) ++n;
  if (top >= 0) ++n;
  if (setop_right != nullptr) n += 1 + setop_right->ClauseCount();
  return n;
}

QuerySpec QuerySpec::Clone() const {
  QuerySpec out;
  out.table = table;
  out.alias = alias;
  out.joins = joins;
  out.distinct = distinct;
  out.top = top;
  out.select_items = select_items;
  out.where = where;
  out.group_by = group_by;
  out.having = having;
  out.order_by = order_by;
  out.setop_kw = setop_kw;
  if (setop_right != nullptr) {
    out.setop_right = std::make_unique<QuerySpec>(setop_right->Clone());
  }
  return out;
}

std::vector<std::string> SchemaDdl() {
  return {
      "CREATE TABLE FZ_T0 (ID INTEGER, GRP VARCHAR(10), AMT DECIMAL(12,2), "
      "QTY INTEGER, D DATE)",
      "CREATE TABLE FZ_T1 (ID INTEGER, REF INTEGER, NAME VARCHAR(20), "
      "PRICE DECIMAL(10,2), D DATE)",
  };
}

std::vector<std::string> DataDml(uint64_t seed, int rows0, int rows1) {
  Rng rng(seed * 0xD1B54A32D192ED03ULL + 17);
  std::vector<std::string> out;
  auto maybe_null = [&](const std::string& v, int null_pct) {
    return rng.Chance(null_pct) ? std::string("NULL") : v;
  };
  static const char* kGroups[] = {"'ALPHA'", "'BETA'", "'GAMMA'", "'A'"};
  for (int i = 0; i < rows0; ++i) {
    std::string grp = maybe_null(kGroups[rng.Int(0, 3)], 20);
    std::string amt = maybe_null(
        std::to_string(rng.Int(1, 40)) + "." + std::to_string(rng.Int(0, 9)) +
            "5",
        20);
    std::string qty = maybe_null(std::to_string(rng.Int(0, 9)), 20);
    char d[16];
    std::snprintf(d, sizeof(d), "2024-%02d-%02d", rng.Int(1, 3),
                  rng.Int(1, 28));
    std::string date = maybe_null(std::string("DATE '") + d + "'", 15);
    out.push_back("INS INTO FZ_T0 VALUES (" + std::to_string(i + 1) + ", " +
                  grp + ", " + amt + ", " + qty + ", " + date + ")");
  }
  static const char* kNames[] = {"'ALPHA'", "'DELTA'", "'OMEGA'", "'B'"};
  for (int i = 0; i < rows1; ++i) {
    std::string ref = maybe_null(std::to_string(rng.Int(1, 10)), 25);
    std::string name = maybe_null(kNames[rng.Int(0, 3)], 20);
    std::string price = maybe_null(
        std::to_string(rng.Int(1, 90)) + "." + std::to_string(rng.Int(0, 9)) +
            "0",
        20);
    char d[16];
    std::snprintf(d, sizeof(d), "2024-%02d-%02d", rng.Int(1, 3),
                  rng.Int(1, 28));
    std::string date = maybe_null(std::string("DATE '") + d + "'", 15);
    out.push_back("INS INTO FZ_T1 VALUES (" + std::to_string(i + 1) + ", " +
                  ref + ", " + name + ", " + price + ", " + date + ")");
  }
  return out;
}

QuerySpec GenerateQuery(uint64_t seed, uint64_t index) {
  // Decorrelate the (seed, index) pair into one stream position.
  Rng rng(seed ^ (index * 0xBF58476D1CE4E5B9ULL + 0x94D049BB133111EBULL));
  QuerySpec spec;
  GenCtx ctx;
  ctx.rng = &rng;
  std::vector<char> sig;
  GenBlock(&ctx, &spec, &sig, rng.Int(0, 1), 0);

  // Set operation (both operands share the output type signature). TOP and
  // ORDER BY stay off set-operation queries: their binding scope over the
  // combined output is target-specific, and multiset comparison does not
  // need them.
  if (spec.group_by.empty() && rng.Chance(18)) {
    static const char* kOps[] = {"UNION", "UNION ALL", "INTERSECT", "MINUS"};
    spec.setop_kw = kOps[rng.Int(0, 3)];
    auto right = std::make_unique<QuerySpec>();
    GenCtx rctx;
    rctx.rng = &rng;
    std::vector<char> rsig = sig;
    GenBlock(&rctx, right.get(), &rsig, rng.Int(0, 1), 10);
    spec.setop_right = std::move(right);
    return spec;
  }

  // ORDER BY over select-item expressions (valid under DISTINCT too).
  if (rng.Chance(45)) {
    int nord = rng.Int(1, static_cast<int>(spec.select_items.size()));
    bool limited = spec.group_by.empty() && rng.Chance(30);
    if (limited) {
      // A row limit needs a total order to stay deterministic across
      // dialects: order by EVERY select item with explicit NULLS placement
      // (the NULL-ordering defaults are exactly where dialects diverge).
      nord = static_cast<int>(spec.select_items.size());
      spec.top = rng.Int(1, 12);
    }
    for (int i = 0; i < nord; ++i) {
      const std::string& e = spec.select_items[i];
      if (e.rfind("COUNT", 0) == 0 || e.rfind("SUM", 0) == 0 ||
          e.rfind("MIN", 0) == 0 || e.rfind("MAX", 0) == 0) {
        continue;  // order by group keys only in aggregate queries
      }
      // A bare integer literal in ORDER BY is an *ordinal*, not the
      // constant expression — skip those items (a constant cannot affect
      // the ordering anyway, so a TOP total order survives the skip).
      if (e.find_first_not_of("0123456789") == std::string::npos) continue;
      std::string item = e;
      item += rng.Chance(40) ? " DESC" : " ASC";
      if (spec.top >= 0) {
        item += rng.Chance(50) ? " NULLS FIRST" : " NULLS LAST";
      }
      spec.order_by.push_back(std::move(item));
    }
    if (spec.order_by.empty()) spec.top = -1;
  }
  return spec;
}

}  // namespace hyperq::fuzz
