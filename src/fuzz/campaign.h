// Fuzz campaign driver: generate → translate-to-every-dialect → execute →
// compare → reduce, in a loop bounded by query count and/or wall clock.
// Every finding is minimized by the delta-debugging reducer and (in golden
// append mode) written into the golden corpus as a permanent regression
// anchor. Summaries serialize to JSON for scripts/fuzz_nightly.sh.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "fuzz/differential.h"

namespace hyperq::fuzz {

struct CampaignOptions {
  uint64_t seed = 1;
  /// Queries to generate; <= 0 means unbounded (use max_seconds).
  int count = 500;
  /// Wall-clock bound in seconds; <= 0 means unbounded (use count).
  double max_seconds = 0;
  std::vector<std::string> dialects = {"ansi", "sierra", "granite"};
  /// When non-empty, each reduced repro is appended to this golden corpus
  /// directory: `fz_<seed>_<index>.sql` (the minimal SQL-A) next to its
  /// per-dialect `.expected` translations (root file = first dialect,
  /// `<dialect>/` subdirectories for the rest).
  std::string golden_append_dir;
  /// Forwarded to the harness; plants a mismatch for reducer tests.
  std::function<std::string(const std::string&, const std::string&)>
      sql_b_override;
};

/// \brief One finding, original and minimized.
struct MismatchReport {
  uint64_t index = 0;              // query index within the seed stream
  std::string classification;      // OutcomeClassName of the finding
  std::string detail;
  std::string original_sql;
  std::string reduced_sql;
  int original_clauses = 0;
  int reduced_clauses = 0;
  bool reduced = false;            // reducer converged on a stable repro
  std::string golden_path;         // .sql path written, when appending
};

struct CampaignSummary {
  uint64_t seed = 0;
  int generated = 0;   // queries drawn from the generator
  int translated = 0;  // queries every dialect translated
  int executed = 0;    // queries every dialect executed
  int rejected = 0;    // uniform frontend/engine rejections (fuzz noise)
  int mismatched = 0;  // findings (any divergence class)
  int reduced = 0;     // findings the reducer minimized
  double seconds = 0;
  std::vector<MismatchReport> mismatches;

  /// Findings without a stable minimal repro — the campaign's failure
  /// signal (scripts/fuzz_nightly.sh exits non-zero when > 0... as does
  /// any mismatch at all; unreduced ones additionally mean the reducer
  /// could not pin the repro down).
  int unreduced() const { return mismatched - reduced; }

  std::string ToJson() const;
};

/// \brief Runs one campaign. Deterministic for a fixed (seed, count,
/// dialects) triple when max_seconds is unset.
CampaignSummary RunCampaign(const CampaignOptions& options);

}  // namespace hyperq::fuzz
