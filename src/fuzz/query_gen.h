// Seeded random query generation over the SQL-A (Teradata) frontend
// grammar — the RISE-style generation half of the differential fuzzer
// (ROADMAP item 3, DESIGN.md §12).
//
// Queries are generated as a *clause-structured* QuerySpec rather than flat
// text: joins, WHERE conjuncts, grouping, ordering, row limits, and set
// operations are separate lists, so the delta-debugging reducer
// (fuzz/reducer.h) can drop clauses one at a time and re-render. The
// grammar is deliberately weighted toward shapes the binder accepts —
// every construct drawn is one the frontend supports — so nearly all
// generated queries survive to differential execution.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace hyperq::fuzz {

/// \brief Deterministic splitmix64 stream; identical sequences across
/// platforms (std:: distributions are not portable, so they are not used).
class Rng {
 public:
  explicit Rng(uint64_t seed) : state_(seed + 0x9E3779B97F4A7C15ULL) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int Int(int lo, int hi) {
    return lo + static_cast<int>(Next() % static_cast<uint64_t>(hi - lo + 1));
  }

  /// True with probability pct/100.
  bool Chance(int pct) { return Int(1, 100) <= pct; }

 private:
  uint64_t state_;
};

/// \brief A generated query in clause-list form. ToSql() renders SQL-A;
/// the reducer clones the spec and drops clauses.
struct QuerySpec {
  struct Join {
    std::string kind;   // "INNER JOIN" | "LEFT JOIN"
    std::string table;
    std::string alias;
    std::string on;     // predicate text
  };

  std::string table;   // base FROM table
  std::string alias;   // its alias (A0, ...)
  std::vector<Join> joins;
  bool distinct = false;
  int64_t top = -1;    // SQL-A `TOP n` row limit; -1 = none
  std::vector<std::string> select_items;  // expr texts (aliased C1.. on render)
  std::vector<std::string> where;         // AND-joined conjunct texts
  std::vector<std::string> group_by;      // group expr texts
  std::string having;                     // "" = none
  std::vector<std::string> order_by;      // full item texts ("expr DESC NULLS LAST")
  std::string setop_kw;                   // "" = none; "UNION" | "UNION ALL" | ...
  std::unique_ptr<QuerySpec> setop_right; // second operand (same output types)

  /// Renders the spec as one SQL-A statement.
  std::string ToSql() const;

  /// Number of droppable clauses — the reducer's progress metric and the
  /// "minimal repro has ≤ N clauses" acceptance measure. The mandatory
  /// FROM table and the first select item are structural, not clauses.
  int ClauseCount() const;

  QuerySpec Clone() const;
};

/// \brief The fuzz schema: two tables with nullable columns of every
/// frontend-relevant type. The differential harness creates them in every
/// target, and tests/golden/_schema.sql carries the same definitions so
/// reduced repros appended to the golden corpus bind there too.
std::vector<std::string> SchemaDdl();

/// \brief Deterministic data population (INSERT statements) with NULLs
/// scattered through every nullable column; `rows0`/`rows1` rows for the
/// two tables.
std::vector<std::string> DataDml(uint64_t seed, int rows0 = 24, int rows1 = 18);

/// \brief Generates the `index`-th query of stream `seed`. The same
/// (seed, index) pair always yields the same QuerySpec.
QuerySpec GenerateQuery(uint64_t seed, uint64_t index);

}  // namespace hyperq::fuzz
