#include "fuzz/differential.h"

#include <algorithm>
#include <cstdio>

#include "common/logging.h"
#include "fuzz/query_gen.h"
#include "serializer/dialect.h"

namespace hyperq::fuzz {

const char* OutcomeClassName(OutcomeClass cls) {
  switch (cls) {
    case OutcomeClass::kOk:
      return "ok";
    case OutcomeClass::kRejected:
      return "rejected";
    case OutcomeClass::kTranslateDivergence:
      return "translate_divergence";
    case OutcomeClass::kExecuteDivergence:
      return "execute_divergence";
    case OutcomeClass::kResultMismatch:
      return "result_mismatch";
  }
  return "unknown";
}

std::vector<std::string> CanonicalRows(const vdb::QueryResult& result) {
  std::vector<std::string> out;
  out.reserve(result.row_count());
  auto emit = [&](const std::vector<Datum>& row) {
    std::string line;
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) line += '|';
      const Datum& v = row[c];
      if (v.is_null()) {
        line += "<null>";
      } else if (v.is_double()) {
        // Floating-point results are normalized to 6 significant digits so
        // evaluation-order noise does not read as a dialect divergence.
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", v.double_val());
        line += buf;
      } else {
        line += v.ToString();
      }
    }
    out.push_back(std::move(line));
  };
  // Results arrive either as legacy datum rows or as columnar chunks
  // (DESIGN.md §15); canonicalize both without forcing a materialization
  // of the whole relation.
  for (const auto& row : result.rows) emit(row);
  std::vector<Datum> scratch;
  for (const auto& chunk : result.chunks) {
    for (size_t r = 0; r < chunk->rows; ++r) {
      chunk->FillRow(r, &scratch);
      emit(scratch);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

DifferentialHarness::DifferentialHarness(HarnessOptions options)
    : options_(std::move(options)) {
  std::vector<std::string> setup = SchemaDdl();
  for (auto& dml : DataDml(options_.data_seed, options_.rows0, options_.rows1)) {
    setup.push_back(std::move(dml));
  }
  for (const auto& name : options_.dialects) {
    const serializer::SQLDialectGenerator* gen = serializer::FindDialect(name);
    if (gen == nullptr) {
      HQ_LOG(kError) << "differential harness: unknown dialect '" << name
                    << "', skipping";
      continue;
    }
    Target t;
    t.dialect = name;
    t.engine = std::make_unique<vdb::Engine>();
    service::ServiceOptions opts;
    opts.profile = gen->Profile();
    opts.tracing = false;  // thousands of queries; span trees are ballast
    t.service = std::make_unique<service::HyperQService>(t.engine.get(), opts);
    auto session = t.service->OpenSession("fuzz");
    if (!session.ok()) {
      HQ_LOG(kError) << "differential harness: session open failed for '"
                    << name << "': " << session.status().message();
      continue;
    }
    t.session = session.value();
    bool loaded = true;
    for (const auto& stmt : setup) {
      auto applied = t.service->Submit(t.session, stmt);
      if (!applied.ok()) {
        HQ_LOG(kError) << "differential harness: setup statement failed on '"
                      << name << "': " << applied.status().message();
        loaded = false;
        break;
      }
    }
    if (loaded) targets_.push_back(std::move(t));
  }
}

DifferentialHarness::~DifferentialHarness() {
  for (auto& t : targets_) {
    if (t.service != nullptr) t.service->CloseSession(t.session);
  }
}

DifferentialOutcome DifferentialHarness::Run(const std::string& sql_a) {
  DifferentialOutcome out;
  int translated = 0;
  int executed = 0;
  for (auto& t : targets_) {
    DialectRun run;
    run.dialect = t.dialect;
    auto sql_b = t.service->Translate(sql_a, nullptr, nullptr);
    if (!sql_b.ok()) {
      run.error = sql_b.status().message();
      out.runs.push_back(std::move(run));
      continue;
    }
    run.translated = true;
    ++translated;
    run.sql_b = std::move(sql_b).value();
    // Execute the SQL-B directly against the target's engine: the point is
    // to verify the *serialized text* round-trips through the target
    // grammar and semantics, not to re-run the service pipeline.
    vdb::QueryResult last;
    bool failed = false;
    for (const auto& stmt : run.sql_b) {
      std::string text = stmt;
      if (options_.sql_b_override) {
        text = options_.sql_b_override(t.dialect, text);
      }
      auto res = t.engine->Execute(text);
      if (!res.ok()) {
        run.error = res.status().message();
        failed = true;
        break;
      }
      last = std::move(res).value();
    }
    if (!failed) {
      run.executed = true;
      ++executed;
      run.rows = CanonicalRows(last);
    }
    out.runs.push_back(std::move(run));
  }

  const int total = static_cast<int>(out.runs.size());
  if (translated == 0) {
    // Uniform frontend rejection (parse/bind error): expected fuzz noise.
    out.cls = OutcomeClass::kRejected;
    out.detail = total > 0 ? out.runs[0].error : "no targets";
    return out;
  }
  if (translated < total) {
    out.cls = OutcomeClass::kTranslateDivergence;
    for (const auto& r : out.runs) {
      if (!r.translated) {
        out.detail = r.dialect + " refused translation: " + r.error;
        break;
      }
    }
    return out;
  }
  if (executed == 0) {
    // Every dialect's SQL-B failed in the engine. Uniform, so not a
    // dialect divergence — but count it as rejected, the campaign tracks
    // the rate separately.
    out.cls = OutcomeClass::kRejected;
    out.detail = out.runs[0].error;
    return out;
  }
  if (executed < total) {
    out.cls = OutcomeClass::kExecuteDivergence;
    for (const auto& r : out.runs) {
      if (!r.executed) {
        out.detail = r.dialect + " failed execution: " + r.error;
        break;
      }
    }
    return out;
  }
  for (size_t i = 1; i < out.runs.size(); ++i) {
    if (out.runs[i].rows != out.runs[0].rows) {
      out.cls = OutcomeClass::kResultMismatch;
      out.detail = out.runs[0].dialect + " returned " +
                   std::to_string(out.runs[0].rows.size()) + " row(s), " +
                   out.runs[i].dialect + " returned " +
                   std::to_string(out.runs[i].rows.size()) +
                   " row(s) with differing canonical content";
      return out;
    }
  }
  out.cls = OutcomeClass::kOk;
  return out;
}

}  // namespace hyperq::fuzz
