#include "convert/result_converter.h"

#include <algorithm>
#include <thread>

#include "common/fault.h"
#include "observability/metric_names.h"
#include "types/date.h"
#include "vdb/column_batch.h"

namespace hyperq::convert {

namespace {

using backend::BatchSpan;
using protocol::WireColumn;
using protocol::WireType;
using vdb::ColumnVec;
using vdb::PhysKind;

/// Physical column form the typed wire encoder can consume for a wire type.
/// Columns arriving from the batch data plane are canonicalized against the
/// TDF schema, so this holds in the common case; any mismatch (boxed kDatum
/// columns, all-NULL placeholder kinds) routes the batch to the row-encode
/// fallback instead.
bool ColumnMatchesWire(const ColumnVec& col, const WireColumn& wc) {
  switch (wc.type) {
    case WireType::kSmallInt:  // also carries BOOL as 0/1
      return col.kind == PhysKind::kI64 || col.kind == PhysKind::kBool;
    case WireType::kInteger:
    case WireType::kBigInt:
      return col.kind == PhysKind::kI64;
    case WireType::kDecimal:
      return col.kind == PhysKind::kDecimal;
    case WireType::kFloat:
      return col.kind == PhysKind::kF64;
    case WireType::kChar:
    case WireType::kVarchar:
      return col.kind == PhysKind::kString;
    case WireType::kDate:
      return col.kind == PhysKind::kDate;
    case WireType::kTime:
      return col.kind == PhysKind::kTime;
    case WireType::kTimestamp:
      return col.kind == PhysKind::kTimestamp;
    case WireType::kPeriodDate:
      return col.kind == PhysKind::kPeriod;
  }
  return false;
}

/// Encoded payload bytes of one non-NULL field.
size_t FieldWidth(const ColumnVec& col, size_t r, const WireColumn& wc) {
  switch (wc.type) {
    case WireType::kSmallInt:
      return 2;
    case WireType::kInteger:
    case WireType::kDate:
      return 4;
    case WireType::kBigInt:
    case WireType::kDecimal:
    case WireType::kFloat:
    case WireType::kTime:
    case WireType::kTimestamp:
    case WireType::kPeriodDate:
      return 8;
    case WireType::kChar:
      return static_cast<size_t>(wc.length);
    case WireType::kVarchar: {
      size_t len = col.offsets[r + 1] - col.offsets[r];
      return 2 + std::min<size_t>(len, 0xFFFF);
    }
  }
  return 0;
}

void EncodeField(const ColumnVec& col, size_t r, const WireColumn& wc,
                 BufferWriter* rec) {
  switch (wc.type) {
    case WireType::kSmallInt:
      rec->PutI16(static_cast<int16_t>(col.kind == PhysKind::kBool
                                           ? (col.b8[r] != 0 ? 1 : 0)
                                           : col.i64[r]));
      break;
    case WireType::kInteger:
      rec->PutI32(static_cast<int32_t>(col.i64[r]));
      break;
    case WireType::kBigInt:
      rec->PutI64(col.i64[r]);
      break;
    case WireType::kDecimal: {
      // Canonical batches already carry the schema scale; rescale defends
      // against hand-built batches without changing the wire bytes.
      if (col.i32b[r] == wc.scale) {
        rec->PutI64(col.i64[r]);
      } else {
        rec->PutI64(Decimal{col.i64[r], col.i32b[r]}.Rescale(wc.scale).value);
      }
      break;
    }
    case WireType::kFloat:
      rec->PutF64(col.f64[r]);
      break;
    case WireType::kChar: {
      // Fixed width, blank padded; over-long values truncate — exactly
      // std::string::resize(length, ' ') in the record oracle.
      std::string_view s = col.StringAt(r);
      size_t wire_len = static_cast<size_t>(wc.length);
      size_t copy = std::min(s.size(), wire_len);
      rec->PutBytes(s.data(), copy);
      for (size_t p = copy; p < wire_len; ++p) rec->PutU8(' ');
      break;
    }
    case WireType::kVarchar: {
      std::string_view s = col.StringAt(r);
      if (s.size() > 0xFFFF) s = s.substr(0, 0xFFFF);
      rec->PutU16(static_cast<uint16_t>(s.size()));
      rec->PutBytes(s.data(), s.size());
      break;
    }
    case WireType::kDate:
      rec->PutI32(static_cast<int32_t>(DateToTeradataInt(col.i32[r])));
      break;
    case WireType::kTime:
    case WireType::kTimestamp:
      rec->PutI64(col.i64[r]);
      break;
    case WireType::kPeriodDate:
      rec->PutI32(static_cast<int32_t>(DateToTeradataInt(col.i32[r])));
      rec->PutI32(static_cast<int32_t>(DateToTeradataInt(col.i32b[r])));
      break;
  }
}

}  // namespace

ResultConverter::ResultConverter(ConverterOptions options)
    : options_(options) {
  options_.parallelism = std::max(1, options_.parallelism);
  options_.rows_per_batch = std::max<size_t>(1, options_.rows_per_batch);
}

ResultConverter::ResultConverter(int parallelism, size_t rows_per_batch)
    : ResultConverter(ConverterOptions{parallelism, rows_per_batch, nullptr}) {
}

Result<ConversionResult> ResultConverter::Convert(
    const backend::BackendResult& result, QueryContext* ctx) const {
  ConversionResult out;
  if (!result.is_rowset()) return out;

  for (const auto& col : result.columns) {
    HQ_ASSIGN_OR_RETURN(protocol::WireColumn wc,
                        protocol::ToWireColumn(col.name, col.type));
    out.columns.push_back(std::move(wc));
  }

  // Unwrap TDF spans (buffered: the header must announce the full row
  // count). Spans share their batches with the store — no row copy here.
  std::vector<BatchSpan> spans;
  std::vector<size_t> span_start;  // global row index of each span
  size_t total = 0;
  if (result.store) {
    HQ_RETURN_IF_ERROR(result.store->ScanSpans([&](const BatchSpan& span) {
      span_start.push_back(total);
      spans.push_back(span);
      total += span.rows;
      return Status::OK();
    }));
  }
  out.total_rows = total;

  // Carve the global row range into wire batches (identical segmentation to
  // the historical row path: batch b covers rows [b*N, (b+1)*N)), then
  // encode batches in parallel. A wire batch may straddle span boundaries.
  const size_t rows_per_batch = options_.rows_per_batch;
  size_t nbatches = (total + rows_per_batch - 1) / rows_per_batch;
  out.batches.resize(nbatches);
  if (nbatches == 0) return out;

  const size_t ncols = out.columns.size();
  const size_t bitmap_bytes = (ncols + 7) / 8;

  // Per-record encode straight from the columns; returns false when a
  // column's physical form requires the row-oriented oracle.
  auto encode_span_rows = [&](const BatchSpan& span, size_t begin, size_t end,
                              BufferWriter* w) -> Result<bool> {
    const auto& cols = span.batch->columns;
    for (size_t c = 0; c < ncols; ++c) {
      if (!ColumnMatchesWire(*cols[c], out.columns[c]) &&
          !(cols[c]->nulls == cols[c]->size)) {
        return false;
      }
    }
    std::vector<uint8_t> bitmap(bitmap_bytes);
    for (size_t r = begin; r < end; ++r) {
      HQ_RETURN_IF_ERROR(
          FaultInjector::Global().Check(faultpoints::kConvertEncodeRow));
      size_t row = span.offset + r;
      std::fill(bitmap.begin(), bitmap.end(), 0);
      size_t rec_len = bitmap_bytes;
      for (size_t c = 0; c < ncols; ++c) {
        if (cols[c]->IsNull(row)) continue;
        bitmap[c / 8] |= (1u << (c % 8));
        rec_len += FieldWidth(*cols[c], row, out.columns[c]);
      }
      if (rec_len > 0xFFFF) {
        return Status::ProtocolError("record exceeds the 64KiB tdwp row "
                                     "limit");
      }
      w->PutU16(static_cast<uint16_t>(rec_len));
      w->PutBytes(bitmap.data(), bitmap.size());
      for (size_t c = 0; c < ncols; ++c) {
        if (cols[c]->IsNull(row)) continue;
        EncodeField(*cols[c], row, out.columns[c], w);
      }
    }
    return true;
  };

  auto encode_span_rows_fallback = [&](const BatchSpan& span, size_t begin,
                                       size_t end, BufferWriter* w) -> Status {
    vdb::Row scratch;
    for (size_t r = begin; r < end; ++r) {
      HQ_RETURN_IF_ERROR(
          FaultInjector::Global().Check(faultpoints::kConvertEncodeRow));
      span.batch->FillRow(span.offset + r, &scratch);
      HQ_RETURN_IF_ERROR(protocol::EncodeRecord(out.columns, scratch, w));
    }
    return Status::OK();
  };

  std::vector<Status> statuses(nbatches);
  auto encode_range = [&](size_t begin_batch, size_t end_batch) {
    for (size_t b = begin_batch; b < end_batch; ++b) {
      // CheckAlive is safe from parallel workers: concurrent callers skip
      // the client probe instead of contending on the socket.
      if (ctx != nullptr) {
        Status alive = ctx->CheckAlive();
        if (!alive.ok()) {
          statuses[b] = std::move(alive);
          return;
        }
      }
      size_t row_begin = b * rows_per_batch;
      size_t row_end = std::min(total, row_begin + rows_per_batch);
      BufferWriter w;
      w.PutU32(static_cast<uint32_t>(row_end - row_begin));
      // Walk the spans overlapping this wire batch.
      size_t s = static_cast<size_t>(
          std::upper_bound(span_start.begin(), span_start.end(), row_begin) -
          span_start.begin() - 1);
      size_t row = row_begin;
      while (row < row_end) {
        const BatchSpan& span = spans[s];
        size_t local_begin = row - span_start[s];
        size_t local_end = std::min(span.rows, row_end - span_start[s]);
        auto fast = encode_span_rows(span, local_begin, local_end, &w);
        if (!fast.ok()) {
          statuses[b] = fast.status();
          return;
        }
        if (!*fast) {
          Status st =
              encode_span_rows_fallback(span, local_begin, local_end, &w);
          if (!st.ok()) {
            statuses[b] = st;
            return;
          }
        }
        row = span_start[s] + local_end;
        ++s;
      }
      out.batches[b] = w.Take();
    }
  };

  int workers = std::min<int>(options_.parallelism, static_cast<int>(nbatches));
  if (workers <= 1) {
    encode_range(0, nbatches);
  } else {
    std::vector<std::thread> threads;
    size_t per = (nbatches + workers - 1) / workers;
    for (int t = 0; t < workers; ++t) {
      size_t begin = t * per;
      size_t end = std::min(nbatches, begin + per);
      if (begin >= end) break;
      threads.emplace_back(encode_range, begin, end);
    }
    for (auto& th : threads) th.join();
  }
  for (const Status& s : statuses) {
    HQ_RETURN_IF_ERROR(s);
  }
  // Batch-size distributions are recorded only after the whole conversion
  // succeeded: a failed or cancelled attempt contributes nothing, so a
  // retried query attributes each produced batch exactly once.
  if (options_.metrics != nullptr) {
    auto* rows_hist = options_.metrics->histogram(
        observability::names::kConvertBatchRows);
    auto* bytes_hist = options_.metrics->histogram(
        observability::names::kConvertBatchBytes);
    for (size_t b = 0; b < nbatches; ++b) {
      size_t row_begin = b * rows_per_batch;
      size_t row_end = std::min(total, row_begin + rows_per_batch);
      rows_hist->Observe(static_cast<double>(row_end - row_begin));
      bytes_hist->Observe(static_cast<double>(out.batches[b].size()));
    }
  }
  return out;
}

}  // namespace hyperq::convert
