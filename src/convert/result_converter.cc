#include "convert/result_converter.h"

#include <algorithm>
#include <thread>

#include "common/fault.h"

namespace hyperq::convert {

ResultConverter::ResultConverter(int parallelism, size_t rows_per_batch)
    : parallelism_(std::max(1, parallelism)),
      rows_per_batch_(std::max<size_t>(1, rows_per_batch)) {}

Result<ConversionResult> ResultConverter::Convert(
    const backend::BackendResult& result, QueryContext* ctx) const {
  ConversionResult out;
  if (!result.is_rowset()) return out;

  for (const auto& col : result.columns) {
    HQ_ASSIGN_OR_RETURN(protocol::WireColumn wc,
                        protocol::ToWireColumn(col.name, col.type));
    out.columns.push_back(std::move(wc));
  }

  // Unwrap TDF (buffered: the header must announce the full row count).
  HQ_ASSIGN_OR_RETURN(std::vector<std::vector<Datum>> rows,
                      result.DecodeRows());
  out.total_rows = rows.size();

  // Carve the rows into wire batches, then encode batches in parallel.
  size_t nbatches = (rows.size() + rows_per_batch_ - 1) / rows_per_batch_;
  out.batches.resize(nbatches);
  if (nbatches == 0) return out;

  std::vector<Status> statuses(nbatches);
  auto encode_range = [&](size_t begin_batch, size_t end_batch) {
    for (size_t b = begin_batch; b < end_batch; ++b) {
      // CheckAlive is safe from parallel workers: concurrent callers skip
      // the client probe instead of contending on the socket.
      if (ctx != nullptr) {
        Status alive = ctx->CheckAlive();
        if (!alive.ok()) {
          statuses[b] = std::move(alive);
          return;
        }
      }
      size_t row_begin = b * rows_per_batch_;
      size_t row_end = std::min(rows.size(), row_begin + rows_per_batch_);
      BufferWriter w;
      w.PutU32(static_cast<uint32_t>(row_end - row_begin));
      for (size_t r = row_begin; r < row_end; ++r) {
        Status s =
            FaultInjector::Global().Check(faultpoints::kConvertEncodeRow);
        if (s.ok()) s = protocol::EncodeRecord(out.columns, rows[r], &w);
        if (!s.ok()) {
          statuses[b] = s;
          return;
        }
      }
      out.batches[b] = w.Take();
    }
  };

  int workers = std::min<int>(parallelism_, static_cast<int>(nbatches));
  if (workers <= 1) {
    encode_range(0, nbatches);
  } else {
    std::vector<std::thread> threads;
    size_t per = (nbatches + workers - 1) / workers;
    for (int t = 0; t < workers; ++t) {
      size_t begin = t * per;
      size_t end = std::min(nbatches, begin + per);
      if (begin >= end) break;
      threads.emplace_back(encode_range, begin, end);
    }
    for (auto& th : threads) th.join();
  }
  for (const Status& s : statuses) {
    HQ_RETURN_IF_ERROR(s);
  }
  return out;
}

}  // namespace hyperq::convert
