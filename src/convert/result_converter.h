// Result Converter (paper §4.6): unwraps TDF batches and converts rows into
// the original database's binary record format. Conversion fans out over a
// configurable number of worker threads, each handling a subset of the
// rows, exactly as the paper describes.
//
// tdwp requires the total row count before the first record (see
// protocol/tdwp.h), so conversion is a buffered operation: the full TDF
// result (possibly spilled to disk by the ResultStore) is consumed before
// the first wire batch is released.

#pragma once

#include <cstdint>
#include <vector>

#include "backend/connector.h"
#include "common/result.h"
#include "protocol/tdwp.h"

namespace hyperq::convert {

struct ConversionResult {
  std::vector<protocol::WireColumn> columns;
  /// RecordBatch frame payloads: u32 row count + encoded records.
  std::vector<std::vector<uint8_t>> batches;
  uint64_t total_rows = 0;
};

class ResultConverter {
 public:
  /// \param parallelism worker threads for record encoding (>= 1)
  /// \param rows_per_batch records per wire batch
  explicit ResultConverter(int parallelism = 2, size_t rows_per_batch = 2048);

  /// \brief Converts a backend (TDF) result into wire batches. `ctx`
  /// (optional) is polled at every batch boundary by each encode worker,
  /// so a cancellation stops conversion within one batch.
  Result<ConversionResult> Convert(const backend::BackendResult& result,
                                   QueryContext* ctx = nullptr) const;

 private:
  int parallelism_;
  size_t rows_per_batch_;
};

}  // namespace hyperq::convert
