// Result Converter (paper §4.6): unwraps TDF batches and converts them into
// the original database's binary record format. Conversion fans out over a
// configurable number of worker threads, each handling a subset of the
// rows, exactly as the paper describes.
//
// Since the columnar data-plane redesign (DESIGN.md §15) the converter
// consumes the ResultStore's batch spans directly: wire records are encoded
// straight from the typed column vectors — bitmap transpose plus bulk field
// writes — without materializing a Datum row per record. A per-batch
// row-oriented fallback (protocol::EncodeRecord) covers columns whose
// physical form diverges from the wire schema; its output is byte-identical
// by construction, so the fast path is an optimization, never a format fork.
//
// tdwp requires the total row count before the first record (see
// protocol/tdwp.h), so conversion is a buffered operation: the full TDF
// result (possibly spilled to disk by the ResultStore) is consumed before
// the first wire batch is released.

#pragma once

#include <cstdint>
#include <vector>

#include "backend/connector.h"
#include "common/result.h"
#include "observability/metrics.h"
#include "protocol/tdwp.h"

namespace hyperq::convert {

struct ConversionResult {
  std::vector<protocol::WireColumn> columns;
  /// RecordBatch frame payloads: u32 row count + encoded records.
  std::vector<std::vector<uint8_t>> batches;
  uint64_t total_rows = 0;
};

struct ConverterOptions {
  /// Worker threads for record encoding (>= 1).
  int parallelism = 2;
  /// Records per wire batch.
  size_t rows_per_batch = 2048;
  /// When set, per-wire-batch size distributions are recorded as
  /// hyperq.convert.batch.rows / hyperq.convert.batch.bytes. Batches are
  /// observed exactly once, after the whole conversion succeeds, so a
  /// retried attempt never double-counts.
  observability::MetricsRegistry* metrics = nullptr;
};

class ResultConverter {
 public:
  explicit ResultConverter(ConverterOptions options);

  /// \deprecated Positional-argument constructor kept for legacy call
  /// sites; prefer ConverterOptions.
  explicit ResultConverter(int parallelism = 2, size_t rows_per_batch = 2048);

  /// \brief Converts a backend (TDF) result into wire batches. `ctx`
  /// (optional) is polled at every batch boundary by each encode worker,
  /// so a cancellation stops conversion within one batch.
  Result<ConversionResult> Convert(const backend::BackendResult& result,
                                   QueryContext* ctx = nullptr) const;

 private:
  ConverterOptions options_;
};

}  // namespace hyperq::convert
