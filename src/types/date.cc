#include "types/date.h"

#include <cstdio>

namespace hyperq {

// Howard Hinnant's days_from_civil / civil_from_days algorithms.
int32_t DaysFromCivil(int y, int m, int d) {
  y -= m <= 2;
  const int era = (y >= 0 ? y : y - 399) / 400;
  const unsigned yoe = static_cast<unsigned>(y - era * 400);  // [0, 399]
  const unsigned doy =
      (153 * (m + (m > 2 ? -3 : 9)) + 2) / 5 + d - 1;         // [0, 365]
  const unsigned doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
  return era * 146097 + static_cast<int>(doe) - 719468;
}

void CivilFromDays(int32_t z, int* year, int* month, int* day) {
  z += 719468;
  const int era = (z >= 0 ? z : z - 146096) / 146097;
  const unsigned doe = static_cast<unsigned>(z - era * 146097);
  const unsigned yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365;
  const int y = static_cast<int>(yoe) + era * 400;
  const unsigned doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
  const unsigned mp = (5 * doy + 2) / 153;
  const unsigned d = doy - (153 * mp + 2) / 5 + 1;
  const unsigned m = mp + (mp < 10 ? 3 : -9);
  *year = y + (m <= 2);
  *month = static_cast<int>(m);
  *day = static_cast<int>(d);
}

bool IsValidCivil(int year, int month, int day) {
  if (month < 1 || month > 12 || day < 1) return false;
  static const int kDays[] = {31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  int max_day = kDays[month - 1];
  bool leap = (year % 4 == 0 && year % 100 != 0) || year % 400 == 0;
  if (month == 2 && leap) max_day = 29;
  return day <= max_day;
}

int64_t DateToTeradataInt(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return static_cast<int64_t>(y - 1900) * 10000 + m * 100 + d;
}

Result<int32_t> TeradataIntToDate(int64_t encoded) {
  int64_t ymd = encoded;
  int d = static_cast<int>(ymd % 100);
  int m = static_cast<int>((ymd / 100) % 100);
  int y = static_cast<int>(ymd / 10000) + 1900;
  if (!IsValidCivil(y, m, d)) {
    return Status::InvalidArgument("integer ", encoded,
                                   " is not a valid Teradata date");
  }
  return DaysFromCivil(y, m, d);
}

Result<int32_t> ParseDate(const std::string& text) {
  int y, m, d;
  if (std::sscanf(text.c_str(), "%d-%d-%d", &y, &m, &d) != 3 &&
      std::sscanf(text.c_str(), "%d/%d/%d", &y, &m, &d) != 3) {
    return Status::InvalidArgument("cannot parse date '", text, "'");
  }
  if (!IsValidCivil(y, m, d)) {
    return Status::InvalidArgument("invalid date '", text, "'");
  }
  return DaysFromCivil(y, m, d);
}

std::string FormatDate(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
  return buf;
}

Result<int64_t> ParseTimestamp(const std::string& text) {
  int y, m, d, hh = 0, mm = 0;
  double ss = 0.0;
  int n = std::sscanf(text.c_str(), "%d-%d-%d %d:%d:%lf", &y, &m, &d, &hh,
                      &mm, &ss);
  if (n != 3 && n != 6) {
    return Status::InvalidArgument("cannot parse timestamp '", text, "'");
  }
  if (!IsValidCivil(y, m, d) || hh < 0 || hh > 23 || mm < 0 || mm > 59 ||
      ss < 0 || ss >= 60) {
    return Status::InvalidArgument("invalid timestamp '", text, "'");
  }
  int64_t days = DaysFromCivil(y, m, d);
  int64_t micros = days * 86400000000LL + hh * 3600000000LL + mm * 60000000LL +
                   static_cast<int64_t>(ss * 1e6 + 0.5);
  return micros;
}

std::string FormatTimestamp(int64_t micros) {
  int64_t days = micros / 86400000000LL;
  int64_t rem = micros % 86400000000LL;
  if (rem < 0) {
    rem += 86400000000LL;
    days -= 1;
  }
  std::string out = FormatDate(static_cast<int32_t>(days));
  out += ' ';
  out += FormatTime(rem);
  return out;
}

Result<int64_t> ParseTime(const std::string& text) {
  int hh, mm;
  double ss = 0.0;
  if (std::sscanf(text.c_str(), "%d:%d:%lf", &hh, &mm, &ss) != 3) {
    return Status::InvalidArgument("cannot parse time '", text, "'");
  }
  if (hh < 0 || hh > 23 || mm < 0 || mm > 59 || ss < 0 || ss >= 60) {
    return Status::InvalidArgument("invalid time '", text, "'");
  }
  return hh * 3600000000LL + mm * 60000000LL +
         static_cast<int64_t>(ss * 1e6 + 0.5);
}

std::string FormatTime(int64_t micros) {
  int hh = static_cast<int>(micros / 3600000000LL);
  int mm = static_cast<int>((micros / 60000000LL) % 60);
  int ss = static_cast<int>((micros / 1000000LL) % 60);
  int frac = static_cast<int>(micros % 1000000LL);
  char buf[32];
  if (frac == 0) {
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d", hh, mm, ss);
  } else {
    std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%06d", hh, mm, ss, frac);
  }
  return buf;
}

int ExtractYear(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return y;
}
int ExtractMonth(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return m;
}
int ExtractDay(int32_t days) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  return d;
}

int32_t AddMonths(int32_t days, int months) {
  int y, m, d;
  CivilFromDays(days, &y, &m, &d);
  int total = y * 12 + (m - 1) + months;
  int ny = total / 12;
  int nm = total % 12;
  if (nm < 0) {
    nm += 12;
    ny -= 1;
  }
  nm += 1;
  while (d > 28 && !IsValidCivil(ny, nm, d)) --d;
  return DaysFromCivil(ny, nm, d);
}

}  // namespace hyperq
