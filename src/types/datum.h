// Datum: the runtime value representation used by the vdb executor, the TDF
// codec, and the wire-protocol row encoders.

#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "common/result.h"
#include "types/decimal.h"
#include "types/type.h"

namespace hyperq {

/// Distinct wrappers keep temporal kinds apart inside the variant.
struct DateVal {
  int32_t days;  // since 1970-01-01
  bool operator==(const DateVal&) const = default;
};
struct TimeVal {
  int64_t micros;  // since midnight
  bool operator==(const TimeVal&) const = default;
};
struct TimestampVal {
  int64_t micros;  // since epoch
  bool operator==(const TimestampVal&) const = default;
};
struct IntervalVal {
  int64_t micros;
  bool operator==(const IntervalVal&) const = default;
};
/// Teradata PERIOD(DATE): half-open [begin, end).
struct PeriodDateVal {
  int32_t begin_days;
  int32_t end_days;
  bool operator==(const PeriodDateVal&) const = default;
};

/// \brief A single SQL value: NULL or one of the supported runtime kinds.
///
/// Integer SQL types (SMALLINT/INT/BIGINT) all map to int64 at runtime; the
/// logical type travels separately in row descriptors.
class Datum {
 public:
  Datum() : repr_(std::monostate{}) {}  // NULL

  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(Repr(v)); }
  static Datum Int(int64_t v) { return Datum(Repr(v)); }
  static Datum MakeDouble(double v) { return Datum(Repr(v)); }
  static Datum MakeDecimal(Decimal v) { return Datum(Repr(v)); }
  static Datum String(std::string v) { return Datum(Repr(std::move(v))); }
  static Datum Date(int32_t days) { return Datum(Repr(DateVal{days})); }
  static Datum Time(int64_t micros) { return Datum(Repr(TimeVal{micros})); }
  static Datum Timestamp(int64_t micros) {
    return Datum(Repr(TimestampVal{micros}));
  }
  static Datum Interval(int64_t micros) {
    return Datum(Repr(IntervalVal{micros}));
  }
  static Datum Period(int32_t begin, int32_t end) {
    return Datum(Repr(PeriodDateVal{begin, end}));
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(repr_); }
  bool is_bool() const { return std::holds_alternative<bool>(repr_); }
  bool is_int() const { return std::holds_alternative<int64_t>(repr_); }
  bool is_double() const { return std::holds_alternative<double>(repr_); }
  bool is_decimal() const { return std::holds_alternative<Decimal>(repr_); }
  bool is_string() const { return std::holds_alternative<std::string>(repr_); }
  bool is_date() const { return std::holds_alternative<DateVal>(repr_); }
  bool is_time() const { return std::holds_alternative<TimeVal>(repr_); }
  bool is_timestamp() const {
    return std::holds_alternative<TimestampVal>(repr_);
  }
  bool is_interval() const {
    return std::holds_alternative<IntervalVal>(repr_);
  }
  bool is_period() const {
    return std::holds_alternative<PeriodDateVal>(repr_);
  }
  bool is_numeric() const { return is_int() || is_double() || is_decimal(); }

  bool bool_val() const { return std::get<bool>(repr_); }
  int64_t int_val() const { return std::get<int64_t>(repr_); }
  double double_val() const { return std::get<double>(repr_); }
  const Decimal& decimal_val() const { return std::get<Decimal>(repr_); }
  const std::string& string_val() const {
    return std::get<std::string>(repr_);
  }
  int32_t date_val() const { return std::get<DateVal>(repr_).days; }
  int64_t time_val() const { return std::get<TimeVal>(repr_).micros; }
  int64_t timestamp_val() const {
    return std::get<TimestampVal>(repr_).micros;
  }
  int64_t interval_val() const { return std::get<IntervalVal>(repr_).micros; }
  PeriodDateVal period_val() const {
    return std::get<PeriodDateVal>(repr_);
  }

  /// \brief Any numeric kind as double (int/decimal converted).
  double AsDouble() const;
  /// \brief Any integer-valued kind as int64 (decimal truncated).
  int64_t AsInt() const;

  /// \brief Three-way comparison with numeric/temporal coercion.
  ///
  /// NULLs are not comparable here (callers implement SQL's three-valued
  /// logic); comparing a NULL, or incompatible kinds, is an error.
  static Result<int> Compare(const Datum& a, const Datum& b);

  /// \brief Equality for grouping/dedup: NULL == NULL, otherwise Compare==0;
  /// incompatible kinds are simply unequal.
  static bool GroupEquals(const Datum& a, const Datum& b);

  /// \brief Hash consistent with GroupEquals.
  size_t Hash() const;

  /// \brief Casts to a target logical type (implicit-cast semantics).
  Result<Datum> CastTo(const SqlType& type) const;

  /// \brief Display rendering (what a CLI would print); NULL renders as "?"
  /// in the Teradata tradition when `teradata_style`, else "NULL".
  std::string ToString(bool teradata_style = false) const;

  bool operator==(const Datum& o) const { return GroupEquals(*this, o); }

 private:
  using Repr = std::variant<std::monostate, bool, int64_t, double, Decimal,
                            std::string, DateVal, TimeVal, TimestampVal,
                            IntervalVal, PeriodDateVal>;
  explicit Datum(Repr r) : repr_(std::move(r)) {}

  Repr repr_;
};

}  // namespace hyperq
