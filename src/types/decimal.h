// Fixed-point DECIMAL runtime representation: 64-bit unscaled value plus a
// scale (number of fractional digits). Intermediate multiplies go through
// __int128 so TPC-H style price arithmetic does not overflow.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace hyperq {

struct Decimal {
  int64_t value = 0;  // unscaled: real value = value / 10^scale
  int32_t scale = 0;

  double ToDouble() const;

  /// \brief Returns the same numeric value at a different scale (truncating
  /// toward zero when reducing scale).
  Decimal Rescale(int32_t new_scale) const;

  /// \brief Renders with exactly `scale` fractional digits, e.g. "12.50".
  std::string ToString() const;

  /// \brief Parses "123", "-1.25", ".5". Scale is taken from the literal.
  static Result<Decimal> Parse(const std::string& text);

  static Decimal Add(const Decimal& a, const Decimal& b);
  static Decimal Sub(const Decimal& a, const Decimal& b);
  /// Product scale is a.scale + b.scale clamped to kMaxScale.
  static Decimal Mul(const Decimal& a, const Decimal& b);
  /// Three-way compare after aligning scales.
  static int Compare(const Decimal& a, const Decimal& b);

  static constexpr int32_t kMaxScale = 12;
};

int64_t Pow10(int32_t n);

}  // namespace hyperq
