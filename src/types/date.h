// Calendar date arithmetic and the Teradata integer date encoding.
//
// Dates are stored as int32 days since the Unix epoch (1970-01-01).
// Teradata's legacy encoding — the one Example 2 of the paper exploits with
// `SALES_DATE > 1140101` — is (year - 1900) * 10000 + month * 100 + day;
// 1140101 therefore means 2014-01-01.

#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"

namespace hyperq {

/// \brief Days since 1970-01-01 for a civil date (proleptic Gregorian).
int32_t DaysFromCivil(int year, int month, int day);

/// \brief Inverse of DaysFromCivil.
void CivilFromDays(int32_t days, int* year, int* month, int* day);

/// \brief True if (year, month, day) is a real calendar date.
bool IsValidCivil(int year, int month, int day);

/// \brief Teradata integer encoding of a date value.
int64_t DateToTeradataInt(int32_t days);

/// \brief Decodes a Teradata date integer; fails on non-dates.
Result<int32_t> TeradataIntToDate(int64_t encoded);

/// \brief Parses 'YYYY-MM-DD' (also accepts 'YYYY/MM/DD').
Result<int32_t> ParseDate(const std::string& text);

/// \brief Formats as 'YYYY-MM-DD'.
std::string FormatDate(int32_t days);

/// \brief Parses 'YYYY-MM-DD[ HH:MM:SS[.ffffff]]' to micros since epoch.
Result<int64_t> ParseTimestamp(const std::string& text);

/// \brief Formats micros since epoch as 'YYYY-MM-DD HH:MM:SS.ffffff'
/// (fractional part omitted when zero).
std::string FormatTimestamp(int64_t micros);

/// \brief Parses 'HH:MM:SS[.ffffff]' to micros since midnight.
Result<int64_t> ParseTime(const std::string& text);

/// \brief Formats micros since midnight as 'HH:MM:SS[.ffffff]'.
std::string FormatTime(int64_t micros);

/// EXTRACT field helpers.
int ExtractYear(int32_t days);
int ExtractMonth(int32_t days);
int ExtractDay(int32_t days);

/// \brief Adds `months` calendar months, clamping the day-of-month (ANSI
/// ADD_MONTHS semantics).
int32_t AddMonths(int32_t days, int months);

}  // namespace hyperq
