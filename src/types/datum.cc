#include "types/datum.h"

#include <cmath>
#include <functional>

#include "types/date.h"

namespace hyperq {

namespace {
// Strips trailing blanks for CHAR-style comparison semantics.
std::string_view RTrim(const std::string& s) {
  size_t e = s.size();
  while (e > 0 && s[e - 1] == ' ') --e;
  return std::string_view(s.data(), e);
}
}  // namespace

double Datum::AsDouble() const {
  if (is_int()) return static_cast<double>(int_val());
  if (is_double()) return double_val();
  if (is_decimal()) return decimal_val().ToDouble();
  return std::nan("");
}

int64_t Datum::AsInt() const {
  if (is_int()) return int_val();
  if (is_double()) return static_cast<int64_t>(double_val());
  if (is_decimal()) return decimal_val().Rescale(0).value;
  if (is_bool()) return bool_val() ? 1 : 0;
  return 0;
}

Result<int> Datum::Compare(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) {
    return Status::Internal("Compare called on NULL datum");
  }
  auto cmp3 = [](auto x, auto y) { return x < y ? -1 : (x > y ? 1 : 0); };

  if (a.is_bool() && b.is_bool()) {
    return cmp3(a.bool_val(), b.bool_val());
  }
  if (a.is_numeric() && b.is_numeric()) {
    if (a.is_int() && b.is_int()) return cmp3(a.int_val(), b.int_val());
    if (a.is_decimal() && b.is_decimal()) {
      return Decimal::Compare(a.decimal_val(), b.decimal_val());
    }
    if (a.is_decimal() && b.is_int()) {
      return Decimal::Compare(a.decimal_val(), Decimal{b.int_val(), 0});
    }
    if (a.is_int() && b.is_decimal()) {
      return Decimal::Compare(Decimal{a.int_val(), 0}, b.decimal_val());
    }
    return cmp3(a.AsDouble(), b.AsDouble());
  }
  if (a.is_string() && b.is_string()) {
    int c = RTrim(a.string_val()).compare(RTrim(b.string_val()));
    return c < 0 ? -1 : (c > 0 ? 1 : 0);
  }
  if (a.is_date() && b.is_date()) return cmp3(a.date_val(), b.date_val());
  if (a.is_time() && b.is_time()) return cmp3(a.time_val(), b.time_val());
  if (a.is_timestamp() && b.is_timestamp()) {
    return cmp3(a.timestamp_val(), b.timestamp_val());
  }
  // DATE vs TIMESTAMP: widen date to midnight timestamp.
  if (a.is_date() && b.is_timestamp()) {
    return cmp3(static_cast<int64_t>(a.date_val()) * 86400000000LL,
                b.timestamp_val());
  }
  if (a.is_timestamp() && b.is_date()) {
    return cmp3(a.timestamp_val(),
                static_cast<int64_t>(b.date_val()) * 86400000000LL);
  }
  if (a.is_interval() && b.is_interval()) {
    return cmp3(a.interval_val(), b.interval_val());
  }
  if (a.is_period() && b.is_period()) {
    auto pa = a.period_val(), pb = b.period_val();
    if (pa.begin_days != pb.begin_days) {
      return cmp3(pa.begin_days, pb.begin_days);
    }
    return cmp3(pa.end_days, pb.end_days);
  }
  return Status::ExecutionError("cannot compare incompatible datums '",
                                a.ToString(), "' and '", b.ToString(), "'");
}

bool Datum::GroupEquals(const Datum& a, const Datum& b) {
  if (a.is_null() || b.is_null()) return a.is_null() && b.is_null();
  auto r = Compare(a, b);
  return r.ok() && *r == 0;
}

size_t Datum::Hash() const {
  if (is_null()) return 0x9e3779b97f4a7c15ULL;
  if (is_bool()) return std::hash<bool>{}(bool_val());
  // Numeric kinds must hash consistently with cross-kind GroupEquals: an
  // integer-valued decimal hashes like the integer.
  if (is_int()) return std::hash<int64_t>{}(int_val());
  if (is_decimal()) {
    const Decimal& d = decimal_val();
    if (d.value % Pow10(d.scale) == 0) {
      return std::hash<int64_t>{}(d.Rescale(0).value);
    }
    return std::hash<double>{}(d.ToDouble());
  }
  if (is_double()) {
    double v = double_val();
    if (v == static_cast<double>(static_cast<int64_t>(v))) {
      return std::hash<int64_t>{}(static_cast<int64_t>(v));
    }
    return std::hash<double>{}(v);
  }
  if (is_string()) {
    return std::hash<std::string_view>{}(RTrim(string_val()));
  }
  if (is_date()) return std::hash<int64_t>{}(date_val());
  if (is_time()) return std::hash<int64_t>{}(time_val());
  if (is_timestamp()) return std::hash<int64_t>{}(timestamp_val());
  if (is_interval()) return std::hash<int64_t>{}(interval_val());
  if (is_period()) {
    auto p = period_val();
    return std::hash<int64_t>{}((static_cast<int64_t>(p.begin_days) << 32) ^
                                p.end_days);
  }
  return 0;
}

Result<Datum> Datum::CastTo(const SqlType& type) const {
  if (is_null()) return Null();
  switch (type.kind) {
    case TypeKind::kBool:
      if (is_bool()) return *this;
      if (is_int()) return Bool(int_val() != 0);
      break;
    case TypeKind::kSmallInt:
    case TypeKind::kInt:
    case TypeKind::kBigInt:
      if (is_numeric() || is_bool()) return Int(AsInt());
      if (is_string()) {
        try {
          return Int(std::stoll(string_val()));
        } catch (...) {
          return Status::ExecutionError("cannot cast '", string_val(),
                                        "' to integer");
        }
      }
      // Teradata legacy: DATE casts to its integer encoding.
      if (is_date()) return Int(DateToTeradataInt(date_val()));
      break;
    case TypeKind::kDecimal: {
      if (is_decimal()) {
        return MakeDecimal(decimal_val().Rescale(type.scale));
      }
      if (is_int()) {
        return MakeDecimal(Decimal{int_val(), 0}.Rescale(type.scale));
      }
      if (is_double()) {
        return MakeDecimal(Decimal{
            static_cast<int64_t>(std::llround(double_val() *
                                              Pow10(type.scale))),
            type.scale});
      }
      if (is_string()) {
        HQ_ASSIGN_OR_RETURN(Decimal d, Decimal::Parse(string_val()));
        return MakeDecimal(d.Rescale(type.scale));
      }
      break;
    }
    case TypeKind::kDouble:
      if (is_numeric()) return MakeDouble(AsDouble());
      if (is_string()) {
        try {
          return MakeDouble(std::stod(string_val()));
        } catch (...) {
          return Status::ExecutionError("cannot cast '", string_val(),
                                        "' to double");
        }
      }
      break;
    case TypeKind::kChar:
    case TypeKind::kVarchar: {
      std::string s = is_string() ? string_val() : ToString();
      if (type.length > 0 && static_cast<int32_t>(s.size()) > type.length) {
        s.resize(type.length);
      }
      if (type.kind == TypeKind::kChar && type.length > 0) {
        s.resize(type.length, ' ');
      }
      return String(std::move(s));
    }
    case TypeKind::kDate:
      if (is_date()) return *this;
      if (is_string()) {
        HQ_ASSIGN_OR_RETURN(int32_t days, ParseDate(string_val()));
        return Date(days);
      }
      if (is_timestamp()) {
        int64_t micros = timestamp_val();
        int64_t days = micros / 86400000000LL;
        if (micros < 0 && micros % 86400000000LL != 0) --days;
        return Date(static_cast<int32_t>(days));
      }
      if (is_int()) {
        HQ_ASSIGN_OR_RETURN(int32_t days, TeradataIntToDate(int_val()));
        return Date(days);
      }
      break;
    case TypeKind::kTime:
      if (is_time()) return *this;
      if (is_string()) {
        HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTime(string_val()));
        return Time(micros);
      }
      break;
    case TypeKind::kTimestamp:
      if (is_timestamp()) return *this;
      if (is_date()) {
        return Timestamp(static_cast<int64_t>(date_val()) * 86400000000LL);
      }
      if (is_string()) {
        HQ_ASSIGN_OR_RETURN(int64_t micros, ParseTimestamp(string_val()));
        return Timestamp(micros);
      }
      break;
    case TypeKind::kInterval:
      if (is_interval()) return *this;
      break;
    case TypeKind::kPeriodDate:
      if (is_period()) return *this;
      break;
    case TypeKind::kNull:
      return *this;
  }
  return Status::ExecutionError("cannot cast ", ToString(), " to ",
                                type.ToString());
}

std::string Datum::ToString(bool teradata_style) const {
  if (is_null()) return teradata_style ? "?" : "NULL";
  if (is_bool()) return bool_val() ? "true" : "false";
  if (is_int()) return std::to_string(int_val());
  if (is_double()) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.10g", double_val());
    return buf;
  }
  if (is_decimal()) return decimal_val().ToString();
  if (is_string()) return string_val();
  if (is_date()) return FormatDate(date_val());
  if (is_time()) return FormatTime(time_val());
  if (is_timestamp()) return FormatTimestamp(timestamp_val());
  if (is_interval()) {
    return "INTERVAL " + std::to_string(interval_val()) + " MICROSECONDS";
  }
  if (is_period()) {
    auto p = period_val();
    return "PERIOD(" + FormatDate(p.begin_days) + ", " +
           FormatDate(p.end_days) + ")";
  }
  return "?";
}

}  // namespace hyperq
