#include "types/decimal.h"

#include <cctype>
#include <cstdlib>

namespace hyperq {

int64_t Pow10(int32_t n) {
  int64_t v = 1;
  for (int32_t i = 0; i < n; ++i) v *= 10;
  return v;
}

double Decimal::ToDouble() const {
  return static_cast<double>(value) / static_cast<double>(Pow10(scale));
}

Decimal Decimal::Rescale(int32_t new_scale) const {
  if (new_scale == scale) return *this;
  if (new_scale > scale) {
    return {value * Pow10(new_scale - scale), new_scale};
  }
  return {value / Pow10(scale - new_scale), new_scale};
}

std::string Decimal::ToString() const {
  if (scale == 0) return std::to_string(value);
  int64_t p = Pow10(scale);
  int64_t whole = value / p;
  int64_t frac = value % p;
  bool neg = value < 0;
  if (frac < 0) frac = -frac;
  std::string frac_str = std::to_string(frac);
  frac_str.insert(0, static_cast<size_t>(scale) - frac_str.size(), '0');
  std::string out;
  if (neg && whole == 0) out += '-';
  out += std::to_string(whole);
  out += '.';
  out += frac_str;
  return out;
}

Result<Decimal> Decimal::Parse(const std::string& text) {
  bool neg = false;
  size_t i = 0;
  if (i < text.size() && (text[i] == '+' || text[i] == '-')) {
    neg = text[i] == '-';
    ++i;
  }
  int64_t value = 0;
  int32_t scale = 0;
  bool saw_digit = false, saw_dot = false;
  for (; i < text.size(); ++i) {
    char c = text[i];
    if (c == '.') {
      if (saw_dot) return Status::InvalidArgument("bad decimal '", text, "'");
      saw_dot = true;
    } else if (std::isdigit(static_cast<unsigned char>(c))) {
      value = value * 10 + (c - '0');
      if (saw_dot) ++scale;
      saw_digit = true;
    } else {
      return Status::InvalidArgument("bad decimal '", text, "'");
    }
  }
  if (!saw_digit) return Status::InvalidArgument("bad decimal '", text, "'");
  return Decimal{neg ? -value : value, scale};
}

Decimal Decimal::Add(const Decimal& a, const Decimal& b) {
  int32_t s = std::max(a.scale, b.scale);
  return {a.Rescale(s).value + b.Rescale(s).value, s};
}

Decimal Decimal::Sub(const Decimal& a, const Decimal& b) {
  int32_t s = std::max(a.scale, b.scale);
  return {a.Rescale(s).value - b.Rescale(s).value, s};
}

Decimal Decimal::Mul(const Decimal& a, const Decimal& b) {
  __int128 prod = static_cast<__int128>(a.value) * b.value;
  int32_t s = a.scale + b.scale;
  while (s > kMaxScale) {
    prod /= 10;
    --s;
  }
  // Clamp into int64 range (saturating; overflow beyond this is a data issue
  // the engine reports at aggregation level).
  while (prod > INT64_MAX || prod < INT64_MIN) {
    prod /= 10;
    --s;
  }
  return {static_cast<int64_t>(prod), s};
}

int Decimal::Compare(const Decimal& a, const Decimal& b) {
  int32_t s = std::max(a.scale, b.scale);
  __int128 va = static_cast<__int128>(a.value) * Pow10(s - a.scale);
  __int128 vb = static_cast<__int128>(b.value) * Pow10(s - b.scale);
  if (va < vb) return -1;
  if (va > vb) return 1;
  return 0;
}

}  // namespace hyperq
