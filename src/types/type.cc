#include "types/type.h"

#include <algorithm>

namespace hyperq {

const char* TypeKindName(TypeKind kind) {
  switch (kind) {
    case TypeKind::kNull:
      return "NULL";
    case TypeKind::kBool:
      return "BOOLEAN";
    case TypeKind::kSmallInt:
      return "SMALLINT";
    case TypeKind::kInt:
      return "INTEGER";
    case TypeKind::kBigInt:
      return "BIGINT";
    case TypeKind::kDecimal:
      return "DECIMAL";
    case TypeKind::kDouble:
      return "DOUBLE PRECISION";
    case TypeKind::kChar:
      return "CHAR";
    case TypeKind::kVarchar:
      return "VARCHAR";
    case TypeKind::kDate:
      return "DATE";
    case TypeKind::kTime:
      return "TIME";
    case TypeKind::kTimestamp:
      return "TIMESTAMP";
    case TypeKind::kInterval:
      return "INTERVAL";
    case TypeKind::kPeriodDate:
      return "PERIOD(DATE)";
  }
  return "?";
}

std::string SqlType::ToString() const {
  switch (kind) {
    case TypeKind::kDecimal:
      return "DECIMAL(" + std::to_string(precision) + "," +
             std::to_string(scale) + ")";
    case TypeKind::kChar:
      return "CHAR(" + std::to_string(length) + ")";
    case TypeKind::kVarchar:
      return length > 0 ? "VARCHAR(" + std::to_string(length) + ")"
                        : "VARCHAR";
    default:
      return TypeKindName(kind);
  }
}

namespace {
// Numeric promotion rank: wider rank wins.
int NumericRank(TypeKind k) {
  switch (k) {
    case TypeKind::kSmallInt:
      return 1;
    case TypeKind::kInt:
      return 2;
    case TypeKind::kBigInt:
      return 3;
    case TypeKind::kDecimal:
      return 4;
    case TypeKind::kDouble:
      return 5;
    default:
      return 0;
  }
}
}  // namespace

SqlType CommonSuperType(const SqlType& a, const SqlType& b) {
  if (a.kind == TypeKind::kNull) return b;
  if (b.kind == TypeKind::kNull) return a;
  if (a == b) return a;
  if (a.IsNumeric() && b.IsNumeric()) {
    int ra = NumericRank(a.kind), rb = NumericRank(b.kind);
    if (a.kind == TypeKind::kDecimal && b.kind == TypeKind::kDecimal) {
      return SqlType::Decimal(std::max(a.precision, b.precision),
                              std::max(a.scale, b.scale));
    }
    const SqlType& wider = ra >= rb ? a : b;
    if (wider.kind == TypeKind::kDecimal) return wider;
    return wider;
  }
  if (a.IsString() && b.IsString()) {
    // CHAR vs VARCHAR unify to VARCHAR of the max length.
    int32_t len = (a.length == 0 || b.length == 0)
                      ? 0
                      : std::max(a.length, b.length);
    return SqlType::Varchar(len);
  }
  if (a.kind == b.kind) return a;
  // DATE vs TIMESTAMP widen to TIMESTAMP.
  if ((a.kind == TypeKind::kDate && b.kind == TypeKind::kTimestamp) ||
      (b.kind == TypeKind::kDate && a.kind == TypeKind::kTimestamp)) {
    return SqlType::Timestamp();
  }
  return SqlType::Null();  // incompatible
}

SqlType ArithmeticResultType(const SqlType& a, const SqlType& b, char op) {
  // DATE +/- integer yields DATE (day arithmetic); DATE - DATE yields INT.
  if (a.kind == TypeKind::kDate && b.IsInteger() && (op == '+' || op == '-')) {
    return SqlType::Date();
  }
  if (b.kind == TypeKind::kDate && a.IsInteger() && op == '+') {
    return SqlType::Date();
  }
  if (a.kind == TypeKind::kDate && b.kind == TypeKind::kDate && op == '-') {
    return SqlType::Int();
  }
  if (!a.IsNumeric() || !b.IsNumeric()) return SqlType::Null();
  if (a.kind == TypeKind::kDouble || b.kind == TypeKind::kDouble ||
      op == '/') {
    // Division always produces an approximate result in our runtime model.
    return SqlType::Double();
  }
  if (a.kind == TypeKind::kDecimal || b.kind == TypeKind::kDecimal) {
    int32_t sa = a.kind == TypeKind::kDecimal ? a.scale : 0;
    int32_t sb = b.kind == TypeKind::kDecimal ? b.scale : 0;
    int32_t scale = op == '*' ? std::min(sa + sb, 8) : std::max(sa, sb);
    return SqlType::Decimal(18, scale);
  }
  // Pure integer arithmetic widens to the wider operand.
  return NumericRank(a.kind) >= NumericRank(b.kind) ? a : b;
}

bool CanImplicitCast(const SqlType& from, const SqlType& to) {
  if (from.kind == TypeKind::kNull) return true;
  if (from.kind == to.kind) return true;
  if (from.IsNumeric() && to.IsNumeric()) return true;
  if (from.IsString() && to.IsString()) return true;
  if (from.kind == TypeKind::kDate && to.kind == TypeKind::kTimestamp) {
    return true;
  }
  // Strings parse to dates/timestamps implicitly in both dialects we model.
  if (from.IsString() && to.IsDateTime()) return true;
  return false;
}

}  // namespace hyperq
