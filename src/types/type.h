// Logical SQL type system shared by the frontend (Teradata-ish dialect),
// the XTRA algebra, and the target engine (vdb).
//
// DATE deserves a note: Teradata historically stores DATE as an INTEGER
// encoded (year-1900)*10000 + month*100 + day, which is why the dialect
// allows DATE<->INT comparison and arithmetic. We model DATE as a proper
// calendar date (days since 1970-01-01) and reproduce the Teradata behaviour
// through explicit rewrites (see binder/rewrites and types/date.h).

#pragma once

#include <cstdint>
#include <string>

namespace hyperq {

/// Kind discriminator for logical SQL types.
enum class TypeKind : uint8_t {
  kNull = 0,   // the type of a bare NULL literal before coercion
  kBool,
  kSmallInt,   // 16-bit
  kInt,        // 32-bit
  kBigInt,     // 64-bit
  kDecimal,    // fixed point, 64-bit unscaled value + scale
  kDouble,     // FLOAT / DOUBLE PRECISION
  kChar,       // fixed-length, blank-padded
  kVarchar,
  kDate,
  kTime,       // microseconds since midnight
  kTimestamp,  // microseconds since 1970-01-01 00:00:00
  kInterval,   // day-time interval stored as microseconds
  kPeriodDate, // Teradata PERIOD(DATE): [begin, end) pair of dates
};

const char* TypeKindName(TypeKind kind);

/// \brief A logical SQL type: kind plus parameters (length for CHAR/VARCHAR,
/// precision/scale for DECIMAL).
struct SqlType {
  TypeKind kind = TypeKind::kNull;
  int32_t length = 0;     // CHAR/VARCHAR max length; 0 = unbounded
  int32_t precision = 0;  // DECIMAL total digits
  int32_t scale = 0;      // DECIMAL fractional digits

  static SqlType Null() { return {TypeKind::kNull, 0, 0, 0}; }
  static SqlType Bool() { return {TypeKind::kBool, 0, 0, 0}; }
  static SqlType SmallInt() { return {TypeKind::kSmallInt, 0, 0, 0}; }
  static SqlType Int() { return {TypeKind::kInt, 0, 0, 0}; }
  static SqlType BigInt() { return {TypeKind::kBigInt, 0, 0, 0}; }
  static SqlType Decimal(int32_t precision, int32_t scale) {
    return {TypeKind::kDecimal, 0, precision, scale};
  }
  static SqlType Double() { return {TypeKind::kDouble, 0, 0, 0}; }
  static SqlType Char(int32_t length) {
    return {TypeKind::kChar, length, 0, 0};
  }
  static SqlType Varchar(int32_t length = 0) {
    return {TypeKind::kVarchar, length, 0, 0};
  }
  static SqlType Date() { return {TypeKind::kDate, 0, 0, 0}; }
  static SqlType Time() { return {TypeKind::kTime, 0, 0, 0}; }
  static SqlType Timestamp() { return {TypeKind::kTimestamp, 0, 0, 0}; }
  static SqlType Interval() { return {TypeKind::kInterval, 0, 0, 0}; }
  static SqlType PeriodDate() { return {TypeKind::kPeriodDate, 0, 0, 0}; }

  bool operator==(const SqlType& o) const {
    return kind == o.kind && length == o.length && precision == o.precision &&
           scale == o.scale;
  }
  bool operator!=(const SqlType& o) const { return !(*this == o); }

  bool IsNumeric() const {
    switch (kind) {
      case TypeKind::kSmallInt:
      case TypeKind::kInt:
      case TypeKind::kBigInt:
      case TypeKind::kDecimal:
      case TypeKind::kDouble:
        return true;
      default:
        return false;
    }
  }
  bool IsInteger() const {
    return kind == TypeKind::kSmallInt || kind == TypeKind::kInt ||
           kind == TypeKind::kBigInt;
  }
  bool IsString() const {
    return kind == TypeKind::kChar || kind == TypeKind::kVarchar;
  }
  bool IsDateTime() const {
    return kind == TypeKind::kDate || kind == TypeKind::kTime ||
           kind == TypeKind::kTimestamp;
  }

  /// \brief SQL-ish rendering, e.g. "DECIMAL(15,2)", "VARCHAR(25)".
  std::string ToString() const;
};

/// \brief Least common supertype for comparisons and set operations; returns
/// kNull kind if the pair is incompatible.
SqlType CommonSuperType(const SqlType& a, const SqlType& b);

/// \brief Result type of arithmetic op between numeric types (Teradata-style
/// promotion: decimal dominates integer, double dominates all).
SqlType ArithmeticResultType(const SqlType& a, const SqlType& b,
                             char op /* '+','-','*','/' */);

/// \brief True if a value of `from` can be implicitly coerced to `to`.
bool CanImplicitCast(const SqlType& from, const SqlType& to);

}  // namespace hyperq
