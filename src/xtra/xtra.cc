#include "xtra/xtra.h"

namespace hyperq::xtra {

const char* ArithKindName(ArithKind k) {
  switch (k) {
    case ArithKind::kAdd:
      return "+";
    case ArithKind::kSub:
      return "-";
    case ArithKind::kMul:
      return "*";
    case ArithKind::kDiv:
      return "/";
    case ArithKind::kMod:
      return "MOD";
    case ArithKind::kConcat:
      return "||";
  }
  return "?";
}

const char* CompKindName(CompKind k) {
  switch (k) {
    case CompKind::kEq:
      return "EQ";
    case CompKind::kNe:
      return "NE";
    case CompKind::kLt:
      return "LT";
    case CompKind::kLe:
      return "LTE";
    case CompKind::kGt:
      return "GT";
    case CompKind::kGe:
      return "GTE";
  }
  return "?";
}

const char* CompKindSql(CompKind k) {
  switch (k) {
    case CompKind::kEq:
      return "=";
    case CompKind::kNe:
      return "<>";
    case CompKind::kLt:
      return "<";
    case CompKind::kLe:
      return "<=";
    case CompKind::kGt:
      return ">";
    case CompKind::kGe:
      return ">=";
  }
  return "?";
}

CompKind NegateComp(CompKind k) {
  switch (k) {
    case CompKind::kEq:
      return CompKind::kNe;
    case CompKind::kNe:
      return CompKind::kEq;
    case CompKind::kLt:
      return CompKind::kGe;
    case CompKind::kLe:
      return CompKind::kGt;
    case CompKind::kGt:
      return CompKind::kLe;
    case CompKind::kGe:
      return CompKind::kLt;
  }
  return k;
}

CompKind SwapComp(CompKind k) {
  switch (k) {
    case CompKind::kLt:
      return CompKind::kGt;
    case CompKind::kLe:
      return CompKind::kGe;
    case CompKind::kGt:
      return CompKind::kLt;
    case CompKind::kGe:
      return CompKind::kLe;
    default:
      return k;
  }
}

ExprPtr Expr::Clone() const {
  auto c = std::make_unique<Expr>(kind);
  c->type = type;
  c->col_id = col_id;
  c->col_name = col_name;
  c->value = value;
  c->arith = arith;
  c->comp = comp;
  c->boolk = boolk;
  c->func_name = func_name;
  c->distinct_arg = distinct_arg;
  c->negated = negated;
  for (const auto& ch : children) c->children.push_back(ch->Clone());
  for (const auto& [w, t] : when_then) {
    c->when_then.emplace_back(w->Clone(), t->Clone());
  }
  if (else_expr) c->else_expr = else_expr->Clone();
  if (subplan) c->subplan = subplan->Clone();
  c->quant_cmp = quant_cmp;
  c->quantifier = quantifier;
  return c;
}

OpPtr Op::Clone() const {
  auto c = std::make_unique<Op>(kind);
  for (const auto& ch : children) c->children.push_back(ch->Clone());
  c->output = output;
  c->table_name = table_name;
  c->alias = alias;
  for (const auto& row : rows) {
    std::vector<ExprPtr> r;
    for (const auto& e : row) r.push_back(e->Clone());
    c->rows.push_back(std::move(r));
  }
  if (predicate) c->predicate = predicate->Clone();
  for (const auto& p : projections) {
    ProjectItem pi;
    pi.expr = p.expr->Clone();
    pi.out_id = p.out_id;
    pi.name = p.name;
    c->projections.push_back(std::move(pi));
  }
  for (const auto& w : windows) {
    WindowItem wi;
    wi.func = w.func;
    for (const auto& a : w.args) wi.args.push_back(a->Clone());
    for (const auto& p : w.partition_by) {
      wi.partition_by.push_back(p->Clone());
    }
    for (const auto& o : w.order_by) {
      WindowItem::Order oo;
      oo.expr = o.expr->Clone();
      oo.descending = o.descending;
      oo.nulls_first = o.nulls_first;
      wi.order_by.push_back(std::move(oo));
    }
    wi.out_id = w.out_id;
    wi.name = w.name;
    wi.type = w.type;
    c->windows.push_back(std::move(wi));
  }
  for (const auto& g : group_by) c->group_by.push_back(g->Clone());
  for (const auto& a : aggregates) {
    AggItem ai;
    ai.func = a.func;
    if (a.arg) ai.arg = a.arg->Clone();
    ai.distinct = a.distinct;
    ai.out_id = a.out_id;
    ai.name = a.name;
    ai.type = a.type;
    c->aggregates.push_back(std::move(ai));
  }
  c->grouping_sets = grouping_sets;
  c->join_kind = join_kind;
  c->setop_kind = setop_kind;
  for (const auto& s : sort_items) {
    SortItem si;
    si.expr = s.expr->Clone();
    si.descending = s.descending;
    si.nulls_first = s.nulls_first;
    c->sort_items.push_back(std::move(si));
  }
  c->limit_count = limit_count;
  c->with_ties = with_ties;
  c->cte_name = cte_name;
  c->cte_columns = cte_columns;
  c->target_table = target_table;
  c->target_columns = target_columns;
  c->target_col_ids = target_col_ids;
  for (const auto& [n, e] : assignments) {
    c->assignments.emplace_back(n, e->Clone());
  }
  c->post_window_filter = post_window_filter;
  c->project_distinct = project_distinct;
  return c;
}

const ColumnInfo* Op::FindOutput(int id) const {
  for (const auto& col : output) {
    if (col.id == id) return &col;
  }
  return nullptr;
}

ExprPtr ColRef(int id, std::string name, SqlType type) {
  auto e = std::make_unique<Expr>(ExprKind::kColRef);
  e->col_id = id;
  e->col_name = std::move(name);
  e->type = type;
  return e;
}

ExprPtr Const(Datum v, SqlType type) {
  auto e = std::make_unique<Expr>(ExprKind::kConst);
  e->value = std::move(v);
  e->type = type;
  return e;
}

ExprPtr IntConst(int64_t v) { return Const(Datum::Int(v), SqlType::Int()); }

ExprPtr StrConst(std::string v) {
  auto len = static_cast<int32_t>(v.size());
  return Const(Datum::String(std::move(v)), SqlType::Varchar(len));
}

ExprPtr Arith(ArithKind k, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>(ExprKind::kArith);
  e->arith = k;
  char op = k == ArithKind::kAdd   ? '+'
            : k == ArithKind::kSub ? '-'
            : k == ArithKind::kMul ? '*'
            : k == ArithKind::kDiv ? '/'
                                   : '%';
  if (k == ArithKind::kConcat) {
    e->type = SqlType::Varchar(0);
  } else {
    e->type = ArithmeticResultType(l->type, r->type, op);
  }
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr Comp(CompKind k, ExprPtr l, ExprPtr r) {
  auto e = std::make_unique<Expr>(ExprKind::kComp);
  e->comp = k;
  e->type = SqlType::Bool();
  e->children.push_back(std::move(l));
  e->children.push_back(std::move(r));
  return e;
}

ExprPtr BoolOp(BoolKind k, std::vector<ExprPtr> children) {
  auto e = std::make_unique<Expr>(ExprKind::kBool);
  e->boolk = k;
  e->type = SqlType::Bool();
  e->children = std::move(children);
  return e;
}

ExprPtr Not(ExprPtr c) {
  auto e = std::make_unique<Expr>(ExprKind::kNot);
  e->type = SqlType::Bool();
  e->children.push_back(std::move(c));
  return e;
}

ExprPtr Func(std::string name, std::vector<ExprPtr> args, SqlType type) {
  auto e = std::make_unique<Expr>(ExprKind::kFunc);
  e->func_name = std::move(name);
  e->children = std::move(args);
  e->type = type;
  return e;
}

ExprPtr Conjoin(std::vector<ExprPtr> conjuncts) {
  if (conjuncts.empty()) return nullptr;
  if (conjuncts.size() == 1) return std::move(conjuncts[0]);
  return BoolOp(BoolKind::kAnd, std::move(conjuncts));
}

OpPtr Get(std::string table, std::vector<ColumnInfo> cols, std::string alias) {
  auto op = std::make_unique<Op>(OpKind::kGet);
  op->table_name = std::move(table);
  op->output = std::move(cols);
  op->alias = std::move(alias);
  return op;
}

OpPtr Select(OpPtr child, ExprPtr predicate) {
  auto op = std::make_unique<Op>(OpKind::kSelect);
  op->output = child->output;
  op->children.push_back(std::move(child));
  op->predicate = std::move(predicate);
  return op;
}

OpPtr Project(OpPtr child, std::vector<ProjectItem> items) {
  auto op = std::make_unique<Op>(OpKind::kProject);
  for (const auto& item : items) {
    op->output.push_back({item.out_id, item.name, item.expr->type});
  }
  op->children.push_back(std::move(child));
  op->projections = std::move(items);
  return op;
}

void VisitExprsImpl(const Expr& e, const std::function<bool(const Expr&)>& fn,
                    bool* keep_going);

static void VisitOpExprs(const Op& op,
                         const std::function<bool(const Expr&)>& fn,
                         bool* keep_going) {
  auto visit = [&](const ExprPtr& e) {
    if (e && *keep_going) VisitExprsImpl(*e, fn, keep_going);
  };
  for (const auto& row : op.rows) {
    for (const auto& e : row) visit(e);
  }
  visit(op.predicate);
  for (const auto& p : op.projections) visit(p.expr);
  for (const auto& w : op.windows) {
    for (const auto& a : w.args) visit(a);
    for (const auto& p : w.partition_by) visit(p);
    for (const auto& o : w.order_by) visit(o.expr);
  }
  for (const auto& g : op.group_by) visit(g);
  for (const auto& a : op.aggregates) visit(a.arg);
  for (const auto& s : op.sort_items) visit(s.expr);
  for (const auto& [n, e] : op.assignments) visit(e);
  for (const auto& child : op.children) {
    if (!*keep_going) return;
    VisitOpExprs(*child, fn, keep_going);
  }
}

void VisitExprsImpl(const Expr& e, const std::function<bool(const Expr&)>& fn,
                    bool* keep_going) {
  if (!*keep_going) return;
  if (!fn(e)) {
    *keep_going = false;
    return;
  }
  for (const auto& c : e.children) {
    if (c) VisitExprsImpl(*c, fn, keep_going);
  }
  for (const auto& [w, t] : e.when_then) {
    if (w) VisitExprsImpl(*w, fn, keep_going);
    if (t) VisitExprsImpl(*t, fn, keep_going);
  }
  if (e.else_expr) VisitExprsImpl(*e.else_expr, fn, keep_going);
  if (e.subplan) VisitOpExprs(*e.subplan, fn, keep_going);
}

void VisitExprs(const Op& op, const std::function<bool(const Expr&)>& fn) {
  bool keep_going = true;
  VisitOpExprs(op, fn, &keep_going);
}

bool ExprEquals(const Expr& a, const Expr& b) {
  if (a.kind != b.kind) return false;
  switch (a.kind) {
    case ExprKind::kColRef:
      return a.col_id == b.col_id;
    case ExprKind::kConst:
      return a.value == b.value && !(a.value.is_null() != b.value.is_null());
    case ExprKind::kArith:
      if (a.arith != b.arith) return false;
      break;
    case ExprKind::kComp:
      if (a.comp != b.comp) return false;
      break;
    case ExprKind::kBool:
      if (a.boolk != b.boolk) return false;
      break;
    case ExprKind::kFunc:
    case ExprKind::kAgg:
    case ExprKind::kExtract:
      if (a.func_name != b.func_name || a.distinct_arg != b.distinct_arg) {
        return false;
      }
      break;
    case ExprKind::kCast:
      if (!(a.type == b.type)) return false;
      break;
    case ExprKind::kIsNull:
    case ExprKind::kLike:
    case ExprKind::kInList:
      if (a.negated != b.negated) return false;
      break;
    case ExprKind::kSubqScalar:
    case ExprKind::kSubqExists:
    case ExprKind::kSubqQuantified:
    case ExprKind::kSubqIn:
      return false;
    default:
      break;
  }
  if (a.children.size() != b.children.size()) return false;
  for (size_t i = 0; i < a.children.size(); ++i) {
    if (!ExprEquals(*a.children[i], *b.children[i])) return false;
  }
  if (a.when_then.size() != b.when_then.size()) return false;
  for (size_t i = 0; i < a.when_then.size(); ++i) {
    if (!ExprEquals(*a.when_then[i].first, *b.when_then[i].first) ||
        !ExprEquals(*a.when_then[i].second, *b.when_then[i].second)) {
      return false;
    }
  }
  if ((a.else_expr == nullptr) != (b.else_expr == nullptr)) return false;
  if (a.else_expr && !ExprEquals(*a.else_expr, *b.else_expr)) return false;
  return true;
}

}  // namespace hyperq::xtra
