// XTRA — eXtended Relational Algebra, the language-agnostic query
// representation at the heart of Hyper-Q (paper §4.2).
//
// The binder turns dialect ASTs into XTRA; the Transformer rewrites XTRA to
// XTRA; per-backend Serializers turn XTRA into target SQL text. XTRA builds
// on a uniform algebraic model: every operator's output is a function of its
// inputs and its own type, and every scalar expression carries a derived
// SqlType.
//
// Columns are identified by integer ids unique within one query tree
// (allocated by the binder's ColIdGenerator), so rewrites never have to
// re-resolve names.

#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "types/datum.h"
#include "types/type.h"

namespace hyperq::xtra {

struct Expr;
struct Op;
using ExprPtr = std::unique_ptr<Expr>;
using OpPtr = std::unique_ptr<Op>;

// ---------------------------------------------------------------------------
// Scalar expressions
// ---------------------------------------------------------------------------

enum class ExprKind : uint8_t {
  kColRef,     // resolved column reference
  kConst,      // literal
  kArith,      // + - * / MOD ||
  kComp,       // = <> < <= > >=
  kBool,       // AND / OR over n children
  kNot,
  kFunc,       // scalar function call
  kAgg,        // aggregate call (only inside Aggregate op items)
  kCast,
  kCase,
  kIsNull,     // IS [NOT] NULL
  kLike,       // [NOT] LIKE
  kInList,     // [NOT] IN (e1, ..., en)
  kExtract,    // EXTRACT(field FROM x)
  kSubqScalar,     // scalar subquery (plan child)
  kSubqExists,     // [NOT] EXISTS (plan child)
  kSubqQuantified, // <row> cmp ANY/ALL (plan child)
  kSubqIn,         // <value> [NOT] IN (plan child)
};

enum class ArithKind : uint8_t { kAdd, kSub, kMul, kDiv, kMod, kConcat };
enum class CompKind : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };
enum class BoolKind : uint8_t { kAnd, kOr };
enum class Quantifier : uint8_t { kAny, kAll };

const char* ArithKindName(ArithKind k);   // "+", "-", ...
const char* CompKindName(CompKind k);     // "EQ", "GT", ... (printer style)
const char* CompKindSql(CompKind k);      // "=", ">", ... (serializer style)
CompKind NegateComp(CompKind k);          // for NOT pushdown
CompKind SwapComp(CompKind k);            // a<b  <=>  b>a

/// \brief One XTRA scalar expression node (fat tagged struct).
struct Expr {
  ExprKind kind;
  SqlType type;  // derived result type

  // kColRef
  int col_id = -1;
  std::string col_name;  // display name, not used for resolution

  // kConst
  Datum value;

  // kArith / kComp / kBool
  ArithKind arith = ArithKind::kAdd;
  CompKind comp = CompKind::kEq;
  BoolKind boolk = BoolKind::kAnd;

  // kFunc / kAgg / kExtract field
  std::string func_name;
  bool distinct_arg = false;  // kAgg

  // kLike / kIsNull / kInList / kSubqExists / kSubqIn
  bool negated = false;

  // Children (operands / arguments / IN-list items / quantified row).
  std::vector<ExprPtr> children;

  // kCase
  std::vector<std::pair<ExprPtr, ExprPtr>> when_then;
  ExprPtr else_expr;

  // Subquery kinds: the subplan.
  OpPtr subplan;
  CompKind quant_cmp = CompKind::kEq;
  Quantifier quantifier = Quantifier::kAny;

  explicit Expr(ExprKind k) : kind(k) {}
  ExprPtr Clone() const;
};

ExprPtr ColRef(int id, std::string name, SqlType type);
ExprPtr Const(Datum v, SqlType type);
ExprPtr IntConst(int64_t v);
ExprPtr StrConst(std::string v);
ExprPtr Arith(ArithKind k, ExprPtr l, ExprPtr r);
ExprPtr Comp(CompKind k, ExprPtr l, ExprPtr r);
ExprPtr BoolOp(BoolKind k, std::vector<ExprPtr> children);
ExprPtr Not(ExprPtr c);
ExprPtr Func(std::string name, std::vector<ExprPtr> args, SqlType type);

/// \brief AND of the given conjuncts (returns the single conjunct as-is,
/// nullptr for empty input).
ExprPtr Conjoin(std::vector<ExprPtr> conjuncts);

// ---------------------------------------------------------------------------
// Operators
// ---------------------------------------------------------------------------

enum class OpKind : uint8_t {
  kGet,          // base table scan
  kValues,       // literal rows
  kSelect,       // filter
  kProject,      // compute/remap columns
  kWindow,       // compute window function columns
  kAggregate,    // group by + aggregates
  kJoin,
  kSetOp,
  kSort,
  kLimit,
  kCteRef,       // reference to a named CTE (recursive emulation keeps these)
  kRecursiveCte, // WITH RECURSIVE wrapper: seed + recursive + main
  kInsert,
  kUpdate,
  kDelete,
};

enum class JoinKind : uint8_t { kInner, kLeft, kRight, kFull, kCross };
enum class SetOpKind : uint8_t { kUnion, kUnionAll, kIntersect, kExcept };

/// \brief A column produced by an operator.
struct ColumnInfo {
  int id = -1;
  std::string name;
  SqlType type;
};

/// \brief Projection item: expression bound to an output column id.
struct ProjectItem {
  ExprPtr expr;
  int out_id = -1;
  std::string name;
};

/// \brief A window-function computation inside a Window operator.
struct WindowItem {
  std::string func;            // RANK / ROW_NUMBER / SUM / AVG / ...
  std::vector<ExprPtr> args;
  std::vector<ExprPtr> partition_by;
  struct Order {
    ExprPtr expr;
    bool descending = false;
    std::optional<bool> nulls_first;
  };
  std::vector<Order> order_by;
  int out_id = -1;
  std::string name;
  SqlType type;
};

/// \brief Aggregate computation inside an Aggregate operator.
struct AggItem {
  std::string func;  // SUM / COUNT / AVG / MIN / MAX; COUNT with no arg = *
  ExprPtr arg;       // null for COUNT(*)
  bool distinct = false;
  int out_id = -1;
  std::string name;
  SqlType type;
};

struct SortItem {
  ExprPtr expr;
  bool descending = false;
  std::optional<bool> nulls_first;
};

/// \brief One XTRA operator node (fat tagged struct).
struct Op {
  OpKind kind;
  std::vector<OpPtr> children;

  /// Output schema; filled by the binder and kept consistent by rewrites.
  std::vector<ColumnInfo> output;

  // kGet
  std::string table_name;
  std::string alias;  // display alias, e.g. 'S2' in the paper's Figure 6

  // kValues
  std::vector<std::vector<ExprPtr>> rows;

  // kSelect / kJoin predicate / kUpdate / kDelete predicate
  ExprPtr predicate;

  // kProject
  std::vector<ProjectItem> projections;
  bool project_distinct = false;  // SELECT DISTINCT

  // kWindow
  std::vector<WindowItem> windows;

  // kAggregate
  std::vector<ExprPtr> group_by;  // grouping expressions
  std::vector<AggItem> aggregates;
  /// Optional grouping sets over indexes into group_by (ROLLUP/CUBE
  /// normalize to this; targets without support get a UNION ALL expansion
  /// from the transformer).
  std::vector<std::vector<int>> grouping_sets;

  // kJoin
  JoinKind join_kind = JoinKind::kInner;

  // kSetOp
  SetOpKind setop_kind = SetOpKind::kUnionAll;

  // kSort
  std::vector<SortItem> sort_items;

  // kLimit
  int64_t limit_count = -1;
  bool with_ties = false;

  // kCteRef / kRecursiveCte
  std::string cte_name;
  std::vector<std::string> cte_columns;

  // kInsert / kUpdate / kDelete
  std::string target_table;
  std::vector<std::string> target_columns;            // kInsert
  std::vector<std::pair<std::string, ExprPtr>> assignments;  // kUpdate
  /// kUpdate/kDelete: the column ids the binder assigned to the target
  /// table's columns (in table order); the executor binds them to row slots.
  std::vector<int> target_col_ids;

  // kSelect marker: true when this filter must run *after* window
  // computation (a lowered QUALIFY); serializers wrap it in a derived table.
  bool post_window_filter = false;

  explicit Op(OpKind k) : kind(k) {}
  OpPtr Clone() const;

  /// \brief Looks up an output column by id; nullptr when absent.
  const ColumnInfo* FindOutput(int id) const;
};

OpPtr Get(std::string table, std::vector<ColumnInfo> cols,
          std::string alias = "");
OpPtr Select(OpPtr child, ExprPtr predicate);
OpPtr Project(OpPtr child, std::vector<ProjectItem> items);

// ---------------------------------------------------------------------------
// Tree printing (matches the paper's Figures 5/6 dump style)
// ---------------------------------------------------------------------------

/// \brief Renders the operator tree in the paper's dump format, e.g.
///
///   +-select
///   |-window(RANK , DESC , AMOUNT)
///   | +-select ...
///   +-comp(LTE) ...
std::string ToTreeString(const Op& op);
std::string ToTreeString(const Expr& expr);

/// \brief Walks all expressions of an operator tree (pre-order); the visitor
/// may return false to stop.
void VisitExprs(const Op& op, const std::function<bool(const Expr&)>& fn);

/// \brief Structural equality of scalar expressions. Subquery expressions
/// never compare equal (each subplan is unique).
bool ExprEquals(const Expr& a, const Expr& b);

}  // namespace hyperq::xtra
