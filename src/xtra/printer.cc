// Tree dumps in the paper's Figure 5/6 style. Whitespace is normalized
// relative to the paper (the original mixes "arith (+)" and "arith(-)"); the
// golden tests in tests/ assert this canonical form.

#include <functional>
#include <sstream>

#include "xtra/xtra.h"

namespace hyperq::xtra {

namespace {

// A printable tree node: label + children, built from ops and exprs.
struct Node {
  std::string label;
  std::vector<Node> children;
};

std::string ExprInline(const Expr& e);

// Renders simple expressions inline for labels like window(RANK, DESC, X).
std::string ExprInline(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColRef:
      return e.col_name;
    case ExprKind::kConst:
      return e.value.ToString();
    case ExprKind::kArith:
      return ExprInline(*e.children[0]) + " " + ArithKindName(e.arith) + " " +
             ExprInline(*e.children[1]);
    case ExprKind::kFunc: {
      std::string out = e.func_name + "(";
      for (size_t i = 0; i < e.children.size(); ++i) {
        if (i > 0) out += ", ";
        out += ExprInline(*e.children[i]);
      }
      return out + ")";
    }
    default:
      return "<expr>";
  }
}

Node BuildExpr(const Expr& e);
Node BuildOp(const Op& op);

Node BuildExpr(const Expr& e) {
  Node n;
  switch (e.kind) {
    case ExprKind::kColRef:
      n.label = "ident(" + e.col_name + ")";
      return n;
    case ExprKind::kConst:
      n.label = "const(" + e.value.ToString() + ")";
      return n;
    case ExprKind::kArith: {
      n.label = std::string("arith(") + ArithKindName(e.arith) + ")";
      // Left-nested chains of the same additive operator print n-ary,
      // matching the paper's arith(+) with three children (Figure 5).
      if (e.arith == ArithKind::kAdd || e.arith == ArithKind::kMul) {
        std::vector<const Expr*> flat;
        std::function<void(const Expr&)> flatten = [&](const Expr& x) {
          if (x.kind == ExprKind::kArith && x.arith == e.arith) {
            flatten(*x.children[0]);
            flatten(*x.children[1]);
          } else {
            flat.push_back(&x);
          }
        };
        flatten(e);
        if (flat.size() > 2) {
          for (const Expr* c : flat) n.children.push_back(BuildExpr(*c));
          return n;
        }
      }
      break;
    }
    case ExprKind::kComp:
      n.label = std::string("comp(") + CompKindName(e.comp) + ")";
      break;
    case ExprKind::kBool:
      n.label = std::string("boolexpr(") +
                (e.boolk == BoolKind::kAnd ? "AND" : "OR") + ")";
      break;
    case ExprKind::kNot:
      n.label = "boolexpr(NOT)";
      break;
    case ExprKind::kFunc:
      n.label = "func(" + e.func_name + ")";
      break;
    case ExprKind::kAgg:
      n.label = "agg(" + e.func_name + (e.distinct_arg ? ", DISTINCT" : "") +
                ")";
      break;
    case ExprKind::kCast:
      n.label = "cast(" + e.type.ToString() + ")";
      break;
    case ExprKind::kCase:
      n.label = "case";
      for (const auto& [w, t] : e.when_then) {
        Node when{"when", {}};
        when.children.push_back(BuildExpr(*w));
        when.children.push_back(BuildExpr(*t));
        n.children.push_back(std::move(when));
      }
      if (e.else_expr) {
        Node els{"else", {}};
        els.children.push_back(BuildExpr(*e.else_expr));
        n.children.push_back(std::move(els));
      }
      return n;
    case ExprKind::kIsNull:
      n.label = e.negated ? "is_not_null" : "is_null";
      break;
    case ExprKind::kLike:
      n.label = e.negated ? "not_like" : "like";
      break;
    case ExprKind::kInList:
      n.label = e.negated ? "not_in" : "in";
      break;
    case ExprKind::kExtract: {
      // Matches the paper's extract(DAY, SALES_DATE) inline form when the
      // operand is simple.
      const Expr& arg = *e.children[0];
      if (arg.kind == ExprKind::kColRef || arg.kind == ExprKind::kConst) {
        n.label = "extract(" + e.func_name + ", " + ExprInline(arg) + ")";
        return n;
      }
      n.label = "extract(" + e.func_name + ")";
      break;
    }
    case ExprKind::kSubqScalar:
      n.label = "subq(SCALAR)";
      n.children.push_back(BuildOp(*e.subplan));
      return n;
    case ExprKind::kSubqExists:
      n.label = e.negated ? "subq(NOT EXISTS)" : "subq(EXISTS)";
      n.children.push_back(BuildOp(*e.subplan));
      return n;
    case ExprKind::kSubqIn:
      n.label = e.negated ? "subq(NOT IN)" : "subq(IN)";
      n.children.push_back(BuildOp(*e.subplan));
      if (!e.children.empty()) {
        Node list{"list", {}};
        for (const auto& c : e.children) list.children.push_back(BuildExpr(*c));
        n.children.push_back(std::move(list));
      }
      return n;
    case ExprKind::kSubqQuantified: {
      // subq(ANY, GT, [GROSS, NET]) per Figure 5.
      std::string cols = "[";
      for (size_t i = 0; i < e.subplan->output.size(); ++i) {
        if (i > 0) cols += ", ";
        cols += e.subplan->output[i].name;
      }
      cols += "]";
      n.label = std::string("subq(") +
                (e.quantifier == Quantifier::kAny ? "ANY" : "ALL") + ", " +
                CompKindName(e.quant_cmp) + ", " + cols + ")";
      n.children.push_back(BuildOp(*e.subplan));
      Node list{"list", {}};
      for (const auto& c : e.children) list.children.push_back(BuildExpr(*c));
      n.children.push_back(std::move(list));
      return n;
    }
  }
  for (const auto& c : e.children) {
    if (c) n.children.push_back(BuildExpr(*c));
  }
  return n;
}

Node BuildOp(const Op& op) {
  Node n;
  switch (op.kind) {
    case OpKind::kGet:
      n.label = "get(" + op.table_name +
                (op.alias.empty() || op.alias == op.table_name
                     ? ""
                     : " '" + op.alias + "'") +
                ")";
      return n;
    case OpKind::kValues:
      n.label = "values(" + std::to_string(op.rows.size()) + " rows)";
      return n;
    case OpKind::kSelect:
      n.label = "select";
      n.children.push_back(BuildOp(*op.children[0]));
      if (op.predicate) n.children.push_back(BuildExpr(*op.predicate));
      return n;
    case OpKind::kProject: {
      // Pass-through projections (bare column remaps) are elided, matching
      // the paper's dumps where the subquery body prints as a bare get.
      bool pass_through = !op.projections.empty() && !op.project_distinct;
      for (const auto& p : op.projections) {
        if (p.expr->kind != ExprKind::kColRef ||
            p.expr->col_id != p.out_id) {
          pass_through = false;
        }
      }
      if (pass_through) return BuildOp(*op.children[0]);
      bool all_const = !op.projections.empty();
      for (const auto& p : op.projections) {
        if (p.expr->kind != ExprKind::kConst) all_const = false;
      }
      if (all_const) {
        // Paper Figure 6: "remap consts: (1)".
        std::string vals;
        for (size_t i = 0; i < op.projections.size(); ++i) {
          if (i > 0) vals += ", ";
          vals += op.projections[i].expr->value.ToString();
        }
        n.label = "remap consts: (" + vals + ")";
        n.children.push_back(BuildOp(*op.children[0]));
        return n;
      }
      n.label = "project";
      n.children.push_back(BuildOp(*op.children[0]));
      for (const auto& p : op.projections) {
        n.children.push_back(BuildExpr(*p.expr));
      }
      return n;
    }
    case OpKind::kWindow: {
      // window(RANK, DESC, AMOUNT) per Figure 5.
      std::string detail;
      for (const auto& w : op.windows) {
        if (!detail.empty()) detail += "; ";
        detail += w.func;
        for (const auto& a : w.args) detail += ", " + ExprInline(*a);
        for (const auto& o : w.order_by) {
          detail += std::string(", ") + (o.descending ? "DESC" : "ASC") +
                    ", " + ExprInline(*o.expr);
        }
        if (!w.partition_by.empty()) {
          detail += ", PARTITION:";
          for (const auto& p : w.partition_by) {
            detail += " " + ExprInline(*p);
          }
        }
      }
      n.label = "window(" + detail + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      return n;
    }
    case OpKind::kAggregate: {
      std::string groups;
      for (size_t i = 0; i < op.group_by.size(); ++i) {
        if (i > 0) groups += ", ";
        groups += ExprInline(*op.group_by[i]);
      }
      n.label = "aggregate(" + groups + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      for (const auto& a : op.aggregates) {
        Node agg{"agg(" + a.func + (a.distinct ? ", DISTINCT" : "") + ")", {}};
        if (a.arg) agg.children.push_back(BuildExpr(*a.arg));
        n.children.push_back(std::move(agg));
      }
      return n;
    }
    case OpKind::kJoin: {
      const char* name = op.join_kind == JoinKind::kInner   ? "INNER"
                         : op.join_kind == JoinKind::kLeft  ? "LEFT"
                         : op.join_kind == JoinKind::kRight ? "RIGHT"
                         : op.join_kind == JoinKind::kFull  ? "FULL"
                                                            : "CROSS";
      n.label = std::string("join(") + name + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      n.children.push_back(BuildOp(*op.children[1]));
      if (op.predicate) n.children.push_back(BuildExpr(*op.predicate));
      return n;
    }
    case OpKind::kSetOp: {
      const char* name = op.setop_kind == SetOpKind::kUnion      ? "UNION"
                         : op.setop_kind == SetOpKind::kUnionAll ? "UNION ALL"
                         : op.setop_kind == SetOpKind::kIntersect
                             ? "INTERSECT"
                             : "EXCEPT";
      n.label = std::string("setop(") + name + ")";
      for (const auto& c : op.children) n.children.push_back(BuildOp(*c));
      return n;
    }
    case OpKind::kSort: {
      std::string detail;
      for (size_t i = 0; i < op.sort_items.size(); ++i) {
        if (i > 0) detail += ", ";
        detail += ExprInline(*op.sort_items[i].expr);
        detail += op.sort_items[i].descending ? " DESC" : " ASC";
      }
      n.label = "sort(" + detail + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      return n;
    }
    case OpKind::kLimit:
      n.label = "limit(" + std::to_string(op.limit_count) +
                (op.with_ties ? ", WITH TIES" : "") + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      return n;
    case OpKind::kCteRef:
      n.label = "cte_ref(" + op.cte_name + ")";
      return n;
    case OpKind::kRecursiveCte:
      n.label = "recursive_cte(" + op.cte_name + ")";
      for (const auto& c : op.children) n.children.push_back(BuildOp(*c));
      return n;
    case OpKind::kInsert:
      n.label = "insert(" + op.target_table + ")";
      n.children.push_back(BuildOp(*op.children[0]));
      return n;
    case OpKind::kUpdate:
      n.label = "update(" + op.target_table + ")";
      for (const auto& [c, e] : op.assignments) {
        Node set{"set(" + c + ")", {}};
        set.children.push_back(BuildExpr(*e));
        n.children.push_back(std::move(set));
      }
      if (op.predicate) n.children.push_back(BuildExpr(*op.predicate));
      return n;
    case OpKind::kDelete:
      n.label = "delete(" + op.target_table + ")";
      if (op.predicate) n.children.push_back(BuildExpr(*op.predicate));
      return n;
  }
  n.label = "?";
  return n;
}

// Paper layout: a node is printed as prefix + ("+-" last / "|-" otherwise) +
// label; children of a *last* node keep the same prefix, children of a
// non-last node extend it with "| ".
void Render(const Node& node, const std::string& prefix, bool last,
            std::ostringstream& out) {
  out << prefix << (last ? "+-" : "|-") << node.label << "\n";
  std::string child_prefix = prefix + (last ? "" : "| ");
  for (size_t i = 0; i < node.children.size(); ++i) {
    Render(node.children[i], child_prefix, i + 1 == node.children.size(), out);
  }
}

}  // namespace

std::string ToTreeString(const Op& op) {
  std::ostringstream out;
  Render(BuildOp(op), "", true, out);
  return out.str();
}

std::string ToTreeString(const Expr& expr) {
  std::ostringstream out;
  Render(BuildExpr(expr), "", true, out);
  return out.str();
}

}  // namespace hyperq::xtra
