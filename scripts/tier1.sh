#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, plus (optionally) the resilience
# and translation-cache suites under ASan+UBSan.
#
#   scripts/tier1.sh            # standard build + ctest
#   scripts/tier1.sh --asan     # also build build-asan/ and run the
#                               # `faults`, `failover`, `cache`, and
#                               # `golden` suites under it
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"
scripts/check_golden.sh

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DHYPERQ_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L faults -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L failover -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L cache -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L golden -j "$jobs"
fi
