#!/usr/bin/env bash
# Tier-1 gate: full build + test suite, plus (optionally) the resilience,
# translation-cache, lifecycle, and observability suites under sanitizers.
#
#   scripts/tier1.sh            # standard build + ctest
#   scripts/tier1.sh --asan     # also build build-asan/ and run the
#                               # `faults`, `failover`, `cache`, `golden`,
#                               # `lifecycle`, `observability`, `fleet`,
#                               # `tail`, `fuzz`, `chaos`, and `batch`
#                               # suites under ASan+UBSan
#   scripts/tier1.sh --tsan     # also build build-tsan/ and run the
#                               # cross-thread suites (`lifecycle`,
#                               # `faults`, `observability`, `fleet`,
#                               # `tail`, `chaos`, `batch`) under
#                               # ThreadSanitizer
set -euo pipefail
cd "$(dirname "$0")/.."

jobs=$(nproc 2>/dev/null || echo 4)

cmake -B build -S .
cmake --build build -j "$jobs"
ctest --test-dir build --output-on-failure -j "$jobs"
scripts/check_golden.sh
scripts/check_metrics.sh

if [[ "${1:-}" == "--asan" ]]; then
  cmake -B build-asan -S . -DHYPERQ_SANITIZE=address,undefined
  cmake --build build-asan -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L faults -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L failover -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L cache -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L golden -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L lifecycle -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L observability -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L fleet -j "$jobs"
  ctest --test-dir build-asan --output-on-failure -L tail -j "$jobs"
  # The differential fuzzer is the widest query-shape surface in the tree
  # (generator → 3 dialect translations → 3 executions per query) — exactly
  # where memory bugs hide. The fixed seed keeps the ASan pass deterministic.
  ctest --test-dir build-asan --output-on-failure -L fuzz -j "$jobs"
  # Chaos injects short I/O, resets, corruption, and kill/revive against
  # live sockets — the best place for heap errors to surface. The soak is
  # shortened (sanitizer overhead makes wall-clock expensive) but every
  # scenario phase still runs at least once.
  HQ_CHAOS_SOAK_MS=2500 \
    ctest --test-dir build-asan --output-on-failure -L chaos -j "$jobs"
  # The batch data plane moves shared column vectors zero-copy between the
  # executor, store, and converter — exactly where lifetime bugs would
  # hide. The edge suite (zero-row spans, spill straddles, mid-batch
  # cancellation) must be ASan-clean.
  ctest --test-dir build-asan --output-on-failure -L batch -j "$jobs"
fi

if [[ "${1:-}" == "--tsan" ]]; then
  # Cancellation is inherently cross-thread (kill/abort/drain race the
  # worker and converter threads), so the lifecycle suite — including the
  # chaos soak — must be clean under TSan, not just ASan.
  cmake -B build-tsan -S . -DHYPERQ_SANITIZE=thread
  cmake --build build-tsan -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -L lifecycle -j "$jobs"
  ctest --test-dir build-tsan --output-on-failure -L faults -j "$jobs"
  # The registry's whole contract is lock-cheap cross-thread counting and
  # the trace is mutated by the worker while cancellation inspects it —
  # the observability suite must be TSan-clean, not just ASan-clean.
  ctest --test-dir build-tsan --output-on-failure -L observability -j "$jobs"
  # The fleet is cross-thread end to end: the prober scores health while
  # workers route, acquire slots, and fail over between replicas.
  ctest --test-dir build-tsan --output-on-failure -L fleet -j "$jobs"
  # Hedged execution races two legs across threads by design (first
  # completion wins, loser cancelled mid-flight, stragglers parked and
  # reaped) — the tail suite must be TSan-clean, not just ASan-clean.
  ctest --test-dir build-tsan --output-on-failure -L tail -j "$jobs"
  # The chaos layer is all cross-thread: the orchestrator mutates link
  # faults while 8 workload sessions and the server's workers run through
  # them, and the auditor polls server state during teardown. Shortened
  # soak, same phase coverage.
  HQ_CHAOS_SOAK_MS=2500 \
    ctest --test-dir build-tsan --output-on-failure -L chaos -j "$jobs"
  # Batch conversion fans out over worker threads and cancellation races
  # the fetch loop from another thread — the batch suite must be
  # TSan-clean, not just ASan-clean.
  ctest --test-dir build-tsan --output-on-failure -L batch -j "$jobs"
fi
