#!/usr/bin/env bash
# Metric-name lint (DESIGN.md §9): every fault-injection point declared in
# src/common/fault.h must have a correspondingly named metric row in the
# kFaultPointMetrics table of src/observability/metric_names.h (that table
# is what mirrors the injector's hit/fire counts into the scrape), and the
# table must not carry stale rows for points that no longer exist. The same
# contract holds for the fleet (DESIGN.md §10): every BackendHealth state in
# src/backend/pool.h must have a kHealthStateMetrics row named
# hyperq.backend.health.<state>. And for the tail-tolerance layer
# (DESIGN.md §11) and the chaos layer (DESIGN.md §13): every
# hyperq.hedge.* / hyperq.retry_budget.* / hyperq.limit.* /
# hyperq.brownout.* / hyperq.chaos.* series must be declared as a named
# constant in metric_names.h (no ad-hoc string literals in src/), and every
# declared constant must actually be emitted somewhere.
set -euo pipefail
cd "$(dirname "$0")/.."

fault_h=src/common/fault.h
names_h=src/observability/metric_names.h

# Declared points: the string values of the faultpoints:: constants.
declared=$(sed -n '/namespace faultpoints/,/} *\/\/ namespace faultpoints/p' \
               "$fault_h" |
           grep -o 'constexpr const char\* k[A-Za-z0-9]* = "[^"]*"' |
           sed 's/.*= "//; s/"$//' | sort)
# Table rows: the first string of each kFaultPointMetrics entry.
table=$(sed -n '/kFaultPointMetrics\[\]/,/};/p' "$names_h" |
        grep -o '{"[^"]*"' | sed 's/{"//; s/"$//' | sort)

if [[ -z "$declared" ]]; then
  echo "check_metrics: no fault points parsed from $fault_h" >&2
  exit 1
fi

status=0
missing=$(comm -23 <(echo "$declared") <(echo "$table"))
if [[ -n "$missing" ]]; then
  echo "check_metrics: fault points with no kFaultPointMetrics row in $names_h:" >&2
  echo "$missing" | sed 's/^/  /' >&2
  status=1
fi
stale=$(comm -13 <(echo "$declared") <(echo "$table"))
if [[ -n "$stale" ]]; then
  echo "check_metrics: stale kFaultPointMetrics rows (no such fault point):" >&2
  echo "$stale" | sed 's/^/  /' >&2
  status=1
fi

# Each table row's metric name must follow hyperq.faults.<point>.
bad_names=$(sed -n '/kFaultPointMetrics\[\]/,/};/p' "$names_h" |
            grep -o '{"[^"]*", *"[^"]*"' |
            sed 's/{"//; s/", *"/ /; s/"$//' |
            awk '$2 != "hyperq.faults." $1 { print "  " $1 " -> " $2 }')
if [[ -n "$bad_names" ]]; then
  echo "check_metrics: metric names not of the form hyperq.faults.<point>:" >&2
  echo "$bad_names" >&2
  status=1
fi

# --- Fleet health states (DESIGN.md §10) -------------------------------------
pool_h=src/backend/pool.h

# Enumerators of BackendHealth, lower-cased without the k prefix — must
# match the stable strings BackendHealthName() returns.
states=$(sed -n '/enum class BackendHealth/,/};/p' "$pool_h" |
         grep -o 'k[A-Z][A-Za-z]*' |
         sed 's/^k//' | tr '[:upper:]' '[:lower:]' | sort)
health_table=$(sed -n '/kHealthStateMetrics\[\]/,/};/p' "$names_h" |
               grep -o '{"[^"]*"' | sed 's/{"//; s/"$//' | sort)

if [[ -z "$states" ]]; then
  echo "check_metrics: no BackendHealth states parsed from $pool_h" >&2
  exit 1
fi

missing_states=$(comm -23 <(echo "$states") <(echo "$health_table"))
if [[ -n "$missing_states" ]]; then
  echo "check_metrics: health states with no kHealthStateMetrics row in $names_h:" >&2
  echo "$missing_states" | sed 's/^/  /' >&2
  status=1
fi
stale_states=$(comm -13 <(echo "$states") <(echo "$health_table"))
if [[ -n "$stale_states" ]]; then
  echo "check_metrics: stale kHealthStateMetrics rows (no such health state):" >&2
  echo "$stale_states" | sed 's/^/  /' >&2
  status=1
fi

# Each health row's metric name must follow hyperq.backend.health.<state>.
bad_health=$(sed -n '/kHealthStateMetrics\[\]/,/};/p' "$names_h" |
             grep -o '{"[^"]*", *"[^"]*"' |
             sed 's/{"//; s/", *"/ /; s/"$//' |
             awk '$2 != "hyperq.backend.health." $1 { print "  " $1 " -> " $2 }')
if [[ -n "$bad_health" ]]; then
  echo "check_metrics: metric names not of the form hyperq.backend.health.<state>:" >&2
  echo "$bad_health" >&2
  status=1
fi

# --- Family lints (both directions) ------------------------------------------
# A metric family consumed by dashboards as a set breaks silently in either
# direction: a typo'd ad-hoc literal creates a series no dashboard reads,
# and a dead constant leaves a panel permanently empty. lint_family checks
# both: every family literal in src/ must be a declared constant in
# metric_names.h, and every declared constant must be emitted somewhere.
# $1 = family label (messages), $2 = extended-regex series pattern.
lint_family() {
  local label="$1" pat="$2" declared_fam used_fam undeclared dead ident
  declared_fam=$(grep -oE "\"${pat}\"" "$names_h" | sed 's/"//g' | sort -u)
  used_fam=$(grep -rhoE "\"${pat}\"" src --include='*.cc' \
                 --include='*.h' |
             grep -v "hyperq.faults" | sed 's/"//g' | sort -u || true)

  if [[ -z "$declared_fam" ]]; then
    echo "check_metrics: no ${label} series parsed from $names_h" >&2
    return 1
  fi

  # Any literal outside metric_names.h must match a declared constant. The
  # grep above includes metric_names.h itself, so "used minus declared" is
  # exactly the undeclared ad-hoc literals.
  undeclared=$(comm -13 <(echo "$declared_fam") <(echo "$used_fam"))
  if [[ -n "$undeclared" ]]; then
    echo "check_metrics: ${label} series used in src/ but not declared in $names_h:" >&2
    echo "$undeclared" | sed 's/^/  /' >&2
    return 1
  fi

  # Every declared constant must be emitted somewhere (by identifier).
  dead=""
  while IFS= read -r line; do
    ident=$(echo "$line" | sed 's/ .*//')
    if ! grep -rq "names::${ident}\b" src --include='*.cc' \
         --exclude='metric_names.h'; then
      dead="${dead}  ${ident} ($(echo "$line" | sed 's/^[^ ]* //'))"$'\n'
    fi
  done < <(grep -B1 -E "\"${pat}\"" "$names_h" |
           tr '\n' ' ' | tr ';' '\n' |
           grep -oE "k[A-Za-z0-9]+ =[^\"]*\"${pat}\"" |
           sed 's/ =[^"]*"/ /; s/"$//')
  if [[ -n "$dead" ]]; then
    echo "check_metrics: declared ${label} series never emitted from src/:" >&2
    printf '%s' "$dead" >&2
    return 1
  fi
  echo "$declared_fam" | wc -l
}

# Tail tolerance (DESIGN.md §11): the hedge/retry-budget/adaptive-limit/
# brownout control-loop families.
tail_count=$(lint_family "tail" \
    'hyperq\.(hedge|retry_budget|limit|brownout)\.[a-z_.]*') || status=1

# Chaos (DESIGN.md §13): scenario/orchestrator progress, per-fault link
# injection counts, and the invariant-audit verdict series.
chaos_count=$(lint_family "chaos" 'hyperq\.chaos\.[a-z_.]*') || status=1

# Result converter (DESIGN.md §15): per-wire-batch size distributions on
# the columnar data plane.
convert_count=$(lint_family "convert" 'hyperq\.convert\.[a-z_.]*') || status=1

if [[ $status -eq 0 ]]; then
  count=$(echo "$declared" | wc -l)
  state_count=$(echo "$states" | wc -l)
  echo "check_metrics: OK ($count fault points, $state_count health states, $tail_count tail series, $chaos_count chaos series, $convert_count convert series all mirrored)"
fi
exit $status
