#!/usr/bin/env bash
# Metric-name lint (DESIGN.md §9): every fault-injection point declared in
# src/common/fault.h must have a correspondingly named metric row in the
# kFaultPointMetrics table of src/observability/metric_names.h (that table
# is what mirrors the injector's hit/fire counts into the scrape), and the
# table must not carry stale rows for points that no longer exist. The same
# contract holds for the fleet (DESIGN.md §10): every BackendHealth state in
# src/backend/pool.h must have a kHealthStateMetrics row named
# hyperq.backend.health.<state>.
set -euo pipefail
cd "$(dirname "$0")/.."

fault_h=src/common/fault.h
names_h=src/observability/metric_names.h

# Declared points: the string values of the faultpoints:: constants.
declared=$(sed -n '/namespace faultpoints/,/} *\/\/ namespace faultpoints/p' \
               "$fault_h" |
           grep -o 'constexpr const char\* k[A-Za-z0-9]* = "[^"]*"' |
           sed 's/.*= "//; s/"$//' | sort)
# Table rows: the first string of each kFaultPointMetrics entry.
table=$(sed -n '/kFaultPointMetrics\[\]/,/};/p' "$names_h" |
        grep -o '{"[^"]*"' | sed 's/{"//; s/"$//' | sort)

if [[ -z "$declared" ]]; then
  echo "check_metrics: no fault points parsed from $fault_h" >&2
  exit 1
fi

status=0
missing=$(comm -23 <(echo "$declared") <(echo "$table"))
if [[ -n "$missing" ]]; then
  echo "check_metrics: fault points with no kFaultPointMetrics row in $names_h:" >&2
  echo "$missing" | sed 's/^/  /' >&2
  status=1
fi
stale=$(comm -13 <(echo "$declared") <(echo "$table"))
if [[ -n "$stale" ]]; then
  echo "check_metrics: stale kFaultPointMetrics rows (no such fault point):" >&2
  echo "$stale" | sed 's/^/  /' >&2
  status=1
fi

# Each table row's metric name must follow hyperq.faults.<point>.
bad_names=$(sed -n '/kFaultPointMetrics\[\]/,/};/p' "$names_h" |
            grep -o '{"[^"]*", *"[^"]*"' |
            sed 's/{"//; s/", *"/ /; s/"$//' |
            awk '$2 != "hyperq.faults." $1 { print "  " $1 " -> " $2 }')
if [[ -n "$bad_names" ]]; then
  echo "check_metrics: metric names not of the form hyperq.faults.<point>:" >&2
  echo "$bad_names" >&2
  status=1
fi

# --- Fleet health states (DESIGN.md §10) -------------------------------------
pool_h=src/backend/pool.h

# Enumerators of BackendHealth, lower-cased without the k prefix — must
# match the stable strings BackendHealthName() returns.
states=$(sed -n '/enum class BackendHealth/,/};/p' "$pool_h" |
         grep -o 'k[A-Z][A-Za-z]*' |
         sed 's/^k//' | tr '[:upper:]' '[:lower:]' | sort)
health_table=$(sed -n '/kHealthStateMetrics\[\]/,/};/p' "$names_h" |
               grep -o '{"[^"]*"' | sed 's/{"//; s/"$//' | sort)

if [[ -z "$states" ]]; then
  echo "check_metrics: no BackendHealth states parsed from $pool_h" >&2
  exit 1
fi

missing_states=$(comm -23 <(echo "$states") <(echo "$health_table"))
if [[ -n "$missing_states" ]]; then
  echo "check_metrics: health states with no kHealthStateMetrics row in $names_h:" >&2
  echo "$missing_states" | sed 's/^/  /' >&2
  status=1
fi
stale_states=$(comm -13 <(echo "$states") <(echo "$health_table"))
if [[ -n "$stale_states" ]]; then
  echo "check_metrics: stale kHealthStateMetrics rows (no such health state):" >&2
  echo "$stale_states" | sed 's/^/  /' >&2
  status=1
fi

# Each health row's metric name must follow hyperq.backend.health.<state>.
bad_health=$(sed -n '/kHealthStateMetrics\[\]/,/};/p' "$names_h" |
             grep -o '{"[^"]*", *"[^"]*"' |
             sed 's/{"//; s/", *"/ /; s/"$//' |
             awk '$2 != "hyperq.backend.health." $1 { print "  " $1 " -> " $2 }')
if [[ -n "$bad_health" ]]; then
  echo "check_metrics: metric names not of the form hyperq.backend.health.<state>:" >&2
  echo "$bad_health" >&2
  status=1
fi

if [[ $status -eq 0 ]]; then
  count=$(echo "$declared" | wc -l)
  state_count=$(echo "$states" | wc -l)
  echo "check_metrics: OK ($count fault points, $state_count health states all mirrored)"
fi
exit $status
