#!/usr/bin/env bash
# Golden-corpus hygiene gate:
#   * every tests/golden/*.sql has a sibling .expected (and vice versa —
#     an orphan .expected is a stale file the suite no longer references),
#   * no corpus file is empty.
# `_schema.sql` is the shared DDL preamble and intentionally has no
# .expected. The semantic check (expected text matches what the
# translator emits today) lives in the `golden` ctest suite; regenerate
# with HQ_REGEN_GOLDEN=1 after an intentional serializer change.
set -euo pipefail
cd "$(dirname "$0")/.."

dir=tests/golden
fail=0

shopt -s nullglob
for sql in "$dir"/*.sql; do
  base="${sql%.sql}"
  [[ "$(basename "$sql")" == _schema.sql ]] && continue
  if [[ ! -f "$base.expected" ]]; then
    echo "check_golden: MISSING expected for $sql" >&2
    fail=1
  fi
done
for exp in "$dir"/*.expected; do
  base="${exp%.expected}"
  if [[ ! -f "$base.sql" ]]; then
    echo "check_golden: ORPHAN (stale) $exp — no matching .sql" >&2
    fail=1
  fi
done
for f in "$dir"/*.sql "$dir"/*.expected; do
  if [[ ! -s "$f" ]]; then
    echo "check_golden: EMPTY $f" >&2
    fail=1
  fi
done

count=$(ls "$dir"/*.expected 2>/dev/null | wc -l)
if (( count < 30 )); then
  echo "check_golden: corpus shrank to $count cases (floor is 30)" >&2
  fail=1
fi

if (( fail )); then
  exit 1
fi
echo "check_golden: OK ($count cases)"
