#!/usr/bin/env bash
# Golden-corpus hygiene gate:
#   * every tests/golden/*.sql has a sibling .expected (and vice versa —
#     an orphan .expected is a stale file the suite no longer references),
#   * every case also has a per-dialect translation under each dialect
#     subdirectory (tests/golden/<dialect>/<name>.expected), and those
#     subdirectories contain no orphans,
#   * no corpus file is empty.
# `_schema.sql` is the shared DDL preamble and intentionally has no
# .expected. The semantic check (expected text matches what the
# translator emits today) lives in the `golden` ctest suite; regenerate
# with HQ_REGEN_GOLDEN=1 after an intentional serializer change (root and
# dialect sub-corpora regenerate together).
set -euo pipefail
cd "$(dirname "$0")/.."

dir=tests/golden
fail=0

shopt -s nullglob
for sql in "$dir"/*.sql; do
  base="${sql%.sql}"
  [[ "$(basename "$sql")" == _schema.sql ]] && continue
  if [[ ! -f "$base.expected" ]]; then
    echo "check_golden: MISSING expected for $sql" >&2
    fail=1
  fi
done
for exp in "$dir"/*.expected; do
  base="${exp%.expected}"
  if [[ ! -f "$base.sql" ]]; then
    echo "check_golden: ORPHAN (stale) $exp — no matching .sql" >&2
    fail=1
  fi
done
for f in "$dir"/*.sql "$dir"/*.expected; do
  if [[ ! -s "$f" ]]; then
    echo "check_golden: EMPTY $f" >&2
    fail=1
  fi
done

count=$(ls "$dir"/*.expected 2>/dev/null | wc -l)
if (( count < 30 )); then
  echo "check_golden: corpus shrank to $count cases (floor is 30)" >&2
  fail=1
fi

# Per-dialect sub-corpora: every root case must have a translation under
# each dialect directory, and every dialect file must map back to a root
# .sql. Dialect directories are discovered, not hard-coded, so adding a
# generator (and regenerating) extends the gate automatically.
dialect_dirs=("$dir"/*/)
if (( ${#dialect_dirs[@]} == 0 )); then
  echo "check_golden: no dialect sub-corpora under $dir" >&2
  fail=1
fi
for ddir in "${dialect_dirs[@]}"; do
  dname=$(basename "$ddir")
  for sql in "$dir"/*.sql; do
    base=$(basename "${sql%.sql}")
    [[ "$base" == _schema ]] && continue
    if [[ ! -f "$ddir$base.expected" ]]; then
      echo "check_golden: MISSING $dname translation for $sql" >&2
      fail=1
    fi
  done
  for exp in "$ddir"*.expected; do
    base=$(basename "${exp%.expected}")
    if [[ ! -f "$dir/$base.sql" ]]; then
      echo "check_golden: ORPHAN (stale) $exp — no matching root .sql" >&2
      fail=1
    fi
  done
  for f in "$ddir"*.expected; do
    if [[ ! -s "$f" ]]; then
      echo "check_golden: EMPTY $f" >&2
      fail=1
    fi
  done
done

if (( fail )); then
  exit 1
fi
echo "check_golden: OK ($count cases, ${#dialect_dirs[@]} dialect sub-corpora)"
