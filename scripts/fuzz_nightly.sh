#!/usr/bin/env bash
# Nightly differential-fuzz campaign.
#
# Runs an open-ended (time-bounded) campaign with a fresh seed each night,
# writes the machine-readable summary to BENCH_fuzz.json, and fails the run
# if any mismatch survived reduction. The harness itself already reduces
# every finding to a minimal repro and (in regen mode) appends it to the
# golden corpus, so a red nightly means a real, already-minimized bug.
#
#   scripts/fuzz_nightly.sh                 # 10-minute campaign, date-derived seed
#   scripts/fuzz_nightly.sh --seconds 3600  # hour-long soak
#   scripts/fuzz_nightly.sh --seed 99       # reproduce a specific night
#
# Extra arguments are passed through to bench_fuzz (e.g. --dialects
# ansi,granite). Exit codes mirror bench_fuzz: 0 clean, 1 mismatches found
# (all reduced), 2 unreduced mismatches.
set -euo pipefail
cd "$(dirname "$0")/.."

seconds=600
seed=$(date +%Y%m%d)
passthru=()
while (( $# )); do
  case "$1" in
    --seconds) seconds=$2; shift 2 ;;
    --seconds=*) seconds=${1#*=}; shift ;;
    --seed) seed=$2; shift 2 ;;
    --seed=*) seed=${1#*=}; shift ;;
    *) passthru+=("$1"); shift ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_fuzz

json=BENCH_fuzz.json
rc=0
# --count 0 = unbounded; the campaign runs until the wall-clock bound.
build/bench/bench_fuzz --seed "$seed" --count 0 --seconds "$seconds" \
  --json "$json" "${passthru[@]}" || rc=$?

echo "fuzz_nightly: summary written to $json"
if (( rc == 2 )); then
  echo "fuzz_nightly: FAIL — unreduced mismatches (reducer could not shrink)" >&2
elif (( rc == 1 )); then
  echo "fuzz_nightly: mismatches found but all reduced to minimal repros" >&2
elif (( rc != 0 )); then
  echo "fuzz_nightly: bench_fuzz exited $rc" >&2
else
  echo "fuzz_nightly: OK"
fi
exit "$rc"
