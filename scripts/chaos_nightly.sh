#!/usr/bin/env bash
# Nightly chaos soak.
#
# Runs the full bench_chaos scenario ladder — baseline, latency+jitter,
# replica partition, kill/revive, and the mixed soak — at nightly length,
# writes availability / MTTR / injected-fault counts per scenario to
# BENCH_chaos.json, and fails the run if any scenario missed the 99%
# availability bar or produced an invariant-audit violation. A red nightly
# therefore means a real robustness regression, not flake: every failure
# comes with the auditor's named invariant (I1–I9) in the output.
#
#   scripts/chaos_nightly.sh                # 60 s per scenario, 8 sessions
#   scripts/chaos_nightly.sh --seconds 300  # 5-minute scenarios
#   scripts/chaos_nightly.sh --sessions 16  # heavier client fleet
#
# Extra arguments are passed through to bench_chaos. Exit codes mirror
# bench_chaos: 0 clean, 1 availability bar missed or audit violations.
set -euo pipefail
cd "$(dirname "$0")/.."

seconds=60
sessions=8
passthru=()
while (( $# )); do
  case "$1" in
    --seconds) seconds=$2; shift 2 ;;
    --seconds=*) seconds=${1#*=}; shift ;;
    --sessions) sessions=$2; shift 2 ;;
    --sessions=*) sessions=${1#*=}; shift ;;
    *) passthru+=("$1"); shift ;;
  esac
done

jobs=$(nproc 2>/dev/null || echo 4)
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs" --target bench_chaos

rc=0
build/bench/bench_chaos --chaos_seconds="$seconds" \
  --chaos_sessions="$sessions" "${passthru[@]}" || rc=$?

echo "chaos_nightly: summary written to BENCH_chaos.json"
if (( rc != 0 )); then
  echo "chaos_nightly: FAIL — availability bar missed or audit violations" >&2
else
  echo "chaos_nightly: OK"
fi
exit "$rc"
