#!/usr/bin/env bash
# Dump a running Hyper-Q proxy's metrics scrape (DESIGN.md §9) to stdout.
#
#   scripts/scrape.sh [port]   # scrape 127.0.0.1:<port> (default 48620,
#                              # the example_observed_proxy serve port)
#   scripts/scrape.sh --demo   # start the example proxy, soak it with a
#                              # chaotic workload, scrape, and stop it
#
# The scrape rides the tdwp admin request (kStatsRequest) — no logon
# needed, so a monitoring agent can poll an unhealthy proxy. Format:
#   counter <name> <value>
#   gauge <name> <value>
#   histogram <name> count=N sum=S p50=X p95=Y p99=Z
set -euo pipefail
cd "$(dirname "$0")/.."

proxy=build/examples/example_observed_proxy
if [[ ! -x "$proxy" ]]; then
  echo "error: $proxy not built (run: cmake -B build -S . && cmake --build build)" >&2
  exit 1
fi

if [[ "${1:-}" == "--demo" ]]; then
  port=48621
  "$proxy" serve "$port" >/dev/null 2>&1 &
  proxy_pid=$!
  trap 'kill "$proxy_pid" 2>/dev/null || true' EXIT
  # Wait for the listener: the scrape itself is the readiness probe.
  for _ in $(seq 1 50); do
    if "$proxy" scrape "$port" 2>/dev/null; then
      exit 0
    fi
    sleep 0.1
  done
  echo "error: demo proxy never became scrapeable on port $port" >&2
  exit 1
fi

exec "$proxy" scrape "${1:-48620}"
