// Binder tests: name resolution, scoping, feature recording, and the
// binding-time rewrites of paper Table 2.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "sql/parser.h"
#include "xtra/xtra.h"

namespace hyperq::binder {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef t;
    t.name = "T";
    t.columns = {{"A", SqlType::Int(), true, {}},
                 {"B", SqlType::Varchar(20), true, {}},
                 {"D", SqlType::Date(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(t).ok());
    TableDef u;
    u.name = "U";
    u.columns = {{"A", SqlType::Int(), true, {}},
                 {"C", SqlType::Int(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(u).ok());
    ViewDef v;
    v.name = "V";
    v.definition_sql = "SELECT A, B FROM T WHERE A > 0";
    ASSERT_TRUE(catalog_.CreateView(v).ok());
  }

  Result<xtra::OpPtr> Bind(const std::string& sql, FeatureSet* fs = nullptr) {
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::ParseStatement(sql, sql::Dialect::Teradata()));
    Binder binder(&catalog_, sql::Dialect::Teradata());
    auto plan = binder.BindStatement(*stmt);
    if (fs != nullptr) *fs = binder.features();
    return plan;
  }

  Status BindError(const std::string& sql) {
    auto r = Bind(sql);
    EXPECT_FALSE(r.ok()) << sql;
    return r.ok() ? Status::OK() : r.status();
  }

  Catalog catalog_;
};

TEST_F(BinderTest, ResolvesQualifiedAndUnqualified) {
  EXPECT_TRUE(Bind("SEL A, T.B FROM T").ok());
  EXPECT_TRUE(Bind("SEL x.A FROM T x").ok());
  EXPECT_TRUE(BindError("SEL NOPE FROM T").IsBindError());
  // Aliasing hides the table name — but in the Teradata dialect the bare
  // T.A reference then triggers implicit-join expansion (T joins itself).
  FeatureSet fs;
  EXPECT_TRUE(Bind("SEL T.A FROM T x", &fs).ok());
  EXPECT_TRUE(fs.Has(Feature::kImplicitJoin));
}

TEST_F(BinderTest, AmbiguityDetected) {
  EXPECT_TRUE(BindError("SEL A FROM T, U").IsBindError());
  EXPECT_TRUE(Bind("SEL T.A, U.A FROM T, U").ok());
}

TEST_F(BinderTest, StarExpansion) {
  auto plan = Bind("SEL * FROM T");
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ((*plan)->output.size(), 3u);
  auto qualified = Bind("SEL u.* FROM T, U u");
  ASSERT_TRUE(qualified.ok());
  EXPECT_EQ((*qualified)->output.size(), 2u);
}

TEST_F(BinderTest, ChainedProjectionsFeatureAndExpansion) {
  FeatureSet fs;
  auto plan = Bind("SEL A AS base, base + 1 AS nxt FROM T", &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kChainedProjections));
  // Plain column reuse is NOT the chained feature.
  FeatureSet fs2;
  ASSERT_TRUE(Bind("SEL A, A + 1 FROM T", &fs2).ok());
  EXPECT_FALSE(fs2.Has(Feature::kChainedProjections));
}

TEST_F(BinderTest, ImplicitJoinExpansion) {
  FeatureSet fs;
  auto plan = Bind("SEL T.A FROM T WHERE T.A = U.C", &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kImplicitJoin));
  // An unknown qualifier that is not a table stays an error.
  EXPECT_TRUE(BindError("SEL T.A FROM T WHERE T.A = NOWHERE.C").ok() ==
              false);
}

TEST_F(BinderTest, OrdinalGroupByResolved) {
  FeatureSet fs;
  auto plan = Bind("SEL B, COUNT(*) FROM T GROUP BY 1", &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kOrdinalGroupBy));
  EXPECT_TRUE(BindError("SEL B FROM T GROUP BY 9").IsBindError());
  EXPECT_TRUE(BindError("SEL B FROM T ORDER BY 9").IsBindError());
}

TEST_F(BinderTest, QualifyLowersToWindowPlusFilter) {
  FeatureSet fs;
  auto plan = Bind("SEL A FROM T QUALIFY RANK(A DESC) <= 2", &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kQualify));
  EXPECT_TRUE(fs.Has(Feature::kOrderedAnalytics));
  // Plan shape: Project over post-window Select over Window.
  const xtra::Op* op = plan->get();
  ASSERT_EQ(op->kind, xtra::OpKind::kProject);
  op = op->children[0].get();
  ASSERT_EQ(op->kind, xtra::OpKind::kSelect);
  EXPECT_TRUE(op->post_window_filter);
  EXPECT_EQ(op->children[0]->kind, xtra::OpKind::kWindow);
}

TEST_F(BinderTest, ViewExpansion) {
  auto plan = Bind("SEL A FROM V WHERE B = 'x'");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // The view body is inlined: a Get on T exists beneath.
  bool found_t = false;
  std::function<void(const xtra::Op&)> walk = [&](const xtra::Op& op) {
    if (op.kind == xtra::OpKind::kGet && op.table_name == "T") found_t = true;
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
  EXPECT_TRUE(found_t);
}

TEST_F(BinderTest, AggregateDecomposition) {
  auto plan = Bind("SEL B, SUM(A) + 1, COUNT(*) FROM T GROUP BY B");
  ASSERT_TRUE(plan.ok()) << plan.status();
  const xtra::Op* proj = plan->get();
  ASSERT_EQ(proj->kind, xtra::OpKind::kProject);
  const xtra::Op* agg = proj->children[0].get();
  ASSERT_EQ(agg->kind, xtra::OpKind::kAggregate);
  EXPECT_EQ(agg->group_by.size(), 1u);
  EXPECT_EQ(agg->aggregates.size(), 2u);
}

TEST_F(BinderTest, DuplicateAggregatesDeduplicated) {
  auto plan = Bind("SEL SUM(A), SUM(A) * 2 FROM T");
  ASSERT_TRUE(plan.ok());
  const xtra::Op* agg = (*plan)->children[0].get();
  ASSERT_EQ(agg->kind, xtra::OpKind::kAggregate);
  EXPECT_EQ(agg->aggregates.size(), 1u);
}

TEST_F(BinderTest, AggregateValidationErrors) {
  EXPECT_TRUE(BindError("SEL A FROM T WHERE SUM(A) > 1").IsBindError());
  EXPECT_TRUE(BindError("SEL SUM(*) FROM T").IsBindError());
  EXPECT_TRUE(BindError("SEL RANK() FROM T").IsBindError());
}

TEST_F(BinderTest, SubqueryCorrelation) {
  auto plan = Bind(
      "SEL A FROM T WHERE A > (SEL MAX(C) FROM U WHERE U.A = T.A)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // An uncorrelated reference inside a subquery to a missing name fails.
  EXPECT_TRUE(
      BindError("SEL A FROM T WHERE A IN (SEL zz FROM U)").IsBindError());
}

TEST_F(BinderTest, SetOpArityChecked) {
  EXPECT_TRUE(Bind("SEL A FROM T UNION ALL SEL C FROM U").ok());
  EXPECT_TRUE(
      BindError("SEL A, B FROM T UNION ALL SEL C FROM U").IsBindError());
}

TEST_F(BinderTest, BuiltinRenames) {
  FeatureSet fs;
  auto plan = Bind("SEL CHARS(B), INDEX(B, 'x'), ZEROIFNULL(A) FROM T", &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kBuiltinRename));
  EXPECT_TRUE(fs.Has(Feature::kNullFuncs));
  bool saw_length = false, saw_position = false, saw_coalesce = false;
  xtra::VisitExprs(**plan, [&](const xtra::Expr& e) {
    if (e.kind == xtra::ExprKind::kFunc) {
      if (e.func_name == "LENGTH") saw_length = true;
      if (e.func_name == "POSITION") saw_position = true;
      if (e.func_name == "COALESCE") saw_coalesce = true;
    }
    return true;
  });
  EXPECT_TRUE(saw_length);
  EXPECT_TRUE(saw_position);
  EXPECT_TRUE(saw_coalesce);
}

TEST_F(BinderTest, DmlTargets) {
  auto ins = Bind("INS INTO T (A, B) VALUES (1, 'x')");
  ASSERT_TRUE(ins.ok()) << ins.status();
  EXPECT_EQ((*ins)->kind, xtra::OpKind::kInsert);
  EXPECT_TRUE(BindError("INS INTO T (A, NOPE) VALUES (1, 2)").IsBindError());
  EXPECT_TRUE(BindError("INS INTO T (A) VALUES (1, 2)").IsBindError());

  FeatureSet fs;
  auto view_dml = Bind("UPD V SET B = 'y' WHERE A = 1", &fs);
  ASSERT_TRUE(view_dml.ok()) << view_dml.status();
  EXPECT_TRUE(fs.Has(Feature::kDmlOnViews));
  EXPECT_EQ((*view_dml)->target_table, "T");  // redirected to base table

  auto del = Bind("DEL FROM T WHERE A IN (SEL C FROM U)");
  ASSERT_TRUE(del.ok()) << del.status();
  EXPECT_EQ((*del)->kind, xtra::OpKind::kDelete);
}

TEST_F(BinderTest, RecursiveCteShape) {
  FeatureSet fs;
  auto plan = Bind(
      "WITH RECURSIVE R (N) AS (SEL A FROM T UNION ALL SEL N FROM R WHERE "
      "N < 10) SEL N FROM R",
      &fs);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(fs.Has(Feature::kRecursiveQuery));
  ASSERT_EQ((*plan)->kind, xtra::OpKind::kRecursiveCte);
  EXPECT_EQ((*plan)->children.size(), 3u);  // seed, recursive, main
  EXPECT_EQ((*plan)->cte_columns.size(), 1u);
}

TEST_F(BinderTest, NonRecursiveCteInlined) {
  auto plan = Bind(
      "WITH C AS (SEL A FROM T WHERE A > 1) SEL x.A, y.A FROM C x, C y");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Each reference re-binds the CTE: two T scans, no CteRef nodes.
  int gets = 0, cte_refs = 0;
  std::function<void(const xtra::Op&)> walk = [&](const xtra::Op& op) {
    if (op.kind == xtra::OpKind::kGet) ++gets;
    if (op.kind == xtra::OpKind::kCteRef) ++cte_refs;
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
  EXPECT_EQ(gets, 2);
  EXPECT_EQ(cte_refs, 0);
}

TEST_F(BinderTest, AnsiDialectDisablesVendorResolution) {
  Binder ansi(&catalog_, sql::Dialect::Ansi());
  auto stmt = sql::ParseStatement("SELECT A AS base, base + 1 FROM T",
                                  sql::Dialect::Ansi());
  ASSERT_TRUE(stmt.ok());
  EXPECT_FALSE(ansi.BindStatement(**stmt).ok());  // no chained projections
  auto implicit = sql::ParseStatement("SELECT T.A FROM T WHERE T.A = U.C",
                                      sql::Dialect::Ansi());
  ASSERT_TRUE(implicit.ok());
  Binder ansi2(&catalog_, sql::Dialect::Ansi());
  EXPECT_FALSE(ansi2.BindStatement(**implicit).ok());  // no implicit joins
}

TEST_F(BinderTest, ColumnAliasListOnBaseTable) {
  auto plan = Bind("SEL x1 FROM T (x1, x2, x3)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(BindError("SEL x1 FROM T (x1, x2)").IsBindError());  // arity
}

}  // namespace
}  // namespace hyperq::binder
