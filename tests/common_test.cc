// Tests for the common runtime: Status/Result, buffers, strings, features.

#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/features.h"
#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace hyperq {
namespace {

TEST(StatusTest, OkIsCheapAndEmpty) {
  Status ok;
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.code(), StatusCode::kOk);
  EXPECT_EQ(ok.ToString(), "ok");
}

TEST(StatusTest, FactoriesStreamParts) {
  Status s = Status::BindError("column '", "X", "' missing in table ", 42);
  EXPECT_TRUE(s.IsBindError());
  EXPECT_EQ(s.message(), "column 'X' missing in table 42");
  EXPECT_EQ(s.ToString(), "bind_error: column 'X' missing in table 42");
}

TEST(StatusTest, WithContextPrepends) {
  Status s = Status::IoError("disk full").WithContext("spilling batch 3");
  EXPECT_EQ(s.message(), "spilling batch 3: disk full");
  EXPECT_TRUE(s.IsIoError());
  EXPECT_TRUE(Status::OK().WithContext("x").ok());
}

// Regression (DESIGN.md §11): adding call-path context must not strip the
// typed detail — callers route on detail() (e.g. the fleet failover loop
// stops re-routing on kRetryBudgetExhausted), so losing it would silently
// re-enable the very amplification the detail exists to stop.
TEST(StatusTest, WithContextPreservesDetail) {
  Status budget = Status::Unavailable("no tokens")
                      .WithDetail(StatusDetail::kRetryBudgetExhausted)
                      .WithContext("replaying journal");
  EXPECT_EQ(budget.detail(), StatusDetail::kRetryBudgetExhausted);
  EXPECT_NE(budget.ToString().find("[retry_budget_exhausted]"),
            std::string::npos)
      << budget.ToString();

  Status shed = Status::ResourceExhausted("overloaded")
                    .WithDetail(StatusDetail::kBrownoutShed)
                    .WithContext("admitting 'script'");
  EXPECT_EQ(shed.detail(), StatusDetail::kBrownoutShed);
  EXPECT_NE(shed.ToString().find("[brownout_shed]"), std::string::npos);
}

TEST(StatusTest, CopyAndMove) {
  Status s = Status::Internal("boom");
  Status copy = s;
  EXPECT_EQ(copy.message(), "boom");
  Status moved = std::move(s);
  EXPECT_EQ(moved.message(), "boom");
}

TEST(ResultTest, ValueAndStatusPaths) {
  Result<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  Result<int> e = Status::NotSupported("nope");
  EXPECT_FALSE(e.ok());
  EXPECT_TRUE(e.status().IsNotSupported());
  EXPECT_EQ(std::move(e).ValueOr(7), 7);
}

TEST(ResultTest, OkStatusIntoResultIsInternalError) {
  Result<int> bad = Status::OK();
  EXPECT_FALSE(bad.ok());
  EXPECT_TRUE(bad.status().IsInternal());
}

TEST(BufferTest, LittleEndianRoundTrip) {
  BufferWriter w;
  w.PutU8(0xAB);
  w.PutI16(-2);
  w.PutI32(123456);
  w.PutI64(-9876543210LL);
  w.PutF64(3.25);
  w.PutLenBytes("hello");
  BufferReader r(w.data(), w.size());
  EXPECT_EQ(*r.GetU8(), 0xAB);
  EXPECT_EQ(*r.GetI16(), -2);
  EXPECT_EQ(*r.GetI32(), 123456);
  EXPECT_EQ(*r.GetI64(), -9876543210LL);
  EXPECT_DOUBLE_EQ(*r.GetF64(), 3.25);
  EXPECT_EQ(*r.GetLenBytes(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, UnderrunIsProtocolError) {
  BufferWriter w;
  w.PutU16(7);
  BufferReader r(w.data(), w.size());
  EXPECT_FALSE(r.GetU32().ok());
  EXPECT_FALSE(r.Skip(100).ok());
}

TEST(BufferTest, PatchBackfillsLength) {
  BufferWriter w;
  w.PutU32(0);  // placeholder
  w.PutBytes("abcd", 4);
  w.PatchU32(0, 4);
  BufferReader r(w.data(), w.size());
  EXPECT_EQ(*r.GetU32(), 4u);
}

TEST(StrUtilTest, CaseHelpers) {
  EXPECT_EQ(ToUpper("MiXeD_09"), "MIXED_09");
  EXPECT_EQ(ToLower("MiXeD"), "mixed");
  EXPECT_TRUE(EqualsIgnoreCase("select", "SELECT"));
  EXPECT_FALSE(EqualsIgnoreCase("sel", "select"));
  EXPECT_TRUE(StartsWithIgnoreCase("SELECT * FROM", "select"));
}

TEST(StrUtilTest, TrimSplitJoin) {
  EXPECT_EQ(Trim("  a b  "), "a b");
  EXPECT_EQ(Trim(""), "");
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join({"x", "y", "z"}, ", "), "x, y, z");
}

TEST(StrUtilTest, QuoteSqlDoublesQuotes) {
  EXPECT_EQ(QuoteSql("it's", '\''), "'it''s'");
  EXPECT_EQ(QuoteSql("plain", '"'), "\"plain\"");
}

TEST(FeatureTest, ClassPartitioning) {
  EXPECT_EQ(FeatureClass(Feature::kSelAbbrev), RewriteClass::kTranslation);
  EXPECT_EQ(FeatureClass(Feature::kQualify),
            RewriteClass::kTransformation);
  EXPECT_EQ(FeatureClass(Feature::kMacros), RewriteClass::kEmulation);
  // Exactly 9 features per class (paper §7.1).
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < kNumFeatures; ++i) {
    ++counts[static_cast<int>(FeatureClass(static_cast<Feature>(i)))];
  }
  EXPECT_EQ(counts[0], kFeaturesPerClass);
  EXPECT_EQ(counts[1], kFeaturesPerClass);
  EXPECT_EQ(counts[2], kFeaturesPerClass);
}

TEST(FeatureTest, SetOperations) {
  FeatureSet fs;
  EXPECT_TRUE(fs.empty());
  fs.Record(Feature::kQualify);
  fs.Record(Feature::kQualify);  // idempotent
  EXPECT_TRUE(fs.Has(Feature::kQualify));
  EXPECT_TRUE(fs.HasClass(RewriteClass::kTransformation));
  EXPECT_FALSE(fs.HasClass(RewriteClass::kEmulation));
  FeatureSet other;
  other.Record(Feature::kMerge);
  fs.Merge(other);
  EXPECT_TRUE(fs.Has(Feature::kMerge));
  EXPECT_NE(fs.ToString().find("QUALIFY"), std::string::npos);
}

TEST(FeatureTest, WorkloadStatsFractions) {
  WorkloadFeatureStats stats;
  FeatureSet q1;
  q1.Record(Feature::kQualify);
  FeatureSet q2;
  q2.Record(Feature::kSelAbbrev);
  q2.Record(Feature::kQualify);
  FeatureSet plain;
  stats.AddQuery(q1);
  stats.AddQuery(q2);
  stats.AddQuery(plain);
  stats.AddQuery(plain);
  EXPECT_EQ(stats.total_queries, 4);
  EXPECT_DOUBLE_EQ(stats.QueryFraction(RewriteClass::kTransformation), 0.5);
  EXPECT_DOUBLE_EQ(stats.QueryFraction(RewriteClass::kTranslation), 0.25);
  EXPECT_DOUBLE_EQ(stats.QueryFraction(RewriteClass::kEmulation), 0.0);
  // Coverage: 1 of 9 transformation features seen.
  EXPECT_NEAR(stats.FeatureCoverage(RewriteClass::kTransformation), 1.0 / 9,
              1e-9);
}

}  // namespace
}  // namespace hyperq
