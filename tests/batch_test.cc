// Batch data-plane edge suite (label `batch`, DESIGN.md §15): the columnar
// ColumnBatch contract end to end — builder demotion, TDF2 round trips
// (including all-NULL presence runs and varlen spill straddling span
// boundaries), zero-row results, cancellation mid-batch with zero governor
// residue, and byte-identical wire output of the typed batch converter
// against the per-row EncodeRecord oracle across every registered dialect.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "backend/connector.h"
#include "backend/result_store.h"
#include "backend/tdf.h"
#include "common/fault.h"
#include "common/query_context.h"
#include "common/resource_governor.h"
#include "convert/result_converter.h"
#include "protocol/tdwp.h"
#include "serializer/dialect.h"
#include "service/hyperq_service.h"
#include "vdb/column_batch.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

using backend::BackendResult;
using backend::BatchSpan;
using backend::TdfColumn;
using vdb::BatchBuilder;
using vdb::ColumnBatch;
using vdb::PhysKind;

bool WaitFor(const std::function<bool()>& pred, int timeout_ms = 5000) {
  auto deadline = std::chrono::steady_clock::now() +
                  std::chrono::milliseconds(timeout_ms);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

/// The row-oriented wire oracle: DecodeRows + protocol::EncodeRecord with
/// the converter's exact wire-batch segmentation. The batch converter's
/// output must be byte-identical to this, fast path or fallback.
std::vector<std::vector<uint8_t>> OracleBatches(const BackendResult& result,
                                                size_t rows_per_batch) {
  std::vector<protocol::WireColumn> cols;
  for (const auto& c : result.columns) {
    auto wc = protocol::ToWireColumn(c.name, c.type);
    EXPECT_TRUE(wc.ok()) << wc.status();
    cols.push_back(*wc);
  }
  auto rows = result.DecodeRows();
  EXPECT_TRUE(rows.ok()) << rows.status();
  std::vector<std::vector<uint8_t>> out;
  for (size_t b = 0; b * rows_per_batch < rows->size(); ++b) {
    size_t begin = b * rows_per_batch;
    size_t end = std::min(rows->size(), begin + rows_per_batch);
    BufferWriter w;
    w.PutU32(static_cast<uint32_t>(end - begin));
    for (size_t r = begin; r < end; ++r) {
      EXPECT_TRUE(protocol::EncodeRecord(cols, (*rows)[r], &w).ok());
    }
    out.push_back(w.Take());
  }
  return out;
}

void ExpectConverterMatchesOracle(const BackendResult& result,
                                  size_t rows_per_batch) {
  convert::ConverterOptions opts;
  opts.parallelism = 2;
  opts.rows_per_batch = rows_per_batch;
  convert::ResultConverter converter(opts);
  auto converted = converter.Convert(result);
  ASSERT_TRUE(converted.ok()) << converted.status();
  auto oracle = OracleBatches(result, rows_per_batch);
  ASSERT_EQ(converted->batches.size(), oracle.size());
  for (size_t i = 0; i < oracle.size(); ++i) {
    EXPECT_EQ(converted->batches[i], oracle[i]) << "wire batch " << i;
  }
}

// --- ColumnBatch contract ----------------------------------------------------

TEST(ColumnBatchTest, BuilderDemotesMismatchedKinds) {
  BatchBuilder b({SqlType::Int()});
  ASSERT_TRUE(b.AppendRow({Datum::Int(1)}).ok());
  ASSERT_TRUE(b.AppendRow({Datum::String("x")}).ok());
  ASSERT_TRUE(b.AppendRow({Datum::Null()}).ok());
  auto batch = b.Finish();
  ASSERT_EQ(batch->rows, 3u);
  // The string forced the column off its typed representation.
  EXPECT_EQ(batch->columns[0]->kind, PhysKind::kDatum);
  EXPECT_EQ(batch->RowAt(0)[0].int_val(), 1);
  EXPECT_EQ(batch->RowAt(1)[0].string_val(), "x");
  EXPECT_TRUE(batch->RowAt(2)[0].is_null());
}

TEST(ColumnBatchTest, GatherPreservesNullsAndStrings) {
  BatchBuilder b({SqlType::Int(), SqlType::Varchar(8)});
  ASSERT_TRUE(b.AppendRow({Datum::Int(0), Datum::String("zero")}).ok());
  ASSERT_TRUE(b.AppendRow({Datum::Null(), Datum::String("")}).ok());
  ASSERT_TRUE(b.AppendRow({Datum::Int(2), Datum::Null()}).ok());
  auto batch = b.Finish();
  auto gathered = vdb::GatherBatch(*batch, {2, 1});
  ASSERT_EQ(gathered->rows, 2u);
  EXPECT_EQ(gathered->RowAt(0)[0].int_val(), 2);
  EXPECT_TRUE(gathered->RowAt(0)[1].is_null());
  EXPECT_TRUE(gathered->RowAt(1)[0].is_null());
  EXPECT_EQ(gathered->RowAt(1)[1].string_val(), "");
}

// --- TDF2 codec --------------------------------------------------------------

TEST(Tdf2Test, RoundTripsEveryPhysicalKind) {
  std::vector<TdfColumn> schema = {
      {"I", SqlType::Int()},          {"F", SqlType::Double()},
      {"B", SqlType::Bool()},         {"N", SqlType::Decimal(9, 2)},
      {"S", SqlType::Varchar(20)},    {"D", SqlType::Date()},
      {"TS", SqlType::Timestamp()},   {"P", SqlType::PeriodDate()},
  };
  std::vector<SqlType> types;
  for (const auto& c : schema) types.push_back(c.type);
  std::vector<vdb::Row> rows;
  rows.push_back({Datum::Int(-7), Datum::MakeDouble(2.5), Datum::Bool(true),
                  Datum::MakeDecimal(Decimal{12345, 2}),
                  Datum::String("hello"), Datum::Date(16071),
                  Datum::Timestamp(1234567), Datum::Period(100, 200)});
  rows.push_back({Datum::Null(), Datum::Null(), Datum::Null(), Datum::Null(),
                  Datum::Null(), Datum::Null(), Datum::Null(), Datum::Null()});
  rows.push_back({Datum::Int(42), Datum::MakeDouble(-0.125),
                  Datum::Bool(false), Datum::MakeDecimal(Decimal{-99, 2}),
                  Datum::String(""), Datum::Date(0), Datum::Timestamp(0),
                  Datum::Period(-1, 1)});
  auto batch = vdb::BatchFromRows(types, rows, 0, rows.size());

  auto encoded = backend::EncodeTdfBatch(schema, *batch, 0, batch->rows);
  auto reader = backend::TdfReader::Open(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_TRUE(reader->is_columnar());
  EXPECT_EQ(reader->row_count(), rows.size());
  auto decoded = reader->ReadBatch();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ((*decoded)->rows, rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    vdb::Row got = (*decoded)->RowAt(r);
    ASSERT_EQ(got.size(), rows[r].size());
    for (size_t c = 0; c < got.size(); ++c) {
      EXPECT_TRUE(Datum::GroupEquals(got[c], rows[r][c]))
          << "row " << r << " col " << c << ": " << got[c].ToString()
          << " != " << rows[r][c].ToString();
    }
  }
}

TEST(Tdf2Test, AllNullPresenceRunRoundTrips) {
  std::vector<TdfColumn> schema = {{"A", SqlType::Int()},
                                   {"S", SqlType::Varchar(4)}};
  BatchBuilder b({SqlType::Int(), SqlType::Varchar(4)});
  for (int i = 0; i < 17; ++i) {  // deliberately not a multiple of 8
    ASSERT_TRUE(b.AppendRow({Datum::Null(), Datum::Null()}).ok());
  }
  auto batch = b.Finish();
  auto encoded = backend::EncodeTdfBatch(schema, *batch, 0, batch->rows);
  auto reader = backend::TdfReader::Open(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  auto decoded = reader->ReadBatch();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  ASSERT_EQ((*decoded)->rows, 17u);
  for (size_t r = 0; r < 17; ++r) {
    EXPECT_TRUE((*decoded)->columns[0]->IsNull(r));
    EXPECT_TRUE((*decoded)->columns[1]->IsNull(r));
  }
}

TEST(Tdf2Test, OffsetSliceEncodesOnlyItsRows) {
  // Encoding a span that starts mid-batch must slice the string arena
  // correctly, not re-encode from offset zero.
  std::vector<TdfColumn> schema = {{"S", SqlType::Varchar(16)}};
  BatchBuilder b({SqlType::Varchar(16)});
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        b.AppendRow({Datum::String("value-" + std::to_string(i))}).ok());
  }
  auto batch = b.Finish();
  auto encoded = backend::EncodeTdfBatch(schema, *batch, 2, 3);
  auto reader = backend::TdfReader::Open(encoded);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->row_count(), 3u);
  auto decoded = reader->ReadBatch();
  ASSERT_TRUE(decoded.ok()) << decoded.status();
  for (size_t r = 0; r < 3; ++r) {
    EXPECT_EQ((*decoded)->RowAt(r)[0].string_val(),
              "value-" + std::to_string(r + 2));
  }
}

// --- ResultStore spans -------------------------------------------------------

TEST(BatchStoreTest, VarlenSpillAcrossSpanBoundaries) {
  std::vector<TdfColumn> schema = {{"A", SqlType::Int()},
                                   {"S", SqlType::Varchar(64)}};
  BatchBuilder b({SqlType::Int(), SqlType::Varchar(64)});
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(b.AppendRow({Datum::Int(i),
                             Datum::String(std::string(40, 'a' + i % 26))})
                    .ok());
  }
  auto batch = b.Finish();

  // A budget small enough that later spans must spill to disk as TDF2.
  auto store = std::make_shared<backend::ResultStore>(/*memory_budget=*/128);
  store->set_schema(schema);
  for (size_t off = 0; off < 10; off += 3) {
    ASSERT_TRUE(store->AppendBatch(batch, off, std::min<size_t>(3, 10 - off))
                    .ok());
  }
  EXPECT_GT(store->spilled_batches(), 0u);
  EXPECT_GT(store->spilled_bytes(), 0);
  EXPECT_EQ(store->total_rows(), 10);

  // Spans come back in order with the rows intact, spilled or not.
  size_t next = 0;
  ASSERT_TRUE(store
                  ->ScanSpans([&](const BatchSpan& span) {
                    for (size_t r = 0; r < span.rows; ++r) {
                      vdb::Row row = span.batch->RowAt(span.offset + r);
                      EXPECT_EQ(row[0].int_val(),
                                static_cast<int64_t>(next));
                      EXPECT_EQ(row[1].string_val(),
                                std::string(40, 'a' + next % 26));
                      ++next;
                    }
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(next, 10u);

  // And the converter's bytes over this store match the row oracle even
  // when a wire batch straddles a memory span and a spilled span.
  BackendResult result;
  result.columns = schema;
  result.store = store;
  ExpectConverterMatchesOracle(result, /*rows_per_batch=*/4);
}

TEST(BatchStoreTest, ZeroRowResultEmitsOneEmptySpan) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.Execute("CREATE TABLE E (A INTEGER, B VARCHAR(8))").ok());
  backend::BackendConnector connector(&engine);
  auto result = connector.Execute("SELECT A, B FROM E");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->is_rowset());
  size_t spans = 0, rows = 0;
  ASSERT_TRUE(result->store
                  ->ScanSpans([&](const BatchSpan& span) {
                    ++spans;
                    rows += span.rows;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(spans, 1u);  // announce-then-stream needs one (empty) batch
  EXPECT_EQ(rows, 0u);

  convert::ResultConverter converter(convert::ConverterOptions{});
  auto converted = converter.Convert(*result);
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->total_rows, 0u);
  EXPECT_TRUE(converted->batches.empty());
  ASSERT_EQ(converted->columns.size(), 2u);
}

// --- Cancellation ------------------------------------------------------------

TEST(BatchCancelTest, MidFetchCancelIsTypedAndLeavesNoGovernorResidue) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.Execute("CREATE TABLE C (A INTEGER)").ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        engine.Execute("INSERT INTO C VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  auto governor = std::make_shared<ResourceGovernor>();
  backend::ConnectorOptions options;
  options.batch_rows = 1;  // a span boundary after every row
  options.governor = governor;
  options.session_tag = 7;
  backend::BackendConnector connector(&engine, options);

  FaultSpec latency;
  latency.kind = FaultKind::kLatency;
  latency.latency_ms = 20;
  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, latency);

  QueryContext ctx;
  Status status = Status::OK();
  std::thread runner([&] {
    auto r = connector.Execute("SELECT A FROM C", &ctx);
    status = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kConnectorFetchBatch) >=
           2;
  }));
  ctx.Cancel(CancelCause::kKill, Status::Cancelled("query killed"));
  runner.join();
  FaultInjector::Global().Reset();

  ASSERT_FALSE(status.ok());
  EXPECT_TRUE(status.IsCancelled()) << status;
  // The abandoned fetch dropped its store: every reserved byte returned.
  auto stats = governor->stats();
  EXPECT_EQ(stats.memory_bytes, 0);
  EXPECT_EQ(stats.spill_bytes, 0);
}

TEST(BatchCancelTest, ConvertObservesCancellationBetweenBatches) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.Execute("CREATE TABLE CC (A INTEGER)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        engine.Execute("INSERT INTO CC VALUES (" + std::to_string(i) + ")")
            .ok());
  }
  backend::BackendConnector connector(&engine);
  auto result = connector.Execute("SELECT A FROM CC");
  ASSERT_TRUE(result.ok());

  QueryContext ctx;
  ctx.Cancel(CancelCause::kKill, Status::Cancelled("query killed"));
  convert::ConverterOptions opts;
  opts.rows_per_batch = 4;
  convert::ResultConverter converter(opts);
  auto converted = converter.Convert(*result, &ctx);
  ASSERT_FALSE(converted.ok());
  EXPECT_TRUE(converted.status().IsCancelled());
}

// --- Wire-byte equivalence ---------------------------------------------------

TEST(BatchWireTest, ConverterMatchesOracleOnEdgeShapes) {
  vdb::Engine engine;
  ASSERT_TRUE(engine
                  .Execute("CREATE TABLE W (A INTEGER, B VARCHAR(12), "
                           "C DECIMAL(9,2), D DATE, F DOUBLE PRECISION, "
                           "G CHAR(5))")
                  .ok());
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "INSERT INTO W VALUES (1, 'one', 1.25, DATE "
                      "'2014-01-01', 0.5, 'ab');"
                      "INSERT INTO W VALUES (NULL, NULL, NULL, NULL, NULL, "
                      "NULL);"
                      "INSERT INTO W VALUES (2, '', -3.50, DATE '1899-12-31',"
                      " -1.5, 'toolong');"
                      "INSERT INTO W VALUES (3, 'three', 0.01, DATE "
                      "'2038-06-15', 2.25, 'x');"
                      "INSERT INTO W VALUES (4, 'four', 99.99, DATE "
                      "'2014-02-02', -0.0, '');")
                  .ok());
  backend::ConnectorOptions options;
  options.batch_rows = 2;  // wire batches straddle TDF spans
  backend::BackendConnector connector(&engine, options);
  auto result = connector.Execute("SELECT * FROM W ORDER BY A");
  ASSERT_TRUE(result.ok()) << result.status();
  for (size_t rows_per_batch : {1u, 3u, 4u, 100u}) {
    ExpectConverterMatchesOracle(*result, rows_per_batch);
  }
}

// The golden equivalence bar re-run under the batch path: a query zoo is
// translated to every registered SQL-B dialect, executed through the
// columnar pipeline, and each dialect's wire bytes must match the per-row
// oracle exactly.
TEST(BatchWireTest, DialectZooIsByteIdenticalToRowOracle) {
  const std::vector<std::string> ddl = {
      "CREATE TABLE Z (K INTEGER, V VARCHAR(10), N DECIMAL(7,2), D DATE)",
      "INS INTO Z VALUES (1, 'alpha', 1.50, DATE '2014-01-01')",
      "INS INTO Z VALUES (2, 'beta', NULL, DATE '2014-06-01')",
      "INS INTO Z VALUES (2, NULL, -2.25, NULL)",
      "INS INTO Z VALUES (3, '', 0.00, DATE '2015-01-01')",
  };
  const std::vector<std::string> zoo = {
      "SEL * FROM Z",
      "SEL K, V FROM Z WHERE K > 1",
      "SEL K, COUNT(*), SUM(N) FROM Z GROUP BY K ORDER BY K",
      "SEL V FROM Z WHERE N IS NULL",
      "SEL K + 1, N FROM Z ORDER BY 1 DESC",
      "SEL DISTINCT K FROM Z ORDER BY K",
  };
  auto names = serializer::DialectNames();
  ASSERT_GE(names.size(), 3u);
  for (const auto& name : names) {
    const serializer::SQLDialectGenerator* gen =
        serializer::FindDialect(name);
    ASSERT_NE(gen, nullptr) << name;
    vdb::Engine engine;
    service::ServiceOptions opts;
    opts.profile = gen->Profile();
    service::HyperQService service(&engine, opts);
    auto sid = service.OpenSession("batch");
    ASSERT_TRUE(sid.ok());
    for (const auto& stmt : ddl) {
      ASSERT_TRUE(service.Submit(*sid, stmt).ok()) << name << ": " << stmt;
    }
    for (const auto& q : zoo) {
      auto outcome = service.Submit(*sid, q);
      ASSERT_TRUE(outcome.ok()) << name << ": " << q << "\n"
                                << outcome.status();
      ASSERT_TRUE(outcome->result.is_rowset()) << name << ": " << q;
      ExpectConverterMatchesOracle(outcome->result, /*rows_per_batch=*/2);
    }
    service.CloseSession(*sid);
  }
}

}  // namespace
}  // namespace hyperq
