// Resilience suite: fault injection, retry policy, deadlines, and the
// circuit breaker — everything deterministic (fixed seeds, no sleep over
// 50ms) so the robustness claims are provable in CI, including under
// ASan/UBSan (ctest label: faults).

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <thread>

#include "backend/connector.h"
#include "common/fault.h"
#include "common/retry.h"
#include "common/stopwatch.h"
#include "protocol/socket.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

// Every test runs against the pristine global injector.
class FaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
  }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// --- Status taxonomy --------------------------------------------------------

TEST_F(FaultTest, StatusTaxonomy) {
  EXPECT_TRUE(Status::Unavailable("x").IsRetryable());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsRetryable());
  EXPECT_FALSE(Status::DeadlineExceeded("x").IsRetryable());
  EXPECT_FALSE(Status::ExecutionError("x").IsRetryable());
  EXPECT_FALSE(Status::IoError("x").IsRetryable());
  EXPECT_FALSE(Status::OK().IsRetryable());
  EXPECT_TRUE(Status::Unavailable("x").IsUnavailable());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_EQ(StatusCodeName(StatusCode::kUnavailable),
            std::string("unavailable"));
  EXPECT_EQ(StatusCodeName(StatusCode::kDeadlineExceeded),
            std::string("deadline_exceeded"));
  EXPECT_EQ(StatusCodeName(StatusCode::kResourceExhausted),
            std::string("resource_exhausted"));
}

// --- Injector scheduling ----------------------------------------------------

TEST_F(FaultTest, InjectorFiresOnSchedule) {
  auto& inj = FaultInjector::Global();
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.first_hit = 3;  // skip the first two hits
  spec.every = 2;      // then every other eligible hit
  spec.max_fires = 2;  // at most twice
  inj.Arm("test.point", spec);

  std::vector<bool> fired;
  for (int i = 0; i < 10; ++i) {
    fired.push_back(!inj.Check("test.point").ok());
  }
  // Hits 3 and 5 fire; max_fires stops everything after that.
  std::vector<bool> expected = {false, false, true, false, true,
                                false, false, false, false, false};
  EXPECT_EQ(fired, expected);
  EXPECT_EQ(inj.hits("test.point"), 10);
  EXPECT_EQ(inj.fires("test.point"), 2);
  // Unarmed points never fire and cost almost nothing.
  EXPECT_TRUE(inj.Check("other.point").ok());
}

TEST_F(FaultTest, InjectorKindsMapToTaxonomy) {
  auto& inj = FaultInjector::Global();
  inj.Arm("p.transient", {FaultKind::kTransient, 1, 1, -1, 0, 1.0, ""});
  inj.Arm("p.permanent", {FaultKind::kPermanent, 1, 1, -1, 0, 1.0, ""});
  inj.Arm("p.disconnect", {FaultKind::kDisconnect, 1, 1, -1, 0, 1.0, ""});
  EXPECT_TRUE(inj.Check("p.transient").IsRetryable());
  EXPECT_FALSE(inj.Check("p.permanent").IsRetryable());
  EXPECT_TRUE(inj.Check("p.disconnect").IsUnavailable());

  FaultSpec latency;
  latency.kind = FaultKind::kLatency;
  latency.latency_ms = 5;
  inj.Arm("p.latency", latency);
  Stopwatch sw;
  EXPECT_TRUE(inj.Check("p.latency").ok());  // delays, then proceeds
  EXPECT_GE(sw.ElapsedMillis(), 4.0);
}

TEST_F(FaultTest, ProbabilityPatternIsSeedDeterministic) {
  auto& inj = FaultInjector::Global();
  FaultSpec spec;
  spec.probability = 0.5;
  auto pattern = [&](uint64_t seed) {
    inj.Reset();
    inj.SetSeed(seed);
    inj.Arm("prob.point", spec);
    std::vector<bool> fired;
    for (int i = 0; i < 64; ++i) {
      fired.push_back(!inj.Check("prob.point").ok());
    }
    return fired;
  };
  auto a = pattern(42), b = pattern(42), c = pattern(43);
  EXPECT_EQ(a, b);  // identical seed -> identical pattern
  EXPECT_NE(a, c);  // different seed -> different pattern
  int fires = 0;
  for (bool f : a) fires += f ? 1 : 0;
  EXPECT_GT(fires, 10);  // p=0.5 over 64 hits is nowhere near 0 or 64
  EXPECT_LT(fires, 54);
}

TEST_F(FaultTest, EnvStyleConfigRoundTrip) {
  auto& inj = FaultInjector::Global();
  ASSERT_TRUE(inj.Configure("vdb.execute=transient:first=2,max=1;"
                            "socket.read = latency : ms=7 ;"
                            "store.spill=permanent:msg=disk full")
                  .ok());
  auto points = inj.armed_points();
  ASSERT_EQ(points.size(), 3u);
  EXPECT_TRUE(inj.Check(faultpoints::kVdbExecute).ok());    // hit 1: armed at 2
  EXPECT_FALSE(inj.Check(faultpoints::kVdbExecute).ok());   // hit 2: fires
  EXPECT_TRUE(inj.Check(faultpoints::kVdbExecute).ok());    // max=1 reached
  Status spill = FaultInjector::Global().Check(faultpoints::kStoreSpill);
  EXPECT_TRUE(spill.IsExecutionError());
  EXPECT_NE(spill.message().find("disk full"), std::string::npos);

  EXPECT_FALSE(inj.Configure("no_equals_sign").ok());
  EXPECT_FALSE(inj.Configure("p=badkind").ok());
  EXPECT_FALSE(inj.Configure("p=transient:bogus=1").ok());
  EXPECT_FALSE(inj.Configure("p=transient:first=zero").ok());
  EXPECT_FALSE(inj.Configure("p=transient:p=1.5").ok());
}

// --- Retry policy / deadline ------------------------------------------------

TEST_F(FaultTest, BackoffIsCappedExponentialWithDeterministicJitter) {
  RetryPolicy policy;
  policy.base_delay_ms = 4;
  policy.max_delay_ms = 32;
  policy.jitter_seed = 7;
  int prev_step = 0;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    int step = std::min(4 << (attempt - 1), 32);  // pre-jitter exponential
    int d = policy.DelayMs(attempt);
    EXPECT_GE(d, step / 2) << attempt;
    EXPECT_LE(d, step) << attempt;
    EXPECT_EQ(d, policy.DelayMs(attempt)) << "jitter must be deterministic";
    EXPECT_GE(step, prev_step);
    prev_step = step;
  }
  RetryPolicy other = policy;
  other.jitter_seed = 8;
  bool any_diff = false;
  for (int attempt = 1; attempt <= 8; ++attempt) {
    any_diff |= other.DelayMs(attempt) != policy.DelayMs(attempt);
  }
  EXPECT_TRUE(any_diff) << "different seeds should decorrelate";
}

TEST_F(FaultTest, RetryCallRetriesOnlyTransientErrors) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  int calls = 0;
  RetryStats stats;
  Status st = RetryCall(policy, Deadline::Infinite(), nullptr, &stats, [&] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(stats.attempts, 3);
  EXPECT_GT(stats.backoff_micros, 0);

  calls = 0;
  st = RetryCall(policy, Deadline::Infinite(), nullptr, &stats, [&] {
    ++calls;
    return Status::ExecutionError("syntax error near SELECT");
  });
  EXPECT_TRUE(st.IsExecutionError());
  EXPECT_EQ(calls, 1) << "permanent errors must not be retried";

  calls = 0;
  st = RetryCall(policy, Deadline::Infinite(), nullptr, &stats, [&] {
    ++calls;
    return Status::Unavailable("always down");
  });
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(calls, 5) << "attempts are capped by the policy";
}

TEST_F(FaultTest, DeadlineEnforcedAcrossRetries) {
  RetryPolicy policy;
  policy.max_attempts = 100;  // deadline, not the cap, must stop the loop
  policy.base_delay_ms = 8;
  policy.max_delay_ms = 8;
  int calls = 0;
  Stopwatch sw;
  Status st = RetryCall(policy, Deadline::After(10), nullptr, nullptr, [&] {
    ++calls;
    return Status::Unavailable("down");
  });
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_LT(calls, 5);
  EXPECT_LT(sw.ElapsedMillis(), 50.0);
  // The abort message names the underlying failure for diagnosability.
  EXPECT_NE(st.message().find("down"), std::string::npos);

  // An already-expired deadline aborts before the first attempt.
  calls = 0;
  st = RetryCall(policy, Deadline::After(-1), nullptr, nullptr, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(st.IsDeadlineExceeded());
  EXPECT_EQ(calls, 0);
}

// --- Circuit breaker --------------------------------------------------------

TEST_F(FaultTest, BreakerOpensHalfOpensAndCloses) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 3;
  opts.cooldown_ms = 0;  // next Admit() may probe immediately
  CircuitBreaker breaker(opts);

  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.OnFailure();
  }
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);

  // Cooldown elapsed (0ms): one probe is admitted, concurrent calls are not.
  ASSERT_TRUE(breaker.Admit().ok());
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  Status second = breaker.Admit();
  EXPECT_TRUE(second.IsUnavailable());
  breaker.OnSuccess();
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.consecutive_failures(), 0);

  // A failed probe re-opens.
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(breaker.Admit().ok());
    breaker.OnFailure();
  }
  ASSERT_TRUE(breaker.Admit().ok());  // half-open probe
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST_F(FaultTest, OpenBreakerFailsFastWhileCoolingDown) {
  CircuitBreakerOptions opts;
  opts.failure_threshold = 1;
  opts.cooldown_ms = 60000;  // never elapses within the test
  CircuitBreaker breaker(opts);
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnFailure();
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_TRUE(breaker.Admit().IsUnavailable());
  EXPECT_TRUE(breaker.Admit().IsUnavailable());
  EXPECT_EQ(breaker.rejected_count(), 2);
}

// --- Connector integration --------------------------------------------------

backend::ConnectorOptions FastRetryOptions() {
  backend::ConnectorOptions options;
  options.retry.max_attempts = 4;
  options.retry.base_delay_ms = 1;
  options.retry.max_delay_ms = 2;
  return options;
}

TEST_F(FaultTest, TransientBackendFaultIsRetriedToSuccess) {
  vdb::Engine engine;
  backend::BackendConnector connector(&engine, FastRetryOptions());
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 2;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);

  auto result = connector.Execute("SELECT 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->attempts, 3);  // 2 injected failures + 1 success
  EXPECT_GT(result->retry_backoff_micros, 0);
  EXPECT_EQ(FaultInjector::Global().fires(faultpoints::kVdbExecute), 2);
  EXPECT_EQ(connector.breaker()->state(), BreakerState::kClosed);
}

TEST_F(FaultTest, PermanentBackendFaultFailsWithoutRetry) {
  vdb::Engine engine;
  backend::BackendConnector connector(&engine, FastRetryOptions());
  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);

  auto result = connector.Execute("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsExecutionError());
  EXPECT_EQ(FaultInjector::Global().hits(faultpoints::kVdbExecute), 1)
      << "permanent errors must fail fast, not burn retry attempts";
  EXPECT_EQ(engine.statements_executed(), 0);
}

TEST_F(FaultTest, ConnectorDeadlineAbortsMidRetry) {
  vdb::Engine engine;
  backend::ConnectorOptions options;
  options.retry.max_attempts = 100;
  options.retry.base_delay_ms = 8;
  options.retry.max_delay_ms = 8;
  options.request_deadline_ms = 10;
  backend::BackendConnector connector(&engine, options);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);

  Stopwatch sw;
  auto result = connector.Execute("SELECT 1");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsDeadlineExceeded());
  EXPECT_LT(sw.ElapsedMillis(), 50.0);
}

TEST_F(FaultTest, ConnectorBreakerOpensThenRecoversViaProbe) {
  vdb::Engine engine;
  backend::ConnectorOptions options;
  options.retry.max_attempts = 1;  // isolate the breaker from the retry loop
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 0;
  backend::BackendConnector connector(&engine, options);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 2;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);

  EXPECT_FALSE(connector.Execute("SELECT 1").ok());
  EXPECT_FALSE(connector.Execute("SELECT 1").ok());
  EXPECT_EQ(connector.breaker()->state(), BreakerState::kOpen);

  // Cooldown 0: the next request is admitted as the half-open probe; the
  // injector is exhausted, so the probe succeeds and the breaker closes.
  auto result = connector.Execute("SELECT 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(connector.breaker()->state(), BreakerState::kClosed);
}

TEST_F(FaultTest, OpenConnectorBreakerShieldsTheBackend) {
  vdb::Engine engine;
  backend::ConnectorOptions options;
  options.retry.max_attempts = 1;
  options.breaker.failure_threshold = 2;
  options.breaker.cooldown_ms = 60000;
  backend::BackendConnector connector(&engine, options);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);

  EXPECT_FALSE(connector.Execute("SELECT 1").ok());
  EXPECT_FALSE(connector.Execute("SELECT 1").ok());
  int64_t hits_when_open =
      FaultInjector::Global().hits(faultpoints::kVdbExecute);

  auto rejected = connector.Execute("SELECT 1");
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.status().IsUnavailable());
  EXPECT_NE(rejected.status().message().find("circuit breaker"),
            std::string::npos);
  EXPECT_EQ(FaultInjector::Global().hits(faultpoints::kVdbExecute),
            hits_when_open)
      << "an open breaker must not let requests reach the backend";
  EXPECT_EQ(connector.breaker()->rejected_count(), 1);
}

TEST_F(FaultTest, FetchBatchFaultIsRetriedByReexecution) {
  vdb::Engine engine;
  backend::BackendConnector connector(&engine, FastRetryOptions());
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, spec);

  auto result = connector.Execute("SELECT 1");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->attempts, 2);
  // The engine really ran twice: fetch failures recover by re-execution.
  EXPECT_EQ(engine.statements_executed(), 2);
}

TEST_F(FaultTest, SpillFaultIsRetriedLikeAnyFetchFailure) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE TABLE T (A INTEGER);"
                                   "INSERT INTO T VALUES (1);"
                                   "INSERT INTO T VALUES (2);"
                                   "INSERT INTO T VALUES (3)")
                  .ok());
  backend::ConnectorOptions options = FastRetryOptions();
  options.batch_rows = 1;
  options.store_memory_budget = 1;  // every batch beyond the first spills
  backend::BackendConnector connector(&engine, options);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kStoreSpill, spec);

  auto result = connector.Execute("SELECT A FROM T ORDER BY A");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->attempts, 2);
  EXPECT_EQ(FaultInjector::Global().fires(faultpoints::kStoreSpill), 1);
  auto rows = result->DecodeRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 3u);
}

// Satellite (DESIGN.md §8): a failed spill *write* — the disk filling up
// mid-query — surfaces as a typed kIoError and leaves no partial file
// behind, instead of silently truncating the result.
TEST_F(FaultTest, SpillWriteFailureSurfacesTypedIoError) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE TABLE T (A INTEGER);"
                                   "INSERT INTO T VALUES (1);"
                                   "INSERT INTO T VALUES (2);"
                                   "INSERT INTO T VALUES (3)")
                  .ok());
  backend::ConnectorOptions options = FastRetryOptions();
  options.batch_rows = 1;
  options.store_memory_budget = 1;  // every batch beyond the first spills
  std::string dir = "/tmp/hyperq_enospc_XXXXXX";
  {
    std::vector<char> buf(dir.begin(), dir.end());
    buf.push_back('\0');
    ASSERT_NE(mkdtemp(buf.data()), nullptr);
    dir.assign(buf.data());
  }
  options.spill_dir = dir;
  backend::BackendConnector connector(&engine, options);

  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;  // ENOSPC does not heal on retry
  spec.message = "No space left on device";
  FaultInjector::Global().Arm(faultpoints::kStoreSpillWrite, spec);

  auto result = connector.Execute("SELECT A FROM T ORDER BY A");
  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsIoError()) << result.status();
  EXPECT_NE(result.status().message().find("No space left"),
            std::string::npos);
  // IoError is not retryable: the query failed on the first attempt
  // instead of hammering a full disk.
  EXPECT_EQ(FaultInjector::Global().fires(faultpoints::kStoreSpillWrite), 1);

  // The partially written spill file was cleaned up.
  size_t files = 0;
  std::error_code ec;
  for (auto it = std::filesystem::directory_iterator(dir, ec);
       !ec && it != std::filesystem::directory_iterator(); ++it) {
    ++files;
  }
  EXPECT_EQ(files, 0u) << "spill-write failure must remove the partial file";
  std::filesystem::remove_all(dir);
}

// --- Service: attempts surface in the timing breakdown ----------------------

TEST_F(FaultTest, RetriesSurfaceInTimingBreakdown) {
  vdb::Engine engine;
  service::ServiceOptions options;
  options.connector = FastRetryOptions();
  service::HyperQService service(&engine, options);
  auto session = service.OpenSession("dbc");
  ASSERT_TRUE(session.ok());

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);
  auto outcome = service.Submit(*session, "SEL 1");
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  EXPECT_EQ(outcome->timing.execution_attempts, 2);
  EXPECT_GT(outcome->timing.retry_backoff_micros, 0);

  FaultInjector::Global().Reset();
  outcome = service.Submit(*session, "SEL 1");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->timing.execution_attempts, 1);
  EXPECT_EQ(outcome->timing.retry_backoff_micros, 0);
  service.CloseSession(*session);
}

// --- Wire-level faults ------------------------------------------------------

struct SocketPair {
  protocol::Socket client;
  protocol::Socket server;
};

SocketPair MakeLoopbackPair() {
  auto listener = protocol::ListenSocket::BindLocal(0);
  EXPECT_TRUE(listener.ok());
  auto client = protocol::Socket::ConnectLocal(listener->port());
  EXPECT_TRUE(client.ok());
  auto server = listener->Accept();
  EXPECT_TRUE(server.ok());
  return {std::move(client).value(), std::move(server).value()};
}

TEST_F(FaultTest, InjectedSocketReadDropIsRetryable) {
  SocketPair pair = MakeLoopbackPair();
  protocol::Frame frame{protocol::MessageKind::kGoodbye, 0, {}};
  ASSERT_TRUE(pair.client.WriteFrame(frame).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kDisconnect;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kSocketRead, spec);
  auto dropped = pair.server.ReadFrame();
  ASSERT_FALSE(dropped.ok());
  EXPECT_TRUE(dropped.status().IsUnavailable());

  // The fault is exhausted; the frame is still in the kernel buffer.
  auto delivered = pair.server.ReadFrame();
  ASSERT_TRUE(delivered.ok());
  EXPECT_EQ(delivered->kind, protocol::MessageKind::kGoodbye);
}

TEST_F(FaultTest, InjectedSocketWriteFaultSurfaces) {
  SocketPair pair = MakeLoopbackPair();
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kSocketWrite, spec);
  protocol::Frame frame{protocol::MessageKind::kGoodbye, 0, {}};
  Status st = pair.client.WriteFrame(frame);
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_TRUE(pair.client.WriteFrame(frame).ok());
}

TEST_F(FaultTest, RecvTimeoutSurfacesAsDeadlineExceeded) {
  SocketPair pair = MakeLoopbackPair();
  ASSERT_TRUE(pair.server.SetRecvTimeoutMs(20).ok());
  Stopwatch sw;
  auto frame = pair.server.ReadFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsDeadlineExceeded());
  EXPECT_GE(sw.ElapsedMillis(), 15.0);
  EXPECT_LT(sw.ElapsedMillis(), 50.0);
}

TEST_F(FaultTest, PeerCloseIsUnavailableNotGenericIo) {
  SocketPair pair = MakeLoopbackPair();
  pair.client.Close();
  auto frame = pair.server.ReadFrame();
  ASSERT_FALSE(frame.ok());
  EXPECT_TRUE(frame.status().IsUnavailable());
}

}  // namespace
}  // namespace hyperq
