// XTRA algebra unit tests: builders, cloning, structural equality,
// visitors and the tree printer.

#include <gtest/gtest.h>

#include "xtra/xtra.h"

namespace hyperq::xtra {
namespace {

TEST(XtraExprTest, BuildersDeriveTypes) {
  auto add = Arith(ArithKind::kAdd, IntConst(1), IntConst(2));
  EXPECT_EQ(add->type.kind, TypeKind::kInt);
  auto div = Arith(ArithKind::kDiv, IntConst(1), IntConst(2));
  EXPECT_EQ(div->type.kind, TypeKind::kDouble);
  auto cmp = Comp(CompKind::kLt, IntConst(1), IntConst(2));
  EXPECT_EQ(cmp->type.kind, TypeKind::kBool);
  auto cat = Arith(ArithKind::kConcat, StrConst("a"), StrConst("b"));
  EXPECT_EQ(cat->type.kind, TypeKind::kVarchar);
}

TEST(XtraExprTest, ConjoinShapes) {
  EXPECT_EQ(Conjoin({}), nullptr);
  std::vector<ExprPtr> one;
  one.push_back(IntConst(1));
  auto single = Conjoin(std::move(one));
  EXPECT_EQ(single->kind, ExprKind::kConst);
  std::vector<ExprPtr> two;
  two.push_back(Comp(CompKind::kEq, IntConst(1), IntConst(1)));
  two.push_back(Comp(CompKind::kEq, IntConst(2), IntConst(2)));
  auto both = Conjoin(std::move(two));
  ASSERT_EQ(both->kind, ExprKind::kBool);
  EXPECT_EQ(both->boolk, BoolKind::kAnd);
  EXPECT_EQ(both->children.size(), 2u);
}

TEST(XtraExprTest, CompKindHelpers) {
  EXPECT_EQ(NegateComp(CompKind::kLt), CompKind::kGe);
  EXPECT_EQ(NegateComp(CompKind::kEq), CompKind::kNe);
  EXPECT_EQ(SwapComp(CompKind::kLt), CompKind::kGt);
  EXPECT_EQ(SwapComp(CompKind::kEq), CompKind::kEq);
  EXPECT_STREQ(CompKindSql(CompKind::kLe), "<=");
  EXPECT_STREQ(CompKindName(CompKind::kLe), "LTE");
}

TEST(XtraExprTest, CloneIsDeepAndEqual) {
  auto e = Comp(CompKind::kGt,
                Arith(ArithKind::kMul, ColRef(1, "A", SqlType::Int()),
                      IntConst(3)),
                IntConst(10));
  auto c = e->Clone();
  EXPECT_TRUE(ExprEquals(*e, *c));
  // Mutating the clone does not affect the original.
  c->children[1]->value = Datum::Int(11);
  EXPECT_FALSE(ExprEquals(*e, *c));
}

TEST(XtraExprTest, ExprEqualsDiscriminates) {
  EXPECT_TRUE(ExprEquals(*IntConst(5), *IntConst(5)));
  EXPECT_FALSE(ExprEquals(*IntConst(5), *IntConst(6)));
  EXPECT_TRUE(ExprEquals(*ColRef(3, "X", SqlType::Int()),
                         *ColRef(3, "Y", SqlType::Int())));  // id decides
  EXPECT_FALSE(ExprEquals(*ColRef(3, "X", SqlType::Int()),
                          *ColRef(4, "X", SqlType::Int())));
  // Subquery expressions never compare equal.
  auto subq = std::make_unique<Expr>(ExprKind::kSubqExists);
  subq->subplan = Get("T", {{1, "A", SqlType::Int()}});
  EXPECT_FALSE(ExprEquals(*subq, *subq->Clone()));
}

TEST(XtraOpTest, CloneClonesSubplans) {
  auto get = Get("T", {{1, "A", SqlType::Int()}}, "t1");
  auto exists = std::make_unique<Expr>(ExprKind::kSubqExists);
  exists->subplan = Get("S", {{2, "B", SqlType::Int()}});
  exists->type = SqlType::Bool();
  auto select = Select(std::move(get), std::move(exists));
  auto clone = select->Clone();
  EXPECT_EQ(clone->kind, OpKind::kSelect);
  EXPECT_NE(clone->predicate->subplan.get(),
            select->predicate->subplan.get());
  EXPECT_EQ(clone->predicate->subplan->table_name, "S");
  EXPECT_EQ(clone->output.size(), 1u);
}

TEST(XtraOpTest, FindOutput) {
  auto get = Get("T", {{1, "A", SqlType::Int()}, {2, "B", SqlType::Date()}});
  EXPECT_NE(get->FindOutput(2), nullptr);
  EXPECT_EQ(get->FindOutput(2)->name, "B");
  EXPECT_EQ(get->FindOutput(9), nullptr);
}

TEST(XtraOpTest, VisitExprsReachesSubplans) {
  auto inner = Get("S", {{5, "X", SqlType::Int()}});
  auto subq = std::make_unique<Expr>(ExprKind::kSubqScalar);
  subq->subplan = Select(std::move(inner),
                         Comp(CompKind::kEq, ColRef(5, "X", SqlType::Int()),
                              IntConst(7)));
  subq->type = SqlType::Int();
  auto plan = Select(Get("T", {{1, "A", SqlType::Int()}}),
                     Comp(CompKind::kGt, ColRef(1, "A", SqlType::Int()),
                          std::move(subq)));
  int consts = 0;
  VisitExprs(*plan, [&](const Expr& e) {
    if (e.kind == ExprKind::kConst) ++consts;
    return true;
  });
  EXPECT_EQ(consts, 1);  // the 7 inside the subplan
  // Early termination works.
  int seen = 0;
  VisitExprs(*plan, [&](const Expr&) {
    ++seen;
    return false;
  });
  EXPECT_EQ(seen, 1);
}

TEST(XtraPrinterTest, BasicShapes) {
  auto plan = Select(Get("SALES", {{1, "AMOUNT", SqlType::Int()}}),
                     Comp(CompKind::kGt,
                          ColRef(1, "AMOUNT", SqlType::Int()),
                          IntConst(10)));
  EXPECT_EQ(ToTreeString(*plan),
            "+-select\n"
            "|-get(SALES)\n"
            "+-comp(GT)\n"
            "|-ident(AMOUNT)\n"
            "+-const(10)\n");
}

TEST(XtraPrinterTest, GetAliasRendering) {
  auto aliased = Get("SALES_HISTORY", {}, "S2");
  EXPECT_EQ(ToTreeString(*aliased), "+-get(SALES_HISTORY 'S2')\n");
  auto plain = Get("SALES", {});
  EXPECT_EQ(ToTreeString(*plain), "+-get(SALES)\n");
}

TEST(XtraPrinterTest, RemapConstsLabel) {
  std::vector<ProjectItem> items;
  ProjectItem one;
  one.expr = IntConst(1);
  one.out_id = 9;
  one.name = "ONE";
  items.push_back(std::move(one));
  auto remap = Project(Get("H", {}), std::move(items));
  EXPECT_EQ(ToTreeString(*remap),
            "+-remap consts: (1)\n"
            "+-get(H)\n");
}

TEST(XtraPrinterTest, AdditiveChainsFlatten) {
  // ((a + b) + c) prints as one arith(+) with three children (Figure 5).
  auto sum = Arith(ArithKind::kAdd,
                   Arith(ArithKind::kAdd, IntConst(1), IntConst(2)),
                   IntConst(3));
  EXPECT_EQ(ToTreeString(*sum),
            "+-arith(+)\n"
            "|-const(1)\n"
            "|-const(2)\n"
            "+-const(3)\n");
  // Mixed operators do not flatten.
  auto mixed = Arith(ArithKind::kAdd,
                     Arith(ArithKind::kMul, IntConst(1), IntConst(2)),
                     IntConst(3));
  EXPECT_EQ(ToTreeString(*mixed),
            "+-arith(+)\n"
            "|-arith(*)\n"
            "| |-const(1)\n"
            "| +-const(2)\n"
            "+-const(3)\n");
}

}  // namespace
}  // namespace hyperq::xtra
