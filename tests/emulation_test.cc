// Emulation-layer units: macro expansion, MERGE lowering, CteRef
// replacement, HELP/session answering.

#include <gtest/gtest.h>

#include "emulation/macro.h"
#include "emulation/merge.h"
#include "emulation/recursion.h"
#include "emulation/session.h"
#include "sql/parser.h"

namespace hyperq::emulation {
namespace {

MacroDef MakeMacro() {
  MacroDef m;
  m.name = "M";
  m.params = {{"LIM", SqlType::Decimal(10, 2), "", false},
              {"TAG", SqlType::Varchar(8), "'dflt'", true}};
  m.body_statements = {"SELECT * FROM t WHERE amt > :LIM AND tag = :TAG",
                       "UPDATE t SET tag = :TAG WHERE amt > :LIM"};
  return m;
}

sql::ExecMacroStatement ParseExec(const std::string& text) {
  auto stmt = sql::ParseStatement(text, sql::Dialect::Teradata());
  EXPECT_TRUE(stmt.ok());
  auto* exec = (*stmt)->As<sql::ExecMacroStatement>();
  sql::ExecMacroStatement out;
  out.macro = exec->macro;
  out.positional_args = std::move(exec->positional_args);
  out.named_args = std::move(exec->named_args);
  return out;
}

TEST(MacroTest, PositionalSubstitution) {
  auto exec = ParseExec("EXEC M (10.50, 'x')");
  auto out = ExpandMacro(MakeMacro(), exec);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_EQ((*out)[0],
            "SELECT * FROM t WHERE amt > 10.50 AND tag = 'x'");
  EXPECT_EQ((*out)[1], "UPDATE t SET tag = 'x' WHERE amt > 10.50");
}

TEST(MacroTest, DefaultsFillMissingParameters) {
  auto exec = ParseExec("EXEC M (1.00)");
  auto out = ExpandMacro(MakeMacro(), exec);
  ASSERT_TRUE(out.ok());
  EXPECT_NE((*out)[0].find("tag = 'dflt'"), std::string::npos);
}

TEST(MacroTest, NamedArgumentsAndErrors) {
  auto named = ParseExec("EXEC M (TAG = 'n', LIM = 2.00)");
  auto out = ExpandMacro(MakeMacro(), named);
  ASSERT_TRUE(out.ok());
  EXPECT_NE((*out)[0].find("amt > 2.00"), std::string::npos);

  // Missing required parameter.
  EXPECT_FALSE(ExpandMacro(MakeMacro(), ParseExec("EXEC M")).ok());
  // Too many positional arguments.
  EXPECT_FALSE(
      ExpandMacro(MakeMacro(), ParseExec("EXEC M (1, 'a', 2)")).ok());
  // Unknown named parameter.
  EXPECT_FALSE(
      ExpandMacro(MakeMacro(), ParseExec("EXEC M (NOPE = 1)")).ok());
}

TEST(MacroTest, StringArgumentsAreQuotedSafely) {
  MacroDef m;
  m.name = "Q";
  m.params = {{"S", SqlType::Varchar(20), "", false}};
  m.body_statements = {"SELECT :S"};
  auto out = ExpandMacro(m, ParseExec("EXEC Q ('it''s')"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], "SELECT 'it''s'");  // escaping preserved
}

TEST(MacroTest, NegativeNumberAndDateLiterals) {
  MacroDef m;
  m.name = "N";
  m.params = {{"X", SqlType::Int(), "", false},
              {"D", SqlType::Date(), "", false}};
  m.body_statements = {"SELECT :X, :D"};
  auto out = ExpandMacro(m, ParseExec("EXEC N (-5, DATE '2014-01-01')"));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ((*out)[0], "SELECT -5, DATE '2014-01-01'");
}

TEST(MergeTest, ProducesUpdateThenInsert) {
  auto stmt = sql::ParseStatement(
      "MERGE INTO tgt USING src S ON tgt.k = S.k "
      "WHEN MATCHED THEN UPDATE SET v = S.v, w = 0 "
      "WHEN NOT MATCHED THEN INSERT (k, v) VALUES (S.k, S.v)",
      sql::Dialect::Teradata());
  ASSERT_TRUE(stmt.ok());
  auto parts = LowerMerge(*(*stmt)->As<sql::MergeStatement>());
  ASSERT_TRUE(parts.ok()) << parts.status();
  ASSERT_EQ(parts->size(), 2u);
  EXPECT_EQ((*parts)[0]->kind, sql::StmtKind::kUpdate);
  EXPECT_EQ((*parts)[1]->kind, sql::StmtKind::kInsert);

  const auto* upd = (*parts)[0]->As<sql::UpdateStatement>();
  // Source-referencing assignment became a scalar subquery; the constant
  // one stayed inline.
  EXPECT_EQ(upd->assignments[0].second->kind, sql::ExprKind::kScalarSubq);
  EXPECT_EQ(upd->assignments[1].second->kind, sql::ExprKind::kConst);
  ASSERT_NE(upd->where, nullptr);
  EXPECT_EQ(upd->where->kind, sql::ExprKind::kExistsSubq);

  const auto* ins = (*parts)[1]->As<sql::InsertStatement>();
  ASSERT_NE(ins->source, nullptr);
  // NOT EXISTS anti-join against the target.
  const auto& where = ins->source->block->where;
  ASSERT_NE(where, nullptr);
  EXPECT_EQ(where->kind, sql::ExprKind::kUnary);
}

TEST(MergeTest, UpdateOnlyAndInsertOnlyVariants) {
  auto upd_only = sql::ParseStatement(
      "MERGE INTO t USING s ON t.k = s.k WHEN MATCHED THEN UPDATE SET v = 1",
      sql::Dialect::Teradata());
  ASSERT_TRUE(upd_only.ok());
  auto parts = LowerMerge(*(*upd_only)->As<sql::MergeStatement>());
  ASSERT_TRUE(parts.ok());
  EXPECT_EQ(parts->size(), 1u);
  EXPECT_EQ((*parts)[0]->kind, sql::StmtKind::kUpdate);

  auto ins_only = sql::ParseStatement(
      "MERGE INTO t USING s ON t.k = s.k WHEN NOT MATCHED THEN INSERT (k) "
      "VALUES (s.k)",
      sql::Dialect::Teradata());
  ASSERT_TRUE(ins_only.ok());
  auto parts2 = LowerMerge(*(*ins_only)->As<sql::MergeStatement>());
  ASSERT_TRUE(parts2.ok());
  EXPECT_EQ(parts2->size(), 1u);
  EXPECT_EQ((*parts2)[0]->kind, sql::StmtKind::kInsert);
}

TEST(RecursionTest, ReplaceCteRefsPreservesColumnIds) {
  auto ref = std::make_unique<xtra::Op>(xtra::OpKind::kCteRef);
  ref->cte_name = "REPORTS";
  ref->output = {{7, "EMPNO", SqlType::Int()}, {8, "MGRNO", SqlType::Int()}};
  auto select = xtra::Select(std::move(ref),
                             xtra::Comp(xtra::CompKind::kGt,
                                        xtra::ColRef(7, "EMPNO",
                                                     SqlType::Int()),
                                        xtra::IntConst(0)));
  auto replaced = ReplaceCteRefs(*select, "reports", "HQ_WT_X");
  ASSERT_EQ(replaced->children[0]->kind, xtra::OpKind::kGet);
  EXPECT_EQ(replaced->children[0]->table_name, "HQ_WT_X");
  ASSERT_EQ(replaced->children[0]->output.size(), 2u);
  EXPECT_EQ(replaced->children[0]->output[0].id, 7);  // ids preserved
}

TEST(RecursionTest, NonMatchingCteNamesUntouched) {
  auto ref = std::make_unique<xtra::Op>(xtra::OpKind::kCteRef);
  ref->cte_name = "OTHER";
  ref->output = {{1, "A", SqlType::Int()}};
  auto replaced = ReplaceCteRefs(*ref, "REPORTS", "WT");
  EXPECT_EQ(replaced->kind, xtra::OpKind::kCteRef);
}

TEST(SessionTest, HelpTableListsColumns) {
  Catalog catalog;
  TableDef t;
  t.name = "T";
  ColumnDef c1{"A", SqlType::Int(), false, {}};
  ColumnDef c2{"B", SqlType::Varchar(10), true, {}};
  c2.props.case_insensitive = true;
  t.columns = {c1, c2};
  ASSERT_TRUE(catalog.CreateTable(t).ok());

  sql::HelpStatement help;
  help.topic = sql::HelpStatement::Topic::kTable;
  help.object = "T";
  SessionInfo session;
  auto out = AnswerHelp(help, session, catalog);
  ASSERT_TRUE(out.ok());
  ASSERT_EQ(out->rows.size(), 2u);
  EXPECT_EQ(out->rows[0][0].string_val(), "A");
  EXPECT_EQ(out->rows[0][2].string_val(), "N");  // not nullable
  EXPECT_EQ(out->rows[1][3].string_val(), "N");  // case-insensitive
}

TEST(SessionTest, SetSessionUpdatesState) {
  SessionInfo session;
  sql::SetSessionStatement stmt;
  stmt.property = "DATABASE";
  stmt.value = "PROD";
  ASSERT_TRUE(ApplySetSession(stmt, &session).ok());
  EXPECT_EQ(session.default_database, "PROD");
  stmt.property = "CHARSET";
  stmt.value = "utf8";
  ASSERT_TRUE(ApplySetSession(stmt, &session).ok());
  EXPECT_EQ(session.charset, "UTF8");
  stmt.property = "BOGUS";
  EXPECT_TRUE(ApplySetSession(stmt, &session).IsNotSupported());
}

}  // namespace
}  // namespace hyperq::emulation
