// Observability suite (ctest label `observability`, DESIGN.md §9): the
// MetricsRegistry percentile math and scrape format, counter monotonicity
// under a concurrent soak, the per-query span tree's shape for every
// pipeline stage (including recursion iterations and retry attempts), the
// slow-query log threshold, the unified StatsSnapshot() against its
// deprecated shims, and the tdwp kStatsRequest admin scrape end to end.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "common/fault.h"
#include "common/query_context.h"
#include "observability/metric_names.h"
#include "observability/metrics.h"
#include "observability/trace.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

namespace obs = observability;
namespace names = observability::names;

using protocol::TdwpClient;
using protocol::TdwpServer;
using protocol::TdwpServerOptions;
using service::HyperQService;
using service::QueryRequest;
using service::ServiceOptions;

class ObservabilityTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultInjector::Global().Reset(); }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

// ---------------------------------------------------------------------------
// Histogram percentile math
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, HistogramQuantileInterpolatesWithinBucket) {
  obs::Histogram h({10.0, 100.0, 1000.0});
  // 100 observations, all in the (10, 100] bucket.
  for (int i = 0; i < 100; ++i) h.Observe(50.0);
  obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_EQ(snap.count, 100);
  EXPECT_DOUBLE_EQ(snap.sum, 5000.0);
  // Every rank lands in the same bucket; interpolation stays in (10, 100].
  for (double q : {0.5, 0.95, 0.99}) {
    double v = snap.Quantile(q);
    EXPECT_GT(v, 10.0) << "q=" << q;
    EXPECT_LE(v, 100.0) << "q=" << q;
  }
  // p99 sits later in the bucket than p50 (linear interpolation by rank).
  EXPECT_LT(snap.p50(), snap.p99());
}

TEST_F(ObservabilityTest, HistogramQuantileSplitsAcrossBuckets) {
  obs::Histogram h({10.0, 100.0});
  for (int i = 0; i < 90; ++i) h.Observe(5.0);    // bucket (0, 10]
  for (int i = 0; i < 10; ++i) h.Observe(50.0);   // bucket (10, 100]
  obs::HistogramSnapshot snap = h.snapshot();
  EXPECT_LE(snap.p50(), 10.0);   // rank 50 of 100 is in the first bucket
  EXPECT_GT(snap.p95(), 10.0);   // rank 95 crosses into the second
  EXPECT_LE(snap.p99(), 100.0);
}

TEST_F(ObservabilityTest, HistogramOverflowBucketReportsLowerBound) {
  obs::Histogram h({10.0, 100.0});
  for (int i = 0; i < 10; ++i) h.Observe(1e6);  // all overflow
  obs::HistogramSnapshot snap = h.snapshot();
  // The overflow bucket has no upper bound; its lower bound is the honest
  // estimate.
  EXPECT_DOUBLE_EQ(snap.p50(), 100.0);
  EXPECT_DOUBLE_EQ(snap.p99(), 100.0);
}

TEST_F(ObservabilityTest, HistogramEmptyQuantileIsZero) {
  obs::Histogram h({1.0, 2.0});
  EXPECT_DOUBLE_EQ(h.snapshot().p50(), 0.0);
}

TEST_F(ObservabilityTest, LatencyAndSizeBucketPresetsAreSorted) {
  for (const auto* bounds : {&obs::Histogram::LatencyBucketsMicros(),
                             &obs::Histogram::SizeBucketsBytes()}) {
    ASSERT_FALSE(bounds->empty());
    EXPECT_TRUE(std::is_sorted(bounds->begin(), bounds->end()));
  }
}

// ---------------------------------------------------------------------------
// Registry: naming, scrape format, monotonicity under a concurrent soak
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, LabeledNameFixedFormat) {
  EXPECT_EQ(obs::LabeledName("hyperq.queries", {{"outcome", "ok"}}),
            "hyperq.queries{outcome=\"ok\"}");
  EXPECT_EQ(obs::LabeledName("x", {{"a", "1"}, {"b", "2"}}),
            "x{a=\"1\",b=\"2\"}");
}

TEST_F(ObservabilityTest, RenderTextScrapeFormatGolden) {
  obs::MetricsRegistry reg;
  reg.counter("hyperq.test.events")->Inc(3);
  reg.gauge("hyperq.test.level")->Set(42);
  obs::Histogram* h = reg.histogram("hyperq.test.micros", {10.0, 100.0});
  h->Observe(5.0);
  h->Observe(5.0);
  // The scrape format is a contract (scripts/scrape.sh, dashboards):
  // sorted by name, one line per series, fixed field order.
  EXPECT_EQ(reg.RenderText(),
            "counter hyperq.test.events 3\n"
            "gauge hyperq.test.level 42\n"
            "histogram hyperq.test.micros count=2 sum=10.0 p50=5.0 p95=5.0 "
            "p99=5.0\n");
}

TEST_F(ObservabilityTest, CounterMonotonicityUnderChaosSoak) {
  obs::MetricsRegistry reg;
  std::atomic<bool> stop{false};
  // Writers hammer a shared counter set while a reader snapshots; no
  // snapshot may ever observe a counter lower than a previous snapshot.
  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&reg, &stop, t] {
      obs::Counter* c =
          reg.counter("hyperq.soak." + std::to_string(t % 2));
      obs::Histogram* h = reg.histogram("hyperq.soak.micros");
      while (!stop.load(std::memory_order_relaxed)) {
        c->Inc();
        h->Observe(static_cast<double>(t + 1));
      }
    });
  }
  std::map<std::string, int64_t> last;
  int64_t last_hist_count = 0;
  for (int i = 0; i < 200; ++i) {
    obs::MetricsSnapshot snap = reg.Snapshot();
    for (const auto& [name, value] : snap.counters) {
      auto it = last.find(name);
      if (it != last.end()) {
        EXPECT_GE(value, it->second) << name << " regressed";
      }
      last[name] = value;
    }
    auto hit = snap.histograms.find("hyperq.soak.micros");
    if (hit != snap.histograms.end()) {
      EXPECT_GE(hit->second.count, last_hist_count);
      last_hist_count = hit->second.count;
    }
  }
  stop.store(true);
  for (auto& w : writers) w.join();
}

// ---------------------------------------------------------------------------
// QueryTrace structure
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, SpanNestingFollowsOpenStack) {
  obs::QueryTrace trace;
  int a = trace.StartSpan("a");
  int b = trace.StartSpan("b");  // nests under a
  trace.EndSpan(b);
  int c = trace.StartSpan("c");  // sibling of b, still under a
  trace.EndSpan(c);
  trace.EndSpan(a);
  trace.Finish();
  auto spans = trace.spans();
  ASSERT_EQ(spans.size(), 4u);  // root + a + b + c
  EXPECT_EQ(spans[1].name, "a");
  EXPECT_EQ(spans[1].parent, 0);
  EXPECT_EQ(spans[2].parent, a);
  EXPECT_EQ(spans[3].parent, a);
}

TEST_F(ObservabilityTest, LastDurationIgnoresAbandonedEarlierAttempt) {
  // The conversion_micros regression (DESIGN.md §9): a request that
  // re-enters a stage after an abandoned first attempt must report the
  // last attempt's time, not the sum of both.
  obs::QueryTrace trace;
  trace.AddCompletedSpan("convert", 0.0, 900.0);   // abandoned attempt
  trace.AddCompletedSpan("convert", 1000.0, 50.0); // the one that counted
  trace.Finish();
  EXPECT_DOUBLE_EQ(trace.SumDurations("convert"), 950.0);
  EXPECT_DOUBLE_EQ(trace.LastDuration("convert"), 50.0);
  EXPECT_EQ(trace.CountSpans("convert"), 2);
}

TEST_F(ObservabilityTest, FinishClosesStragglersAndIsIdempotent) {
  obs::QueryTrace trace;
  trace.StartSpan("left.open");
  trace.Finish();
  double total = trace.total_micros();
  trace.Finish();
  EXPECT_TRUE(trace.finished());
  EXPECT_DOUBLE_EQ(trace.total_micros(), total);
  for (const auto& span : trace.spans()) {
    EXPECT_GE(span.duration_micros, 0.0) << span.name << " left open";
  }
}

TEST_F(ObservabilityTest, TraceRingKeepsMostRecentFirst) {
  obs::TraceRing ring(3);
  std::vector<std::shared_ptr<obs::QueryTrace>> traces;
  for (int i = 0; i < 5; ++i) {
    auto t = std::make_shared<obs::QueryTrace>();
    t->set_session_id(static_cast<uint32_t>(i));
    t->Finish();
    ring.Add(t);
    traces.push_back(t);
  }
  EXPECT_EQ(ring.total_added(), 5);
  auto recent = ring.Recent(10);
  ASSERT_EQ(recent.size(), 3u);  // capacity bound
  EXPECT_EQ(recent[0]->session_id(), 4u);
  EXPECT_EQ(recent[1]->session_id(), 3u);
  EXPECT_EQ(recent[2]->session_id(), 2u);
}

// ---------------------------------------------------------------------------
// Span-tree shape through the real pipeline
// ---------------------------------------------------------------------------

class ServiceTraceTest : public ObservabilityTest {
 protected:
  void Init(ServiceOptions options = {}) {
    service_ = std::make_unique<HyperQService>(&engine_, options);
    auto sid = service_->OpenSession("tester");
    ASSERT_TRUE(sid.ok()) << sid.status();
    sid_ = *sid;
    Must("CREATE TABLE T (A INTEGER, B VARCHAR(16))");
    Must("INS INTO T VALUES (1, 'one')");
    Must("INS INTO T VALUES (2, 'two')");
  }
  void Must(const std::string& sql) {
    auto out = service_->Submit(sid_, sql);
    ASSERT_TRUE(out.ok()) << sql << ": " << out.status();
  }
  std::shared_ptr<const obs::QueryTrace> Trace(const std::string& sql) {
    QueryRequest request;
    request.session_id = sid_;
    request.sql = sql;
    auto out = service_->Submit(request);
    EXPECT_TRUE(out.ok()) << sql << ": " << out.status();
    if (!out.ok()) return nullptr;
    EXPECT_NE(out->trace, nullptr);
    return out->trace;
  }

  vdb::Engine engine_;
  std::unique_ptr<HyperQService> service_;
  uint32_t sid_ = 0;
};

TEST_F(ServiceTraceTest, ColdQueryHasEveryPipelineStageSpan) {
  Init();
  auto trace = Trace("SEL A, B FROM T WHERE A = 1");
  ASSERT_NE(trace, nullptr);
  EXPECT_TRUE(trace->finished());
  for (const char* stage :
       {"cache.lookup", "parse", "bind", "transform", "serialize",
        "backend.execute", "backend.attempt", "tdf.buffer"}) {
    EXPECT_EQ(trace->CountSpans(stage), 1) << "missing span " << stage;
  }
  // The attempt nests under backend.execute; tdf.buffer under the attempt.
  auto spans = trace->spans();
  int exec_id = -1, attempt_id = -1;
  for (const auto& s : spans) {
    if (s.name == "backend.execute") exec_id = s.id;
    if (s.name == "backend.attempt") attempt_id = s.id;
  }
  ASSERT_GE(exec_id, 0);
  ASSERT_GE(attempt_id, 0);
  for (const auto& s : spans) {
    if (s.name == "backend.attempt") {
      EXPECT_EQ(s.parent, exec_id);
    }
    if (s.name == "tdf.buffer") {
      EXPECT_EQ(s.parent, attempt_id);
    }
  }
}

TEST_F(ServiceTraceTest, CacheHitSkipsParseBindTransformSpans) {
  Init();
  (void)Trace("SEL A FROM T WHERE A = 1");  // cold: populates the cache
  auto hit = Trace("SEL A FROM T WHERE A = 2");  // same shape, new literal
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->CountSpans("cache.lookup"), 1);
  EXPECT_EQ(hit->CountSpans("backend.execute"), 1);
  // The whole pipeline was skipped; no parse/bind/transform/serialize.
  EXPECT_EQ(hit->CountSpans("parse"), 0);
  EXPECT_EQ(hit->CountSpans("bind"), 0);
  EXPECT_EQ(hit->CountSpans("transform"), 0);
  EXPECT_EQ(hit->CountSpans("serialize"), 0);
}

TEST_F(ServiceTraceTest, RecursionIterationsAppearAsChildSpans) {
  Init();
  Must("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)");
  for (const char* row : {"(1, 7)", "(7, 8)", "(8, 10)"}) {
    Must(std::string("INS INTO EMP VALUES ") + row);
  }
  auto trace = Trace(R"(
    WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
      SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
      UNION ALL
      SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS
      WHERE REPORTS.EMPNO = EMP.MGRNO
    )
    SELECT EMPNO FROM REPORTS ORDER BY EMPNO)");
  ASSERT_NE(trace, nullptr);
  // The fixed-point loop ran at least twice (8<-10, then 7<-8, 1<-7, then
  // the empty round that detects the fixed point).
  EXPECT_GE(trace->CountSpans("recursion.iteration"), 2);
  // Iterations nest under the emulation's backend.execute span.
  auto spans = trace->spans();
  int exec_id = -1;
  for (const auto& s : spans) {
    if (s.name == "backend.execute") exec_id = s.id;
  }
  ASSERT_GE(exec_id, 0);
  for (const auto& s : spans) {
    if (s.name == "recursion.iteration") {
      EXPECT_EQ(s.parent, exec_id);
    }
  }
}

TEST_F(ServiceTraceTest, RetryAttemptsAppearAsSiblingSpans) {
  ServiceOptions options;
  options.connector.retry.max_attempts = 4;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  Init(options);
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);
  auto trace = Trace("SEL A FROM T");
  ASSERT_NE(trace, nullptr);
  // First attempt died on the injected transient; the retry succeeded.
  EXPECT_EQ(trace->CountSpans("backend.attempt"), 2);
  EXPECT_EQ(trace->CountSpans("backend.execute"), 1);
}

TEST_F(ServiceTraceTest, SelfTimesReconcileWithEndToEndLatency) {
  Init();
  // Self-times partition the root's wall clock: summed over every span
  // (the root's self-time included) they must reproduce the end-to-end
  // latency. Allow 5%; take the best of three runs to absorb scheduler
  // jitter on loaded machines.
  double best_error = 1e9;
  for (int attempt = 0; attempt < 3 && best_error > 0.05; ++attempt) {
    auto trace = Trace("SEL A, B FROM T WHERE A = 1");
    ASSERT_NE(trace, nullptr);
    double total = trace->total_micros();
    ASSERT_GT(total, 0.0);
    double self_sum = 0;
    for (const auto& s : trace->spans()) self_sum += trace->SelfMicros(s.id);
    best_error = std::min(best_error, std::abs(self_sum - total) / total);
  }
  EXPECT_LE(best_error, 0.05);
}

TEST_F(ServiceTraceTest, OutcomeAnnotationReflectsFailure) {
  Init();
  QueryRequest request;
  request.session_id = sid_;
  request.sql = "SEL NO_SUCH_COLUMN FROM T";
  auto out = service_->Submit(request);
  EXPECT_FALSE(out.ok());
  // The failed query's trace still lands in the ring, outcome "error".
  auto recent = service_->trace_ring().Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  EXPECT_EQ(recent[0]->outcome(), "error");
  EXPECT_TRUE(recent[0]->finished());
}

TEST_F(ServiceTraceTest, TracingOffMintsNoTraces) {
  ServiceOptions options;
  options.tracing = false;
  Init(options);
  QueryRequest request;
  request.session_id = sid_;
  request.sql = "SEL A FROM T";
  auto out = service_->Submit(request);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->trace, nullptr);
  // Init() + this query: nothing was ever added to the ring.
  EXPECT_EQ(service_->trace_ring().total_added(), 0);
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, SlowQueryLogEmitsPastThresholdOnly) {
  vdb::Engine engine;
  std::mutex mu;
  std::vector<std::string> lines;
  ServiceOptions options;
  options.slow_query_micros = 1.0;  // everything is slow
  options.slow_query_sink = [&](const std::string& line) {
    std::lock_guard<std::mutex> lock(mu);
    lines.push_back(line);
  };
  HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE S (A INTEGER)").ok());
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_FALSE(lines.empty());
    // One structured JSON line per offending query.
    EXPECT_NE(lines[0].find("\"event\":\"slow_query\""), std::string::npos);
    EXPECT_NE(lines[0].find("\"spans\":"), std::string::npos);
    EXPECT_NE(lines[0].find("CREATE TABLE S"), std::string::npos);
    EXPECT_EQ(lines[0].find('\n'), std::string::npos);
  }
  auto snap = service.StatsSnapshot();
  EXPECT_GE(snap.metrics.CounterOr(names::kSlowQueries), 1);
}

TEST_F(ObservabilityTest, SlowQueryLogSilentBelowThreshold) {
  vdb::Engine engine;
  std::atomic<int> emitted{0};
  ServiceOptions options;
  options.slow_query_micros = 1e12;  // nothing is that slow
  options.slow_query_sink = [&](const std::string&) { ++emitted; };
  HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE S (A INTEGER)").ok());
  EXPECT_EQ(emitted.load(), 0);
  EXPECT_EQ(service.StatsSnapshot().metrics.CounterOr(names::kSlowQueries),
            0);
}

// ---------------------------------------------------------------------------
// StatsSnapshot: the one surface, and its deprecated shims
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, StatsSnapshotAgreesWithDeprecatedShims) {
  vdb::Engine engine;
  HyperQService service(&engine);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO T VALUES (1)").ok());
  ASSERT_TRUE(service.Submit(*sid, "SEL A FROM T WHERE A = 1").ok());
  ASSERT_TRUE(service.Submit(*sid, "SEL A FROM T WHERE A = 2").ok());

  service::ServiceStatsSnapshot snap = service.StatsSnapshot();
  // Typed views and raw registry agree.
  EXPECT_EQ(snap.translation_cache.hits,
            snap.metrics.CounterOr(names::kCacheHits));
  EXPECT_EQ(snap.translation_activity.submit_statements,
            snap.metrics.CounterOr(names::kTranslateSubmitStatements));
  EXPECT_EQ(snap.lifecycle.cancelled,
            snap.metrics.CounterOr(names::kLifecycleCancelled));
  EXPECT_EQ(snap.resilience.failovers,
            snap.metrics.CounterOr(names::kFailoverReplays));
  // Deprecated shims read through the same registry.
  EXPECT_EQ(service.translation_cache_stats().hits,
            snap.translation_cache.hits);
  EXPECT_EQ(service.translation_activity().submit_statements,
            snap.translation_activity.submit_statements);
  EXPECT_EQ(service.resilience_stats().failovers, snap.resilience.failovers);
  EXPECT_EQ(service.lifecycle_stats().cancelled, snap.lifecycle.cancelled);
  // The traffic above: one cache hit, four submit statements.
  EXPECT_GE(snap.translation_cache.hits, 1);
  EXPECT_EQ(snap.translation_activity.submit_statements, 4);
  EXPECT_EQ(snap.open_sessions, 1u);
  EXPECT_EQ(snap.metrics.GaugeOr(names::kSessionsOpen), 1);
  // Outcome-labeled query counter covers every submit.
  EXPECT_EQ(snap.metrics.CounterOr(
                obs::LabeledName(names::kQueries, {{"outcome", "ok"}})),
            4);
}

TEST_F(ObservabilityTest, SharedRegistryIsSingleSink) {
  // The embedder supplies one registry; service and cache both feed it.
  obs::MetricsRegistry registry;
  vdb::Engine engine;
  ServiceOptions options;
  options.metrics = &registry;
  HyperQService service(&engine, options);
  ASSERT_EQ(service.metrics_registry(), &registry);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  obs::MetricsSnapshot snap = registry.Snapshot();
  EXPECT_GE(snap.counters.at(obs::LabeledName(names::kQueries,
                                              {{"outcome", "ok"}})),
            1);
  EXPECT_GE(snap.counters.at(names::kBackendAttempts), 1);
}

TEST_F(ObservabilityTest, FaultPointGaugesMirrorInjector) {
  vdb::Engine engine;
  ServiceOptions options;
  options.connector.retry.max_attempts = 4;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, spec);
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  auto snap = service.StatsSnapshot();
  EXPECT_GE(snap.metrics.GaugeOr("hyperq.faults.vdb.execute.hits"), 1);
  EXPECT_EQ(snap.metrics.GaugeOr("hyperq.faults.vdb.execute.fires"), 1);
  EXPECT_EQ(snap.metrics.CounterOr(names::kBackendRetries), 1);
}

// ---------------------------------------------------------------------------
// Wire admin surface: kStatsRequest scrape + server-finished traces
// ---------------------------------------------------------------------------

TEST_F(ObservabilityTest, WireScrapeReturnsRegistryRendering) {
  vdb::Engine engine;
  HyperQService service(&engine);
  TdwpServerOptions server_options;
  // One registry across service and server: one scrape shows both.
  server_options.metrics = service.metrics_registry();
  TdwpServer server(&service, server_options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("CREATE TABLE W (A INTEGER)").ok());
  ASSERT_TRUE(client.Run("INS INTO W VALUES (1)").ok());
  ASSERT_TRUE(client.Run("SEL A FROM W WHERE A = 1").ok());
  ASSERT_TRUE(client.Run("SEL A FROM W WHERE A = 2").ok());  // cache hit

  auto scrape = client.Scrape();
  ASSERT_TRUE(scrape.ok()) << scrape.status();
  // Live counters from every layer appear in one text scrape.
  EXPECT_NE(scrape->find("counter hyperq.server.admitted 1"),
            std::string::npos);
  EXPECT_NE(scrape->find("counter hyperq.wire.requests 4"),
            std::string::npos);
  EXPECT_NE(scrape->find("counter hyperq.cache.hits 1"), std::string::npos);
  EXPECT_NE(scrape->find("histogram hyperq.query.micros{class=\"wire\"}"),
            std::string::npos);
  EXPECT_NE(scrape->find("counter hyperq.server.scrapes 1"),
            std::string::npos);
  client.Goodbye();
  server.Stop();
}

TEST_F(ObservabilityTest, WireTraceHasStageSpansAndLandsInRing) {
  vdb::Engine engine;
  HyperQService service(&engine);
  TdwpServerOptions server_options;
  server_options.metrics = service.metrics_registry();
  TdwpServer server(&service, server_options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("CREATE TABLE W (A INTEGER, B VARCHAR(8))").ok());
  ASSERT_TRUE(client.Run("INS INTO W VALUES (1, 'x')").ok());
  ASSERT_TRUE(client.Run("SEL A, B FROM W WHERE A = 1").ok());
  // The success frame is written before the serving thread finishes the
  // trace; a scrape on the same connection is a sequencing barrier that
  // guarantees the SELECT's trace has been recorded.
  ASSERT_TRUE(client.Scrape().ok());

  auto recent = service.trace_ring().Recent(1);
  ASSERT_EQ(recent.size(), 1u);
  auto trace = recent[0];
  EXPECT_EQ(trace->session_class(), "wire");
  EXPECT_EQ(trace->outcome(), "ok");
  // Every wire-path query: at least 6 stage spans, wire.read first and
  // wire.write last.
  int stages = 0;
  for (const char* stage :
       {"wire.read", "cache.lookup", "parse", "bind", "transform",
        "serialize", "backend.execute", "convert", "wire.write"}) {
    stages += trace->CountSpans(stage) > 0 ? 1 : 0;
  }
  EXPECT_GE(stages, 6);
  EXPECT_EQ(trace->CountSpans("wire.read"), 1);
  EXPECT_EQ(trace->CountSpans("wire.write"), 1);
  EXPECT_EQ(trace->CountSpans("convert"), 1);
  client.Goodbye();
  server.Stop();
}

}  // namespace
}  // namespace hyperq
