// Tail-tolerance suite (ctest label: tail, DESIGN.md §11): the global
// retry budget (token-bucket bounding of retry amplification), hedged
// reads for idempotent SELECTs (adaptive trigger, first-completion-wins,
// loser cancellation), per-backend AIMD adaptive concurrency limits, and
// brownout mode (declared degradation shedding low-priority session
// classes with hysteresis exit). Everything here is deterministic apart
// from coarse latency ordering (a replica slowed by tens of milliseconds
// vs. sub-millisecond fast paths), so the suite is stable under ASan/TSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "backend/adaptive_limit.h"
#include "backend/pool.h"
#include "backend/router.h"
#include "common/brownout.h"
#include "common/fault.h"
#include "common/resource_governor.h"
#include "common/retry.h"
#include "common/retry_budget.h"
#include "common/status.h"
#include "observability/metric_names.h"
#include "service/hyperq_service.h"
#include "transform/backend_profile.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

namespace names = observability::names;
using backend::AdaptiveLimit;
using backend::AdaptiveLimitOptions;
using backend::BackendHealth;
using backend::BackendPool;
using backend::BackendSpec;
using backend::PoolOptions;

class TailTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
  }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

std::vector<BackendSpec> Replicas(int n) {
  std::vector<BackendSpec> specs(n);
  for (int i = 0; i < n; ++i) {
    specs[i].name = "r" + std::to_string(i);
    specs[i].profile = transform::BackendProfile::Vdb();
  }
  return specs;
}

backend::HealthOptions TestHealth() {
  backend::HealthOptions h;
  h.error_weight = 1.5;
  h.decay_half_life_ms = 1e9;
  h.readmit_cooldown_ms = 40;
  h.readmit_jitter = 0.5;
  return h;
}

// Fleet options with hedging armed: a 2ms floor threshold (far below the
// SlowBackend delays the tests inject) and a permissive load fraction so
// admission is decided by the scenario, not the gate under test.
service::ServiceOptions HedgeServiceOptions(int replicas) {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends = Replicas(replicas);
  options.fleet.health = TestHealth();
  options.tail.hedge.enabled = true;
  options.tail.hedge.min_threshold_micros = 2000;
  options.tail.hedge.max_hedge_fraction = 1.0;
  return options;
}

int64_t Counter(service::HyperQService& service, const char* name) {
  return service.metrics_registry()->counter(name)->value();
}

// --- Retry budget ------------------------------------------------------------

TEST_F(TailTest, RetryBudgetDrainsAndRefillsWithTraffic) {
  RetryBudgetOptions options;
  options.enabled = true;
  options.ratio = 0.5;
  options.max_tokens = 2.0;
  options.initial_tokens = 1.0;
  RetryBudget budget(options);

  EXPECT_TRUE(budget.TryWithdraw());   // 1 -> 0
  EXPECT_FALSE(budget.TryWithdraw());  // empty: denied

  // Organic traffic refills at `ratio` per request...
  budget.NoteRequest();
  budget.NoteRequest();  // +1.0 total
  EXPECT_TRUE(budget.TryWithdraw());

  // ...and the bucket is capped at max_tokens, bounding bursts.
  for (int i = 0; i < 20; ++i) budget.NoteRequest();
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_TRUE(budget.TryWithdraw());
  EXPECT_FALSE(budget.TryWithdraw());

  RetryBudgetStats stats = budget.stats();
  EXPECT_EQ(stats.deposits, 22);
  EXPECT_EQ(stats.withdrawals, 4);
  EXPECT_EQ(stats.denials, 2);
  EXPECT_LT(stats.tokens, 1.0);
}

TEST_F(TailTest, DisabledRetryBudgetAlwaysAdmitsAndCountsNothing) {
  RetryBudget budget;  // default: disabled
  ASSERT_FALSE(budget.enabled());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(budget.TryWithdraw());
  budget.NoteRequest();
  RetryBudgetStats stats = budget.stats();
  EXPECT_EQ(stats.deposits, 0);
  EXPECT_EQ(stats.withdrawals, 0);
  EXPECT_EQ(stats.denials, 0);
}

TEST_F(TailTest, RetryCallDenialCarriesTypedDetail) {
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.base_delay_ms = 1;
  policy.max_delay_ms = 2;
  RetryBudgetOptions empty;
  empty.enabled = true;
  empty.initial_tokens = 0;
  empty.max_tokens = 0;
  RetryBudget budget(empty);

  int calls = 0;
  Status st = RetryCall(policy, Deadline::Infinite(), nullptr, nullptr,
                        &budget, [&] {
                          ++calls;
                          return Status::Unavailable("backend down");
                        });
  EXPECT_EQ(calls, 1) << "an exhausted budget degrades to single-attempt";
  EXPECT_TRUE(st.IsUnavailable());
  EXPECT_EQ(st.detail(), StatusDetail::kRetryBudgetExhausted);
  // The underlying failure stays diagnosable through the typed denial.
  EXPECT_NE(st.message().find("backend down"), std::string::npos);

  // A funded budget admits the retries as before.
  RetryBudgetOptions funded;
  funded.enabled = true;
  funded.initial_tokens = 10;
  RetryBudget rich(funded);
  calls = 0;
  st = RetryCall(policy, Deadline::Infinite(), nullptr, nullptr, &rich, [&] {
    return ++calls < 3 ? Status::Unavailable("flaky") : Status::OK();
  });
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(rich.stats().withdrawals, 2);
}

TEST_F(TailTest, WithContextPreservesTailDetails) {
  Status budget = Status::Unavailable("no tokens")
                      .WithDetail(StatusDetail::kRetryBudgetExhausted)
                      .WithContext("while hedging SEL 1");
  EXPECT_EQ(budget.detail(), StatusDetail::kRetryBudgetExhausted);
  EXPECT_NE(budget.ToString().find("[retry_budget_exhausted]"),
            std::string::npos)
      << budget.ToString();

  Status shed = Status::ResourceExhausted("browning out")
                    .WithDetail(StatusDetail::kBrownoutShed)
                    .WithContext("session class 'script'");
  EXPECT_EQ(shed.detail(), StatusDetail::kBrownoutShed);
  EXPECT_NE(shed.ToString().find("[brownout_shed]"), std::string::npos);
}

// --- Adaptive concurrency limits --------------------------------------------

TEST_F(TailTest, AdaptiveLimitAimdConvergesAndRecovers) {
  AdaptiveLimitOptions options;
  options.enabled = true;
  options.min_limit = 1;
  options.max_limit = 8;
  options.initial_limit = 8;
  options.increase_per_success = 0.5;
  options.backoff_ratio = 0.5;
  AdaptiveLimit limit(options);
  ASSERT_EQ(limit.limit(), 8);

  // Multiplicative decrease: congestion halves the limit down to the floor.
  EXPECT_TRUE(limit.OnComplete(/*congested_error=*/true, -1));  // 8 -> 4
  EXPECT_EQ(limit.limit(), 4);
  EXPECT_TRUE(limit.OnComplete(true, -1));  // 4 -> 2
  EXPECT_TRUE(limit.OnComplete(true, -1));  // 2 -> 1
  EXPECT_TRUE(limit.OnComplete(true, -1));  // floor holds
  EXPECT_EQ(limit.limit(), 1);
  EXPECT_GE(limit.stats().backoffs, 4);

  // Additive increase: clean completions climb back to the ceiling.
  for (int i = 0; i < 40; ++i) {
    EXPECT_FALSE(limit.OnComplete(false, 500.0));
  }
  EXPECT_EQ(limit.limit(), 8) << "growth is capped at max_limit";
}

TEST_F(TailTest, AdaptiveLimitPunishesDivergenceNotStableSlowness) {
  AdaptiveLimitOptions options;
  options.enabled = true;
  options.min_limit = 1;
  options.max_limit = 16;
  options.initial_limit = 8;
  options.latency_factor = 2.0;
  options.ewma_alpha = 0.5;
  options.warmup_samples = 5;
  AdaptiveLimit limit(options);

  // A uniformly slow but stable replica is never cut...
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(limit.OnComplete(false, 5000.0));
  }
  EXPECT_EQ(limit.stats().backoffs, 0);
  const int grown = limit.limit();  // additive growth from the clean run

  // ...only one whose latency diverges from its own recent norm.
  EXPECT_TRUE(limit.OnComplete(false, 50000.0));
  EXPECT_EQ(limit.stats().backoffs, 1);
  EXPECT_LT(limit.limit(), grown);
}

TEST_F(TailTest, PoolAcquireGatedByAdaptiveLimit) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  options.adaptive_limit.enabled = true;
  options.adaptive_limit.min_limit = 1;
  options.adaptive_limit.max_limit = 4;
  options.adaptive_limit.initial_limit = 1;
  options.adaptive_limit.increase_per_success = 0.5;
  options.adaptive_limit.backoff_ratio = 0.5;
  BackendPool pool(&engine, Replicas(1), options);
  ASSERT_EQ(pool.adaptive_limit(0), 1);

  // The learned limit gates Acquire with a typed denial.
  ASSERT_TRUE(pool.Acquire(0).ok());
  Status denied = pool.Acquire(0);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.IsResourceExhausted()) << denied;
  EXPECT_EQ(pool.stats().limit_denials, 1);

  // Clean completions grow the limit additively (0.5/success -> 2 after
  // two), so both slots are admitted...
  pool.Release(0, Status::OK(), 500.0);
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::OK(), 500.0);
  ASSERT_EQ(pool.adaptive_limit(0), 2);
  ASSERT_TRUE(pool.Acquire(0).ok());
  ASSERT_TRUE(pool.Acquire(0).ok());

  // ...and one liveness-flavored failure cuts it multiplicatively.
  pool.Release(0, Status::Unavailable("brownout"), -1);
  pool.Release(0, Status::OK(), 500.0);
  EXPECT_EQ(pool.adaptive_limit(0), 1);
  EXPECT_GE(pool.stats().limit_backoffs, 1);
  EXPECT_GE(pool.adaptive_limit_stats(0).backoffs, 1);
}

// Satellite: hedge losers are cancelled, not sick — their releases must
// not move the health score, the router's view, or the AIMD limiter.
TEST_F(TailTest, HedgeLoserReleaseBypassesScorerAndLimiter) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  options.adaptive_limit.enabled = true;
  options.adaptive_limit.initial_limit = 4;
  BackendPool pool(&engine, Replicas(1), options);

  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::Cancelled("hedge lost: primary completed first"),
               -1, BackendPool::ReleaseKind::kHedgeLoser);
  // Even a liveness-flavored loser outcome (the leg died mid-cancel) must
  // not poison the replica's score.
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::Unavailable("cancelled mid-fetch"), -1,
               BackendPool::ReleaseKind::kHedgeLoser);

  EXPECT_EQ(pool.health(0), BackendHealth::kHealthy);
  EXPECT_EQ(pool.health_score(0), 0.0);
  EXPECT_EQ(pool.adaptive_limit_stats(0).samples, 0)
      << "loser releases must not feed the AIMD limiter";
  EXPECT_EQ(pool.stats().hedge_loser_releases, 2);
  EXPECT_EQ(pool.in_flight(0), 0) << "the slot itself is still released";
}

// --- Brownout ----------------------------------------------------------------

TEST_F(TailTest, BrownoutShedsOnlyListedClassesWhileActive) {
  BrownoutOptions options;
  options.enabled = true;
  options.queue_high_watermark = 4;
  options.queue_low_watermark = 1;
  options.min_dwell_ms = 1000;  // hold the state for the whole test
  BrownoutController brownout(options);

  EXPECT_TRUE(brownout.Admit("script").ok()) << "no pressure, no shedding";
  brownout.NoteQueueDepth(5);  // above the high watermark
  ASSERT_TRUE(brownout.active());

  Status shed = brownout.Admit("script");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.IsResourceExhausted()) << shed;
  EXPECT_EQ(shed.detail(), StatusDetail::kBrownoutShed);
  EXPECT_FALSE(brownout.Admit("batch").ok());
  EXPECT_FALSE(brownout.Admit("bench").ok());
  // Interactive traffic (and the library default) is protected.
  EXPECT_TRUE(brownout.Admit("wire").ok());
  EXPECT_TRUE(brownout.Admit("library").ok());

  BrownoutStats stats = brownout.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.shed_requests, 3);
  EXPECT_EQ(stats.queue_depth, 5);
}

TEST_F(TailTest, BrownoutExitNeedsLowWatermarkAndDwell) {
  BrownoutOptions options;
  options.enabled = true;
  options.queue_high_watermark = 4;
  options.queue_low_watermark = 1;
  options.min_dwell_ms = 30;
  BrownoutController brownout(options);

  brownout.NoteQueueDepth(5);
  ASSERT_TRUE(brownout.active());

  // Between the watermarks: hysteresis holds the state.
  brownout.NoteQueueDepth(3);
  EXPECT_TRUE(brownout.active());
  // At the low watermark but before the dwell: still held.
  brownout.NoteQueueDepth(0);
  EXPECT_TRUE(brownout.active());

  // Low watermark AND dwell elapsed: clean exit, counted once.
  std::this_thread::sleep_for(std::chrono::milliseconds(40));
  brownout.NoteQueueDepth(0);
  EXPECT_FALSE(brownout.active());
  EXPECT_TRUE(brownout.Admit("script").ok());
  BrownoutStats stats = brownout.stats();
  EXPECT_EQ(stats.entries, 1);
  EXPECT_EQ(stats.exits, 1);
}

TEST_F(TailTest, BrownoutEntersOnGovernorMemoryPressure) {
  ResourceGovernorOptions governor_options;
  governor_options.global_memory_bytes = 1000;
  ResourceGovernor governor(governor_options);

  BrownoutOptions options;
  options.enabled = true;
  options.memory_high_fraction = 0.8;
  options.memory_low_fraction = 0.5;
  options.min_dwell_ms = 1;
  BrownoutController brownout(options, &governor);

  ASSERT_TRUE(governor.ReserveMemory(/*session_tag=*/7, 900).ok());
  // Admit() re-evaluates pressure: 90% of budget crosses the high mark.
  EXPECT_FALSE(brownout.Admit("script").ok());
  EXPECT_TRUE(brownout.active());

  governor.ReleaseMemory(7, 900);
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_TRUE(brownout.Admit("script").ok());
  EXPECT_FALSE(brownout.active());
  EXPECT_EQ(brownout.stats().exits, 1);
}

TEST_F(TailTest, DisabledBrownoutNeverChangesState) {
  BrownoutController brownout;  // default: disabled
  brownout.NoteQueueDepth(1000);
  EXPECT_FALSE(brownout.active());
  EXPECT_TRUE(brownout.Admit("script").ok());
  EXPECT_EQ(brownout.stats().entries, 0);
}

TEST_F(TailTest, ServiceShedsLowPriorityClassesDuringBrownout) {
  vdb::Engine engine;
  service::ServiceOptions options;
  options.tail.brownout.enabled = true;
  options.tail.brownout.queue_high_watermark = 4;
  options.tail.brownout.queue_low_watermark = 0;
  options.tail.brownout.min_dwell_ms = 5;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());

  // Overload declared (the wire server feeds this same signal).
  service.brownout()->NoteQueueDepth(10);

  service::QueryRequest script;
  script.session_id = *sid;
  script.sql = "SEL 1";
  script.session_class = "script";
  auto shed = service.Submit(script);
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();
  EXPECT_EQ(shed.status().detail(), StatusDetail::kBrownoutShed);
  // The script path sheds at the same gate.
  EXPECT_FALSE(service.SubmitScript(script).ok());

  // Interactive traffic keeps flowing through the same brownout.
  service::QueryRequest interactive = script;
  interactive.session_class = "library";
  EXPECT_TRUE(service.Submit(interactive).ok());

  // Pressure gone + dwell elapsed: scripts are admitted again.
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service.brownout()->NoteQueueDepth(0);
  EXPECT_TRUE(service.Submit(script).ok());

  auto snapshot = service.StatsSnapshot().metrics;
  EXPECT_EQ(snapshot.GaugeOr(names::kBrownoutEntries), 1);
  EXPECT_EQ(snapshot.GaugeOr(names::kBrownoutExits), 1);
  EXPECT_GE(snapshot.GaugeOr(names::kBrownoutShedRequests), 2);
  EXPECT_EQ(snapshot.GaugeOr(names::kBrownoutActive), 0);
}

// --- Hedged reads ------------------------------------------------------------

TEST_F(TailTest, HedgedReadWinsOnSlowPrimary) {
  vdb::Engine engine;
  service::HyperQService service(&engine, HedgeServiceOptions(2));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  // Slow — not dead: health stays green, so no failover path fires and
  // only the hedging layer can rescue the latency.
  service.backend_pool()->SlowBackend(bound, 40);

  auto out = service.Submit(*sid, "SEL 1");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.hedges, 1);
  EXPECT_TRUE(out->timing.hedge_won);
  auto rows = out->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u) << "exactly one result, no duplicate delivery";
  EXPECT_EQ((*rows)[0][0].int_val(), 1);

  EXPECT_GE(Counter(service, names::kHedgeLaunched), 1);
  EXPECT_GE(Counter(service, names::kHedgeWins), 1);
  EXPECT_EQ(Counter(service, names::kHedgeLosses), 0);
  // The session stays bound to its primary: a hedge is not a failover.
  EXPECT_EQ(service.session_backend(*sid), bound);
  auto snapshot = service.StatsSnapshot().metrics;
  EXPECT_GE(snapshot.GaugeOr(names::kHedgeThresholdMicros), 2000);
}

TEST_F(TailTest, HedgeLosesWhenPrimaryFinishesFirst) {
  vdb::Engine engine;
  service::HyperQService service(&engine, HedgeServiceOptions(2));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  int other = 1 - bound;
  // The primary is slow enough to trip the 2ms trigger but much faster
  // than the hedge replica: the hedge launches, loses, and is cancelled.
  service.backend_pool()->SlowBackend(bound, 8);
  service.backend_pool()->SlowBackend(other, 60);

  auto out = service.Submit(*sid, "SEL 1");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.hedges, 1);
  EXPECT_FALSE(out->timing.hedge_won);
  EXPECT_GE(Counter(service, names::kHedgeLaunched), 1);
  EXPECT_GE(Counter(service, names::kHedgeLosses), 1);
  EXPECT_EQ(Counter(service, names::kHedgeWins), 0);
  EXPECT_GE(Counter(service, names::kHedgeCancelled), 1);
  // The cancelled loser's release is visible — and harmless to health.
  EXPECT_GE(service.backend_pool()->stats().hedge_loser_releases, 1);
  EXPECT_EQ(service.backend_pool()->health(other), BackendHealth::kHealthy);
}

TEST_F(TailTest, HedgeDeniedWithoutSpareReplica) {
  vdb::Engine engine;
  service::HyperQService service(&engine, HedgeServiceOptions(2));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->KillBackend(1 - bound);
  service.backend_pool()->SlowBackend(bound, 10);

  // No live second replica: the hedge is denied and the query simply
  // waits its slow primary out.
  auto out = service.Submit(*sid, "SEL 1");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.hedges, 0);
  EXPECT_GE(Counter(service, names::kHedgeDeniedNoReplica), 1);
  EXPECT_EQ(Counter(service, names::kHedgeLaunched), 0);
}

TEST_F(TailTest, HedgeDeniedByExhaustedRetryBudget) {
  vdb::Engine engine;
  auto options = HedgeServiceOptions(2);
  options.tail.retry_budget.enabled = true;
  options.tail.retry_budget.initial_tokens = 0;
  options.tail.retry_budget.max_tokens = 0;
  options.tail.retry_budget.ratio = 0;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->SlowBackend(bound, 10);

  // A hedge is speculative work and must win a budget token first.
  auto out = service.Submit(*sid, "SEL 1");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.hedges, 0);
  EXPECT_GE(Counter(service, names::kHedgeDeniedBudget), 1);
  EXPECT_EQ(Counter(service, names::kHedgeLaunched), 0);
  EXPECT_GE(service.retry_budget()->stats().denials, 1);
}

TEST_F(TailTest, NonIdempotentStatementsNeverHedge) {
  vdb::Engine engine;
  service::HyperQService service(&engine, HedgeServiceOptions(2));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->SlowBackend(bound, 8);

  // DML is not idempotent: re-running it on a second replica could apply
  // the write twice. It must wait out the slow primary unhedged.
  ASSERT_TRUE(service.Submit(*sid, "INS INTO T VALUES (1)").ok());
  ASSERT_TRUE(service.Submit(*sid, "UPDATE T SET A = 2 WHERE A = 1").ok());
  ASSERT_TRUE(service.Submit(*sid, "DEL FROM T").ok());
  EXPECT_EQ(Counter(service, names::kHedgeLaunched), 0);

  // A SELECT from the same (journal-clean) session does hedge.
  auto out = service.Submit(*sid, "SEL * FROM T");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GE(Counter(service, names::kHedgeLaunched), 1);
}

TEST_F(TailTest, OpenTransactionsAndVolatileStateFenceHedging) {
  vdb::Engine engine;
  service::HyperQService service(&engine, HedgeServiceOptions(2));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->SlowBackend(bound, 8);

  // Inside an open transaction even a SELECT must stay on the primary:
  // its snapshot is the transaction's.
  ASSERT_TRUE(service.Submit(*sid, "BT").ok());
  ASSERT_TRUE(service.Submit(*sid, "SEL * FROM T").ok());
  EXPECT_EQ(Counter(service, names::kHedgeLaunched), 0);
  ASSERT_TRUE(service.Submit(*sid, "ET").ok());

  // Session-scoped volatile state lives only on the bound replica; a
  // hedge on a fresh connector would not see it.
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "SEL * FROM SCRATCH").ok());
  EXPECT_EQ(Counter(service, names::kHedgeLaunched), 0);
}

// --- Retry storms ------------------------------------------------------------

// Satellite acceptance: with every backend attempt failing transient and
// aggressive per-call retry policies, total backend attempts stay within
// the budget's ratio of organic traffic — a retry storm cannot amplify
// load more than (1 + ratio) plus the initial burst allowance.
TEST_F(TailTest, RetryStormStaysWithinBudgetRatio) {
  vdb::Engine engine;
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 6;  // aggressive client retries
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 1;
  options.connector.breaker.failure_threshold = 1000000;  // isolate budget
  options.tail.retry_budget.enabled = true;
  options.tail.retry_budget.ratio = 0.1;
  options.tail.retry_budget.initial_tokens = 3;
  options.tail.retry_budget.max_tokens = 5;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());

  ASSERT_TRUE(
      FaultInjector::Global().Configure("vdb.execute=transient").ok());
  constexpr int kRequests = 40;
  Status last;
  for (int i = 0; i < kRequests; ++i) {
    auto r = service.Submit(*sid, "SEL 1");
    ASSERT_FALSE(r.ok());
    last = r.status();
  }
  FaultInjector::Global().Reset();

  // Withdrawals are bounded by initial_tokens + ratio * requests.
  const int64_t attempts = Counter(service, names::kBackendAttempts);
  const int64_t max_extra =
      static_cast<int64_t>(options.tail.retry_budget.initial_tokens +
                           options.tail.retry_budget.ratio * kRequests) +
      1;
  EXPECT_GE(attempts, kRequests);
  EXPECT_LE(attempts, kRequests + max_extra)
      << "retry amplification exceeded the budget ratio";
  RetryBudgetStats budget = service.retry_budget()->stats();
  EXPECT_GT(budget.denials, 0);
  EXPECT_LE(budget.withdrawals, max_extra);
  // Once drained, denials carry the typed detail all the way out.
  EXPECT_EQ(last.detail(), StatusDetail::kRetryBudgetExhausted) << last;
}

// --- Compatibility -----------------------------------------------------------

// Acceptance: with the tail layer left at defaults (everything off), a
// single-backend service behaves exactly as before — nothing is hedged,
// budgeted, limited, or shed, and the new series all read zero.
TEST_F(TailTest, DisabledTailLayerIsInertOnSingleBackend) {
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO T VALUES (1)").ok());
  auto out = service.Submit(*sid, "SEL * FROM T");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.hedges, 0);
  EXPECT_FALSE(out->timing.hedge_won);

  EXPECT_FALSE(service.retry_budget()->enabled());
  EXPECT_FALSE(service.brownout()->active());
  EXPECT_TRUE(service.brownout()->Admit("script").ok());

  auto snapshot = service.StatsSnapshot().metrics;
  EXPECT_EQ(snapshot.CounterOr(names::kHedgeLaunched), 0);
  EXPECT_EQ(snapshot.CounterOr(names::kHedgeWins), 0);
  EXPECT_EQ(snapshot.GaugeOr(names::kRetryBudgetDenials), 0);
  EXPECT_EQ(snapshot.GaugeOr(names::kBrownoutEntries), 0);
  EXPECT_EQ(snapshot.CounterOr(names::kLimitDenials, 0), 0);
  service.CloseSession(*sid);
  EXPECT_EQ(service.open_sessions(), 0u);
}

}  // namespace
}  // namespace hyperq
