// DTM catalog tests: registry semantics, name normalization, extended
// column properties.

#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace hyperq {
namespace {

TableDef SimpleTable(const std::string& name) {
  TableDef t;
  t.name = name;
  t.columns = {{"A", SqlType::Int(), true, {}}};
  return t;
}

TEST(CatalogTest, CaseInsensitiveAndQualifiedLookup) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(SimpleTable("Orders")).ok());
  EXPECT_TRUE(c.HasTable("ORDERS"));
  EXPECT_TRUE(c.HasTable("orders"));
  EXPECT_TRUE(c.HasTable("prod_db.Orders"));  // qualifier ignored
  auto t = c.GetTable("oRdErS");
  ASSERT_TRUE(t.ok());
  EXPECT_EQ((*t)->name, "Orders");
}

TEST(CatalogTest, DuplicateAndMissingErrors) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(SimpleTable("T")).ok());
  EXPECT_TRUE(c.CreateTable(SimpleTable("t")).IsCatalogError());
  EXPECT_TRUE(c.GetTable("MISSING").status().IsCatalogError());
  EXPECT_TRUE(c.DropTable("MISSING").IsCatalogError());
  EXPECT_TRUE(c.DropTable("T").ok());
  EXPECT_FALSE(c.HasTable("T"));
}

TEST(CatalogTest, ViewsShareNamespaceWithTables) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(SimpleTable("X")).ok());
  ViewDef v;
  v.name = "X";
  v.definition_sql = "SELECT 1";
  EXPECT_TRUE(c.CreateView(v).IsCatalogError());
  v.name = "VX";
  EXPECT_TRUE(c.CreateView(v).ok());
  EXPECT_TRUE(c.CreateTable(SimpleTable("VX")).IsCatalogError());
}

TEST(CatalogTest, MacroRegistry) {
  Catalog c;
  MacroDef m;
  m.name = "M1";
  m.body_statements = {"SELECT 1"};
  ASSERT_TRUE(c.CreateMacro(m).ok());
  EXPECT_TRUE(c.HasMacro("m1"));
  auto got = c.GetMacro("M1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ((*got)->body_statements.size(), 1u);
  EXPECT_TRUE(c.DropMacro("M1").ok());
  EXPECT_TRUE(c.DropMacro("M1").IsCatalogError());
}

TEST(CatalogTest, FindColumnIsCaseInsensitive) {
  TableDef t = SimpleTable("T");
  t.columns.push_back({"LongName", SqlType::Varchar(5), true, {}});
  EXPECT_EQ(t.FindColumn("longname"), 1);
  EXPECT_EQ(t.FindColumn("A"), 0);
  EXPECT_EQ(t.FindColumn("nope"), -1);
}

TEST(CatalogTest, ExtendedColumnProperties) {
  TableDef t = SimpleTable("T");
  ColumnDef c{"CI", SqlType::Varchar(10), true, {}};
  c.props.case_insensitive = true;
  c.props.has_default = true;
  c.props.default_expr = "CURRENT_DATE";
  t.columns.push_back(c);
  Catalog cat;
  ASSERT_TRUE(cat.CreateTable(t).ok());
  auto got = cat.GetTable("T");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE((*got)->columns[1].props.case_insensitive);
  EXPECT_EQ((*got)->columns[1].props.default_expr, "CURRENT_DATE");
}

TEST(CatalogTest, NameListings) {
  Catalog c;
  ASSERT_TRUE(c.CreateTable(SimpleTable("B")).ok());
  ASSERT_TRUE(c.CreateTable(SimpleTable("A")).ok());
  auto names = c.TableNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "A");  // sorted by normalized key
}

}  // namespace
}  // namespace hyperq
