// vdb plan-optimizer tests: predicate pushdown, join ordering, OR
// factoring — asserted through end-to-end results and plan shapes.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "vdb/optimizer.h"
#include "vdb/engine.h"

namespace hyperq::vdb {
namespace {

class OptimizerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .ExecuteScript(
                        "CREATE TABLE A (K INTEGER, AV INTEGER);"
                        "CREATE TABLE B (K INTEGER, BV INTEGER);"
                        "CREATE TABLE C (K INTEGER, CV INTEGER);"
                        "INSERT INTO A VALUES (1, 10), (2, 20), (3, 30);"
                        "INSERT INTO B VALUES (1, 100), (2, 200);"
                        "INSERT INTO C VALUES (2, 1000), (3, 3000);")
                    .ok());
  }

  // Binds with the engine's catalog and runs the optimizer; returns the
  // optimized plan for shape inspection.
  Result<xtra::OpPtr> Optimize(const std::string& sql) {
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::ParseStatement(sql, sql::Dialect::Ansi()));
    binder::Binder binder(&engine_.catalog(), sql::Dialect::Ansi());
    HQ_ASSIGN_OR_RETURN(xtra::OpPtr plan, binder.BindStatement(*stmt));
    OptimizePlan(&plan);
    return plan;
  }

  static int CountKind(const xtra::Op& op, xtra::OpKind kind) {
    int n = op.kind == kind ? 1 : 0;
    for (const auto& c : op.children) n += CountKind(*c, kind);
    return n;
  }
  static bool HasCrossJoin(const xtra::Op& op) {
    if (op.kind == xtra::OpKind::kJoin &&
        op.join_kind == xtra::JoinKind::kCross) {
      return true;
    }
    for (const auto& c : op.children) {
      if (HasCrossJoin(*c)) return true;
    }
    return false;
  }

  Engine engine_;
};

TEST_F(OptimizerTest, CommaJoinsBecomeInnerJoins) {
  auto plan = Optimize(
      "SELECT AV, BV, CV FROM A, B, C "
      "WHERE A.K = B.K AND B.K = C.K AND AV > 0");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(HasCrossJoin(**plan));
  EXPECT_EQ(CountKind(**plan, xtra::OpKind::kJoin), 2);
  // The single-table conjunct was pushed below the joins: a Select sits
  // directly over a Get.
  bool pushed = false;
  std::function<void(const xtra::Op&)> walk = [&](const xtra::Op& op) {
    if (op.kind == xtra::OpKind::kSelect &&
        op.children[0]->kind == xtra::OpKind::kGet) {
      pushed = true;
    }
    for (const auto& c : op.children) walk(*c);
  };
  walk(**plan);
  EXPECT_TRUE(pushed);
}

TEST_F(OptimizerTest, ResultsUnchangedByOptimization) {
  auto r = engine_.Execute(
      "SELECT AV, BV, CV FROM A, B, C WHERE A.K = B.K AND B.K = C.K");
  ASSERT_TRUE(r.ok()) << r.status();
  r->EnsureRows();
  ASSERT_EQ(r->rows.size(), 1u);  // only K=2 matches all three
  EXPECT_EQ(r->rows[0][0].int_val(), 20);
  EXPECT_EQ(r->rows[0][1].int_val(), 200);
  EXPECT_EQ(r->rows[0][2].int_val(), 1000);
}

TEST_F(OptimizerTest, DisconnectedTablesKeepCrossJoin) {
  auto plan = Optimize("SELECT AV, BV FROM A, B WHERE AV > 0 AND BV > 0");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(HasCrossJoin(**plan));  // no equi conjunct links A and B
  auto r = engine_.Execute(
      "SELECT COUNT(*) FROM A, B WHERE AV > 0 AND BV > 0");
  ASSERT_TRUE(r.ok());
  r->EnsureRows();
  EXPECT_EQ(r->rows[0][0].int_val(), 6);
}

TEST_F(OptimizerTest, OrCommonConjunctsFactorIntoJoin) {
  // (K-join AND x) OR (K-join AND y): the join key must be hoisted even
  // through the parser's nested binary OR tree (TPC-H Q19 shape).
  auto plan = Optimize(
      "SELECT AV FROM A, B WHERE "
      "(A.K = B.K AND AV > 5 AND BV < 150) OR "
      "(A.K = B.K AND AV > 25 AND BV > 150) OR "
      "(A.K = B.K AND AV = -1 AND BV = -1)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(HasCrossJoin(**plan));
  auto r = engine_.Execute(
      "SELECT AV FROM A, B WHERE "
      "(A.K = B.K AND AV > 5 AND BV < 150) OR "
      "(A.K = B.K AND AV > 25 AND BV > 150) OR "
      "(A.K = B.K AND AV = -1 AND BV = -1) ORDER BY AV");
  ASSERT_TRUE(r.ok());
  r->EnsureRows();
  ASSERT_EQ(r->rows.size(), 1u);  // (1,100) matches branch one
  EXPECT_EQ(r->rows[0][0].int_val(), 10);
}

TEST_F(OptimizerTest, SubqueryConjunctsStayAboveJoins) {
  auto plan = Optimize(
      "SELECT AV FROM A, B WHERE A.K = B.K AND "
      "AV > (SELECT MIN(CV) FROM C)");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Top of the tree (under the projection) is a Select holding the
  // subquery conjunct.
  const xtra::Op* op = plan->get();
  while (op->kind == xtra::OpKind::kProject ||
         op->kind == xtra::OpKind::kSort ||
         op->kind == xtra::OpKind::kLimit) {
    op = op->children[0].get();
  }
  ASSERT_EQ(op->kind, xtra::OpKind::kSelect);
  bool has_subq = false;
  xtra::VisitExprs(*op, [&](const xtra::Expr& e) {
    if (e.subplan) has_subq = true;
    return true;
  });
  EXPECT_TRUE(has_subq);
}

TEST_F(OptimizerTest, CorrelatedConjunctLandsOnItsLeaf) {
  // Inside a subquery, a conjunct referencing only outer ids plus one
  // local leaf must be attached to that leaf (keeps the executor's
  // indexed-selection fast path).
  auto r = engine_.Execute(
      "SELECT AV FROM A WHERE EXISTS "
      "(SELECT 1 FROM B, C WHERE B.K = C.K AND B.K = A.K)");
  ASSERT_TRUE(r.ok()) << r.status();
  r->EnsureRows();
  EXPECT_EQ(r->rows.size(), 1u);  // only K=2 is in both B and C
}

}  // namespace
}  // namespace hyperq::vdb
