// TDF codec, ResultStore spill behaviour, and the backend connector.

#include <gtest/gtest.h>

#include "backend/connector.h"
#include "backend/result_store.h"
#include "backend/tdf.h"
#include "vdb/engine.h"

namespace hyperq::backend {
namespace {

TEST(TdfTest, RoundTripAllKinds) {
  std::vector<TdfColumn> schema = {
      {"I", SqlType::Int()},          {"D", SqlType::Decimal(10, 2)},
      {"F", SqlType::Double()},       {"S", SqlType::Varchar(20)},
      {"DT", SqlType::Date()},        {"TS", SqlType::Timestamp()},
      {"B", SqlType::Bool()},         {"P", SqlType::PeriodDate()},
  };
  TdfWriter writer(schema);
  std::vector<Datum> row1 = {
      Datum::Int(42),         Datum::MakeDecimal(Decimal{1250, 2}),
      Datum::MakeDouble(2.5), Datum::String("hello"),
      Datum::Date(16071),     Datum::Timestamp(123456789),
      Datum::Bool(true),      Datum::Period(100, 200)};
  std::vector<Datum> row2(8, Datum::Null());
  ASSERT_TRUE(writer.AddRow(row1).ok());
  ASSERT_TRUE(writer.AddRow(row2).ok());
  auto bytes = writer.Finish();

  auto reader = TdfReader::Open(std::move(bytes));
  ASSERT_TRUE(reader.ok()) << reader.status();
  EXPECT_EQ(reader->schema().size(), 8u);
  EXPECT_EQ(reader->row_count(), 2u);
  auto rows = reader->ReadAll();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].int_val(), 42);
  EXPECT_EQ((*rows)[0][1].decimal_val().ToString(), "12.50");
  EXPECT_EQ((*rows)[0][3].string_val(), "hello");
  EXPECT_EQ((*rows)[0][7].period_val().end_days, 200);
  for (const auto& v : (*rows)[1]) EXPECT_TRUE(v.is_null());
}

TEST(TdfTest, CoercesRuntimeKindToSchema) {
  // Integer-valued datum in a DECIMAL column must encode as decimal.
  TdfWriter writer({{"D", SqlType::Decimal(10, 2)}});
  ASSERT_TRUE(writer.AddRow({Datum::Int(3)}).ok());
  auto reader = TdfReader::Open(writer.Finish());
  ASSERT_TRUE(reader.ok());
  auto rows = reader->ReadAll();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].decimal_val().ToString(), "3.00");
}

TEST(TdfTest, ArityMismatchRejected) {
  TdfWriter writer({{"A", SqlType::Int()}});
  EXPECT_FALSE(writer.AddRow({Datum::Int(1), Datum::Int(2)}).ok());
}

TEST(TdfTest, MalformedBytesRejected) {
  EXPECT_FALSE(TdfReader::Open({1, 2, 3, 4}).ok());
  std::vector<uint8_t> truncated = {0x54, 0x44, 0x46, 0x31, 0xFF, 0xFF};
  EXPECT_FALSE(TdfReader::Open(std::move(truncated)).ok());
}

TEST(ResultStoreTest, KeepsSmallResultsInMemory) {
  ResultStore store(1 << 20);
  ASSERT_TRUE(store.Append(std::vector<uint8_t>(1000, 7), 10).ok());
  ASSERT_TRUE(store.Append(std::vector<uint8_t>(1000, 8), 10).ok());
  EXPECT_EQ(store.total_rows(), 20);
  EXPECT_EQ(store.spilled_batches(), 0u);
  int seen = 0;
  ASSERT_TRUE(store
                  .Scan([&](const std::vector<uint8_t>& b) {
                    EXPECT_EQ(b.size(), 1000u);
                    ++seen;
                    return Status::OK();
                  })
                  .ok());
  EXPECT_EQ(seen, 2);
}

TEST(ResultStoreTest, SpillsPastBudgetAndReadsBack) {
  ResultStore store(/*memory_budget_bytes=*/2048);
  std::vector<std::vector<uint8_t>> batches;
  for (int i = 0; i < 5; ++i) {
    batches.emplace_back(1024, static_cast<uint8_t>(i));
    ASSERT_TRUE(store.Append(batches.back(), 100).ok());
  }
  EXPECT_GT(store.spilled_batches(), 0u);
  EXPECT_LE(store.memory_bytes(), 2048u);
  // Scan preserves append order and exact bytes, spilled or not — twice.
  for (int pass = 0; pass < 2; ++pass) {
    size_t i = 0;
    ASSERT_TRUE(store
                    .Scan([&](const std::vector<uint8_t>& b) {
                      EXPECT_EQ(b, batches[i]);
                      ++i;
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(i, batches.size());
  }
  EXPECT_EQ(store.total_rows(), 500);
}

TEST(ConnectorTest, PackagesRowsetsIntoBatches) {
  vdb::Engine engine;
  ASSERT_TRUE(engine.ExecuteScript("CREATE TABLE t (a INTEGER)").ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(engine
                    .Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                             ")")
                    .ok());
  }
  ConnectorOptions opts;
  opts.batch_rows = 2;  // force multiple TDF batches
  BackendConnector connector(&engine, opts);
  auto result = connector.Execute("SELECT a FROM t ORDER BY a");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_TRUE(result->is_rowset());
  EXPECT_EQ(result->store->total_rows(), 5);
  EXPECT_EQ(result->store->batch_count(), 3u);  // 2 + 2 + 1
  auto rows = result->DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 5u);
  EXPECT_EQ((*rows)[4][0].int_val(), 4);
}

TEST(ConnectorTest, CommandResultsHaveNoStore) {
  vdb::Engine engine;
  BackendConnector connector(&engine);
  auto result = connector.Execute("CREATE TABLE t (a INTEGER)");
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->is_rowset());
  EXPECT_EQ(result->command_tag, "CREATE TABLE");
  auto dml = connector.Execute("INSERT INTO t VALUES (1), (2)");
  ASSERT_TRUE(dml.ok());
  EXPECT_EQ(dml->affected_rows, 2);
}

TEST(ConnectorTest, ErrorsPropagate) {
  vdb::Engine engine;
  BackendConnector connector(&engine);
  EXPECT_FALSE(connector.Execute("SELECT * FROM missing").ok());
  EXPECT_FALSE(connector.Execute("NOT SQL AT ALL").ok());
}

}  // namespace
}  // namespace hyperq::backend
