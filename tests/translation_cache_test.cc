// Translation cache suite (ctest label `cache`): hit/miss/eviction
// accounting, catalog-version and session-setting invalidation, literal
// re-splicing correctness, volatile-table bypass, cached-vs-uncached
// equivalence over the golden corpus, a cross-shard concurrency hammer,
// and the hit-path latency bound the cache exists to deliver.

#include <algorithm>
#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "golden_corpus.h"
#include "service/hyperq_service.h"
#include "service/translation_cache.h"
#include "sql/normalizer.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

using service::HyperQService;
using service::QueryOutcome;
using service::ServiceOptions;
using service::TranslationCacheStats;

class TranslationCacheTest : public ::testing::Test {
 protected:
  void Init(ServiceOptions options = {}) {
    service_ = std::make_unique<HyperQService>(&engine_, options);
    auto sid = service_->OpenSession("tester");
    ASSERT_TRUE(sid.ok()) << sid.status();
    sid_ = *sid;
    Must("CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, "
         "REGION VARCHAR(20), QTY INTEGER)");
    Must("INS INTO SALES VALUES (100.50, DATE '2014-01-01', 'WEST', 3)");
    Must("INS INTO SALES VALUES (250.00, DATE '2014-02-03', 'EAST', 5)");
    Must("INS INTO SALES VALUES (75.25, DATE '2014-03-15', 'O''BRIEN', 2)");
  }

  QueryOutcome Must(const std::string& sql) {
    auto r = service_->Submit(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    return r.ok() ? std::move(r).value() : QueryOutcome{};
  }

  std::vector<std::vector<Datum>> Rows(const QueryOutcome& o) {
    auto rows = o.result.DecodeRows();
    EXPECT_TRUE(rows.ok()) << rows.status();
    return rows.ok() ? std::move(rows).value()
                     : std::vector<std::vector<Datum>>{};
  }

  TranslationCacheStats Stats() {
    return service_->StatsSnapshot().translation_cache;
  }

  vdb::Engine engine_;
  std::unique_ptr<HyperQService> service_;
  uint32_t sid_ = 0;
};

// ---------------------------------------------------------------------------
// Accounting
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, RepeatShapeHitsAndTimingMarksIt) {
  Init();
  auto before = Stats();
  auto cold = Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  auto warm = Must("SEL REGION FROM SALES WHERE AMOUNT > 200");
  auto after = Stats();

  EXPECT_EQ(after.hits - before.hits, 1);
  EXPECT_GE(after.misses - before.misses, 1);
  EXPECT_GE(after.inserts - before.inserts, 1);
  EXPECT_EQ(cold.timing.cache_hits, 0);
  EXPECT_EQ(warm.timing.cache_hits, 1);
  // The hit produced real SQL-B and real rows.
  ASSERT_EQ(warm.backend_sql.size(), 1u);
  EXPECT_EQ(Rows(warm).size(), 1u);  // only 250.00 > 200
  // Feature footprint survives the cache (cold run recorded SEL abbrev).
  EXPECT_TRUE(warm.features.Has(Feature::kSelAbbrev));
}

TEST_F(TranslationCacheTest, DifferentShapesMissSeparately) {
  Init();
  auto before = Stats();
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  Must("SEL QTY FROM SALES WHERE AMOUNT > 100");
  auto after = Stats();
  EXPECT_EQ(after.hits - before.hits, 0);
  EXPECT_GE(after.misses - before.misses, 2);
}

TEST_F(TranslationCacheTest, DisabledKnobBypassesEverything) {
  ServiceOptions options;
  options.translation_cache.enabled = false;
  Init(options);
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  auto warm = Must("SEL REGION FROM SALES WHERE AMOUNT > 200");
  auto s = Stats();
  EXPECT_EQ(s.hits, 0);
  EXPECT_EQ(s.misses, 0);
  EXPECT_EQ(s.inserts, 0);
  EXPECT_EQ(s.entries, 0);
  EXPECT_EQ(warm.timing.cache_hits, 0);
}

TEST_F(TranslationCacheTest, EvictionsStayWithinByteBudget) {
  ServiceOptions options;
  options.translation_cache.shard_count = 1;
  options.translation_cache.max_bytes = 4096;
  Init(options);
  for (int i = 0; i < 60; ++i) {
    // Distinct alias => distinct template => distinct entry.
    Must("SEL REGION AS C" + std::to_string(i) +
         " FROM SALES WHERE AMOUNT > 10");
  }
  auto s = Stats();
  EXPECT_GT(s.evictions, 0);
  EXPECT_LE(s.bytes, options.translation_cache.max_bytes);
  EXPECT_GT(s.entries, 0);
  EXPECT_LT(s.entries, 60);
}

// ---------------------------------------------------------------------------
// Invalidation
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, DdlInvalidatesCachedTranslations) {
  Init();
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  auto warm = Must("SEL REGION FROM SALES WHERE AMOUNT > 150");
  EXPECT_EQ(warm.timing.cache_hits, 1);

  auto before = Stats();
  Must("CREATE TABLE UNRELATED (A INTEGER)");
  auto after = Stats();
  EXPECT_GT(after.invalidations - before.invalidations, 0);

  // Same shape again: the old entry is gone; it must re-translate.
  auto recold = Must("SEL REGION FROM SALES WHERE AMOUNT > 175");
  EXPECT_EQ(recold.timing.cache_hits, 0);
  auto rewarm = Must("SEL REGION FROM SALES WHERE AMOUNT > 225");
  EXPECT_EQ(rewarm.timing.cache_hits, 1);
}

TEST_F(TranslationCacheTest, SetSessionInvalidatesForThatSession) {
  Init();
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  EXPECT_EQ(Must("SEL REGION FROM SALES WHERE AMOUNT > 150")
                .timing.cache_hits,
            1);

  Must("SET SESSION CHARSET 'UTF8'");
  // New settings digest => the warm entry is unreachable for this session.
  auto cold = Must("SEL REGION FROM SALES WHERE AMOUNT > 160");
  EXPECT_EQ(cold.timing.cache_hits, 0);
  auto warm = Must("SEL REGION FROM SALES WHERE AMOUNT > 170");
  EXPECT_EQ(warm.timing.cache_hits, 1);
}

TEST_F(TranslationCacheTest, SessionsWithIdenticalSettingsShareEntries) {
  Init();
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  auto sid2 = service_->OpenSession("other");
  ASSERT_TRUE(sid2.ok());
  auto r = service_->Submit(*sid2, "SEL REGION FROM SALES WHERE AMOUNT > 5");
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->timing.cache_hits, 1);
}

// ---------------------------------------------------------------------------
// Bypass rules
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, VolatileTableReferencesBypass) {
  Init();
  Must("CREATE VOLATILE TABLE VT (A INTEGER)");
  Must("INS INTO VT VALUES (1)");
  auto before = Stats();
  auto a = Must("SEL A FROM VT");
  auto b = Must("SEL A FROM VT");
  auto after = Stats();
  EXPECT_EQ(after.hits - before.hits, 0);
  EXPECT_GE(after.bypasses - before.bypasses, 2);
  EXPECT_EQ(a.timing.cache_hits, 0);
  EXPECT_EQ(b.timing.cache_hits, 0);
}

TEST_F(TranslationCacheTest, DdlAndSessionCommandsBypass) {
  Init();
  auto before = Stats();
  Must("CREATE TABLE BYPASS_T (A INTEGER)");
  Must("COLLECT STATISTICS ON BYPASS_T COLUMN A");
  Must("HELP TABLE SALES");
  auto after = Stats();
  EXPECT_GE(after.bypasses - before.bypasses, 3);
  EXPECT_EQ(after.hits - before.hits, 0);
}

TEST_F(TranslationCacheTest, MacroBodiesAreCacheableThoughExecIsNot) {
  Init();
  Must("CREATE MACRO REGSUM (R VARCHAR(20)) AS "
       "(SEL SUM(AMOUNT) FROM SALES WHERE REGION = :R;)");
  auto first = Must("EXEC REGSUM ('WEST')");
  EXPECT_EQ(first.timing.cache_hits, 0);
  auto second = Must("EXEC REGSUM ('EAST')");
  // The expanded body statement hit the cache even though EXEC bypassed.
  EXPECT_EQ(second.timing.cache_hits, 1);
  auto rows = Rows(second);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].decimal_val().ToString(), "250.00");
}

// ---------------------------------------------------------------------------
// Re-splicing correctness
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, RespliceStringEscaping) {
  Init();
  Must("SEL QTY FROM SALES WHERE REGION = 'WEST'");
  auto warm = Must("SEL QTY FROM SALES WHERE REGION = 'O''BRIEN'");
  EXPECT_EQ(warm.timing.cache_hits, 1);
  ASSERT_EQ(warm.backend_sql.size(), 1u);
  EXPECT_NE(warm.backend_sql[0].find("'O''BRIEN'"), std::string::npos)
      << warm.backend_sql[0];
  auto rows = Rows(warm);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_val(), 2);
}

TEST_F(TranslationCacheTest, RespliceDateLiterals) {
  Init();
  Must("SEL QTY FROM SALES WHERE SALES_DATE = DATE '2014-01-01'");
  auto warm = Must("SEL QTY FROM SALES WHERE SALES_DATE = DATE '2014-02-03'");
  EXPECT_EQ(warm.timing.cache_hits, 1);
  auto rows = Rows(warm);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_val(), 5);
}

TEST_F(TranslationCacheTest, RespliceDecimalsPreserveScale) {
  Init();
  Must("SEL REGION FROM SALES WHERE AMOUNT = 100.50");
  auto warm = Must("SEL REGION FROM SALES WHERE AMOUNT = 75.25");
  EXPECT_EQ(warm.timing.cache_hits, 1);
  ASSERT_EQ(warm.backend_sql.size(), 1u);
  EXPECT_NE(warm.backend_sql[0].find("75.25"), std::string::npos);
  auto rows = Rows(warm);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_val(), "O'BRIEN");
}

// Duplicate literal values make the site↔literal mapping ambiguous: the
// creator's '5' matches two SQL-B sites, and splicing a repeat whose two
// values differ could swap them. The sentinel probe re-translates the
// shape with unique type-preserving stand-ins to recover the mapping, and
// the entry is only admitted if re-splicing the ORIGINAL literals
// reproduces the original translation byte-for-byte. Assert the repeat is
// a hit AND its results match an uncached service on rows a slot swap
// would visibly change.
TEST_F(TranslationCacheTest, DuplicateLiteralsDisambiguatedBySentinels) {
  Init();
  ServiceOptions off;
  off.translation_cache.enabled = false;
  vdb::Engine engine2;
  HyperQService uncached(&engine2, off);
  auto sid2 = uncached.OpenSession("tester");
  ASSERT_TRUE(sid2.ok());
  for (const char* ddl :
       {"CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, "
        "REGION VARCHAR(20), QTY INTEGER)",
        "INS INTO SALES VALUES (100.50, DATE '2014-01-01', 'WEST', 3)",
        "INS INTO SALES VALUES (250.00, DATE '2014-02-03', 'EAST', 5)",
        "INS INTO SALES VALUES (75.25, DATE '2014-03-15', 'O''BRIEN', 2)"}) {
    ASSERT_TRUE(uncached.Submit(*sid2, ddl).ok());
  }

  // Seed: both BETWEEN bounds are the integer 5 — directly ambiguous.
  auto seed = Must("SEL REGION FROM SALES WHERE QTY BETWEEN 5 AND 5");
  EXPECT_EQ(seed.timing.cache_hits, 0);
  // Repeat with distinct bounds. Swapped slots would evaluate
  // BETWEEN 5 AND 3 (an empty range) instead of the correct 2 rows.
  const std::string repeat =
      "SEL REGION FROM SALES WHERE QTY BETWEEN 3 AND 5";
  auto warm = Must(repeat);
  EXPECT_EQ(warm.timing.cache_hits, 1)
      << "sentinel probe should have cached the duplicate-literal shape";
  auto plain = uncached.Submit(*sid2, repeat);
  ASSERT_TRUE(plain.ok()) << plain.status();
  EXPECT_EQ(warm.backend_sql, plain->backend_sql);
  auto warm_rows = Rows(warm);
  ASSERT_EQ(warm_rows.size(), 2u);  // WEST (QTY 3) and EAST (QTY 5)
  auto plain_decoded = plain->result.DecodeRows();
  ASSERT_TRUE(plain_decoded.ok());
  ASSERT_EQ(plain_decoded->size(), 2u);
  for (size_t i = 0; i < warm_rows.size(); ++i) {
    EXPECT_EQ(warm_rows[i][0].string_val(),
              (*plain_decoded)[i][0].string_val());
  }

  // Same property for duplicate strings; mixed-type duplicates may still
  // bypass (coercion can reformat one site), so only assert row
  // correctness when they do cache.
  Must("SEL QTY FROM SALES WHERE REGION = 'X' OR REGION = 'X'");
  auto warm2 =
      Must("SEL QTY FROM SALES WHERE REGION = 'WEST' OR REGION = 'EAST'");
  if (warm2.timing.cache_hits == 1) {
    EXPECT_EQ(Rows(warm2).size(), 2u);
  }
  Must("SEL REGION FROM SALES WHERE QTY > 5 AND AMOUNT > 5");
  auto warm3 = Must("SEL REGION FROM SALES WHERE QTY > 2 AND AMOUNT > 90");
  auto plain3 = uncached.Submit(
      *sid2, "SEL REGION FROM SALES WHERE QTY > 2 AND AMOUNT > 90");
  ASSERT_TRUE(plain3.ok());
  EXPECT_EQ(warm3.backend_sql, plain3->backend_sql);
}

// Shapes the sentinel probe cannot rescue (the probe itself fails or its
// template fails verification) are negative-cached: the second submission
// must bypass on the marker instead of paying the probe's double
// translation again.
TEST_F(TranslationCacheTest, UncacheableShapesAreNegativeCached) {
  Init();
  // GROUP BY <ordinal>: the binder resolves the ordinal into the grouped
  // expression, so the literal vanishes from SQL-B (direct match fails)
  // and a sentinel ordinal is out of range (probe fails). Splicing a
  // different ordinal would also change semantics — this shape MUST stay
  // uncached.
  const std::string shape_a =
      "SEL EXTRACT(YEAR FROM SALES_DATE), COUNT(*) FROM SALES "
      "WHERE QTY > 5 GROUP BY 1";
  const std::string shape_b =
      "SEL EXTRACT(YEAR FROM SALES_DATE), COUNT(*) FROM SALES "
      "WHERE QTY > 9 GROUP BY 1";
  auto first = Must(shape_a);
  EXPECT_EQ(first.timing.cache_hits, 0);
  auto mid = Stats();
  auto second = Must(shape_b);
  auto after = Stats();
  EXPECT_EQ(second.timing.cache_hits, 0);
  EXPECT_EQ(after.hits - mid.hits, 0);
  EXPECT_GE(after.bypasses - mid.bypasses, 1)
      << "second submission should bypass on the negative marker";
  // The marker still translates correctly (cold path).
  ASSERT_EQ(second.backend_sql.size(), 1u);
}

// Statements whose literals get folded, duplicated, or reformatted by the
// pipeline must not be spliced wrong — match-or-bypass (now with a
// sentinel rescue attempt) admits an entry only when re-splicing is proven
// byte-identical. Equivalence is the property to assert.
TEST_F(TranslationCacheTest, CacheOnOffProduceByteIdenticalSqlB) {
  Init();
  ServiceOptions off;
  off.translation_cache.enabled = false;
  vdb::Engine engine2;
  HyperQService uncached(&engine2, off);
  auto sid2 = uncached.OpenSession("tester");
  ASSERT_TRUE(sid2.ok());
  for (const char* ddl :
       {"CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, "
        "REGION VARCHAR(20), QTY INTEGER)",
        "INS INTO SALES VALUES (100.50, DATE '2014-01-01', 'WEST', 3)",
        "INS INTO SALES VALUES (250.00, DATE '2014-02-03', 'EAST', 5)",
        "INS INTO SALES VALUES (75.25, DATE '2014-03-15', 'O''BRIEN', 2)"}) {
    ASSERT_TRUE(uncached.Submit(*sid2, ddl).ok());
  }

  const std::vector<std::string> corpus = {
      // Plain repeats (hit path after round 1).
      "SEL REGION FROM SALES WHERE AMOUNT > 100",
      "SEL REGION FROM SALES WHERE AMOUNT > 200.50",
      // Duplicate literal values (sentinel re-translation disambiguates
      // the site mapping; if that ever fails, bypass keeps it correct).
      "SEL REGION FROM SALES WHERE QTY = 5 AND AMOUNT > 5",
      // Folded literals: date-to-int expansion introduces constants.
      "SEL REGION FROM SALES WHERE SALES_DATE > 1140101",
      // Negative numbers (sign lives outside the literal token).
      "SEL REGION FROM SALES WHERE AMOUNT > -50",
      // NULL is a keyword, never a parameter.
      "SEL REGION FROM SALES WHERE REGION IS NOT NULL AND QTY > 1",
      // String escaping and typed literals.
      "SEL QTY FROM SALES WHERE REGION = 'O''BRIEN'",
      "SEL QTY FROM SALES WHERE SALES_DATE = DATE '2014-02-03'",
      // Non-canonical date text (temporal guard must keep output equal).
      "SEL QTY FROM SALES WHERE SALES_DATE = DATE '2014-2-3'",
      // INTERVAL literals fold at parse time and stay in the template.
      "SEL SALES_DATE + INTERVAL '3' DAY FROM SALES",
      // Floats.
      "SEL REGION FROM SALES WHERE AMOUNT > 1.5E1",
  };
  for (int round = 0; round < 2; ++round) {
    for (const std::string& q : corpus) {
      auto cached_out = service_->Submit(sid_, q);
      auto plain_out = uncached.Submit(*sid2, q);
      ASSERT_TRUE(cached_out.ok()) << q << "\n" << cached_out.status();
      ASSERT_TRUE(plain_out.ok()) << q << "\n" << plain_out.status();
      EXPECT_EQ(cached_out->backend_sql, plain_out->backend_sql)
          << "round " << round << ": " << q;
    }
  }
}

// Acceptance: the full golden corpus translates byte-identically with the
// cache on (warm, second round) and off.
TEST_F(TranslationCacheTest, GoldenCorpusByteIdenticalCacheOnVsOff) {
  ServiceOptions on;
  vdb::Engine engine_on;
  HyperQService cached(&engine_on, on);
  ServiceOptions off;
  off.translation_cache.enabled = false;
  vdb::Engine engine_off;
  HyperQService uncached(&engine_off, off);

  auto sid_on = cached.OpenSession("golden");
  auto sid_off = uncached.OpenSession("golden");
  ASSERT_TRUE(sid_on.ok());
  ASSERT_TRUE(sid_off.ok());
  for (const std::string& stmt : golden::SchemaStatements()) {
    ASSERT_TRUE(cached.Submit(*sid_on, stmt).ok()) << stmt;
    ASSERT_TRUE(uncached.Submit(*sid_off, stmt).ok()) << stmt;
  }
  auto cases = golden::LoadGoldenCases();
  ASSERT_GE(cases.size(), 30u);
  for (int round = 0; round < 2; ++round) {
    for (const auto& c : cases) {
      auto with_cache = cached.Translate(c.sql, nullptr);
      auto without = uncached.Translate(c.sql, nullptr);
      ASSERT_TRUE(with_cache.ok()) << c.name << "\n" << with_cache.status();
      ASSERT_TRUE(without.ok()) << c.name << "\n" << without.status();
      EXPECT_EQ(*with_cache, *without)
          << "round " << round << ": " << c.name;
    }
  }
  EXPECT_GT(cached.StatsSnapshot().translation_cache.hits, 0)
      << "round 2 should have been served from the cache for at least the "
         "plain query shapes";
}

// ---------------------------------------------------------------------------
// Both entry points account translation uniformly
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, ActivityStatsCoverSubmitAndTranslate) {
  Init();
  auto base = service_->StatsSnapshot().translation_activity;
  Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  auto t1 = service_->Translate("SEL REGION FROM SALES WHERE AMOUNT > 120",
                                nullptr);
  ASSERT_TRUE(t1.ok());
  auto t2 = service_->Translate("SEL REGION FROM SALES WHERE AMOUNT > 140",
                                nullptr);
  ASSERT_TRUE(t2.ok());
  auto now = service_->StatsSnapshot().translation_activity;
  EXPECT_EQ(now.submit_statements - base.submit_statements, 1);
  EXPECT_EQ(now.translate_statements - base.translate_statements, 2);
  // Submit seeded the entry; both Translate calls were hits (sessions with
  // default settings share the translation-only key space).
  EXPECT_EQ(now.cache_hits - base.cache_hits, 2);
  EXPECT_GT(now.translate_micros, base.translate_micros);
}

TEST_F(TranslationCacheTest, TranslateExpandsMacros) {
  Init();
  Must("CREATE MACRO TWOSTMT (R VARCHAR(20)) AS "
       "(SEL QTY FROM SALES WHERE REGION = :R; "
       "SEL AMOUNT FROM SALES WHERE REGION = :R;)");
  auto out = service_->Translate("EXEC TWOSTMT ('WEST')", nullptr);
  ASSERT_TRUE(out.ok()) << out.status();
  ASSERT_EQ(out->size(), 2u);
  EXPECT_NE((*out)[0].find("'WEST'"), std::string::npos) << (*out)[0];
  EXPECT_NE((*out)[1].find("'WEST'"), std::string::npos) << (*out)[1];
}

// ---------------------------------------------------------------------------
// Concurrency
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, ConcurrentSessionsHammerAcrossShards) {
  ServiceOptions options;
  options.translation_cache.shard_count = 4;
  Init(options);
  constexpr int kThreads = 8;
  constexpr int kIters = 60;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      auto sid = service_->OpenSession("hammer" + std::to_string(t));
      if (!sid.ok()) {
        ++failures;
        return;
      }
      for (int i = 0; i < kIters; ++i) {
        // A handful of shared shapes (cross-thread hits) plus a
        // per-thread shape (insert traffic), literals always changing.
        std::string q =
            i % 3 == 0
                ? "SEL REGION FROM SALES WHERE AMOUNT > " +
                      std::to_string(i)
                : i % 3 == 1
                      ? "SEL QTY FROM SALES WHERE AMOUNT < " +
                            std::to_string(1000 + i)
                      : "SEL REGION AS T" + std::to_string(t) +
                            " FROM SALES WHERE QTY >= " + std::to_string(i);
        auto r = service_->Submit(*sid, q);
        if (!r.ok() || r->backend_sql.size() != 1) ++failures;
      }
      service_->CloseSession(*sid);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);
  auto s = Stats();
  EXPECT_GT(s.hits, 0);
  EXPECT_GT(s.misses, 0);
  // Post-hammer sanity: the cache still splices correctly.
  auto check = Must("SEL REGION FROM SALES WHERE AMOUNT > 200");
  ASSERT_EQ(check.backend_sql.size(), 1u);
  EXPECT_EQ(Rows(check).size(), 1u);
}

// ---------------------------------------------------------------------------
// The point of the exercise: hits skip the pipeline
// ---------------------------------------------------------------------------

TEST_F(TranslationCacheTest, HitPathTranslationAtLeast5xFaster) {
  Init();
  // Representative BI aggregate: CASE buckets, BETWEEN date range, several
  // predicates. All literals are pairwise distinct so the template
  // bijection holds on the cold seed.
  const std::string shape =
      "SEL REGION, COUNT(*), SUM(AMOUNT), "
      "SUM(CASE WHEN QTY > 7 THEN AMOUNT ELSE 0.00 END) "
      "FROM SALES WHERE SALES_DATE BETWEEN DATE '2013-01-01' AND DATE "
      "'2013-12-31' AND REGION <> 'NOWHERE' AND QTY < 9999 "
      "GROUP BY REGION HAVING SUM(AMOUNT) > ";
  ServiceOptions off;
  off.translation_cache.enabled = false;
  vdb::Engine engine2;
  HyperQService uncached(&engine2, off);
  auto sid2 = uncached.OpenSession("tester");
  ASSERT_TRUE(sid2.ok());
  ASSERT_TRUE(uncached
                  .Submit(*sid2,
                          "CREATE TABLE SALES (AMOUNT DECIMAL(12,2), "
                          "SALES_DATE DATE, REGION VARCHAR(20), "
                          "QTY INTEGER)")
                  .ok());

  constexpr int kIters = 40;
  std::vector<double> hit_micros, cold_micros;
  Must(shape + "0");  // seed the template
  // Measure each side in its own tight loop: steady-state hit latency is
  // the quantity of interest, and interleaving a full cold pipeline
  // between hits would only measure CPU-cache pollution.
  for (int i = 1; i <= kIters; ++i) {
    auto warm = Must(shape + std::to_string(i));
    ASSERT_EQ(warm.timing.cache_hits, 1) << i;
    hit_micros.push_back(warm.timing.translation_micros);
  }
  for (int i = 1; i <= kIters; ++i) {
    auto cold = uncached.Submit(*sid2, shape + std::to_string(i));
    ASSERT_TRUE(cold.ok()) << cold.status();
    cold_micros.push_back(cold->timing.translation_micros);
  }
  auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  double hit = median(hit_micros);
  double cold = median(cold_micros);
  EXPECT_GE(cold, 5.0 * hit)
      << "median cold translation " << cold
      << "us, median hit translation " << hit << "us";
}

// ---------------------------------------------------------------------------
// Dialect isolation (DESIGN.md §12)
// ---------------------------------------------------------------------------

// Two profiles that agree on every capability bit but carry different
// dialect generators must never share a cached template: the digest (the
// cache key's settings component) has to differ, and CanServe has to
// refuse the cross-dialect reuse path.
TEST(DialectCacheKeyTest, ProfilesDifferingOnlyInDialectNeverShareEntries) {
  transform::BackendProfile ansi = transform::BackendProfile::Vdb();
  transform::BackendProfile sierra = transform::BackendProfile::Vdb();
  sierra.dialect = "sierra";
  EXPECT_NE(ansi.CacheKeyDigest(), sierra.CacheKeyDigest());
  EXPECT_FALSE(ansi.CanServe(sierra));
  EXPECT_FALSE(sierra.CanServe(ansi));
  EXPECT_TRUE(ansi.CanServe(ansi));
}

// Switching the service's dialect mid-session re-keys the cache cleanly:
// the same SQL-A shape is a miss under the new dialect (no stale template
// is spliced), produces that dialect's SQL-B, and switching back makes the
// original entries reachable again — hits resume, byte-identical.
TEST_F(TranslationCacheTest, DialectSwitchMidSessionReKeysCache) {
  Init();
  const std::string q1 = "SEL REGION FROM SALES WHERE AMOUNT > 100";
  const std::string q2 = "SEL REGION FROM SALES WHERE AMOUNT > 200";

  auto cold = Must(q1);
  auto warm = Must(q2);
  EXPECT_EQ(warm.timing.cache_hits, 1);
  EXPECT_EQ(cold.timing.dialect, "ansi");
  ASSERT_EQ(warm.backend_sql.size(), 1u);
  const std::string ansi_sql = cold.backend_sql[0];

  ASSERT_TRUE(service_->SwitchBackendDialect("sierra").ok());
  auto sierra_cold = Must(q1);
  // Same shape, new dialect: MUST be a miss (a hit would splice the ansi
  // template into a sierra session).
  EXPECT_EQ(sierra_cold.timing.cache_hits, 0);
  EXPECT_EQ(sierra_cold.timing.dialect, "sierra");
  ASSERT_EQ(sierra_cold.backend_sql.size(), 1u);
  EXPECT_NE(sierra_cold.backend_sql[0], ansi_sql);
  // Sierra's generator backtick-quotes every identifier.
  EXPECT_NE(sierra_cold.backend_sql[0].find('`'), std::string::npos)
      << sierra_cold.backend_sql[0];
  auto sierra_warm = Must(q2);
  EXPECT_EQ(sierra_warm.timing.cache_hits, 1);
  EXPECT_EQ(sierra_warm.timing.dialect, "sierra");

  // Switch back: the original dialect's entries are reachable again.
  ASSERT_TRUE(service_->SwitchBackendDialect("ansi").ok());
  auto back = Must(q1);
  EXPECT_EQ(back.timing.cache_hits, 1);
  EXPECT_EQ(back.timing.dialect, "ansi");
  ASSERT_EQ(back.backend_sql.size(), 1u);
  EXPECT_EQ(back.backend_sql[0], ansi_sql);
}

TEST_F(TranslationCacheTest, DialectSwitchRejectsUnknownName) {
  Init();
  EXPECT_FALSE(service_->SwitchBackendDialect("no-such-dialect").ok());
  // The failed switch left the active dialect untouched.
  auto out = Must("SEL REGION FROM SALES WHERE AMOUNT > 100");
  EXPECT_EQ(out.timing.dialect, "ansi");
}

}  // namespace
}  // namespace hyperq
