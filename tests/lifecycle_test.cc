// Query lifecycle & resource governance suite (ctest label: lifecycle):
// the DESIGN.md §8 state machine — cancellation from every source (client
// abort frame, client disconnect, operator kill, drain, deadline), the
// shed-or-spill policy under the process-wide ResourceGovernor, the
// cache-on-cancel rules, and a randomized chaos soak that proves nothing
// leaks (spill files, sessions, workers, governor bytes) under concurrent
// faults, aborts, and disconnects. Deterministic: fixed seeds, latencies
// chosen so every race has a wide window.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/connector.h"
#include "backend/result_store.h"
#include "common/fault.h"
#include "common/query_context.h"
#include "common/resource_governor.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

using protocol::TdwpClient;
using protocol::TdwpServer;
using protocol::TdwpServerOptions;

class LifecycleTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
  }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

service::ServiceOptions FastOptions() {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 4;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  return options;
}

template <typename Cond>
::testing::AssertionResult WaitFor(Cond cond, int timeout_ms = 2000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (cond()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "condition not met within " << timeout_ms << "ms";
}

std::string MakeTempDir(const char* tag) {
  std::string tmpl = std::string("/tmp/hyperq_") + tag + "_XXXXXX";
  std::vector<char> buf(tmpl.begin(), tmpl.end());
  buf.push_back('\0');
  char* dir = mkdtemp(buf.data());
  EXPECT_NE(dir, nullptr);
  return dir == nullptr ? std::string("/tmp") : std::string(dir);
}

size_t DirFileCount(const std::string& dir) {
  size_t n = 0;
  std::error_code ec;
  for (auto it = std::filesystem::directory_iterator(dir, ec);
       !ec && it != std::filesystem::directory_iterator(); ++it) {
    ++n;
  }
  return n;
}

FaultSpec Latency(int ms, int max_fires = -1) {
  FaultSpec spec;
  spec.kind = FaultKind::kLatency;
  spec.latency_ms = ms;
  spec.max_fires = max_fires;
  return spec;
}

// --- QueryContext ------------------------------------------------------------

TEST_F(LifecycleTest, QueryContextFirstCancelWins) {
  QueryContext ctx;
  EXPECT_TRUE(ctx.CheckAlive().ok());
  EXPECT_EQ(ctx.cause(), CancelCause::kNone);

  ctx.Cancel(CancelCause::kKill, Status::Cancelled("query killed"));
  // A racing disconnect must not overwrite the recorded cause.
  ctx.Cancel(CancelCause::kClientGone, Status::Cancelled("client gone"));
  EXPECT_TRUE(ctx.cancelled());
  EXPECT_EQ(ctx.cause(), CancelCause::kKill);
  auto alive = ctx.CheckAlive();
  ASSERT_FALSE(alive.ok());
  EXPECT_TRUE(alive.IsCancelled());
  EXPECT_NE(alive.message().find("killed"), std::string::npos);
}

TEST_F(LifecycleTest, QueryContextDeadlineExpiresAsTyped) {
  QueryContext ctx;
  ctx.SetDeadline(Deadline::After(5));
  EXPECT_TRUE(ctx.has_deadline());
  ASSERT_TRUE(WaitFor([&] { return !ctx.CheckAlive().ok(); }));
  auto expired = ctx.CheckAlive();
  EXPECT_TRUE(expired.IsDeadlineExceeded());
  EXPECT_EQ(ctx.cause(), CancelCause::kDeadline);
}

TEST_F(LifecycleTest, QueryContextTightenNeverLoosens) {
  QueryContext ctx;
  ctx.SetDeadline(Deadline::After(5));
  // A later, looser deadline must not extend the budget.
  ctx.TightenDeadline(Deadline::After(60000));
  EXPECT_LT(ctx.deadline().RemainingMillis(), 1000.0);

  QueryContext ctx2;
  ctx2.TightenDeadline(Deadline::After(5));  // tighten from infinite
  EXPECT_TRUE(ctx2.has_deadline());
}

TEST_F(LifecycleTest, QueryContextDrainDeadlineCancelsWithDrainCause) {
  QueryContext ctx;
  ctx.BeginDrain(Deadline::After(5));
  ASSERT_TRUE(WaitFor([&] { return !ctx.CheckAlive().ok(); }));
  EXPECT_TRUE(ctx.CheckAlive().IsCancelled());
  EXPECT_EQ(ctx.cause(), CancelCause::kDrain);
}

// --- ResourceGovernor --------------------------------------------------------

TEST_F(LifecycleTest, GovernorEnforcesGlobalAndSessionCeilings) {
  ResourceGovernorOptions opts;
  opts.global_memory_bytes = 1000;
  opts.session_memory_bytes = 600;
  ResourceGovernor gov(opts);

  EXPECT_TRUE(gov.ReserveMemory(1, 500).ok());
  // Session 1 would exceed its per-session ceiling.
  EXPECT_TRUE(gov.ReserveMemory(1, 200).IsResourceExhausted());
  // Session 2 fits its own ceiling but the global one caps it.
  EXPECT_TRUE(gov.ReserveMemory(2, 400).ok());
  EXPECT_TRUE(gov.ReserveMemory(2, 200).IsResourceExhausted());

  auto stats = gov.stats();
  EXPECT_EQ(stats.memory_bytes, 900);
  EXPECT_EQ(stats.peak_memory_bytes, 900);
  EXPECT_EQ(stats.memory_denials, 2);

  gov.ReleaseMemory(1, 500);
  gov.ReleaseMemory(2, 400);
  EXPECT_EQ(gov.stats().memory_bytes, 0);

  // Tag 0 (unattributed: translation cache) is exempt from the per-session
  // ceiling and only bounded globally.
  EXPECT_TRUE(gov.ReserveMemory(0, 900).ok());
  gov.ReleaseMemory(0, 900);
}

TEST_F(LifecycleTest, GovernorBoundsSpillDisk) {
  ResourceGovernorOptions opts;
  opts.spill_disk_bytes = 500;
  ResourceGovernor gov(opts);

  EXPECT_TRUE(gov.ReserveSpill(400).ok());
  EXPECT_TRUE(gov.ReserveSpill(200).IsResourceExhausted());
  gov.NoteShed();

  auto stats = gov.stats();
  EXPECT_EQ(stats.spill_bytes, 400);
  EXPECT_EQ(stats.total_spill_bytes, 400);
  EXPECT_EQ(stats.spill_denials, 1);
  EXPECT_EQ(stats.shed_queries, 1);
  gov.ReleaseSpill(400);
  EXPECT_EQ(gov.stats().spill_bytes, 0);
  EXPECT_EQ(gov.stats().total_spill_bytes, 400);  // cumulative survives
}

// --- ResultStore: shed-or-spill ---------------------------------------------

TEST_F(LifecycleTest, StoreSpillsWhenGovernorDeniesMemory) {
  ResourceGovernorOptions opts;
  opts.global_memory_bytes = 64;  // any real batch is denied memory
  auto gov = std::make_shared<ResourceGovernor>(opts);
  std::string dir = MakeTempDir("spill");
  {
    backend::ResultStore store(/*memory_budget_bytes=*/1 << 20, dir, gov,
                               /*session_tag=*/7);
    std::vector<uint8_t> batch(100, 0xAB);
    ASSERT_TRUE(store.Append(batch, 1).ok());
    EXPECT_GT(store.spilled_bytes(), 0);

    auto stats = gov->stats();
    EXPECT_GE(stats.memory_denials, 1);
    EXPECT_GT(stats.spill_bytes, 0);
    EXPECT_GT(stats.total_spill_bytes, 0);

    // The spilled batch reads back intact.
    size_t seen = 0;
    ASSERT_TRUE(store
                    .Scan([&](const std::vector<uint8_t>& data) {
                      seen += data.size();
                      EXPECT_EQ(data, batch);
                      return Status::OK();
                    })
                    .ok());
    EXPECT_EQ(seen, batch.size());
  }
  // Store destroyed: spill budget returned, spill file removed.
  EXPECT_EQ(gov->stats().spill_bytes, 0);
  EXPECT_EQ(DirFileCount(dir), 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(LifecycleTest, StoreShedsWhenSpillBudgetExhausted) {
  ResourceGovernorOptions opts;
  opts.global_memory_bytes = 64;
  opts.spill_disk_bytes = 64;
  auto gov = std::make_shared<ResourceGovernor>(opts);
  std::string dir = MakeTempDir("shed");
  {
    backend::ResultStore store(1 << 20, dir, gov, 7);
    std::vector<uint8_t> batch(100, 0xCD);
    auto shed = store.Append(batch, 1);
    ASSERT_FALSE(shed.ok());
    EXPECT_TRUE(shed.IsResourceExhausted());
    EXPECT_NE(shed.message().find("shed"), std::string::npos);
  }
  auto stats = gov->stats();
  EXPECT_EQ(stats.spill_denials, 1);
  EXPECT_EQ(stats.shed_queries, 1);
  EXPECT_EQ(stats.spill_bytes, 0);
  EXPECT_EQ(DirFileCount(dir), 0u) << "a shed query must leave no files";
  std::filesystem::remove_all(dir);
}

// --- Translation cache under the governor ------------------------------------

TEST_F(LifecycleTest, TranslationCacheSharesGovernorBudget) {
  auto gov = std::make_shared<ResourceGovernor>(
      ResourceGovernorOptions{.global_memory_bytes = 1 << 20});
  vdb::Engine engine;
  auto options = FastOptions();
  options.governor = gov;
  auto service = std::make_unique<service::HyperQService>(&engine, options);
  auto sid = service->OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service->Submit(*sid, "CREATE TABLE GT (A INTEGER, B INTEGER)").ok());
  ASSERT_TRUE(service->Submit(*sid, "INS INTO GT VALUES (1, 2)").ok());

  ASSERT_TRUE(service->Submit(*sid, "SEL B FROM GT WHERE A = 1").ok());
  {
    // Scoped: the outcome's ResultStore holds governor-reserved bytes
    // until it is destroyed.
    auto hit = service->Submit(*sid, "SEL B FROM GT WHERE A = 1");
    ASSERT_TRUE(hit.ok());
    EXPECT_EQ(hit->timing.cache_hits, 1);
  }

  // Resident cache bytes are reserved against the governor (tag 0); live
  // result stores are all released, so the two must agree exactly.
  auto cache = service->StatsSnapshot().translation_cache;
  EXPECT_GT(cache.bytes, 0u);
  EXPECT_EQ(gov->stats().memory_bytes, static_cast<int64_t>(cache.bytes));

  // Tearing the service down releases every cached byte.
  service.reset();
  EXPECT_EQ(gov->stats().memory_bytes, 0);
}

// --- Operator kill & deadlines ----------------------------------------------

TEST_F(LifecycleTest, KillQueryCancelsMidFetchWithinOneBatch) {
  vdb::Engine engine;
  auto options = FastOptions();
  options.connector.batch_rows = 1;  // a batch boundary after every row
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE KT (A INTEGER)").ok());
  std::string script;
  for (int i = 0; i < 10; ++i) {
    script += "INS INTO KT VALUES (" + std::to_string(i) + ");";
  }
  ASSERT_TRUE(service.SubmitScript(*sid, script).ok());

  // Nothing in flight yet: kill is a typed no-op.
  EXPECT_FALSE(service.KillQuery(*sid));

  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, Latency(30));
  Status result = Status::OK();
  std::thread runner([&] {
    auto r = service.Submit(*sid, "SEL * FROM KT");
    result = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kConnectorFetchBatch) >=
           2;
  }));
  EXPECT_TRUE(service.KillQuery(*sid));
  runner.join();

  ASSERT_FALSE(result.ok());
  EXPECT_TRUE(result.IsCancelled());
  EXPECT_NE(result.message().find("killed"), std::string::npos);

  auto lifecycle = service.StatsSnapshot().lifecycle;
  EXPECT_EQ(lifecycle.cancelled, 1);
  EXPECT_EQ(lifecycle.killed, 1);
  EXPECT_EQ(lifecycle.client_gone, 0);
  EXPECT_FALSE(service.KillQuery(*sid)) << "query already unregistered";

  // The session survives the kill: the next query runs normally.
  FaultInjector::Global().Disarm(faultpoints::kConnectorFetchBatch);
  EXPECT_TRUE(service.Submit(*sid, "SEL COUNT(*) FROM KT").ok());
}

TEST_F(LifecycleTest, DefaultDeadlineExpiresMidFetch) {
  vdb::Engine engine;
  auto options = FastOptions();
  options.connector.batch_rows = 1;
  options.default_query_deadline_ms = 40;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE DT (A INTEGER)").ok());
  std::string script;
  for (int i = 0; i < 10; ++i) {
    script += "INS INTO DT VALUES (" + std::to_string(i) + ");";
  }
  ASSERT_TRUE(service.SubmitScript(*sid, script).ok());

  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, Latency(20));
  auto start = std::chrono::steady_clock::now();
  auto slow = service.Submit(*sid, "SEL * FROM DT");
  auto elapsed_ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - start)
                        .count();
  ASSERT_FALSE(slow.ok());
  EXPECT_TRUE(slow.status().IsDeadlineExceeded());
  // 10 rows x 20ms would be 200ms+; the 40ms budget cut it at a boundary.
  EXPECT_LT(elapsed_ms, 150.0);
  EXPECT_EQ(service.StatsSnapshot().lifecycle.deadline_expired, 1);
}

// --- Wire-level cancellation -------------------------------------------------

// Builds a service+server pair with a BIG table slow enough (per-batch
// latency) that cancellation always lands mid-stream.
struct WireRig {
  explicit WireRig(std::shared_ptr<ResourceGovernor> governor = nullptr,
                   int server_drain_rows = 10) {
    auto options = FastOptions();
    options.connector.batch_rows = 1;
    options.governor = std::move(governor);
    service = std::make_unique<service::HyperQService>(&engine, options);
    auto sid = service->OpenSession("loader");
    EXPECT_TRUE(sid.ok());
    EXPECT_TRUE(service->Submit(*sid, "CREATE TABLE BIG (A INTEGER)").ok());
    std::string script;
    for (int i = 0; i < server_drain_rows; ++i) {
      script += "INS INTO BIG VALUES (" + std::to_string(i) + ");";
    }
    EXPECT_TRUE(service->SubmitScript(*sid, script).ok());
    service->CloseSession(*sid);
    server = std::make_unique<TdwpServer>(service.get());
    EXPECT_TRUE(server->Start(0).ok());
  }
  ~WireRig() {
    if (server != nullptr) server->Stop();
  }

  vdb::Engine engine;
  std::unique_ptr<service::HyperQService> service;
  std::unique_ptr<TdwpServer> server;
};

TEST_F(LifecycleTest, ClientAbortFrameCancelsAndKeepsConnection) {
  WireRig rig;
  TdwpClient client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  ASSERT_TRUE(client.Logon("app", "pw").ok());

  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, Latency(25));
  Status run_status = Status::OK();
  std::thread runner([&] {
    auto r = client.Run("SEL * FROM BIG");
    run_status = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kConnectorFetchBatch) >=
           2;
  }));
  ASSERT_TRUE(client.Abort().ok());
  runner.join();

  ASSERT_FALSE(run_status.ok());
  EXPECT_NE(run_status.message().find("abort"), std::string::npos)
      << run_status;
  EXPECT_GE(rig.service->StatsSnapshot().lifecycle.cancelled, 1);

  // The abort killed the request, not the connection: the same socket
  // serves the next query.
  FaultInjector::Global().Disarm(faultpoints::kConnectorFetchBatch);
  auto next = client.Run("SEL COUNT(*) FROM BIG");
  ASSERT_TRUE(next.ok()) << next.status();
  client.Goodbye();
}

TEST_F(LifecycleTest, ClientGoneMidRequestFreesWorkerAndSession) {
  WireRig rig;
  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, Latency(25));
  {
    auto raw = protocol::Socket::ConnectLocal(rig.server->port());
    ASSERT_TRUE(raw.ok());
    protocol::LogonRequest req{"ghost", "pw", "", "ASCII"};
    protocol::Frame logon{protocol::MessageKind::kLogonRequest, 0,
                          protocol::Encode(req)};
    ASSERT_TRUE(raw->WriteFrame(logon).ok());
    ASSERT_TRUE(raw->ReadFrame().ok());
    protocol::RunRequest run{"SEL * FROM BIG"};
    protocol::Frame f{protocol::MessageKind::kRunRequest, 0,
                      protocol::Encode(run)};
    ASSERT_TRUE(raw->WriteFrame(f).ok());
    ASSERT_TRUE(WaitFor([&] {
      return FaultInjector::Global().fires(
                 faultpoints::kConnectorFetchBatch) >= 2;
    }));
  }  // the client vanishes while its request streams

  // The probe notices the dead socket at the next batch boundary; the
  // worker cancels, tears down, and logs the session off.
  ASSERT_TRUE(WaitFor([&] { return rig.server->active_connections() == 0; }));
  ASSERT_TRUE(WaitFor([&] { return rig.service->open_sessions() == 0; }));
  auto lifecycle = rig.service->StatsSnapshot().lifecycle;
  EXPECT_GE(lifecycle.cancelled, 1);
  EXPECT_GE(lifecycle.client_gone, 1);
  EXPECT_EQ(rig.server->stats().force_closed, 0);
}

TEST_F(LifecycleTest, StopDrainCancelsStreamingAtFrameBoundary) {
  WireRig rig;
  TdwpClient client;
  ASSERT_TRUE(client.Connect(rig.server->port()).ok());
  ASSERT_TRUE(client.Logon("app", "pw").ok());

  // 10 rows x 50ms/batch = 500ms of streaming; the 300ms drain deadline
  // (drain cancel at 225ms) lands mid-stream, well before force-close.
  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, Latency(50));
  Status run_status = Status::OK();
  std::thread runner([&] {
    auto r = client.Run("SEL * FROM BIG");
    run_status = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kConnectorFetchBatch) >=
           2;
  }));
  rig.server->Stop(/*drain_deadline_ms=*/300);
  runner.join();

  // The client got a clean, typed error frame — not a torn connection.
  ASSERT_FALSE(run_status.ok());
  EXPECT_NE(run_status.message().find("drain"), std::string::npos)
      << run_status;
  auto stats = rig.server->stats();
  EXPECT_EQ(stats.drained, 1);
  EXPECT_EQ(stats.force_closed, 0);
  EXPECT_EQ(rig.server->live_workers(), 0u);
  EXPECT_GE(rig.service->StatsSnapshot().lifecycle.cancelled, 1);
  rig.server.reset();  // already stopped
}

// --- Cancellation vs the translation cache -----------------------------------

TEST_F(LifecycleTest, CancelledExecutionStillAdmitsTemplate) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE TABLE CS (QTY INTEGER, AMOUNT INTEGER)")
          .ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO CS VALUES (5, 50)").ok());
  // The INS above is itself cacheable; measure deltas from here.
  auto baseline = service.StatsSnapshot().translation_cache;

  // The pipeline serializes before execution; the kill lands inside the
  // (delayed) execute, after a perfectly good translation existed.
  FaultInjector::Global().Arm(faultpoints::kVdbExecute,
                              Latency(80, /*max_fires=*/1));
  Status result = Status::OK();
  std::thread runner([&] {
    auto r = service.Submit(*sid, "SEL AMOUNT FROM CS WHERE QTY = 5");
    result = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kVdbExecute) >= 1;
  }));
  EXPECT_TRUE(service.KillQuery(*sid));
  runner.join();
  ASSERT_TRUE(result.IsCancelled()) << result;

  // The template was admitted despite the cancellation...
  auto cache = service.StatsSnapshot().translation_cache;
  EXPECT_EQ(cache.inserts, baseline.inserts + 1);
  EXPECT_EQ(cache.entries, baseline.entries + 1);

  // ...so the clean re-run (different literal) is a splice-only hit.
  auto hit = service.Submit(*sid, "SEL AMOUNT FROM CS WHERE QTY = 4");
  ASSERT_TRUE(hit.ok()) << hit.status();
  EXPECT_EQ(hit->timing.cache_hits, 1);
}

TEST_F(LifecycleTest, CancelledRunDoesNotPoisonNegativeCache) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service
          .Submit(*sid, "CREATE TABLE SALES (SALES_DATE DATE, QTY INTEGER)")
          .ok());
  ASSERT_TRUE(service
                  .Submit(*sid,
                          "INS INTO SALES VALUES (DATE '2014-06-01', 7)")
                  .ok());
  // The INS above is itself cacheable; measure deltas from here.
  auto baseline = service.StatsSnapshot().translation_cache;

  // Ordinal GROUP BY is the canonical executable-but-uncacheable shape: a
  // clean run plants the negative "uncacheable" marker. A cancelled run
  // proves nothing about the shape and must plant nothing.
  const std::string kShape =
      "SEL EXTRACT(YEAR FROM SALES_DATE), COUNT(*) FROM SALES "
      "WHERE QTY > 5 GROUP BY 1";
  FaultInjector::Global().Arm(faultpoints::kVdbExecute,
                              Latency(80, /*max_fires=*/1));
  Status result = Status::OK();
  std::thread runner([&] {
    auto r = service.Submit(*sid, kShape);
    result = r.ok() ? Status::OK() : r.status();
  });
  ASSERT_TRUE(WaitFor([&] {
    return FaultInjector::Global().fires(faultpoints::kVdbExecute) >= 1;
  }));
  EXPECT_TRUE(service.KillQuery(*sid));
  runner.join();
  ASSERT_TRUE(result.IsCancelled()) << result;
  EXPECT_EQ(service.StatsSnapshot().translation_cache.entries, baseline.entries)
      << "a cancelled probe must not negative-cache the shape";

  // The clean run plants the marker; the next run bypasses via the marker.
  ASSERT_TRUE(service.Submit(*sid, kShape).ok());
  EXPECT_EQ(service.StatsSnapshot().translation_cache.entries, baseline.entries + 1);
  auto bypass = service.Submit(*sid, kShape);
  ASSERT_TRUE(bypass.ok());
  EXPECT_EQ(bypass->timing.cache_hits, 0);
}

// --- Chaos soak --------------------------------------------------------------

// Acceptance: >=200 queries over >=8 concurrent wire sessions with random
// aborts, mid-request disconnects, injected backend faults, tiny memory
// budgets (forcing spill), and a final graceful drain — with zero leaked
// spill files, sessions, workers, or governor bytes, and a clean health
// query at the end.
TEST_F(LifecycleTest, ChaosSoak) {
  constexpr int kThreads = 8;
  constexpr int kQueriesPerThread = 25;

  ResourceGovernorOptions gov_opts;
  gov_opts.global_memory_bytes = 256 << 10;
  gov_opts.session_memory_bytes = 64 << 10;
  gov_opts.spill_disk_bytes = 8 << 20;
  auto gov = std::make_shared<ResourceGovernor>(gov_opts);

  std::string spill_dir = MakeTempDir("soak");
  vdb::Engine engine;
  auto options = FastOptions();
  options.connector.batch_rows = 16;
  options.connector.store_memory_budget = 2048;  // most results spill
  options.connector.spill_dir = spill_dir;
  options.governor = gov;
  options.default_query_deadline_ms = 5000;
  auto service = std::make_unique<service::HyperQService>(&engine, options);

  {
    auto sid = service->OpenSession("loader");
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(service->Submit(*sid, "CREATE TABLE BIG (A INTEGER)").ok());
    std::string script;
    for (int i = 0; i < 300; ++i) {
      script += "INS INTO BIG VALUES (" + std::to_string(i) + ");";
    }
    ASSERT_TRUE(service->SubmitScript(*sid, script).ok());
    service->CloseSession(*sid);
  }

  TdwpServer server(service.get());
  ASSERT_TRUE(server.Start(0).ok());

  // Seeded background faults on the backend path; the fast retry policy
  // absorbs most of them, the rest surface as typed errors.
  FaultSpec flaky;
  flaky.kind = FaultKind::kTransient;
  flaky.probability = 0.05;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, flaky);
  FaultInjector::Global().Arm(faultpoints::kConnectorFetchBatch, flaky);

  const std::vector<std::string> kQueries = {
      "SEL * FROM BIG",
      "SEL COUNT(*) FROM BIG",
      "SEL A FROM BIG WHERE A > 100",
      "SEL A FROM BIG WHERE A = 7",
  };

  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      TdwpClient client;
      ASSERT_TRUE(client.Connect(server.port()).ok());
      ASSERT_TRUE(client.Logon("soak" + std::to_string(t), "pw").ok());
      for (int i = 0; i < kQueriesPerThread; ++i) {
        const std::string& sql = kQueries[(t + i) % kQueries.size()];
        std::thread aborter;
        if (i % 6 == 5) {
          // Race an abort frame against the running request; either
          // outcome (cancelled or completed) is legal.
          aborter = std::thread([&] {
            std::this_thread::sleep_for(std::chrono::milliseconds(1 + t % 3));
            (void)client.Abort();
          });
        }
        auto r = client.Run(sql);
        if (aborter.joinable()) aborter.join();
        (r.ok() ? completed : failed).fetch_add(1);

        if (i == 12) {
          // A ghost peer: logs on, starts a request, vanishes.
          auto raw = protocol::Socket::ConnectLocal(server.port());
          if (raw.ok()) {
            protocol::LogonRequest req{"ghost" + std::to_string(t), "pw", "",
                                       "ASCII"};
            protocol::Frame logon{protocol::MessageKind::kLogonRequest, 0,
                                  protocol::Encode(req)};
            if (raw->WriteFrame(logon).ok() && raw->ReadFrame().ok()) {
              protocol::RunRequest run{"SEL * FROM BIG"};
              protocol::Frame f{protocol::MessageKind::kRunRequest, 0,
                                protocol::Encode(run)};
              (void)raw->WriteFrame(f);
              std::this_thread::sleep_for(std::chrono::milliseconds(3));
            }
          }  // socket closes here, mid-request
        }
      }
      client.Goodbye();
    });
  }
  for (auto& t : threads) t.join();

  EXPECT_EQ(completed.load() + failed.load(), kThreads * kQueriesPerThread);
  EXPECT_GT(completed.load(), kThreads * kQueriesPerThread / 2)
      << "the soak should mostly succeed; failures are injected faults";

  // Every worker (including the ghosts') winds down and logs off.
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }, 5000));
  ASSERT_TRUE(WaitFor([&] { return service->open_sessions() == 0; }, 5000));

  // Health check on a quiet system with faults disarmed.
  FaultInjector::Global().Reset();
  {
    TdwpClient health;
    ASSERT_TRUE(health.Connect(server.port()).ok());
    ASSERT_TRUE(health.Logon("health", "pw").ok());
    auto r = health.Run("SEL COUNT(*) FROM BIG");
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->rows.size(), 1u);
    EXPECT_EQ(r->rows[0][0].int_val(), 300);
    health.Goodbye();
  }

  server.Stop(/*drain_deadline_ms=*/1000);
  EXPECT_EQ(server.live_workers(), 0u);

  // Governance ledger squares: spill fully returned (and exercised), the
  // only resident memory is the translation cache's, and tearing the
  // service down returns that too. No spill files survive.
  auto stats = gov->stats();
  EXPECT_EQ(stats.spill_bytes, 0);
  EXPECT_GT(stats.total_spill_bytes, 0) << "the soak should have spilled";
  EXPECT_EQ(stats.memory_bytes,
            static_cast<int64_t>(
                service->StatsSnapshot().translation_cache.bytes));
  EXPECT_GE(service->StatsSnapshot().lifecycle.spill_bytes, 0);
  service.reset();
  EXPECT_EQ(gov->stats().memory_bytes, 0);
  EXPECT_EQ(DirFileCount(spill_dir), 0u) << "leaked spill files";
  std::filesystem::remove_all(spill_dir);
}

}  // namespace
}  // namespace hyperq
