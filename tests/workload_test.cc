// Workload generator tests: TPC-H cardinalities/determinism and the
// customer-workload synthesizer hitting the paper's Figure 8 fractions.

#include <gtest/gtest.h>

#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/customer.h"
#include "workload/tpch.h"

namespace hyperq::workload {
namespace {

TEST(TpchGenTest, CardinalitiesScale) {
  auto c = CardinalitiesFor(0.01);
  EXPECT_EQ(c.region, 5);
  EXPECT_EQ(c.nation, 25);
  EXPECT_EQ(c.supplier, 100);
  EXPECT_EQ(c.part, 2000);
  EXPECT_EQ(c.partsupp, 8000);
  EXPECT_EQ(c.customer, 1500);
  EXPECT_EQ(c.orders, 15000);
}

TEST(TpchGenTest, LoadIsDeterministic) {
  auto load = [](vdb::Engine* engine) {
    service::HyperQService service(engine);
    auto sid = service.OpenSession("x");
    ASSERT_TRUE(sid.ok());
    ASSERT_TRUE(LoadTpch(&service, *sid, engine, {0.001, 99}).ok());
  };
  vdb::Engine a, b;
  load(&a);
  load(&b);
  auto ra = a.Execute("SELECT SUM(L_ORDERKEY), COUNT(*) FROM LINEITEM");
  auto rb = b.Execute("SELECT SUM(L_ORDERKEY), COUNT(*) FROM LINEITEM");
  ASSERT_TRUE(ra.ok() && rb.ok());
  ra->EnsureRows();
  rb->EnsureRows();
  EXPECT_EQ(ra->rows[0][0].int_val(), rb->rows[0][0].int_val());
  EXPECT_EQ(ra->rows[0][1].int_val(), rb->rows[0][1].int_val());
  EXPECT_GT(ra->rows[0][1].int_val(), 0);
}

TEST(TpchGenTest, SchemaFlowsThroughDdlTranslation) {
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("x");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(LoadTpch(&service, *sid, &engine, {0.001, 1}).ok());
  // Both the DTM catalog and the target know the 8 tables.
  for (const char* t : {"REGION", "NATION", "SUPPLIER", "PART", "PARTSUPP",
                        "CUSTOMER", "ORDERS", "LINEITEM"}) {
    EXPECT_TRUE(service.catalog()->HasTable(t)) << t;
    EXPECT_TRUE(engine.storage()->HasTable(t)) << t;
  }
  EXPECT_EQ(TpchQueries().size(), 22u);
}

TEST(TpchGenTest, ReferentialIntegrityHolds) {
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("x");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(LoadTpch(&service, *sid, &engine, {0.001, 5}).ok());
  // Every lineitem points at an existing order; every order at a customer.
  auto orphans = engine.Execute(
      "SELECT COUNT(*) FROM LINEITEM WHERE L_ORDERKEY NOT IN "
      "(SELECT O_ORDERKEY FROM ORDERS)");
  ASSERT_TRUE(orphans.ok()) << orphans.status();
  orphans->EnsureRows();
  EXPECT_EQ(orphans->rows[0][0].int_val(), 0);
  auto cust = engine.Execute(
      "SELECT COUNT(*) FROM ORDERS WHERE O_CUSTKEY NOT IN "
      "(SELECT C_CUSTKEY FROM CUSTOMER)");
  ASSERT_TRUE(cust.ok());
  cust->EnsureRows();
  EXPECT_EQ(cust->rows[0][0].int_val(), 0);
}

TEST(CustomerWorkloadTest, ProfilesMatchTable1) {
  auto p1 = CustomerProfile::Customer1Health();
  EXPECT_EQ(p1.total_queries, 39731);
  EXPECT_EQ(p1.distinct_queries, 3778);
  auto p2 = CustomerProfile::Customer2Telco();
  EXPECT_EQ(p2.total_queries, 192753);
  EXPECT_EQ(p2.distinct_queries, 10446);
}

TEST(CustomerWorkloadTest, ReplayCountsPreserveTotals) {
  auto p = CustomerProfile::Customer1Health();
  auto queries = SynthesizeWorkload(p, 1.0);
  EXPECT_EQ(static_cast<int64_t>(queries.size()), p.distinct_queries);
  int64_t total = 0;
  for (const auto& q : queries) total += q.replay_count;
  EXPECT_EQ(total, p.total_queries);
}

// The synthesized workloads, re-measured through the instrumented
// translator, must land on the paper's Figure 8 fractions.
class Figure8Property
    : public ::testing::TestWithParam<std::pair<int, const char*>> {};

TEST_P(Figure8Property, MeasuredFractionsMatchPaper) {
  bool is_w1 = GetParam().first == 1;
  auto profile = is_w1 ? CustomerProfile::Customer1Health()
                       : CustomerProfile::Customer2Telco();
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("x");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(SetUpCustomerSchema(&service, *sid).ok());

  WorkloadFeatureStats stats;
  for (const auto& q : SynthesizeWorkload(profile, 0.2)) {
    FeatureSet features;
    auto t = service.Translate(q.sql, &features);
    ASSERT_TRUE(t.ok()) << q.sql << "\n" << t.status();
    stats.AddQuery(features);
  }
  // Figure 8(a): feature coverage per class.
  EXPECT_NEAR(stats.FeatureCoverage(RewriteClass::kTranslation),
              profile.translation_features.size() / 9.0, 1e-9);
  EXPECT_NEAR(stats.FeatureCoverage(RewriteClass::kTransformation),
              profile.transformation_features.size() / 9.0, 1e-9);
  EXPECT_NEAR(stats.FeatureCoverage(RewriteClass::kEmulation),
              profile.emulation_features.size() / 9.0, 1e-9);
  // Figure 8(b): affected-query fractions (±1.5pp at this scale).
  EXPECT_NEAR(stats.QueryFraction(RewriteClass::kTranslation),
              profile.translation_fraction, 0.015);
  EXPECT_NEAR(stats.QueryFraction(RewriteClass::kTransformation),
              profile.transformation_fraction, 0.015);
  EXPECT_NEAR(stats.QueryFraction(RewriteClass::kEmulation),
              profile.emulation_fraction, 0.015);
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, Figure8Property,
    ::testing::Values(std::make_pair(1, "health"),
                      std::make_pair(2, "telco")),
    [](const auto& info) { return std::string(info.param.second); });

TEST(CustomerWorkloadTest, GeneratorOracleAgreesWithInstrumentation) {
  // For every feature query the generator claims, the instrumented engine
  // must detect at least the intended features (the oracle check that the
  // measurement is not circular).
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("x");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(SetUpCustomerSchema(&service, *sid).ok());
  auto queries =
      SynthesizeWorkload(CustomerProfile::Customer1Health(), 0.05);
  for (const auto& q : queries) {
    if (q.intended.empty()) continue;
    FeatureSet measured;
    ASSERT_TRUE(service.Translate(q.sql, &measured).ok()) << q.sql;
    for (int i = 0; i < kNumFeatures; ++i) {
      Feature f = static_cast<Feature>(i);
      if (q.intended.Has(f)) {
        EXPECT_TRUE(measured.Has(f))
            << FeatureName(f) << " not detected in: " << q.sql;
      }
    }
  }
}

}  // namespace
}  // namespace hyperq::workload
