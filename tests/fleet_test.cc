// Fleet suite (ctest label: fleet, DESIGN.md §10): the backend pool's
// health state machine (passive scoring, active probes, ejection with
// jittered re-admission), deterministic health/load-based routing,
// mid-query cross-replica failover with session-journal replay, the typed
// incompatible-failover error, and a chaos soak with a flapping replica —
// all deterministic (fixed seeds, short bounded waits) so the availability
// claims are provable in CI, including under ASan/TSan.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "backend/pool.h"
#include "backend/router.h"
#include "common/fault.h"
#include "common/resource_governor.h"
#include "common/retry.h"
#include "observability/metric_names.h"
#include "service/hyperq_service.h"
#include "transform/backend_profile.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

namespace names = observability::names;
using backend::BackendHealth;
using backend::BackendPool;
using backend::BackendSpec;
using backend::PoolOptions;
using backend::RouteConstraints;
using backend::Router;

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
  }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

template <typename Cond>
::testing::AssertionResult WaitFor(Cond cond, int timeout_ms = 2000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (cond()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "condition not met within " << timeout_ms << "ms";
}

std::vector<BackendSpec> Replicas(int n) {
  std::vector<BackendSpec> specs(n);
  for (int i = 0; i < n; ++i) {
    specs[i].name = "r" + std::to_string(i);
    specs[i].profile = transform::BackendProfile::Vdb();
  }
  return specs;
}

// Health knobs tuned for tests: no decay unless asked, fast re-admission,
// and an error weight strictly above the degrade threshold so one failure
// lands firmly inside the DEGRADED band (thresholds are >= comparisons on
// a decaying score; exact-threshold scores are not stable states).
backend::HealthOptions TestHealth() {
  backend::HealthOptions h;
  h.error_weight = 1.5;
  h.decay_half_life_ms = 1e9;  // effectively frozen score
  h.readmit_cooldown_ms = 40;
  h.readmit_jitter = 0.5;
  return h;
}

service::ServiceOptions FleetServiceOptions(int replicas) {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends = Replicas(replicas);
  options.fleet.health = TestHealth();
  return options;
}

// --- Pool: health state machine ---------------------------------------------

TEST_F(FleetTest, PassiveErrorsDegradeThenEjectThenReadmit) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(1), options);
  ASSERT_EQ(pool.health(0), BackendHealth::kHealthy);

  // One liveness-flavored failure (weight 1.5) crosses the degrade
  // threshold (1.0)...
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::Unavailable("flake"));
  EXPECT_EQ(pool.health(0), BackendHealth::kDegraded);

  // ...a syntax error says nothing about the replica (no score change)...
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::SyntaxError("bad sql"));
  EXPECT_EQ(pool.health(0), BackendHealth::kDegraded);

  // ...and two more liveness failures cross the eject threshold (3.0).
  for (int i = 0; i < 2; ++i) {
    ASSERT_TRUE(pool.Acquire(0).ok());
    pool.Release(0, Status::SessionLost("gone"));
  }
  EXPECT_EQ(pool.health(0), BackendHealth::kEjected);
  EXPECT_EQ(pool.stats().ejections, 1);

  // Jittered cooldown (40ms + up to 20ms deterministic jitter) elapses:
  // the backend re-enters as DEGRADED probation, score pinned inside the
  // degraded band.
  ASSERT_TRUE(WaitFor([&] {
    return pool.health(0) == BackendHealth::kDegraded;
  }));
  EXPECT_EQ(pool.stats().readmissions, 1);
  EXPECT_GE(pool.health_score(0), options.health.degrade_score);
  EXPECT_LT(pool.health_score(0), options.health.eject_score);
}

TEST_F(FleetTest, ScoreDecaysBackToHealthy) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  options.health.decay_half_life_ms = 5;  // fast decay
  BackendPool pool(&engine, Replicas(1), options);
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::Unavailable("flake"));
  EXPECT_EQ(pool.health(0), BackendHealth::kDegraded);
  // A few half-lives of quiet time halve the score below the threshold.
  ASSERT_TRUE(WaitFor([&] {
    return pool.health(0) == BackendHealth::kHealthy;
  }));
}

TEST_F(FleetTest, KilledBackendIsEjectedAndAcquireFailsTyped) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(2), options);
  pool.KillBackend(1);
  EXPECT_EQ(pool.health(1), BackendHealth::kEjected);

  Status denied = pool.Acquire(1);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.IsUnavailable()) << denied;
  EXPECT_EQ(denied.detail(), StatusDetail::kBackendDown) << denied;

  // Revival is probation, not amnesty: DEGRADED until the score decays.
  pool.ReviveBackend(1);
  EXPECT_EQ(pool.health(1), BackendHealth::kDegraded);
  EXPECT_TRUE(pool.Acquire(1).ok());
  pool.Release(1, Status::OK());
}

TEST_F(FleetTest, FailedProbesDriveEjectionAndCount) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(1), options);

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 3;
  FaultInjector::Global().Arm(faultpoints::kPoolProbe, spec);
  for (int i = 0; i < 3; ++i) pool.ProbeNow();
  EXPECT_EQ(pool.stats().probes, 3);
  EXPECT_EQ(pool.stats().probe_failures, 3);
  EXPECT_EQ(pool.health(0), BackendHealth::kEjected);

  // The fault is spent: successful probes past the cooldown lift the
  // ejection into probation.
  ASSERT_TRUE(WaitFor([&] {
    (void)pool.ProbeBackend(0);
    return pool.health(0) == BackendHealth::kDegraded;
  }));
}

TEST_F(FleetTest, BackgroundProberRunsAndStops) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  options.health.probe_interval_ms = 5;
  BackendPool pool(&engine, Replicas(2), options);
  pool.Start();
  ASSERT_TRUE(WaitFor([&] { return pool.stats().probes >= 6; }));
  pool.Stop();
  int64_t after_stop = pool.stats().probes;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(pool.stats().probes, after_stop);
  EXPECT_EQ(pool.stats().probe_failures, 0);
}

TEST_F(FleetTest, PerBackendInFlightCapDeniesWithResourceExhausted) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  options.governor = std::make_shared<ResourceGovernor>();
  auto specs = Replicas(1);
  specs[0].max_in_flight = 1;
  BackendPool pool(&engine, specs, options);

  ASSERT_TRUE(pool.Acquire(0).ok());
  Status denied = pool.Acquire(0);
  ASSERT_FALSE(denied.ok());
  EXPECT_TRUE(denied.IsResourceExhausted()) << denied;
  EXPECT_EQ(options.governor->stats().backend_slot_denials, 1);
  pool.Release(0, Status::OK());
  EXPECT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::OK());
}

// Satellite: the breaker's fail-fast rejection carries a distinct
// sub-reason, so the router can tell "backend down, nothing was tried"
// from "the query itself failed".
TEST_F(FleetTest, BreakerOpenRejectionCarriesBreakerOpenDetail) {
  CircuitBreakerOptions options;
  options.failure_threshold = 1;
  options.cooldown_ms = 10000;
  CircuitBreaker breaker(options);
  ASSERT_TRUE(breaker.Admit().ok());
  breaker.OnFailure();
  Status rejected = breaker.Admit();
  ASSERT_FALSE(rejected.ok());
  EXPECT_TRUE(rejected.IsUnavailable()) << rejected;
  EXPECT_EQ(rejected.detail(), StatusDetail::kBreakerOpen) << rejected;
  EXPECT_NE(rejected.ToString().find("[breaker_open]"), std::string::npos)
      << rejected.ToString();
}

// --- Router: placement -------------------------------------------------------

TEST_F(FleetTest, PlacementIsDeterministicUnderSeededLoad) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(3), options);
  // Seeded load skew: r0 carries 4 in-flight queries.
  for (int i = 0; i < 4; ++i) ASSERT_TRUE(pool.Acquire(0).ok());

  Router first(&pool, /*seed=*/42);
  Router second(&pool, /*seed=*/42);
  std::vector<int> picks_first, picks_second;
  for (int i = 0; i < 64; ++i) {
    auto r = first.Pick();
    ASSERT_TRUE(r.ok()) << r.status();
    picks_first.push_back(r->backend);
    EXPECT_EQ(r->reason, "p2c");
  }
  for (int i = 0; i < 64; ++i) {
    auto r = second.Pick();
    ASSERT_TRUE(r.ok()) << r.status();
    picks_second.push_back(r->backend);
  }
  // Same seed, same pool state, same pick ordinal -> identical placement.
  EXPECT_EQ(picks_first, picks_second);

  // Power-of-two-choices steers away from the loaded replica: r0 only wins
  // when both probes land on it.
  int count[3] = {0, 0, 0};
  for (int p : picks_first) ++count[p];
  EXPECT_LT(count[0], count[1]);
  EXPECT_LT(count[0], count[2]);
  for (int i = 0; i < 4; ++i) pool.Release(0, Status::OK());
}

TEST_F(FleetTest, StickyWinsWhileEligibleAndExclusionOverridesIt) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(3), options);
  Router router(&pool);

  RouteConstraints constraints;
  constraints.sticky = 1;
  auto sticky = router.Pick(constraints);
  ASSERT_TRUE(sticky.ok());
  EXPECT_EQ(sticky->backend, 1);
  EXPECT_EQ(sticky->reason, "sticky");

  constraints.exclude = {1};
  auto rerouted = router.Pick(constraints);
  ASSERT_TRUE(rerouted.ok());
  EXPECT_NE(rerouted->backend, 1);

  // An ejected sticky backend loses its claim too.
  constraints.exclude.clear();
  pool.KillBackend(1);
  auto moved = router.Pick(constraints);
  ASSERT_TRUE(moved.ok());
  EXPECT_NE(moved->backend, 1);
}

TEST_F(FleetTest, HealthyTierPreferredDegradedIsProbationFallback) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(2), options);
  Router router(&pool);

  // Degrade r0: every pick must land on the healthy r1.
  ASSERT_TRUE(pool.Acquire(0).ok());
  pool.Release(0, Status::Unavailable("flake"));
  ASSERT_EQ(pool.health(0), BackendHealth::kDegraded);
  for (int i = 0; i < 16; ++i) {
    auto r = router.Pick();
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->backend, 1);
  }
  // Degrade r1 as well: picks fall back to the probation tier.
  ASSERT_TRUE(pool.Acquire(1).ok());
  pool.Release(1, Status::Unavailable("flake"));
  auto r = router.Pick();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->reason, "probation");
}

TEST_F(FleetTest, RouterErrorTaxonomyDistinguishesDownFromIncompatible) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  auto specs = Replicas(2);
  specs[1].profile.name = "vdb-variant";  // same capabilities, new digest
  BackendPool pool(&engine, specs, options);
  Router router(&pool);

  // The session's journaled state was created under r0's profile; r0 has
  // failed this query. r1 is alive and capable but digest-mismatched:
  // the *typed* incompatible error, not a generic "fleet down".
  RouteConstraints constraints;
  constraints.exclude = {0};
  constraints.require_profile_digest = true;
  constraints.profile_digest = pool.profile_digest(0);
  auto incompatible = router.Pick(constraints);
  ASSERT_FALSE(incompatible.ok());
  EXPECT_EQ(incompatible.status().detail(),
            StatusDetail::kFailoverIncompatible)
      << incompatible.status();

  // With the last live candidate gone the answer degrades to backend-down.
  pool.KillBackend(1);
  auto down = router.Pick(constraints);
  ASSERT_FALSE(down.ok());
  EXPECT_EQ(down.status().detail(), StatusDetail::kBackendDown)
      << down.status();
}

TEST_F(FleetTest, RouterPickFaultSurfacesAsRoutingFailure) {
  vdb::Engine engine;
  PoolOptions options;
  options.health = TestHealth();
  BackendPool pool(&engine, Replicas(2), options);
  Router router(&pool);

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kRouterPick, spec);
  auto r = router.Pick();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(FaultInjector::Global().fires(faultpoints::kRouterPick), 1);
  // The fault is spent: routing recovers.
  EXPECT_TRUE(router.Pick().ok());
}

// --- Service: fleet mode -----------------------------------------------------

TEST_F(FleetTest, LogonReportsBoundBackendAndQueriesRun) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  protocol::LogonRequest request;
  request.user = "alice";
  auto resp = service.Logon(request);
  ASSERT_TRUE(resp.ok()) << resp.status();
  int bound = service.session_backend(resp->session_id);
  ASSERT_GE(bound, 0);
  EXPECT_NE(resp->message.find(
                " on " + service.backend_pool()->spec(bound).name),
            std::string::npos)
      << resp->message;
  EXPECT_TRUE(service.Submit(resp->session_id, "SEL 1").ok());
  service.Logoff(resp->session_id);
}

// Tentpole acceptance: a session with volatile-table + SET SESSION state
// keeps answering across a hard kill of its bound replica — the journal
// replays onto a different backend, invisibly except for latency.
TEST_F(FleetTest, CrossReplicaFailoverReplaysJournalInvisibly) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  auto run = [&](const std::string& sql) {
    auto r = service.Submit(*sid, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    return r.ok() ? std::move(r).value() : service::QueryOutcome{};
  };
  run("CREATE VOLATILE TABLE SCRATCH (A INTEGER)");
  run("INS INTO SCRATCH VALUES (1)");
  run("INS INTO SCRATCH VALUES (2)");
  run("SET SESSION CHARSET 'UTF8'");

  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->KillBackend(bound);

  auto out = run("SEL * FROM SCRATCH ORDER BY A");
  EXPECT_GE(out.timing.failovers, 1);
  EXPECT_GE(out.timing.journal_replays, 4);
  int moved = service.session_backend(*sid);
  EXPECT_NE(moved, bound) << "session must have moved to another replica";
  auto rows = out.result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 2u);
  EXPECT_EQ((*rows)[0][0].int_val(), 1);
  EXPECT_EQ((*rows)[1][0].int_val(), 2);
  EXPECT_GE(service.metrics_registry()
                ->counter(names::kFailoverCrossReplica)
                ->value(),
            1);

  // The moved session keeps working — and stays put (sticky).
  run("INS INTO SCRATCH VALUES (3)");
  EXPECT_EQ(service.session_backend(*sid), moved);
}

TEST_F(FleetTest, OpenTxnFenceStillAbortsNonIdempotentAcrossReplicas) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (1)").ok());
  ASSERT_TRUE(service.Submit(*sid, "BT").ok());

  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->KillBackend(bound);

  // Non-idempotent DML inside the open transaction: the fence aborts it
  // rather than silently double-applying on another replica.
  auto aborted = service.Submit(*sid, "INS INTO SCRATCH VALUES (2)");
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsAborted()) << aborted.status();
  EXPECT_EQ(service.StatsSnapshot().resilience.aborted_in_txn, 1);

  // The session itself survived the move: pre-transaction state is back.
  auto sel = service.Submit(*sid, "SEL * FROM SCRATCH");
  ASSERT_TRUE(sel.ok()) << sel.status();
  auto rows = sel->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // the aborted INSERT was NOT re-applied
}

// Satellite: when journaled SET SESSION state can only be honored by a
// digest-identical replica and none is live, the failure is the typed
// kFailoverIncompatible — not a retry storm, not a generic error.
TEST_F(FleetTest, IncompatibleReplicaFailoverSurfacesTypedError) {
  vdb::Engine engine;
  auto options = FleetServiceOptions(2);
  options.fleet.backends[1].profile.name = "vdb-variant";
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "SET SESSION CHARSET 'UTF8'").ok());

  int bound = service.session_backend(*sid);
  ASSERT_GE(bound, 0);
  service.backend_pool()->KillBackend(bound);

  auto blocked = service.Submit(*sid, "SEL 1");
  ASSERT_FALSE(blocked.ok());
  EXPECT_EQ(blocked.status().detail(), StatusDetail::kFailoverIncompatible)
      << blocked.status();
  EXPECT_GE(service.metrics_registry()
                ->counter(names::kFailoverIncompatible)
                ->value(),
            1);
}

// Satellite: a permanent error ("query bad") is never re-routed — the
// session stays bound and no failover counter moves.
TEST_F(FleetTest, PermanentErrorsAreNotReRouted) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  int bound = service.session_backend(*sid);

  auto bad = service.Submit(*sid, "SEL * FROM NO_SUCH_TABLE");
  ASSERT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsUnavailable()) << bad.status();
  EXPECT_EQ(service.session_backend(*sid), bound);
  EXPECT_EQ(service.metrics_registry()
                ->counter(names::kFailoverCrossReplica)
                ->value(),
            0);
}

TEST_F(FleetTest, RouteMetricsAndHealthGaugesAreMirrored) {
  vdb::Engine engine;
  auto options = FleetServiceOptions(3);
  options.fleet.health.probe_interval_ms = 5;  // exercise the prober too
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "SEL 1").ok());
  ASSERT_TRUE(WaitFor([&] {
    return service.backend_pool()->stats().probes >= 3;
  }));

  auto snapshot = service.StatsSnapshot().metrics;
  bool saw_route = false;
  for (const auto& [name, value] : snapshot.counters) {
    if (name.rfind(names::kBackendRoute, 0) == 0 && value > 0) {
      saw_route = true;
    }
  }
  EXPECT_TRUE(saw_route) << "no hyperq.backend.route{...} counter moved";
  EXPECT_GT(snapshot.counters[names::kPoolProbes], 0);
  // Per-state backend counts: 3 replicas, all healthy.
  EXPECT_EQ(snapshot.gauges["hyperq.backend.health.healthy"], 3);
  EXPECT_EQ(snapshot.gauges["hyperq.backend.health.ejected"], 0);
  bool saw_health = false;
  for (const auto& [name, value] : snapshot.gauges) {
    if (name.rfind(std::string(names::kBackendHealth) + "{", 0) == 0) {
      saw_health = true;
    }
  }
  EXPECT_TRUE(saw_health) << "no per-backend health gauge mirrored";
}

// --- Chaos -------------------------------------------------------------------

// Satellite: a flapping replica, driven through the same config string the
// HYPERQ_FAULTS env var takes, must not surface a single client error —
// routing simply flows around the flaps.
TEST_F(FleetTest, ChaosFlappingReplicaIsInvisibleToClients) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO T VALUES (7)").ok());

  // Every 3rd health evaluation reports EJECTED (the `backend.ejected`
  // chaos hook): the fleet flaps continuously under this workload.
  ASSERT_TRUE(FaultInjector::Global()
                  .Configure("backend.ejected=transient:first=3,every=3")
                  .ok());
  int ok_count = 0;
  for (int i = 0; i < 60; ++i) {
    auto r = service.Submit(*sid, "SEL * FROM T");
    if (r.ok()) ++ok_count;
  }
  EXPECT_EQ(ok_count, 60);
  EXPECT_GT(FaultInjector::Global().fires(faultpoints::kBackendEjected), 0);
}

// Acceptance: 3 replicas, one hard-killed while a concurrent workload is
// in flight — >= 99% of queries complete via transparent failover; with no
// open transactions in the mix, nothing is client-visible at all.
TEST_F(FleetTest, HardKillMidWorkloadCompletesAtLeast99Percent) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  {
    auto setup = service.OpenSession("setup");
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(
        service.Submit(*setup, "CREATE TABLE T (A INTEGER, B VARCHAR(20))")
            .ok());
    for (int i = 0; i < 40; ++i) {
      ASSERT_TRUE(service
                      .Submit(*setup, "INS INTO T VALUES (" +
                                          std::to_string(i) + ", 'row-" +
                                          std::to_string(i) + "')")
                      .ok());
    }
    service.CloseSession(*setup);
  }

  constexpr int kSessions = 6;
  constexpr int kQueriesPerSession = 40;
  std::atomic<int> completed{0};
  std::atomic<int> failed{0};
  std::atomic<bool> start{false};
  std::vector<std::thread> workers;
  for (int w = 0; w < kSessions; ++w) {
    workers.emplace_back([&, w] {
      auto sid = service.OpenSession("worker" + std::to_string(w));
      ASSERT_TRUE(sid.ok());
      while (!start.load()) std::this_thread::yield();
      for (int q = 0; q < kQueriesPerSession; ++q) {
        auto r = service.Submit(*sid, "SEL * FROM T WHERE A < " +
                                          std::to_string(10 + q % 30) +
                                          " ORDER BY A");
        if (r.ok()) {
          completed.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      }
      service.CloseSession(*sid);
    });
  }
  start.store(true);
  // Hard-kill one replica mid-workload; revive it later so re-admission
  // and probation routing run inside the soak too.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  service.backend_pool()->KillBackend(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  service.backend_pool()->ReviveBackend(0);
  for (auto& t : workers) t.join();

  int total = kSessions * kQueriesPerSession;
  EXPECT_EQ(completed.load() + failed.load(), total);
  EXPECT_GE(completed.load(), (total * 99 + 99) / 100)
      << "failed: " << failed.load();
  EXPECT_EQ(service.StatsSnapshot().resilience.aborted_in_txn, 0);
  EXPECT_EQ(service.open_sessions(), 0u);
}

// Tail soak (DESIGN.md §11): one replica is slow — not dead — so health
// scoring, the breaker, and failover never fire; only hedged reads can
// rescue the tail. The same workload runs hedged and unhedged: hedging
// must cut the p99, deliver every result exactly once, and leak neither
// sessions nor pool slots.
TEST_F(FleetTest, SlowReplicaSoakHedgingCutsTailWithoutDuplicates) {
  constexpr int kWorkers = 4;
  constexpr int kQueriesPerWorker = 25;
  constexpr int kRows = 10;

  auto run_soak = [&](bool hedging) -> double {
    vdb::Engine engine;
    auto options = FleetServiceOptions(3);
    options.tail.hedge.enabled = hedging;
    options.tail.hedge.min_threshold_micros = 2000;
    options.tail.hedge.max_hedge_fraction = 1.0;
    service::HyperQService service(&engine, options);
    {
      auto setup = service.OpenSession("setup");
      EXPECT_TRUE(setup.ok());
      EXPECT_TRUE(service.Submit(*setup, "CREATE TABLE T (A INTEGER)").ok());
      for (int i = 0; i < kRows; ++i) {
        EXPECT_TRUE(
            service
                .Submit(*setup, "INS INTO T VALUES (" + std::to_string(i) +
                                    ")")
                .ok());
      }
      service.CloseSession(*setup);
    }

    // Bind every worker first, then slow worker 0's replica: at least one
    // session is guaranteed to sit behind the slow backend.
    std::vector<uint32_t> sids;
    for (int w = 0; w < kWorkers; ++w) {
      auto sid = service.OpenSession("worker" + std::to_string(w));
      EXPECT_TRUE(sid.ok());
      sids.push_back(*sid);
    }
    int slow = service.session_backend(sids[0]);
    EXPECT_GE(slow, 0);
    service.backend_pool()->SlowBackend(slow, 15);

    std::vector<std::vector<double>> latencies(kWorkers);
    std::atomic<int> wrong_rows{0};
    std::atomic<int> failures{0};
    std::vector<std::thread> workers;
    for (int w = 0; w < kWorkers; ++w) {
      workers.emplace_back([&, w] {
        for (int q = 0; q < kQueriesPerWorker; ++q) {
          auto start = std::chrono::steady_clock::now();
          auto r = service.Submit(sids[w], "SEL * FROM T ORDER BY A");
          auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                            std::chrono::steady_clock::now() - start)
                            .count();
          if (!r.ok()) {
            failures.fetch_add(1);
            continue;
          }
          latencies[w].push_back(static_cast<double>(micros));
          auto rows = r->result.DecodeRows();
          // Exactly-once delivery: a duplicated hedge result would double
          // the row count, a dropped one would empty it.
          if (!rows.ok() || rows->size() != static_cast<size_t>(kRows)) {
            wrong_rows.fetch_add(1);
          }
        }
      });
    }
    for (auto& t : workers) t.join();
    for (uint32_t sid : sids) service.CloseSession(sid);

    EXPECT_EQ(failures.load(), 0);
    EXPECT_EQ(wrong_rows.load(), 0) << "duplicate or lost hedge results";
    EXPECT_EQ(service.open_sessions(), 0u);
    for (size_t i = 0; i < service.backend_pool()->size(); ++i) {
      EXPECT_EQ(service.backend_pool()->in_flight(i), 0)
          << "leaked slot on replica " << i;
    }
    if (hedging) {
      EXPECT_GE(service.metrics_registry()
                    ->counter(names::kHedgeWins)
                    ->value(),
                1)
          << "the slow replica's sessions never won a hedge";
    } else {
      EXPECT_EQ(
          service.metrics_registry()->counter(names::kHedgeLaunched)->value(),
          0);
    }

    std::vector<double> all;
    for (auto& v : latencies) all.insert(all.end(), v.begin(), v.end());
    std::sort(all.begin(), all.end());
    return all[(all.size() * 99) / 100 - 1];
  };

  double unhedged_p99 = run_soak(false);
  double hedged_p99 = run_soak(true);
  EXPECT_LT(hedged_p99, unhedged_p99)
      << "hedging must cut the slow-replica tail (hedged p99 "
      << hedged_p99 / 1000 << "ms vs unhedged " << unhedged_p99 / 1000
      << "ms)";
}

}  // namespace
}  // namespace hyperq
