// Result Converter tests: TDF -> wire batches, buffering semantics,
// parallel-worker equivalence.

#include <gtest/gtest.h>

#include "backend/connector.h"
#include "convert/result_converter.h"
#include "vdb/engine.h"

namespace hyperq::convert {
namespace {

backend::BackendResult MakeBackendResult(int64_t rows) {
  backend::BackendResult result;
  result.columns = {{"A", SqlType::Int()}, {"S", SqlType::Varchar(16)}};
  result.store = std::make_shared<backend::ResultStore>();
  backend::TdfWriter writer(result.columns);
  for (int64_t i = 0; i < rows; ++i) {
    EXPECT_TRUE(
        writer
            .AddRow({Datum::Int(i), Datum::String("s" + std::to_string(i))})
            .ok());
  }
  size_t n = writer.row_count();
  EXPECT_TRUE(result.store->Append(writer.Finish(), n).ok());
  result.command_tag = "SELECT";
  return result;
}

TEST(ConvertTest, AnnouncesTotalRowsBeforeBatches) {
  ResultConverter converter(2, /*rows_per_batch=*/100);
  auto converted = converter.Convert(MakeBackendResult(250));
  ASSERT_TRUE(converted.ok()) << converted.status();
  // Buffered conversion: the total is known up front (WP-A requirement).
  EXPECT_EQ(converted->total_rows, 250u);
  EXPECT_EQ(converted->batches.size(), 3u);  // 100 + 100 + 50
  // Each batch payload leads with its row count.
  BufferReader r(converted->batches[2]);
  EXPECT_EQ(*r.GetU32(), 50u);
}

TEST(ConvertTest, EmptyRowsetStillCarriesSchema) {
  ResultConverter converter(1);
  auto converted = converter.Convert(MakeBackendResult(0));
  ASSERT_TRUE(converted.ok());
  EXPECT_EQ(converted->total_rows, 0u);
  EXPECT_TRUE(converted->batches.empty());
  ASSERT_EQ(converted->columns.size(), 2u);
  EXPECT_EQ(converted->columns[0].type, protocol::WireType::kInteger);
}

TEST(ConvertTest, CommandResultsConvertToNothing) {
  backend::BackendResult cmd;
  cmd.command_tag = "INSERT";
  cmd.affected_rows = 3;
  ResultConverter converter(2);
  auto converted = converter.Convert(cmd);
  ASSERT_TRUE(converted.ok());
  EXPECT_TRUE(converted->columns.empty());
  EXPECT_TRUE(converted->batches.empty());
}

TEST(ConvertTest, ParallelismDoesNotChangeBytes) {
  auto result = MakeBackendResult(997);  // odd size across batch boundaries
  ResultConverter serial(1, 128);
  ResultConverter parallel(4, 128);
  auto a = serial.Convert(result);
  auto b = parallel.Convert(result);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->batches.size(), b->batches.size());
  for (size_t i = 0; i < a->batches.size(); ++i) {
    EXPECT_EQ(a->batches[i], b->batches[i]) << "batch " << i;
  }
}

TEST(ConvertTest, DecodesBackOnTheClientSide) {
  ResultConverter converter(2, 64);
  auto converted = converter.Convert(MakeBackendResult(100));
  ASSERT_TRUE(converted.ok());
  size_t decoded = 0;
  for (const auto& batch : converted->batches) {
    BufferReader in(batch);
    auto nrows = in.GetU32();
    ASSERT_TRUE(nrows.ok());
    for (uint32_t i = 0; i < *nrows; ++i) {
      auto row = protocol::DecodeRecord(converted->columns, &in);
      ASSERT_TRUE(row.ok());
      EXPECT_EQ((*row)[0].int_val(), static_cast<int64_t>(decoded));
      EXPECT_EQ((*row)[1].string_val(), "s" + std::to_string(decoded));
      ++decoded;
    }
  }
  EXPECT_EQ(decoded, 100u);
}

}  // namespace
}  // namespace hyperq::convert
