// Integration tests of the full virtualization stack: HyperQService over the
// library API and over the tdwp wire protocol.

#include <gtest/gtest.h>

#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

class ServiceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<service::HyperQService>(&engine_);
    auto sid = service_->OpenSession("tester");
    ASSERT_TRUE(sid.ok());
    sid_ = *sid;
  }

  service::QueryOutcome Must(const std::string& sql) {
    auto r = service_->Submit(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    return r.ok() ? std::move(r).value() : service::QueryOutcome{};
  }

  std::vector<std::vector<Datum>> Rows(const service::QueryOutcome& o) {
    auto rows = o.result.DecodeRows();
    EXPECT_TRUE(rows.ok());
    return rows.ok() ? std::move(rows).value()
                     : std::vector<std::vector<Datum>>{};
  }

  vdb::Engine engine_;
  std::unique_ptr<service::HyperQService> service_;
  uint32_t sid_ = 0;
};

TEST_F(ServiceTest, DdlAndDmlRoundTrip) {
  Must("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)");
  auto ins = Must("INS INTO EMP VALUES (1, 7)");
  EXPECT_EQ(ins.result.affected_rows, 1);
  Must("INS INTO EMP VALUES (7, 8)");
  auto sel = Must("SEL * FROM EMP ORDER BY EMPNO");
  auto rows = Rows(sel);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0].int_val(), 1);
  EXPECT_EQ(rows[1][0].int_val(), 7);
}

// Paper Example 4: recursive query over EMP(EMPNO, MGRNO) with the sample
// hierarchy {(e1,e7),(e7,e8),(e8,e10),(e9,e10),(e10,e11)}.
TEST_F(ServiceTest, Example4RecursiveQuery) {
  Must("CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)");
  Must("INS INTO EMP VALUES (1, 7)");
  Must("INS INTO EMP VALUES (7, 8)");
  Must("INS INTO EMP VALUES (8, 10)");
  Must("INS INTO EMP VALUES (9, 10)");
  Must("INS INTO EMP VALUES (10, 11)");

  auto out = Must(R"(
    WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
      SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
      UNION ALL
      SELECT EMP.EMPNO, EMP.MGRNO
      FROM EMP, REPORTS
      WHERE REPORTS.EMPNO = EMP.MGRNO
    )
    SELECT EMPNO FROM REPORTS ORDER BY EMPNO)");
  EXPECT_TRUE(out.features.Has(Feature::kRecursiveQuery));
  auto rows = Rows(out);
  // All employees reporting directly or indirectly to e10: e8, e9, e7, e1.
  ASSERT_EQ(rows.size(), 4u);
  EXPECT_EQ(rows[0][0].int_val(), 1);
  EXPECT_EQ(rows[1][0].int_val(), 7);
  EXPECT_EQ(rows[2][0].int_val(), 8);
  EXPECT_EQ(rows[3][0].int_val(), 9);
}

TEST_F(ServiceTest, MacroCreateAndExec) {
  Must("CREATE TABLE SALES (REGION VARCHAR(16), AMOUNT INTEGER)");
  Must("INS INTO SALES VALUES ('east', 10)");
  Must("INS INTO SALES VALUES ('west', 20)");
  Must("CREATE MACRO REGION_TOTAL (R VARCHAR(16)) AS "
       "(SEL SUM(AMOUNT) AS TOTAL FROM SALES WHERE REGION = :R;)");
  auto out = Must("EXEC REGION_TOTAL('west')");
  EXPECT_TRUE(out.features.Has(Feature::kMacros));
  auto rows = Rows(out);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].int_val(), 20);
}

TEST_F(ServiceTest, MergeEmulation) {
  Must("CREATE TABLE TGT (K INTEGER, V INTEGER)");
  Must("CREATE TABLE SRC (K INTEGER, V INTEGER)");
  Must("INS INTO TGT VALUES (1, 100)");
  Must("INS INTO SRC VALUES (1, 111)");
  Must("INS INTO SRC VALUES (2, 222)");
  auto out = Must(
      "MERGE INTO TGT USING SRC S ON TGT.K = S.K "
      "WHEN MATCHED THEN UPDATE SET V = S.V "
      "WHEN NOT MATCHED THEN INSERT (K, V) VALUES (S.K, S.V)");
  EXPECT_TRUE(out.features.Has(Feature::kMerge));
  auto sel = Must("SEL K, V FROM TGT ORDER BY K");
  auto rows = Rows(sel);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1].int_val(), 111);  // matched -> updated
  EXPECT_EQ(rows[1][1].int_val(), 222);  // not matched -> inserted
}

TEST_F(ServiceTest, HelpSessionAnsweredLocally) {
  auto out = Must("HELP SESSION");
  EXPECT_TRUE(out.features.Has(Feature::kSessionCommands));
  EXPECT_TRUE(out.backend_sql.empty());  // zero statements hit the target
  auto rows = Rows(out);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_val(), "tester");
}

TEST_F(ServiceTest, DmlOnViewRewritesToBaseTable) {
  Must("CREATE TABLE ORDERS (ID INTEGER, STATE VARCHAR(8))");
  Must("INS INTO ORDERS VALUES (1, 'open')");
  Must("CREATE VIEW OPEN_ORDERS AS SELECT ID, STATE FROM ORDERS");
  auto out = Must("UPD OPEN_ORDERS SET STATE = 'done' WHERE ID = 1");
  EXPECT_TRUE(out.features.Has(Feature::kDmlOnViews));
  auto sel = Must("SEL STATE FROM ORDERS");
  EXPECT_EQ(Rows(sel)[0][0].string_val(), "done");
}

TEST_F(ServiceTest, CollectStatsTranslatesToZeroStatements) {
  Must("CREATE TABLE T1 (A INTEGER)");
  auto out = Must("COLLECT STATISTICS ON T1 COLUMN A");
  EXPECT_TRUE(out.features.Has(Feature::kStatsElimination));
  EXPECT_TRUE(out.backend_sql.empty());
}

TEST_F(ServiceTest, SetTableRejectsDuplicates) {
  Must("CREATE SET TABLE UNIQ (A INTEGER, B INTEGER)");
  Must("INS INTO UNIQ VALUES (1, 1)");
  auto out = Must("INS INTO UNIQ VALUES (1, 1)");  // silently dropped
  EXPECT_TRUE(out.features.Has(Feature::kSetSemantics));
  auto sel = Must("SEL * FROM UNIQ");
  EXPECT_EQ(Rows(sel).size(), 1u);
}

TEST_F(ServiceTest, PeriodTypeEmulation) {
  Must("CREATE TABLE PROMO (NAME VARCHAR(16), SPAN PERIOD(DATE))");
  Must("INS INTO PROMO VALUES ('summer', "
       "PERIOD(DATE '2014-06-01', DATE '2014-09-01'))");
  auto out = Must(
      "SEL NAME FROM PROMO WHERE BEGIN(SPAN) < DATE '2014-07-01'");
  EXPECT_TRUE(out.features.Has(Feature::kPeriodType));
  auto rows = Rows(out);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0].string_val(), "summer");
}

TEST_F(ServiceTest, WireProtocolRoundTrip) {
  Must("CREATE TABLE WIRE_T (A INTEGER, B VARCHAR(8), D DATE)");
  Must("INS INTO WIRE_T VALUES (42, 'hello', DATE '2014-01-01')");

  protocol::TdwpServer server(service_.get());
  ASSERT_TRUE(server.Start(0).ok());

  protocol::TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("appuser", "secret").ok());
  auto result = client.Run("SEL A, B, D FROM WIRE_T");
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].int_val(), 42);
  EXPECT_EQ(result->rows[0][1].string_val(), "hello");
  // The DATE travelled in the Teradata integer encoding and decoded back.
  EXPECT_EQ(result->rows[0][2].ToString(), "2014-01-01");
  EXPECT_GT(result->translation_micros, 0);
  client.Goodbye();
  server.Stop();
}

// --- Lifecycle counters (DESIGN.md §8) --------------------------------------

TEST(ServiceLifecycleStatsTest, StartAtZeroAndClassifyDeadlines) {
  vdb::Engine engine;
  service::ServiceOptions options;
  // Expires before the first batch boundary check; no faults needed.
  options.default_query_deadline_ms = 0.001;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("ops");
  ASSERT_TRUE(sid.ok());

  auto zero = service.StatsSnapshot().lifecycle;
  EXPECT_EQ(zero.cancelled, 0);
  EXPECT_EQ(zero.deadline_expired, 0);
  EXPECT_EQ(zero.client_gone, 0);
  EXPECT_EQ(zero.killed, 0);
  EXPECT_EQ(zero.spill_bytes, 0);
  EXPECT_EQ(zero.shed_queries, 0);

  auto expired = service.Submit(*sid, "SEL 1");
  ASSERT_FALSE(expired.ok());
  EXPECT_TRUE(expired.status().IsDeadlineExceeded()) << expired.status();
  auto stats = service.StatsSnapshot().lifecycle;
  EXPECT_EQ(stats.deadline_expired, 1);
  EXPECT_EQ(stats.cancelled, 0);
}

TEST(ServiceLifecycleStatsTest, SpillAndShedAccountingFlowThrough) {
  // A governor with almost no memory forces every result batch to spill.
  auto gov = std::make_shared<ResourceGovernor>(
      ResourceGovernorOptions{.global_memory_bytes = 64});
  vdb::Engine engine;
  service::ServiceOptions options;
  options.connector.batch_rows = 4;
  options.governor = gov;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("ops");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE LS (A INTEGER)").ok());
  std::string script;
  for (int i = 0; i < 40; ++i) {
    script += "INS INTO LS VALUES (" + std::to_string(i) + ");";
  }
  ASSERT_TRUE(service.SubmitScript(*sid, script).ok());

  auto spilled = service.Submit(*sid, "SEL * FROM LS");
  ASSERT_TRUE(spilled.ok()) << spilled.status();
  EXPECT_GT(spilled->timing.spill_bytes, 0);
  EXPECT_GT(service.StatsSnapshot().lifecycle.spill_bytes, 0);
  EXPECT_EQ(service.StatsSnapshot().lifecycle.shed_queries, 0);

  // Now also deny spill: the query is shed with a typed error and counted.
  auto strict = std::make_shared<ResourceGovernor>(ResourceGovernorOptions{
      .global_memory_bytes = 64, .spill_disk_bytes = 64});
  service::ServiceOptions strict_options;
  strict_options.connector.batch_rows = 4;
  strict_options.governor = strict;
  service::HyperQService strict_service(&engine, strict_options);
  auto sid2 = strict_service.OpenSession("ops");
  ASSERT_TRUE(sid2.ok());
  ASSERT_TRUE(strict_service.Submit(*sid2, "CREATE TABLE LS2 (A INTEGER)")
                  .ok());
  std::string script2;
  for (int i = 0; i < 40; ++i) {
    script2 += "INS INTO LS2 VALUES (" + std::to_string(i) + ");";
  }
  ASSERT_TRUE(strict_service.SubmitScript(*sid2, script2).ok());
  auto shed = strict_service.Submit(*sid2, "SEL * FROM LS2");
  ASSERT_FALSE(shed.ok());
  EXPECT_TRUE(shed.status().IsResourceExhausted()) << shed.status();
  EXPECT_EQ(strict_service.StatsSnapshot().lifecycle.shed_queries, 1);
}

}  // namespace
}  // namespace hyperq
