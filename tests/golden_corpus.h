// Shared loader for the file-driven translation corpus in tests/golden/.
//
// Layout:
//   _schema.sql      — catalog setup, ONE statement per line (macro bodies
//                      contain ';', so the script splitter cannot be used)
//   NN_name.sql      — one SQL-A statement
//   NN_name.expected — the SQL-B translation(s), one per line
//
// Regeneration: run the golden suite with HQ_REGEN_GOLDEN=1 to rewrite the
// .expected files from the current translator output, then diff-review.
// scripts/check_golden.sh fails the build on unreferenced or stale files.

#pragma once

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace hyperq::golden {

struct GoldenCase {
  std::string name;           // file stem, e.g. "04_qualify_rank"
  std::string sql;            // SQL-A statement
  std::string expected_path;  // sibling .expected file
  std::string expected;       // its contents ("" when missing)
};

inline std::string GoldenDir() {
#ifdef HYPERQ_GOLDEN_DIR
  return HYPERQ_GOLDEN_DIR;
#else
  return "tests/golden";
#endif
}

inline std::string ReadTextFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

inline void WriteTextFile(const std::string& path,
                          const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << content;
}

inline bool RegenRequested() {
  const char* v = std::getenv("HQ_REGEN_GOLDEN");
  return v != nullptr && *v != '\0' && *v != '0';
}

/// Schema statements: non-empty, non-comment lines of _schema.sql.
inline std::vector<std::string> SchemaStatements() {
  std::vector<std::string> out;
  std::istringstream in(ReadTextFile(GoldenDir() + "/_schema.sql"));
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() && (line.back() == '\r' || line.back() == ' ')) {
      line.pop_back();
    }
    if (line.empty() || line.rfind("--", 0) == 0) continue;
    out.push_back(line);
  }
  return out;
}

inline std::vector<GoldenCase> LoadGoldenCases() {
  namespace fs = std::filesystem;
  std::vector<GoldenCase> cases;
  for (const auto& entry : fs::directory_iterator(GoldenDir())) {
    if (!entry.is_regular_file()) continue;
    fs::path p = entry.path();
    if (p.extension() != ".sql" || p.stem() == "_schema") continue;
    GoldenCase c;
    c.name = p.stem().string();
    c.sql = ReadTextFile(p.string());
    // Trim trailing whitespace/newlines from the statement.
    while (!c.sql.empty() &&
           (c.sql.back() == '\n' || c.sql.back() == '\r' ||
            c.sql.back() == ' ')) {
      c.sql.pop_back();
    }
    c.expected_path = (p.parent_path() / (c.name + ".expected")).string();
    if (fs::exists(c.expected_path)) {
      c.expected = ReadTextFile(c.expected_path);
    }
    cases.push_back(std::move(c));
  }
  std::sort(cases.begin(), cases.end(),
            [](const GoldenCase& a, const GoldenCase& b) {
              return a.name < b.name;
            });
  return cases;
}

/// Canonical .expected rendering: translations joined by newlines.
inline std::string JoinTranslations(const std::vector<std::string>& sqls) {
  std::string out;
  for (const std::string& s : sqls) {
    out += s;
    out += '\n';
  }
  return out;
}

}  // namespace hyperq::golden
