// TPC-H end-to-end validation: all 22 Teradata-dialect queries must
// translate and execute on vdb at a small scale factor.

#include <gtest/gtest.h>

#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/tpch.h"

namespace hyperq {
namespace {

class TpchTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    engine_ = new vdb::Engine();
    service_ = new service::HyperQService(engine_);
    auto sid = service_->OpenSession("tpch");
    ASSERT_TRUE(sid.ok());
    sid_ = *sid;
    Status load = workload::LoadTpch(service_, sid_, engine_,
                                     {/*scale_factor=*/0.002, 42});
    ASSERT_TRUE(load.ok()) << load;
  }
  static void TearDownTestSuite() {
    delete service_;
    delete engine_;
    service_ = nullptr;
    engine_ = nullptr;
  }

  static vdb::Engine* engine_;
  static service::HyperQService* service_;
  static uint32_t sid_;
};

vdb::Engine* TpchTest::engine_ = nullptr;
service::HyperQService* TpchTest::service_ = nullptr;
uint32_t TpchTest::sid_ = 0;

class TpchQueryTest : public TpchTest,
                      public ::testing::WithParamInterface<int> {};

TEST_P(TpchQueryTest, TranslatesAndExecutes) {
  int q = GetParam();
  const std::string& sql = workload::TpchQueries()[q];
  auto outcome = service_->Submit(sid_, sql);
  ASSERT_TRUE(outcome.ok()) << "Q" << (q + 1) << ": " << outcome.status();
  ASSERT_TRUE(outcome->result.is_rowset()) << "Q" << (q + 1);
  auto rows = outcome->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  // Queries with aggregates over the whole table always return rows; the
  // highly selective ones may legitimately return zero at tiny scale.
  if (q == 0 || q == 5 || q == 13) {
    EXPECT_FALSE(rows->empty()) << "Q" << (q + 1);
  }
}

INSTANTIATE_TEST_SUITE_P(All22, TpchQueryTest, ::testing::Range(0, 22),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "Q" + std::to_string(info.param + 1);
                         });

TEST_F(TpchTest, Q1AggregatesAreConsistent) {
  auto outcome = service_->Submit(sid_, workload::TpchQueries()[0]);
  ASSERT_TRUE(outcome.ok()) << outcome.status();
  auto rows = outcome->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_FALSE(rows->empty());
  int64_t total_count = 0;
  for (const auto& row : *rows) {
    // count_order is the last column; avg_qty * count ~= sum_qty.
    const Datum& count = row.back();
    ASSERT_TRUE(count.is_int());
    total_count += count.int_val();
    double sum_qty = row[2].AsDouble();
    double avg_qty = row[6].AsDouble();
    EXPECT_NEAR(avg_qty * count.int_val(), sum_qty, 1.0);
  }
  EXPECT_GT(total_count, 0);
}

}  // namespace
}  // namespace hyperq
