// Frontend module tests: the token-level Translation-class feature scanner
// and Figure-4-style AST dumps for constructs beyond the golden example.

#include <gtest/gtest.h>

#include "frontend/ast_printer.h"
#include "frontend/feature_scan.h"
#include "sql/parser.h"

namespace hyperq::frontend {
namespace {

FeatureSet Scan(const std::string& sql) {
  FeatureSet fs;
  EXPECT_TRUE(ScanTranslationFeatures(sql, &fs).ok());
  return fs;
}

TEST(FeatureScanTest, AbbreviationsOnlyAtStatementStart) {
  EXPECT_TRUE(Scan("SEL a FROM t").Has(Feature::kSelAbbrev));
  EXPECT_TRUE(Scan("x; INS INTO t VALUES (1)").Has(Feature::kInsAbbrev));
  EXPECT_TRUE(Scan("UPD t SET a = 1").Has(Feature::kUpdAbbrev));
  EXPECT_TRUE(Scan("DEL FROM t").Has(Feature::kDelAbbrev));
  // A column named SEL mid-statement is not the abbreviation.
  EXPECT_FALSE(Scan("SELECT sel FROM t").Has(Feature::kSelAbbrev));
  EXPECT_FALSE(Scan("SELECT a FROM t").Has(Feature::kSelAbbrev));
}

TEST(FeatureScanTest, FunctionRenamesNeedCallSyntax) {
  EXPECT_TRUE(Scan("SELECT CHARS(n) FROM t").Has(Feature::kBuiltinRename));
  EXPECT_TRUE(Scan("SELECT INDEX(n, 'x') FROM t")
                  .Has(Feature::kBuiltinRename));
  // A column merely named CHARS does not count.
  EXPECT_FALSE(Scan("SELECT chars FROM t").Has(Feature::kBuiltinRename));
  EXPECT_TRUE(Scan("SELECT ZEROIFNULL(a) FROM t").Has(Feature::kNullFuncs));
}

TEST(FeatureScanTest, TopAndCollectAndTxn) {
  EXPECT_TRUE(Scan("SELECT TOP 10 a FROM t").Has(Feature::kTopToLimit));
  EXPECT_FALSE(Scan("SELECT top FROM t").Has(Feature::kTopToLimit));
  EXPECT_TRUE(Scan("COLLECT STATISTICS ON t COLUMN a")
                  .Has(Feature::kStatsElimination));
  EXPECT_TRUE(Scan("BT").Has(Feature::kTxnShorthand));
  EXPECT_TRUE(Scan("SELECT 1; ET").Has(Feature::kTxnShorthand));
  EXPECT_FALSE(Scan("SELECT bt FROM t").Has(Feature::kTxnShorthand));
}

std::string Dump(const std::string& sql) {
  auto stmt = sql::ParseStatement(sql, sql::Dialect::Teradata());
  EXPECT_TRUE(stmt.ok()) << stmt.status();
  return stmt.ok() ? AstToTreeString(**stmt) : "";
}

TEST(AstPrinterTest, SelectListAndClauses) {
  std::string dump = Dump("SEL a AS x, b FROM t WHERE a > 1 GROUP BY b "
                          "HAVING COUNT(*) > 2");
  EXPECT_NE(dump.find("ansi_selectlist"), std::string::npos);
  EXPECT_NE(dump.find("ansi_as(X)"), std::string::npos);
  EXPECT_NE(dump.find("ansi_get(T)"), std::string::npos);
  EXPECT_NE(dump.find("ansi_groupby"), std::string::npos);
  EXPECT_NE(dump.find("ansi_having"), std::string::npos);
  EXPECT_NE(dump.find("ansi_func(COUNT)"), std::string::npos);
}

TEST(AstPrinterTest, VendorNodesAreTagged) {
  std::string dump =
      Dump("SEL TOP 3 a FROM t QUALIFY RANK(a DESC) <= 3");
  EXPECT_NE(dump.find("td_top(3)"), std::string::npos);
  EXPECT_NE(dump.find("td_qualify"), std::string::npos);
  EXPECT_NE(dump.find("td_rank(A, DESC)"), std::string::npos);
  EXPECT_NE(dump.find("td_ident(A)"), std::string::npos);
}

TEST(AstPrinterTest, RecursiveWithIsVendorTagged) {
  std::string dump = Dump(
      "WITH RECURSIVE r (n) AS (SEL a FROM t UNION ALL SEL n FROM r) "
      "SEL n FROM r");
  EXPECT_NE(dump.find("td_with_recursive"), std::string::npos);
  EXPECT_NE(dump.find("ansi_cte(R)"), std::string::npos);
  EXPECT_NE(dump.find("ansi_setop(UNION ALL)"), std::string::npos);
}

TEST(AstPrinterTest, JoinsAndDerivedTables) {
  std::string dump = Dump(
      "SEL x.a FROM (SEL a FROM t) x LEFT OUTER JOIN u ON x.a = u.a");
  EXPECT_NE(dump.find("ansi_join(LEFT)"), std::string::npos);
  EXPECT_NE(dump.find("ansi_derived(X)"), std::string::npos);
  EXPECT_NE(dump.find("ansi_cmp(EQ)"), std::string::npos);
}

TEST(AstPrinterTest, TrivialScanElision) {
  // SELECT * FROM single-table subqueries collapse to ansi_get (Figure 4
  // renders the paper's subquery as a bare get node).
  std::string dump =
      Dump("SEL a FROM t WHERE a IN (SEL * FROM u)");
  EXPECT_NE(dump.find("ansi_in"), std::string::npos);
  EXPECT_NE(dump.find("ansi_get(U)"), std::string::npos);
  EXPECT_EQ(dump.find("ansi_select\n| +-ansi_get(U)"), std::string::npos);
}

}  // namespace
}  // namespace hyperq::frontend
