// Target-engine (vdb) semantics tests: the ANSI surface Hyper-Q's
// serializer emits must behave like a real warehouse.

#include <gtest/gtest.h>

#include "vdb/engine.h"

namespace hyperq::vdb {
namespace {

class VdbTest : public ::testing::Test {
 protected:
  QueryResult Must(const std::string& sql) {
    auto r = engine_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    QueryResult result = r.ok() ? std::move(r).value() : QueryResult{};
    // These tests assert on datum rows; rowsets now arrive as columnar
    // chunks (DESIGN.md §15), so materialize via the row shim.
    result.EnsureRows();
    return result;
  }
  Status Fails(const std::string& sql) {
    auto r = engine_.Execute(sql);
    EXPECT_FALSE(r.ok()) << sql;
    return r.ok() ? Status::OK() : r.status();
  }
  Engine engine_;
};

TEST_F(VdbTest, CreateInsertSelect) {
  Must("CREATE TABLE t (a INTEGER, b VARCHAR(10))");
  Must("INSERT INTO t VALUES (1, 'x'), (2, 'y')");
  auto r = Must("SELECT a, b FROM t ORDER BY a DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_val(), 2);
  EXPECT_EQ(r.columns[0].name, "A");  // vdb folds names to upper
}

TEST_F(VdbTest, DuplicateTableRejected) {
  Must("CREATE TABLE t (a INTEGER)");
  Fails("CREATE TABLE t (a INTEGER)");
}

TEST_F(VdbTest, NotNullEnforced) {
  Must("CREATE TABLE t (a INTEGER NOT NULL)");
  Fails("INSERT INTO t VALUES (NULL)");
}

TEST_F(VdbTest, UpdateAndDelete) {
  Must("CREATE TABLE t (a INTEGER, b INTEGER)");
  Must("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  auto u = Must("UPDATE t SET b = b + 1 WHERE a >= 2");
  EXPECT_EQ(u.affected_rows, 2);
  auto d = Must("DELETE FROM t WHERE b = 21");
  EXPECT_EQ(d.affected_rows, 1);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").rows[0][0].int_val(), 2);
}

TEST_F(VdbTest, ThreeValuedLogic) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (NULL), (3)");
  // NULL comparisons drop rows in WHERE.
  EXPECT_EQ(Must("SELECT a FROM t WHERE a > 0").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT a FROM t WHERE NOT (a > 0)").rows.size(), 0u);
  EXPECT_EQ(Must("SELECT a FROM t WHERE a IS NULL").rows.size(), 1u);
  // Aggregates skip NULLs; COUNT(*) does not.
  auto r = Must("SELECT COUNT(*), COUNT(a), SUM(a) FROM t");
  EXPECT_EQ(r.rows[0][0].int_val(), 3);
  EXPECT_EQ(r.rows[0][1].int_val(), 2);
  EXPECT_EQ(r.rows[0][2].int_val(), 4);
}

TEST_F(VdbTest, GlobalAggregateOverEmptyInput) {
  Must("CREATE TABLE t (a INTEGER)");
  auto r = Must("SELECT COUNT(*), SUM(a), MIN(a) FROM t");
  EXPECT_EQ(r.rows[0][0].int_val(), 0);
  EXPECT_TRUE(r.rows[0][1].is_null());
  EXPECT_TRUE(r.rows[0][2].is_null());
  // Grouped aggregate over empty input returns no rows.
  EXPECT_EQ(Must("SELECT a, COUNT(*) FROM t GROUP BY a").rows.size(), 0u);
}

TEST_F(VdbTest, GroupByWithHaving) {
  Must("CREATE TABLE t (g INTEGER, v INTEGER)");
  Must("INSERT INTO t VALUES (1, 5), (1, 7), (2, 1), (2, 2), (3, 100)");
  auto r = Must(
      "SELECT g, SUM(v) AS total FROM t GROUP BY g HAVING SUM(v) > 3 "
      "ORDER BY total DESC");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_val(), 3);
  EXPECT_EQ(r.rows[1][1].int_val(), 12);
}

TEST_F(VdbTest, DistinctAggregates) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (1), (2), (2), (3)");
  auto r = Must("SELECT COUNT(DISTINCT a), SUM(DISTINCT a) FROM t");
  EXPECT_EQ(r.rows[0][0].int_val(), 3);
  EXPECT_EQ(r.rows[0][1].int_val(), 6);
}

TEST_F(VdbTest, JoinFamily) {
  Must("CREATE TABLE l (k INTEGER, lv VARCHAR(4))");
  Must("CREATE TABLE r (k INTEGER, rv VARCHAR(4))");
  Must("INSERT INTO l VALUES (1, 'a'), (2, 'b'), (3, 'c')");
  Must("INSERT INTO r VALUES (2, 'x'), (3, 'y'), (4, 'z')");
  EXPECT_EQ(Must("SELECT * FROM l INNER JOIN r ON l.k = r.k").rows.size(),
            2u);
  auto left = Must(
      "SELECT l.k, rv FROM l LEFT JOIN r ON l.k = r.k ORDER BY l.k");
  ASSERT_EQ(left.rows.size(), 3u);
  EXPECT_TRUE(left.rows[0][1].is_null());  // k=1 unmatched
  auto right = Must(
      "SELECT lv, r.k FROM l RIGHT JOIN r ON l.k = r.k ORDER BY r.k");
  ASSERT_EQ(right.rows.size(), 3u);
  EXPECT_TRUE(right.rows[2][0].is_null());  // k=4 unmatched
  EXPECT_EQ(Must("SELECT * FROM l FULL JOIN r ON l.k = r.k").rows.size(),
            4u);
  EXPECT_EQ(Must("SELECT * FROM l CROSS JOIN r").rows.size(), 9u);
}

TEST_F(VdbTest, NullJoinKeysNeverMatch) {
  Must("CREATE TABLE l (k INTEGER)");
  Must("CREATE TABLE r (k INTEGER)");
  Must("INSERT INTO l VALUES (NULL), (1)");
  Must("INSERT INTO r VALUES (NULL), (1)");
  EXPECT_EQ(Must("SELECT * FROM l INNER JOIN r ON l.k = r.k").rows.size(),
            1u);
  // FULL JOIN keeps both null-key rows unmatched.
  EXPECT_EQ(Must("SELECT * FROM l FULL JOIN r ON l.k = r.k").rows.size(),
            3u);
}

TEST_F(VdbTest, SetOperations) {
  Must("CREATE TABLE a (x INTEGER)");
  Must("CREATE TABLE b (x INTEGER)");
  Must("INSERT INTO a VALUES (1), (2), (2), (3)");
  Must("INSERT INTO b VALUES (2), (3), (4)");
  EXPECT_EQ(Must("(SELECT x FROM a) UNION ALL (SELECT x FROM b)")
                .rows.size(),
            7u);
  EXPECT_EQ(Must("(SELECT x FROM a) UNION (SELECT x FROM b)").rows.size(),
            4u);
  EXPECT_EQ(Must("(SELECT x FROM a) INTERSECT (SELECT x FROM b)")
                .rows.size(),
            2u);
  EXPECT_EQ(Must("(SELECT x FROM a) EXCEPT (SELECT x FROM b)").rows.size(),
            1u);
}

TEST_F(VdbTest, OrderByNullsPlacement) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (2), (NULL), (1)");
  // vdb default: NULLs sort high (last ascending).
  auto dflt = Must("SELECT a FROM t ORDER BY a");
  EXPECT_TRUE(dflt.rows[2][0].is_null());
  auto first = Must("SELECT a FROM t ORDER BY a NULLS FIRST");
  EXPECT_TRUE(first.rows[0][0].is_null());
  auto desc_last = Must("SELECT a FROM t ORDER BY a DESC NULLS LAST");
  EXPECT_TRUE(desc_last.rows[2][0].is_null());
  EXPECT_EQ(desc_last.rows[0][0].int_val(), 2);
}

TEST_F(VdbTest, WindowFunctions) {
  Must("CREATE TABLE t (g INTEGER, v INTEGER)");
  Must("INSERT INTO t VALUES (1, 10), (1, 20), (1, 20), (2, 5)");
  auto r = Must(
      "SELECT g, v, RANK() OVER (PARTITION BY g ORDER BY v DESC) AS rnk, "
      "ROW_NUMBER() OVER (PARTITION BY g ORDER BY v DESC) AS rn, "
      "SUM(v) OVER (PARTITION BY g) AS total FROM t ORDER BY g, v DESC, rn");
  ASSERT_EQ(r.rows.size(), 4u);
  // Group 1: ties at v=20 share rank 1; next rank is 3.
  EXPECT_EQ(r.rows[0][2].int_val(), 1);
  EXPECT_EQ(r.rows[1][2].int_val(), 1);
  EXPECT_EQ(r.rows[2][2].int_val(), 3);
  EXPECT_EQ(r.rows[0][4].int_val(), 50);
  EXPECT_EQ(r.rows[3][4].int_val(), 5);
  // Row numbers are unique within the partition.
  EXPECT_NE(r.rows[0][3].int_val(), r.rows[1][3].int_val());
}

TEST_F(VdbTest, RunningWindowAggregate) {
  Must("CREATE TABLE t (v INTEGER)");
  Must("INSERT INTO t VALUES (1), (2), (3)");
  auto r = Must(
      "SELECT v, SUM(v) OVER (ORDER BY v) AS run FROM t ORDER BY v");
  EXPECT_EQ(r.rows[0][1].int_val(), 1);
  EXPECT_EQ(r.rows[1][1].int_val(), 3);
  EXPECT_EQ(r.rows[2][1].int_val(), 6);
}

TEST_F(VdbTest, CorrelatedSubqueries) {
  Must("CREATE TABLE emp (id INTEGER, dept INTEGER, sal INTEGER)");
  Must("INSERT INTO emp VALUES (1, 10, 100), (2, 10, 200), (3, 20, 50)");
  auto r = Must(
      "SELECT id FROM emp e WHERE sal = (SELECT MAX(sal) FROM emp e2 "
      "WHERE e2.dept = e.dept) ORDER BY id");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_val(), 2);
  EXPECT_EQ(r.rows[1][0].int_val(), 3);
  EXPECT_EQ(Must("SELECT id FROM emp WHERE EXISTS (SELECT 1 FROM emp e2 "
                 "WHERE e2.sal > emp.sal)")
                .rows.size(),
            2u);
  EXPECT_EQ(Must("SELECT id FROM emp WHERE dept IN (SELECT dept FROM emp "
                 "WHERE sal > 150)")
                .rows.size(),
            2u);
}

TEST_F(VdbTest, ScalarSubqueryCardinalityError) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (2)");
  Fails("SELECT (SELECT a FROM t) FROM t");
}

TEST_F(VdbTest, InListNullSemantics) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (4)");
  // 4 NOT IN (1, NULL) is UNKNOWN, so only... nothing passes for 4.
  auto r = Must("SELECT a FROM t WHERE a NOT IN (1, NULL)");
  EXPECT_EQ(r.rows.size(), 0u);
  EXPECT_EQ(Must("SELECT a FROM t WHERE a IN (1, NULL)").rows.size(), 1u);
}

TEST_F(VdbTest, LikePatterns) {
  Must("CREATE TABLE t (s VARCHAR(20))");
  Must("INSERT INTO t VALUES ('hello'), ('help'), ('shell'), ('h_llo')");
  EXPECT_EQ(Must("SELECT s FROM t WHERE s LIKE 'hel%'").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT s FROM t WHERE s LIKE '%ell%'").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT s FROM t WHERE s LIKE 'h_llo'").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT s FROM t WHERE s LIKE 'h!_llo' ESCAPE '!'")
                .rows.size(),
            1u);
  EXPECT_EQ(Must("SELECT s FROM t WHERE s NOT LIKE '%l%'").rows.size(), 0u);
}

TEST_F(VdbTest, StringFunctions) {
  auto r = Must(
      "SELECT LENGTH('abc  '), UPPER('mIx'), LOWER('mIx'), "
      "SUBSTR('abcdef', 2, 3), POSITION('cd', 'abcdef'), "
      "TRIM('  pad  '), COALESCE(NULL, 'x'), NULLIF(1, 1)");
  EXPECT_EQ(r.rows[0][0].int_val(), 3);  // CHAR semantics: blanks ignored
  EXPECT_EQ(r.rows[0][1].string_val(), "MIX");
  EXPECT_EQ(r.rows[0][2].string_val(), "mix");
  EXPECT_EQ(r.rows[0][3].string_val(), "bcd");
  EXPECT_EQ(r.rows[0][4].int_val(), 3);
  EXPECT_EQ(r.rows[0][5].string_val(), "pad");
  EXPECT_EQ(r.rows[0][6].string_val(), "x");
  EXPECT_TRUE(r.rows[0][7].is_null());
}

TEST_F(VdbTest, DateFunctions) {
  auto r = Must(
      "SELECT EXTRACT(YEAR FROM DATE '2014-06-15'), "
      "DATE_ADD_DAYS(DATE '2014-01-01', 31), "
      "DATE_DIFF_DAYS(DATE '2014-02-01', DATE '2014-01-01'), "
      "ADD_MONTHS(DATE '2014-01-31', 1)");
  EXPECT_EQ(r.rows[0][0].int_val(), 2014);
  EXPECT_EQ(r.rows[0][1].ToString(), "2014-02-01");
  EXPECT_EQ(r.rows[0][2].int_val(), 31);
  EXPECT_EQ(r.rows[0][3].ToString(), "2014-02-28");
}

TEST_F(VdbTest, ArithmeticErrors) {
  Fails("SELECT 1 / 0");
  Fails("SELECT MOD(5, 0)");
  Fails("SELECT LN(0.0)");
}

TEST_F(VdbTest, DecimalAggregationStaysExact) {
  Must("CREATE TABLE t (v DECIMAL(10,2))");
  Must("INSERT INTO t VALUES (0.10), (0.20), (0.30)");
  auto r = Must("SELECT SUM(v) FROM t");
  EXPECT_EQ(r.rows[0][0].decimal_val().ToString(), "0.60");
}

TEST_F(VdbTest, CaseExpression) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (5), (NULL)");
  auto r = Must(
      "SELECT CASE WHEN a < 3 THEN 'small' WHEN a IS NULL THEN 'none' "
      "ELSE 'big' END FROM t ORDER BY a NULLS LAST");
  EXPECT_EQ(r.rows[0][0].string_val(), "small");
  EXPECT_EQ(r.rows[1][0].string_val(), "big");
  EXPECT_EQ(r.rows[2][0].string_val(), "none");
}

TEST_F(VdbTest, DistinctSelect) {
  Must("CREATE TABLE t (a INTEGER, b INTEGER)");
  Must("INSERT INTO t VALUES (1, 1), (1, 1), (1, 2)");
  EXPECT_EQ(Must("SELECT DISTINCT a, b FROM t").rows.size(), 2u);
  EXPECT_EQ(Must("SELECT DISTINCT a FROM t").rows.size(), 1u);
}

TEST_F(VdbTest, LimitAndDerivedTables) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (5), (3), (9), (1)");
  auto r = Must(
      "SELECT a FROM (SELECT a FROM t ORDER BY a DESC LIMIT 2) d ORDER BY "
      "a");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].int_val(), 5);
}

TEST_F(VdbTest, InsertSelectAndSelfRead) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (1), (2)");
  // Self-referential INSERT ... SELECT reads a snapshot.
  auto r = Must("INSERT INTO t SELECT a + 10 FROM t");
  EXPECT_EQ(r.affected_rows, 2);
  EXPECT_EQ(Must("SELECT COUNT(*) FROM t").rows[0][0].int_val(), 4);
}

TEST_F(VdbTest, RecursionRejectedNatively) {
  Must("CREATE TABLE t (a INTEGER)");
  Status s = Fails(
      "WITH RECURSIVE r (a) AS (SELECT a FROM t UNION ALL SELECT a FROM r) "
      "SELECT * FROM r");
  // The ANSI dialect parser refuses RECURSIVE — that is exactly the gap
  // Hyper-Q's emulation closes.
  EXPECT_TRUE(s.IsSyntaxError()) << s;
}

TEST_F(VdbTest, UnknownColumnAndTableErrors) {
  Must("CREATE TABLE t (a INTEGER)");
  EXPECT_TRUE(Fails("SELECT nope FROM t").IsBindError());
  EXPECT_TRUE(Fails("SELECT a FROM missing").IsCatalogError());
  EXPECT_TRUE(Fails("SELECT a FROM t WHERE FROB(a) = 1").IsBindError());
}

TEST_F(VdbTest, AmbiguousColumnRejected) {
  Must("CREATE TABLE x (k INTEGER)");
  Must("CREATE TABLE y (k INTEGER)");
  EXPECT_TRUE(Fails("SELECT k FROM x, y WHERE x.k = y.k").IsBindError());
}

// Parameterized sweep: ORDER BY direction x NULLS placement over the same
// data must produce the expected first element.
struct OrderCase {
  const char* order;
  const char* first;  // expected first value rendered
};

class VdbOrderSweep : public VdbTest,
                      public ::testing::WithParamInterface<OrderCase> {};

TEST_P(VdbOrderSweep, FirstRow) {
  Must("CREATE TABLE t (a INTEGER)");
  Must("INSERT INTO t VALUES (2), (NULL), (1), (3)");
  auto r = Must(std::string("SELECT a FROM t ORDER BY a ") +
                GetParam().order);
  ASSERT_EQ(r.rows.size(), 4u);
  EXPECT_EQ(r.rows[0][0].ToString(), GetParam().first);
}

INSTANTIATE_TEST_SUITE_P(
    Orders, VdbOrderSweep,
    ::testing::Values(OrderCase{"", "1"},
                      // NULLs sort high by default: DESC puts them first.
                      OrderCase{"DESC", "NULL"},
                      OrderCase{"NULLS FIRST", "NULL"},
                      OrderCase{"DESC NULLS FIRST", "NULL"},
                      OrderCase{"DESC NULLS LAST", "3"},
                      OrderCase{"NULLS LAST", "1"}));

}  // namespace
}  // namespace hyperq::vdb
