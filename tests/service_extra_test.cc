// Additional service-layer coverage: script submission with single-row DML
// batching (paper §4.3), session-scoped volatile tables, CREATE TABLE AS,
// statistics aggregation, and error surfaces.

#include <gtest/gtest.h>

#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

class ServiceExtraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ = std::make_unique<service::HyperQService>(&engine_);
    auto sid = service_->OpenSession("x");
    ASSERT_TRUE(sid.ok());
    sid_ = *sid;
  }

  service::QueryOutcome Must(const std::string& sql) {
    auto r = service_->Submit(sid_, sql);
    EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
    return r.ok() ? std::move(r).value() : service::QueryOutcome{};
  }

  vdb::Engine engine_;
  std::unique_ptr<service::HyperQService> service_;
  uint32_t sid_ = 0;
};

TEST_F(ServiceExtraTest, ScriptBatchesSingleRowInserts) {
  Must("CREATE TABLE T (A INTEGER, B VARCHAR(8))");
  int64_t before = engine_.statements_executed();
  auto out = service_->SubmitScript(sid_,
                                    "INS INTO T VALUES (1, 'a');"
                                    "INS INTO T VALUES (2, 'b');"
                                    "INS INTO T VALUES (3, 'c');"
                                    "SEL COUNT(*) FROM T;");
  ASSERT_TRUE(out.ok()) << out.status();
  // The paper's §4.3 performance transformation: three contiguous
  // single-row INSERTs reach the target as ONE multi-row statement.
  EXPECT_EQ(engine_.statements_executed() - before, 2);
  auto rows = out->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ((*rows)[0][0].int_val(), 3);
}

TEST_F(ServiceExtraTest, ScriptBatchingStopsAtDifferentTables) {
  Must("CREATE TABLE T1 (A INTEGER)");
  Must("CREATE TABLE T2 (A INTEGER)");
  int64_t before = engine_.statements_executed();
  auto out = service_->SubmitScript(sid_,
                                    "INS INTO T1 VALUES (1);"
                                    "INS INTO T2 VALUES (2);"
                                    "INS INTO T1 VALUES (3)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(engine_.statements_executed() - before, 3);  // no merge
}

TEST_F(ServiceExtraTest, VolatileTablesDropOnLogoff) {
  Must("CREATE VOLATILE TABLE SCRATCH (A INTEGER)");
  Must("INS INTO SCRATCH VALUES (1)");
  EXPECT_TRUE(engine_.storage()->HasTable("SCRATCH"));
  service_->CloseSession(sid_);
  EXPECT_FALSE(engine_.storage()->HasTable("SCRATCH"));
  EXPECT_FALSE(service_->catalog()->HasTable("SCRATCH"));
  // Session gone: further submits fail cleanly.
  EXPECT_FALSE(service_->Submit(sid_, "SEL 1").ok());
}

TEST_F(ServiceExtraTest, CreateTableAsSelect) {
  Must("CREATE TABLE SRC (A INTEGER, B VARCHAR(8))");
  Must("INS INTO SRC VALUES (1, 'x')");
  Must("INS INTO SRC VALUES (2, 'y')");
  auto out = Must("CREATE TABLE DST AS (SEL A, B FROM SRC WHERE A > 1) "
                  "WITH DATA");
  EXPECT_EQ(out.backend_sql.size(), 2u);  // CREATE + INSERT...SELECT
  auto rows = Must("SEL A FROM DST").result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_EQ((*rows)[0][0].int_val(), 2);
  auto empty = Must("CREATE TABLE DST2 AS (SEL A FROM SRC) WITH NO DATA");
  EXPECT_EQ(Must("SEL COUNT(*) FROM DST2")
                .result.DecodeRows()
                ->at(0)[0]
                .int_val(),
            0);
}

TEST_F(ServiceExtraTest, StatsAggregatePerQueryFeatures) {
  service_->ResetStats();
  Must("CREATE TABLE T (A INTEGER, D DATE)");
  Must("SEL TOP 1 A FROM T ORDER BY A");        // translation (TOP)
  Must("SEL A FROM T WHERE D > 1140101");        // transformation
  Must("HELP SESSION");                          // emulation
  Must("SEL A FROM T");                          // plain
  auto stats = service_->stats();
  EXPECT_EQ(stats.total_queries, 5);  // incl. the CREATE
  EXPECT_GT(stats.class_query_counts[0], 0);
  EXPECT_GT(stats.class_query_counts[1], 0);
  EXPECT_GT(stats.class_query_counts[2], 0);
}

TEST_F(ServiceExtraTest, ErrorSurfacesKeepSessionUsable) {
  EXPECT_FALSE(service_->Submit(sid_, "SEL FROM WHERE").ok());
  EXPECT_FALSE(service_->Submit(sid_, "SEL * FROM MISSING").ok());
  EXPECT_FALSE(service_->Submit(sid_, "EXEC NO_SUCH_MACRO").ok());
  // The session survives every failure.
  auto ok = service_->Submit(sid_, "SEL 1 + 1 AS X");
  EXPECT_TRUE(ok.ok()) << ok.status();
}

TEST_F(ServiceExtraTest, ColumnDefaultsFilledInMidTier) {
  Must("CREATE TABLE T (A INTEGER, D DATE DEFAULT CURRENT_DATE, N INTEGER "
       "DEFAULT 7)");
  auto out = Must("INS INTO T (A) VALUES (1)");
  EXPECT_TRUE(out.features.Has(Feature::kColumnProperties));
  auto rows = Must("SEL A, D, N FROM T").result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 1u);
  EXPECT_FALSE((*rows)[0][1].is_null());  // CURRENT_DATE evaluated mid-tier
  EXPECT_EQ((*rows)[0][2].int_val(), 7);
}

TEST_F(ServiceExtraTest, CaseInsensitiveColumnComparison) {
  Must("CREATE TABLE P (NAME VARCHAR(20) NOT CASESPECIFIC)");
  Must("INS INTO P VALUES ('Alice')");
  auto out = Must("SEL NAME FROM P WHERE NAME = 'ALICE'");
  EXPECT_TRUE(out.features.Has(Feature::kColumnProperties));
  auto rows = out.result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // matched despite differing case
}

TEST_F(ServiceExtraTest, TranslationForwardsBtEtAsZeroStatements) {
  int64_t before = engine_.statements_executed();
  Must("BT");
  Must("ET");
  EXPECT_EQ(engine_.statements_executed(), before);
}

}  // namespace
}  // namespace hyperq
