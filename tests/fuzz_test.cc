// Differential fuzzer suite (ctest label `fuzz`, DESIGN.md §12): generator
// determinism and acceptance rate, the fixed-seed 500-query smoke campaign
// across every registered dialect (zero mismatches is the tier-1 bar), the
// delta-debugging reducer on a planted mismatch, golden-corpus append
// mechanics, and the 22 TPC-H shapes executing equivalently on all
// dialects.

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "chaos/auditor.h"
#include "fuzz/campaign.h"
#include "fuzz/differential.h"
#include "fuzz/query_gen.h"
#include "fuzz/reducer.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"
#include "serializer/dialect.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/tpch.h"

namespace hyperq {
namespace {

constexpr uint64_t kSmokeSeed = 20260809;

TEST(QueryGenTest, SameSeedSameQueries) {
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(fuzz::GenerateQuery(kSmokeSeed, i).ToSql(),
              fuzz::GenerateQuery(kSmokeSeed, i).ToSql());
  }
}

TEST(QueryGenTest, DifferentSeedsDiverge) {
  int distinct = 0;
  for (uint64_t i = 0; i < 20; ++i) {
    if (fuzz::GenerateQuery(1, i).ToSql() != fuzz::GenerateQuery(2, i).ToSql())
      ++distinct;
  }
  EXPECT_GE(distinct, 15);
}

TEST(QueryGenTest, StreamHasVariety) {
  std::set<std::string> texts;
  bool saw_join = false, saw_group = false, saw_setop = false,
       saw_subq = false, saw_top = false;
  for (uint64_t i = 0; i < 200; ++i) {
    fuzz::QuerySpec q = fuzz::GenerateQuery(3, i);
    std::string sql = q.ToSql();
    texts.insert(sql);
    saw_join = saw_join || !q.joins.empty();
    saw_group = saw_group || !q.group_by.empty();
    saw_setop = saw_setop || q.setop_right != nullptr;
    saw_subq = saw_subq || sql.find("(SEL ") != std::string::npos;
    saw_top = saw_top || q.top >= 0;
  }
  EXPECT_GE(texts.size(), 195u);  // near-zero duplicate shapes
  EXPECT_TRUE(saw_join);
  EXPECT_TRUE(saw_group);
  EXPECT_TRUE(saw_setop);
  EXPECT_TRUE(saw_subq);
  EXPECT_TRUE(saw_top);
}

TEST(QueryGenTest, CloneIsDeepAndCountsClauses) {
  for (uint64_t i = 0; i < 100; ++i) {
    fuzz::QuerySpec q = fuzz::GenerateQuery(4, i);
    fuzz::QuerySpec c = q.Clone();
    EXPECT_EQ(q.ToSql(), c.ToSql());
    EXPECT_EQ(q.ClauseCount(), c.ClauseCount());
    if (c.setop_right != nullptr) {
      EXPECT_NE(c.setop_right.get(), q.setop_right.get());
      c.setop_right->where.push_back("(1 = 0)");
      EXPECT_NE(q.ToSql(), c.ToSql()) << "clone shares setop_right";
    }
  }
}

TEST(DifferentialTest, CanonicalRowsNormalizeDoublesAndNulls) {
  vdb::QueryResult r;
  r.columns = {{"a", SqlType::Int()}, {"b", SqlType::Varchar(10)}};
  r.rows.push_back({Datum::MakeDouble(1.0000000001), Datum::Null()});
  r.rows.push_back({Datum::Int(2), Datum::String("x")});
  auto rows = fuzz::CanonicalRows(r);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], "1|<null>");
  EXPECT_EQ(rows[1], "2|x");
}

// The tier-1 smoke bar: 500 fixed-seed queries, every registered dialect,
// zero findings of any class and a high accept rate.
TEST(FuzzSmokeTest, FixedSeed500QueriesZeroMismatches) {
  fuzz::CampaignOptions opts;
  opts.seed = kSmokeSeed;
  opts.count = 500;
  opts.dialects = serializer::DialectNames();
  ASSERT_GE(opts.dialects.size(), 3u);
  fuzz::CampaignSummary s = fuzz::RunCampaign(opts);
  EXPECT_EQ(s.generated, 500);
  EXPECT_EQ(s.mismatched, 0) << s.ToJson();
  EXPECT_EQ(s.unreduced(), 0);
  // The grammar is weighted toward binder-accepted shapes: nearly every
  // query must survive translation AND execution on every dialect.
  EXPECT_GE(s.translated, 475) << s.ToJson();
  EXPECT_GE(s.executed, 475) << s.ToJson();
}

// A hand-built wide query with a mismatch planted into one dialect's SQL-B
// (an appended row limit): the reducer must strip the noise — joins, WHERE
// conjuncts, ORDER BY, surplus select items — down to a ≤3-clause repro
// that still mismatches.
TEST(ReducerTest, PlantedMismatchShrinksToMinimalRepro) {
  fuzz::HarnessOptions hopts;
  hopts.dialects = serializer::DialectNames();
  hopts.sql_b_override = [](const std::string& dialect,
                            const std::string& sql_b) {
    if (dialect == "sierra" && sql_b.rfind("SELECT", 0) == 0) {
      return sql_b + " LIMIT 1";
    }
    return sql_b;
  };
  fuzz::DifferentialHarness harness(hopts);

  fuzz::QuerySpec spec;
  spec.table = "FZ_T0";
  spec.alias = "A0";
  spec.joins.push_back({"LEFT JOIN", "FZ_T1", "A1", "A0.ID = A1.REF"});
  spec.select_items = {"A0.ID", "A0.GRP", "A1.NAME"};
  spec.where = {"(A0.ID >= 0)", "(A0.ID <= 1000)"};
  spec.order_by = {"A0.ID ASC"};
  const int initial = spec.ClauseCount();
  ASSERT_GE(initial, 6);

  auto outcome = harness.Run(spec.ToSql());
  ASSERT_EQ(outcome.cls, fuzz::OutcomeClass::kResultMismatch)
      << outcome.detail;

  fuzz::ReductionResult red =
      fuzz::ReduceQuery(spec, [&harness](const fuzz::QuerySpec& q) {
        return harness.Run(q.ToSql()).IsFinding();
      });
  EXPECT_TRUE(red.converged);
  EXPECT_EQ(red.initial_clauses, initial);
  EXPECT_LE(red.final_clauses, 3) << red.minimal.ToSql();
  EXPECT_TRUE(harness.Run(red.minimal.ToSql()).IsFinding())
      << "minimal repro no longer fails: " << red.minimal.ToSql();
}

// End-to-end campaign against a planted fault: findings are detected,
// reduced, and appended to a golden corpus directory with per-dialect
// .expected translations alongside the minimal .sql.
TEST(CampaignTest, PlantedFaultIsReducedAndAppendedToGolden) {
  namespace fs = std::filesystem;
  std::string dir = ::testing::TempDir() + "/fuzz_golden_append";
  fs::remove_all(dir);

  fuzz::CampaignOptions opts;
  opts.seed = 17;
  opts.count = 20;
  opts.dialects = serializer::DialectNames();
  opts.golden_append_dir = dir;
  opts.sql_b_override = [](const std::string& dialect,
                           const std::string& sql_b) {
    if (dialect == "granite" && sql_b.rfind("SELECT", 0) == 0 &&
        sql_b.find("FETCH FIRST") == std::string::npos) {
      return sql_b + " FETCH FIRST 1 ROWS ONLY";
    }
    return sql_b;
  };
  fuzz::CampaignSummary s = fuzz::RunCampaign(opts);
  ASSERT_GT(s.mismatched, 0);
  EXPECT_EQ(s.unreduced(), 0) << s.ToJson();
  for (const auto& m : s.mismatches) {
    EXPECT_TRUE(m.reduced);
    EXPECT_LE(m.reduced_clauses, 3) << m.reduced_sql;
    EXPECT_LE(m.reduced_clauses, m.original_clauses);
    ASSERT_FALSE(m.golden_path.empty());
    EXPECT_TRUE(fs::exists(m.golden_path)) << m.golden_path;
    // The per-dialect expected translations ride along.
    std::string base = fs::path(m.golden_path).stem().string();
    EXPECT_TRUE(fs::exists(dir + "/" + base + ".expected"));
    EXPECT_TRUE(fs::exists(dir + "/granite/" + base + ".expected"));
    EXPECT_TRUE(fs::exists(dir + "/sierra/" + base + ".expected"));
  }
  // The JSON summary round-trips the headline counters for
  // scripts/fuzz_nightly.sh.
  std::string json = s.ToJson();
  EXPECT_NE(json.find("\"mismatched\":" + std::to_string(s.mismatched)),
            std::string::npos);
  EXPECT_NE(json.find("\"unreduced\":0"), std::string::npos);
}

// A campaign against healthy dialects must be silent even with the
// override hook installed as identity.
TEST(CampaignTest, IdentityOverrideFindsNothing) {
  fuzz::CampaignOptions opts;
  opts.seed = 5;
  opts.count = 50;
  opts.sql_b_override = [](const std::string&, const std::string& sql_b) {
    return sql_b;
  };
  fuzz::CampaignSummary s = fuzz::RunCampaign(opts);
  EXPECT_EQ(s.mismatched, 0) << s.ToJson();
}

// Acceptance bar: all 22 TPC-H shapes translate and execute equivalently
// (canonical multiset) on every registered dialect.
TEST(FuzzTpchTest, All22QueriesEquivalentOnEveryDialect) {
  struct Target {
    std::string dialect;
    std::unique_ptr<vdb::Engine> engine;
    std::unique_ptr<service::HyperQService> service;
    uint32_t session;
  };
  std::vector<Target> targets;
  workload::TpchOptions load;
  load.scale_factor = 0.005;
  for (const auto& name : serializer::DialectNames()) {
    Target t;
    t.dialect = name;
    t.engine = std::make_unique<vdb::Engine>();
    service::ServiceOptions opts;
    opts.profile = serializer::FindDialect(name)->Profile();
    opts.tracing = false;
    t.service =
        std::make_unique<service::HyperQService>(t.engine.get(), opts);
    auto sid = t.service->OpenSession("tpch");
    ASSERT_TRUE(sid.ok()) << sid.status();
    t.session = *sid;
    ASSERT_TRUE(
        workload::LoadTpch(t.service.get(), t.session, t.engine.get(), load)
            .ok());
    targets.push_back(std::move(t));
  }

  const auto& queries = workload::TpchQueries();
  ASSERT_EQ(queries.size(), 22u);
  for (size_t q = 0; q < queries.size(); ++q) {
    std::vector<std::string> baseline;
    for (auto& t : targets) {
      auto sql_b = t.service->Translate(queries[q], nullptr);
      ASSERT_TRUE(sql_b.ok())
          << "Q" << q + 1 << " on " << t.dialect << ": " << sql_b.status();
      vdb::QueryResult last;
      for (const auto& stmt : *sql_b) {
        auto r = t.engine->Execute(stmt);
        ASSERT_TRUE(r.ok())
            << "Q" << q + 1 << " on " << t.dialect << ": " << r.status()
            << "\n" << stmt;
        last = std::move(r).value();
      }
      auto rows = fuzz::CanonicalRows(last);
      if (&t == &targets[0]) {
        baseline = rows;
        EXPECT_FALSE(baseline.empty() && q == 0) << "Q1 returned no rows";
      } else {
        EXPECT_EQ(rows, baseline)
            << "Q" << q + 1 << ": " << t.dialect << " diverges from "
            << targets[0].dialect;
      }
    }
  }
}

// --- Wire-frame robustness (DESIGN.md §13) -----------------------------------
// Malformed, truncated, and oversized frames thrown at a live server: every
// byte pattern must yield either a typed error frame or a clean close —
// never a crash, a wedged worker, or a leaked fd. Run under ASan by
// scripts/tier1.sh, so "no crash" includes "no heap error".

class WireFuzzFixture {
 public:
  WireFuzzFixture() : service_(&engine_, ServiceOpts()) {
    server_options_.frame_read_timeout_ms = 500;
    server_ = std::make_unique<protocol::TdwpServer>(&service_,
                                                     server_options_);
    start_ok_ = server_->Start(0).ok();
  }
  ~WireFuzzFixture() { server_->Stop(); }

  bool ok() const { return start_ok_; }
  uint16_t port() const { return server_->port(); }
  protocol::TdwpServer& server() { return *server_; }

  /// The liveness probe: after any garbage, a well-formed session must
  /// still work end to end.
  ::testing::AssertionResult StillServes() {
    protocol::TdwpClient client;
    if (!client.Connect(server_->port()).ok()) {
      return ::testing::AssertionFailure() << "connect failed";
    }
    if (!client.Logon("alice", "pw").ok()) {
      return ::testing::AssertionFailure() << "logon failed";
    }
    auto out = client.Run("SELECT 1");
    client.Goodbye();
    if (!out.ok()) {
      return ::testing::AssertionFailure() << out.status();
    }
    return ::testing::AssertionSuccess();
  }

 private:
  static service::ServiceOptions ServiceOpts() { return {}; }
  vdb::Engine engine_;
  service::HyperQService service_;
  protocol::TdwpServerOptions server_options_;
  std::unique_ptr<protocol::TdwpServer> server_;
  bool start_ok_ = false;
};

uint64_t FuzzMix(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

TEST(WireFuzzTest, GarbageBytesNeverCrashTheServer) {
  WireFuzzFixture fx;
  ASSERT_TRUE(fx.ok());
  uint64_t rng = kSmokeSeed;
  for (int round = 0; round < 24; ++round) {
    auto conn = protocol::Socket::ConnectLocal(fx.port());
    ASSERT_TRUE(conn.ok());
    uint8_t garbage[64];
    for (auto& b : garbage) {
      rng = FuzzMix(rng);
      b = static_cast<uint8_t>(rng);
    }
    // The write may legitimately fail (the server can close first).
    (void)conn->WriteAll(garbage, sizeof(garbage));
    // Drain whatever the server answers (error frame or EOF), then drop.
    uint8_t sink[256];
    (void)conn->SetRecvTimeoutMs(1000);
    (void)conn->ReadExactly(sink, 1);
  }
  EXPECT_TRUE(fx.StillServes());
}

TEST(WireFuzzTest, OversizedLengthPrefixGetsTypedErrorFrame) {
  WireFuzzFixture fx;
  ASSERT_TRUE(fx.ok());
  auto conn = protocol::Socket::ConnectLocal(fx.port());
  ASSERT_TRUE(conn.ok());
  // Valid kind, absurd length: claims a 1 GiB payload.
  uint8_t header[8] = {static_cast<uint8_t>(protocol::MessageKind::kRunRequest),
                       0, 0, 0, 0x00, 0x00, 0x00, 0x40};
  ASSERT_TRUE(conn->WriteAll(header, sizeof(header)).ok());
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->kind, protocol::MessageKind::kError);
  auto err = protocol::DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, static_cast<uint32_t>(StatusCode::kProtocolError));
  EXPECT_TRUE(fx.StillServes());
}

TEST(WireFuzzTest, TruncatedFramesAndMidFrameClosesLeakNothing) {
  WireFuzzFixture fx;
  ASSERT_TRUE(fx.ok());
  int baseline_fds = chaos::InvariantAuditor::CountOpenFds();
  uint64_t rng = kSmokeSeed + 1;
  for (int round = 0; round < 24; ++round) {
    auto conn = protocol::Socket::ConnectLocal(fx.port());
    ASSERT_TRUE(conn.ok());
    // A header promising more payload than we ever send...
    rng = FuzzMix(rng);
    uint32_t claimed = 32 + static_cast<uint32_t>(rng % 512);
    uint8_t header[8] = {
        static_cast<uint8_t>(protocol::MessageKind::kRunRequest), 0, 0, 0,
        static_cast<uint8_t>(claimed), static_cast<uint8_t>(claimed >> 8),
        0, 0};
    (void)conn->WriteAll(header, sizeof(header));
    uint8_t partial[16] = {0};
    (void)conn->WriteAll(partial, sizeof(partial));
    // ...then vanish mid-frame. The frame guard reaps the worker.
  }
  EXPECT_TRUE(fx.StillServes());
  // Every fuzz connection's fd must be released once workers are reaped.
  bool settled = false;
  for (int i = 0; i < 4000 && !settled; ++i) {
    fx.server().ReapWorkers();
    settled = fx.server().active_connections() == 0 &&
              chaos::InvariantAuditor::CountOpenFds() <= baseline_fds + 2;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(settled) << "fds: " << chaos::InvariantAuditor::CountOpenFds()
                       << " vs baseline " << baseline_fds << ", active: "
                       << fx.server().active_connections();
}

TEST(WireFuzzTest, UnknownMessageKindsGetErrorsNotCrashes) {
  WireFuzzFixture fx;
  ASSERT_TRUE(fx.ok());
  for (uint8_t kind : {0, 42, 99, 200, 255}) {
    auto conn = protocol::Socket::ConnectLocal(fx.port());
    ASSERT_TRUE(conn.ok());
    protocol::Frame f;
    f.kind = static_cast<protocol::MessageKind>(kind);
    f.payload = {1, 2, 3};
    ASSERT_TRUE(conn->WriteFrame(f).ok());
    (void)conn->SetRecvTimeoutMs(2000);
    auto reply = conn->ReadFrame();
    // Either a typed error frame or a clean close; never silence.
    if (reply.ok()) {
      EXPECT_EQ(reply->kind, protocol::MessageKind::kError)
          << "kind " << int(kind);
    } else {
      EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable)
          << "kind " << int(kind) << ": " << reply.status();
    }
  }
  EXPECT_TRUE(fx.StillServes());
}

}  // namespace
}  // namespace hyperq
