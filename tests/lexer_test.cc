// Unit tests for the shared SQL lexer.

#include <gtest/gtest.h>

#include "sql/lexer.h"

namespace hyperq::sql {
namespace {

std::vector<Token> Lex(const std::string& text) {
  auto r = Tokenize(text);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? std::move(r).value() : std::vector<Token>{};
}

TEST(LexerTest, Identifiers) {
  auto t = Lex("select Foo _bar Baz9");
  ASSERT_EQ(t.size(), 5u);  // 4 idents + EOF
  EXPECT_EQ(t[0].upper, "SELECT");
  EXPECT_EQ(t[1].text, "Foo");
  EXPECT_EQ(t[1].upper, "FOO");
  EXPECT_EQ(t[2].text, "_bar");
  EXPECT_EQ(t[3].upper, "BAZ9");
}

TEST(LexerTest, NumberKinds) {
  auto t = Lex("42 3.14 1e9 2.5E-3 .5");
  EXPECT_EQ(t[0].kind, TokenKind::kInteger);
  EXPECT_EQ(t[1].kind, TokenKind::kDecimal);
  EXPECT_EQ(t[2].kind, TokenKind::kFloat);
  EXPECT_EQ(t[3].kind, TokenKind::kFloat);
  EXPECT_EQ(t[4].kind, TokenKind::kDecimal);
  EXPECT_EQ(t[4].text, ".5");
}

TEST(LexerTest, StringLiteralEscapes) {
  auto t = Lex("'it''s fine'");
  ASSERT_EQ(t[0].kind, TokenKind::kString);
  EXPECT_EQ(t[0].text, "it's fine");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("'oops").ok());
  EXPECT_FALSE(Tokenize("\"oops").ok());
}

TEST(LexerTest, QuotedIdentifier) {
  auto t = Lex("\"Mixed Case\"");
  ASSERT_EQ(t[0].kind, TokenKind::kQuotedIdent);
  EXPECT_EQ(t[0].text, "Mixed Case");
}

TEST(LexerTest, CommentsSkipped) {
  auto t = Lex("a -- line comment\n b /* block\n comment */ c");
  ASSERT_EQ(t.size(), 4u);
  EXPECT_EQ(t[0].upper, "A");
  EXPECT_EQ(t[1].upper, "B");
  EXPECT_EQ(t[2].upper, "C");
}

TEST(LexerTest, TwoCharOperators) {
  auto t = Lex("<= >= <> != || ^=");
  for (int i = 0; i < 6; ++i) {
    EXPECT_EQ(t[i].kind, TokenKind::kOperator) << i;
  }
  EXPECT_EQ(t[0].text, "<=");
  EXPECT_EQ(t[2].text, "<>");
  EXPECT_EQ(t[4].text, "||");
  EXPECT_EQ(t[5].text, "^=");
}

TEST(LexerTest, MacroParameters) {
  auto t = Lex("WHERE x = :limit AND y = :Other_1");
  EXPECT_EQ(t[3].kind, TokenKind::kParam);
  EXPECT_EQ(t[3].upper, "LIMIT");
  EXPECT_EQ(t[7].kind, TokenKind::kParam);
  EXPECT_EQ(t[7].upper, "OTHER_1");
}

TEST(LexerTest, LineAndColumnTracking) {
  auto t = Lex("a\n  b");
  EXPECT_EQ(t[0].line, 1);
  EXPECT_EQ(t[1].line, 2);
  EXPECT_EQ(t[1].column, 3);
}

TEST(LexerTest, OffsetsSliceSourceText) {
  std::string text = "SELECT  foo";
  auto t = Lex(text);
  EXPECT_EQ(text.substr(t[1].begin_offset, t[1].end_offset - t[1].begin_offset),
            "foo");
}

TEST(LexerTest, RejectsUnknownCharacter) {
  EXPECT_FALSE(Tokenize("a @ b").ok());
}

TEST(TokenStreamTest, KeywordAndOpConsumption) {
  TokenStream ts(Lex("SELECT * FROM t"));
  EXPECT_TRUE(ts.ConsumeKeyword("SELECT"));
  EXPECT_FALSE(ts.ConsumeKeyword("WHERE"));
  EXPECT_TRUE(ts.ConsumeOp("*"));
  EXPECT_TRUE(ts.ExpectKeyword("FROM").ok());
  EXPECT_FALSE(ts.AtEnd());
  ts.Next();
  EXPECT_TRUE(ts.AtEnd());
}

TEST(TokenStreamTest, RewindRestoresPosition) {
  TokenStream ts(Lex("a b c"));
  size_t mark = ts.position();
  ts.Next();
  ts.Next();
  ts.Rewind(mark);
  EXPECT_EQ(ts.Peek().upper, "A");
}

TEST(TokenStreamTest, ErrorMentionsLocation) {
  TokenStream ts(Lex("SELECT"));
  ts.Next();
  Status s = ts.ExpectKeyword("FROM");
  EXPECT_TRUE(s.IsSyntaxError());
  EXPECT_NE(s.message().find("end of input"), std::string::npos);
}

}  // namespace
}  // namespace hyperq::sql
