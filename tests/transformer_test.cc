// Transformer rule tests: each rule fires exactly when its target profile
// lacks the feature, cascades compose, and the fixed point terminates.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "serializer/serializer.h"
#include "sql/parser.h"
#include "transform/transformer.h"

namespace hyperq::transform {
namespace {

class TransformerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef t;
    t.name = "T";
    t.columns = {{"A", SqlType::Int(), true, {}},
                 {"B", SqlType::Int(), true, {}},
                 {"D", SqlType::Date(), true, {}},
                 {"V", SqlType::Decimal(10, 2), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(t).ok());
    TableDef s;
    s.name = "S";
    s.columns = {{"X", SqlType::Int(), true, {}},
                 {"Y", SqlType::Int(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(s).ok());
    TableDef st;
    st.name = "SETT";
    st.semantics = TableSemantics::kSet;
    st.columns = {{"K", SqlType::Int(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(st).ok());
  }

  Result<xtra::OpPtr> Bind(const std::string& sql) {
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::ParseStatement(sql, sql::Dialect::Teradata()));
    binder::Binder binder(&catalog_, sql::Dialect::Teradata());
    return binder.BindStatement(*stmt);
  }

  Result<std::string> TransformAndSerialize(const std::string& sql,
                                            const BackendProfile& profile) {
    HQ_ASSIGN_OR_RETURN(xtra::OpPtr plan, Bind(sql));
    Transformer xf(profile);
    binder::ColIdGenerator ids;
    for (int i = 0; i < 100000; ++i) ids.Next();
    HQ_RETURN_IF_ERROR(
        xf.Run(Stage::kBinding, &plan, &ids, &features_, &catalog_));
    HQ_RETURN_IF_ERROR(
        xf.Run(Stage::kSerialization, &plan, &ids, &features_, &catalog_));
    serializer::Serializer ser(profile);
    return ser.Serialize(*plan);
  }

  Catalog catalog_;
  FeatureSet features_;
};

TEST_F(TransformerTest, CompDateToIntFiresOnBothSides) {
  auto sql = TransformAndSerialize("SEL A FROM T WHERE D > 1140101",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("EXTRACT(YEAR FROM"), std::string::npos);
  auto flipped = TransformAndSerialize("SEL A FROM T WHERE 1140101 < D",
                                       BackendProfile::Vdb());
  ASSERT_TRUE(flipped.ok());
  EXPECT_NE(flipped->find("EXTRACT(YEAR FROM"), std::string::npos);
  EXPECT_TRUE(features_.Has(Feature::kDateIntComparison));
}

TEST_F(TransformerTest, CompDateToIntLeavesDateDateAlone) {
  auto sql = TransformAndSerialize("SEL A FROM T WHERE D > DATE '2014-01-01'",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok());
  EXPECT_EQ(sql->find("EXTRACT"), std::string::npos) << *sql;
}

TEST_F(TransformerTest, VectorSubqSkippedWhenTargetSupportsIt) {
  BackendProfile rich = BackendProfile::Vdb();
  rich.supports_vector_subquery = true;
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE (A, B) > ANY (SEL X, Y FROM S)", rich);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("> ANY ("), std::string::npos) << *sql;
  EXPECT_EQ(sql->find("EXISTS"), std::string::npos) << *sql;
}

TEST_F(TransformerTest, VectorSubqAllBecomesNotExists) {
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE (A, B) > ALL (SEL X, Y FROM S)",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("NOT EXISTS"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("NOT ("), std::string::npos) << *sql;
}

TEST_F(TransformerTest, VectorEqualityBecomesConjunction) {
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE (A, B) = ANY (SEL X, Y FROM S)",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("EXISTS"), std::string::npos);
  EXPECT_NE(sql->find("AND"), std::string::npos);
  EXPECT_EQ(sql->find(" OR "), std::string::npos) << *sql;
}

TEST_F(TransformerTest, ThreeElementVectorLexicographic) {
  TableDef w;
  w.name = "W3";
  w.columns = {{"P", SqlType::Int(), true, {}},
               {"Q", SqlType::Int(), true, {}},
               {"R", SqlType::Int(), true, {}}};
  ASSERT_TRUE(catalog_.CreateTable(w).ok());
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE (A, B, A) >= ANY (SEL P, Q, R FROM W3)",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Lexicographic: strict > on prefixes, >= only on the last position.
  EXPECT_NE(sql->find(">="), std::string::npos);
  size_t first_or = sql->find(" OR ");
  ASSERT_NE(first_or, std::string::npos);
  EXPECT_NE(sql->find(" OR ", first_or + 1), std::string::npos);
}

TEST_F(TransformerTest, GroupingSetsExpandToUnionAll) {
  auto sql = TransformAndSerialize(
      "SEL A, B, COUNT(*) FROM T GROUP BY ROLLUP(A, B)",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // ROLLUP(A,B) = 3 sets -> 2 UNION ALLs; NULL fills removed columns.
  size_t first = sql->find("UNION ALL");
  ASSERT_NE(first, std::string::npos);
  EXPECT_NE(sql->find("UNION ALL", first + 1), std::string::npos);
  EXPECT_NE(sql->find("NULL"), std::string::npos);
}

TEST_F(TransformerTest, GroupingSetsKeptWhenSupported) {
  BackendProfile rich = BackendProfile::Vdb();
  rich.supports_grouping_sets = true;
  auto bound = Bind("SEL A, COUNT(*) FROM T GROUP BY ROLLUP(A)");
  ASSERT_TRUE(bound.ok()) << bound.status();
  xtra::OpPtr plan = std::move(bound).value();
  Transformer xf(rich);
  binder::ColIdGenerator ids;
  ASSERT_TRUE(
      xf.Run(Stage::kSerialization, &plan, &ids, &features_, &catalog_)
          .ok());
  // The aggregate keeps its grouping sets (no union expansion).
  const xtra::Op* agg = plan.get();
  while (agg != nullptr && agg->kind != xtra::OpKind::kAggregate) {
    agg = agg->children.empty() ? nullptr : agg->children[0].get();
  }
  ASSERT_NE(agg, nullptr);
  EXPECT_EQ(agg->grouping_sets.size(), 2u);
}

TEST_F(TransformerTest, DateArithToFunctions) {
  auto sql = TransformAndSerialize("SEL D + 30, D - 7, D - D FROM T",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("DATE_ADD_DAYS("), std::string::npos);
  EXPECT_NE(sql->find("DATE_DIFF_DAYS("), std::string::npos);
  EXPECT_NE(sql->find("(- 7)"), std::string::npos);
}

TEST_F(TransformerTest, IntervalArithmetic) {
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE D < DATE '2014-01-01' + INTERVAL '1' YEAR",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Year intervals use ADD_MONTHS (calendar-aware) from the binder.
  EXPECT_NE(sql->find("ADD_MONTHS("), std::string::npos) << *sql;
}

TEST_F(TransformerTest, TopWithTiesBecomesRankFilter) {
  auto sql = TransformAndSerialize(
      "SEL TOP 3 WITH TIES A FROM T ORDER BY V DESC",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("RANK() OVER"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("<= 3"), std::string::npos) << *sql;
  EXPECT_EQ(sql->find("LIMIT"), std::string::npos) << *sql;
}

TEST_F(TransformerTest, PlainTopStaysLimit) {
  auto sql = TransformAndSerialize("SEL TOP 3 A FROM T ORDER BY V",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok());
  EXPECT_NE(sql->find("LIMIT 3"), std::string::npos);
  EXPECT_EQ(sql->find("RANK"), std::string::npos);
}

TEST_F(TransformerTest, SetTableInsertGetsExceptGuard) {
  auto sql = TransformAndSerialize("INS INTO SETT VALUES (1)",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("EXCEPT"), std::string::npos) << *sql;
  // Plain MULTISET tables are untouched.
  auto plain = TransformAndSerialize("INS INTO T (A) VALUES (1)",
                                     BackendProfile::Vdb());
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain->find("EXCEPT"), std::string::npos);
}

TEST_F(TransformerTest, ExplicitNullOrderingInjected) {
  auto sql = TransformAndSerialize("SEL A FROM T ORDER BY A, V DESC",
                                   BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Teradata semantics made explicit: NULLs low.
  EXPECT_NE(sql->find("A NULLS FIRST"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("DESC NULLS LAST"), std::string::npos) << *sql;
  // A target that already sorts NULLs low needs nothing.
  BackendProfile td_like = BackendProfile::Vdb();
  td_like.nulls_sort_low = true;
  auto same = TransformAndSerialize("SEL A FROM T ORDER BY A", td_like);
  ASSERT_TRUE(same.ok());
  EXPECT_EQ(same->find("NULLS"), std::string::npos) << *same;
}

TEST_F(TransformerTest, CascadeQualifyPlusVectorSubquery) {
  // QUALIFY lowering (binder) produces a window + filter whose inner WHERE
  // still holds a vector subquery for the transformer to rewrite: the
  // output of one rewrite is valid input to the next (paper §4.3).
  auto sql = TransformAndSerialize(
      "SEL A FROM T WHERE (A, B) > ANY (SEL X, Y FROM S) "
      "QUALIFY RANK(V DESC) <= 5",
      BackendProfile::Vdb());
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("EXISTS"), std::string::npos);
  EXPECT_NE(sql->find("RANK() OVER"), std::string::npos);
}

TEST_F(TransformerTest, RuleRegistryStages) {
  Transformer xf(BackendProfile::Vdb());
  auto binding = xf.RuleNames(Stage::kBinding);
  ASSERT_EQ(binding.size(), 1u);
  EXPECT_EQ(binding[0], "comp_date_to_int");
  auto serialization = xf.RuleNames(Stage::kSerialization);
  EXPECT_GE(serialization.size(), 6u);
}

}  // namespace
}  // namespace hyperq::transform
