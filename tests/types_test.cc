// Unit + property tests for the type system: Datum, Decimal, dates, and
// the Teradata integer date encoding.

#include <gtest/gtest.h>

#include "types/datum.h"
#include "types/date.h"
#include "types/decimal.h"
#include "types/type.h"

namespace hyperq {
namespace {

TEST(DecimalTest, ParseAndToString) {
  auto d = Decimal::Parse("-1.25");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->value, -125);
  EXPECT_EQ(d->scale, 2);
  EXPECT_EQ(d->ToString(), "-1.25");
  EXPECT_EQ(Decimal::Parse("0.05")->ToString(), "0.05");
  EXPECT_EQ(Decimal::Parse("7")->ToString(), "7");
  EXPECT_FALSE(Decimal::Parse("1.2.3").ok());
  EXPECT_FALSE(Decimal::Parse("abc").ok());
}

TEST(DecimalTest, ArithmeticAlignsScales) {
  Decimal a{150, 2};   // 1.50
  Decimal b{25, 1};    // 2.5
  EXPECT_EQ(Decimal::Add(a, b).ToString(), "4.00");
  EXPECT_EQ(Decimal::Sub(b, a).ToString(), "1.00");
  EXPECT_EQ(Decimal::Mul(a, b).ToString(), "3.750");
}

TEST(DecimalTest, CompareAcrossScales) {
  EXPECT_EQ(Decimal::Compare({150, 2}, {15, 1}), 0);
  EXPECT_LT(Decimal::Compare({149, 2}, {15, 1}), 0);
  EXPECT_GT(Decimal::Compare({-1, 0}, {-200, 2}), 0);
}

TEST(DecimalTest, MulClampsScale) {
  Decimal tiny{1, 8};
  Decimal d = Decimal::Mul(tiny, tiny);
  EXPECT_LE(d.scale, Decimal::kMaxScale);
}

TEST(DateTest, CivilRoundTripProperty) {
  for (int32_t days : {-1000, 0, 1, 365, 10000, 19000, 40000}) {
    int y, m, d;
    CivilFromDays(days, &y, &m, &d);
    EXPECT_EQ(DaysFromCivil(y, m, d), days);
  }
}

TEST(DateTest, TeradataIntEncoding) {
  // Paper: 1140101 encodes 2014-01-01.
  int32_t days = DaysFromCivil(2014, 1, 1);
  EXPECT_EQ(DateToTeradataInt(days), 1140101);
  auto back = TeradataIntToDate(1140101);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, days);
  EXPECT_FALSE(TeradataIntToDate(1141399).ok());  // month 13 invalid
  EXPECT_FALSE(TeradataIntToDate(1140230).ok());  // Feb 30 invalid
}

TEST(DateTest, LeapYears) {
  EXPECT_TRUE(IsValidCivil(2000, 2, 29));   // 400-divisible
  EXPECT_FALSE(IsValidCivil(1900, 2, 29));  // 100-divisible
  EXPECT_TRUE(IsValidCivil(2016, 2, 29));
  EXPECT_FALSE(IsValidCivil(2015, 2, 29));
}

TEST(DateTest, ParseAndFormat) {
  auto d = ParseDate("2014-06-15");
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(FormatDate(*d), "2014-06-15");
  EXPECT_TRUE(ParseDate("2014/06/15").ok());
  EXPECT_FALSE(ParseDate("2014-13-01").ok());
  EXPECT_FALSE(ParseDate("nonsense").ok());
}

TEST(DateTest, TimestampRoundTrip) {
  auto ts = ParseTimestamp("2014-06-15 13:45:30.5");
  ASSERT_TRUE(ts.ok());
  EXPECT_EQ(FormatTimestamp(*ts), "2014-06-15 13:45:30.500000");
  auto date_only = ParseTimestamp("2014-06-15");
  ASSERT_TRUE(date_only.ok());
  EXPECT_EQ(FormatTimestamp(*date_only), "2014-06-15 00:00:00");
}

TEST(DateTest, AddMonthsClampsDay) {
  int32_t jan31 = DaysFromCivil(2014, 1, 31);
  EXPECT_EQ(FormatDate(AddMonths(jan31, 1)), "2014-02-28");
  EXPECT_EQ(FormatDate(AddMonths(jan31, -2)), "2013-11-30");
  EXPECT_EQ(FormatDate(AddMonths(DaysFromCivil(2014, 6, 15), 12)),
            "2015-06-15");
}

TEST(DatumTest, NullSemantics) {
  Datum n = Datum::Null();
  EXPECT_TRUE(n.is_null());
  EXPECT_TRUE(Datum::GroupEquals(n, Datum::Null()));
  EXPECT_FALSE(Datum::GroupEquals(n, Datum::Int(0)));
  EXPECT_FALSE(Datum::Compare(n, Datum::Int(1)).ok());
}

TEST(DatumTest, CrossNumericComparison) {
  EXPECT_EQ(*Datum::Compare(Datum::Int(2),
                            Datum::MakeDecimal(Decimal{200, 2})),
            0);
  EXPECT_LT(*Datum::Compare(Datum::MakeDecimal(Decimal{199, 2}),
                            Datum::Int(2)),
            0);
  EXPECT_GT(*Datum::Compare(Datum::MakeDouble(2.5), Datum::Int(2)), 0);
}

TEST(DatumTest, CharComparisonIgnoresTrailingBlanks) {
  EXPECT_EQ(*Datum::Compare(Datum::String("abc   "), Datum::String("abc")),
            0);
  EXPECT_TRUE(Datum::GroupEquals(Datum::String("abc "),
                                 Datum::String("abc")));
  EXPECT_EQ(Datum::String("abc ").Hash(), Datum::String("abc").Hash());
}

TEST(DatumTest, HashConsistentWithGroupEqualsAcrossKinds) {
  Datum a = Datum::Int(5);
  Datum b = Datum::MakeDecimal(Decimal{500, 2});
  ASSERT_TRUE(Datum::GroupEquals(a, b));
  EXPECT_EQ(a.Hash(), b.Hash());
  Datum c = Datum::MakeDouble(5.0);
  EXPECT_EQ(a.Hash(), c.Hash());
}

TEST(DatumTest, CastMatrix) {
  EXPECT_EQ(Datum::String("42").CastTo(SqlType::Int())->int_val(), 42);
  EXPECT_EQ(Datum::Int(3).CastTo(SqlType::Decimal(10, 2))
                ->decimal_val()
                .ToString(),
            "3.00");
  EXPECT_EQ(Datum::MakeDouble(2.345)
                .CastTo(SqlType::Decimal(10, 2))
                ->decimal_val()
                .ToString(),
            "2.35");  // rounded
  // CHAR pads, VARCHAR truncates at max length.
  EXPECT_EQ(Datum::String("ab").CastTo(SqlType::Char(4))->string_val(),
            "ab  ");
  EXPECT_EQ(Datum::String("abcdef")
                .CastTo(SqlType::Varchar(3))
                ->string_val(),
            "abc");
  // Teradata legacy: DATE <-> INT via the encoding.
  Datum d = Datum::Date(DaysFromCivil(2014, 1, 1));
  EXPECT_EQ(d.CastTo(SqlType::Int())->int_val(), 1140101);
  EXPECT_EQ(Datum::Int(1140101).CastTo(SqlType::Date())->date_val(),
            d.date_val());
  EXPECT_FALSE(Datum::String("zzz").CastTo(SqlType::Int()).ok());
}

TEST(DatumTest, DateTimestampComparison) {
  Datum d = Datum::Date(100);
  Datum ts_same = Datum::Timestamp(100LL * 86400000000LL);
  Datum ts_later = Datum::Timestamp(100LL * 86400000000LL + 1);
  EXPECT_EQ(*Datum::Compare(d, ts_same), 0);
  EXPECT_LT(*Datum::Compare(d, ts_later), 0);
}

TEST(DatumTest, ToStringStyles) {
  EXPECT_EQ(Datum::Null().ToString(), "NULL");
  EXPECT_EQ(Datum::Null().ToString(/*teradata_style=*/true), "?");
  EXPECT_EQ(Datum::Date(DaysFromCivil(2014, 6, 1)).ToString(), "2014-06-01");
  EXPECT_EQ(Datum::Period(0, 31).ToString(),
            "PERIOD(1970-01-01, 1970-02-01)");
}

TEST(TypeTest, CommonSuperTypePromotions) {
  EXPECT_EQ(CommonSuperType(SqlType::Int(), SqlType::BigInt()).kind,
            TypeKind::kBigInt);
  EXPECT_EQ(CommonSuperType(SqlType::Int(), SqlType::Double()).kind,
            TypeKind::kDouble);
  EXPECT_EQ(
      CommonSuperType(SqlType::Char(3), SqlType::Varchar(10)).kind,
      TypeKind::kVarchar);
  EXPECT_EQ(CommonSuperType(SqlType::Date(), SqlType::Timestamp()).kind,
            TypeKind::kTimestamp);
  EXPECT_EQ(CommonSuperType(SqlType::Date(), SqlType::Bool()).kind,
            TypeKind::kNull);  // incompatible
  EXPECT_EQ(CommonSuperType(SqlType::Null(), SqlType::Int()).kind,
            TypeKind::kInt);
}

TEST(TypeTest, ArithmeticResultTypes) {
  EXPECT_EQ(ArithmeticResultType(SqlType::Date(), SqlType::Int(), '+').kind,
            TypeKind::kDate);
  EXPECT_EQ(ArithmeticResultType(SqlType::Date(), SqlType::Date(), '-').kind,
            TypeKind::kInt);
  EXPECT_EQ(
      ArithmeticResultType(SqlType::Int(), SqlType::Int(), '/').kind,
      TypeKind::kDouble);  // division is approximate in the runtime model
  auto dec = ArithmeticResultType(SqlType::Decimal(10, 2),
                                  SqlType::Decimal(10, 3), '*');
  EXPECT_EQ(dec.scale, 5);
}

TEST(TypeTest, RenderedNames) {
  EXPECT_EQ(SqlType::Decimal(15, 2).ToString(), "DECIMAL(15,2)");
  EXPECT_EQ(SqlType::Varchar(25).ToString(), "VARCHAR(25)");
  EXPECT_EQ(SqlType::Varchar(0).ToString(), "VARCHAR");
  EXPECT_EQ(SqlType::PeriodDate().ToString(), "PERIOD(DATE)");
}

// Property sweep: Teradata encode/decode round-trips for every day in a
// multi-decade span.
class DateEncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(DateEncodingProperty, RoundTrip) {
  int32_t base = DaysFromCivil(1960 + GetParam() * 10, 1, 1);
  for (int32_t offset = 0; offset < 400; offset += 7) {
    int32_t days = base + offset;
    auto back = TeradataIntToDate(DateToTeradataInt(days));
    ASSERT_TRUE(back.ok());
    EXPECT_EQ(*back, days);
  }
}

INSTANTIATE_TEST_SUITE_P(Decades, DateEncodingProperty,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace hyperq
