// Failover & overload suite (ctest label: failover): backend-session
// failover with journal replay, idempotency fencing inside transactions,
// admission control with a bounded queue and watermarks, per-user caps,
// graceful drain, and result-path fault points — all deterministic (fixed
// seeds, no sleep over ~400ms) so the claims are provable in CI, including
// under ASan/UBSan.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "backend/connector.h"
#include "common/fault.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

using protocol::TdwpClient;
using protocol::TdwpServer;
using protocol::TdwpServerOptions;

// Every test runs against the pristine global injector.
class FailoverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
  }
  void TearDown() override { FaultInjector::Global().Reset(); }
};

service::ServiceOptions FastOptions() {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 4;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  return options;
}

// Loses the backend session once, at the `first_hit`-th connector attempt
// after arming.
FaultSpec LoseSessionOnce(int first_hit = 1) {
  FaultSpec spec;
  spec.kind = FaultKind::kDisconnect;
  spec.first_hit = first_hit;
  spec.max_fires = 1;
  return spec;
}

template <typename Cond>
::testing::AssertionResult WaitFor(Cond cond, int timeout_ms = 2000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (cond()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure() << "condition not met within "
                                       << timeout_ms << "ms";
}

// --- Connector: session loss primitives -------------------------------------

TEST_F(FailoverTest, ConnectorBumpsEpochAndDropsSessionTables) {
  vdb::Engine engine;
  backend::BackendConnector connector(&engine, FastOptions().connector);
  ASSERT_TRUE(connector.Execute("CREATE TABLE T1 (A INTEGER)").ok());
  connector.NoteSessionTable("T1");
  int64_t epoch0 = connector.connection_epoch();

  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce());
  auto lost = connector.Execute("SELECT * FROM T1");
  ASSERT_FALSE(lost.ok());
  // kSessionLost is deliberately NOT retryable: the connector must surface
  // it so the service can replay the session journal first.
  EXPECT_TRUE(lost.status().IsSessionLost());
  EXPECT_FALSE(lost.status().IsRetryable());
  EXPECT_EQ(connector.session_losses(), 1);

  // The next attempt reconnects (epoch bump); the session-scoped table
  // died with the old session.
  auto again = connector.Execute("SELECT * FROM T1");
  EXPECT_FALSE(again.ok()) << "session table should be gone";
  EXPECT_EQ(connector.connection_epoch(), epoch0 + 1);
}

// --- Service: journal & replay ----------------------------------------------

// Acceptance (a): a session with SET SESSION + volatile-table state keeps
// returning identical results across an injected backend session loss.
TEST_F(FailoverTest, SessionStateSurvivesInjectedSessionLoss) {
  auto scenario = [&](bool inject) {
    FaultInjector::Global().Reset();
    FaultInjector::Global().SetSeed(0x5EED);
    vdb::Engine engine;
    service::HyperQService service(&engine, FastOptions());
    auto sid = service.OpenSession("tester");
    EXPECT_TRUE(sid.ok());
    auto run = [&](const std::string& sql) {
      auto r = service.Submit(*sid, sql);
      EXPECT_TRUE(r.ok()) << sql << "\n" << r.status();
      return r.ok() ? std::move(r).value() : service::QueryOutcome{};
    };
    run("CREATE VOLATILE TABLE SCRATCH (A INTEGER)");
    run("INS INTO SCRATCH VALUES (1)");
    run("INS INTO SCRATCH VALUES (2)");
    run("SET SESSION CHARSET 'UTF8'");
    if (inject) {
      FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                                  LoseSessionOnce());
    }
    auto out = run("SEL * FROM SCRATCH ORDER BY A");
    if (inject) {
      EXPECT_EQ(out.timing.failovers, 1);
      // DDL + 2 DML + SET SESSION were replayed.
      EXPECT_EQ(out.timing.journal_replays, 4);
      auto rs = service.StatsSnapshot().resilience;
      EXPECT_EQ(rs.failovers, 1);
      EXPECT_EQ(rs.statements_replayed, 4);
    }
    auto rows = out.result.DecodeRows();
    EXPECT_TRUE(rows.ok());
    std::vector<int64_t> values;
    for (const auto& row : rows.ok() ? *rows
                                     : std::vector<std::vector<Datum>>{}) {
      values.push_back(row[0].int_val());
    }
    return values;
  };
  auto without_fault = scenario(false);
  auto with_fault = scenario(true);
  ASSERT_EQ(without_fault, (std::vector<int64_t>{1, 2}));
  EXPECT_EQ(with_fault, without_fault);
}

TEST_F(FailoverTest, NonIdempotentDmlInOpenTxnAborts) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (1)").ok());
  ASSERT_TRUE(service.Submit(*sid, "BT").ok());

  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce());
  auto aborted = service.Submit(*sid, "INS INTO SCRATCH VALUES (2)");
  ASSERT_FALSE(aborted.ok());
  EXPECT_TRUE(aborted.status().IsAborted()) << aborted.status();
  EXPECT_EQ(service.StatsSnapshot().resilience.aborted_in_txn, 1);

  // The session itself was repaired: the volatile table is back with its
  // pre-transaction contents, and new statements run normally.
  auto sel = service.Submit(*sid, "SEL * FROM SCRATCH");
  ASSERT_TRUE(sel.ok()) << sel.status();
  auto rows = sel->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->size(), 1u);  // the aborted INSERT was NOT re-applied
  EXPECT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (3)").ok());
}

TEST_F(FailoverTest, IdempotentSelectInOpenTxnFailsOver) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (1)").ok());
  ASSERT_TRUE(service.Submit(*sid, "BT").ok());

  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce());
  // SELECT has no side effects: safe to re-run even inside a transaction.
  auto sel = service.Submit(*sid, "SEL * FROM SCRATCH");
  ASSERT_TRUE(sel.ok()) << sel.status();
  EXPECT_EQ(sel->timing.failovers, 1);
  EXPECT_EQ(service.StatsSnapshot().resilience.aborted_in_txn, 0);
}

TEST_F(FailoverTest, JournalOverflowDegradesToCleanError) {
  vdb::Engine engine;
  auto options = FastOptions();
  options.failover.max_journal_entries = 2;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (1)").ok());
  // Third replayable effect: past the cap, the journal can no longer
  // reproduce the session and is dropped entirely.
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (2)").ok());
  EXPECT_EQ(service.journal_size(*sid), 0u);

  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce());
  auto sel = service.Submit(*sid, "SEL * FROM SCRATCH");
  ASSERT_FALSE(sel.ok());
  EXPECT_TRUE(sel.status().IsUnavailable()) << sel.status();
  EXPECT_NE(sel.status().message().find("overflowed"), std::string::npos)
      << sel.status();
  EXPECT_EQ(service.StatsSnapshot().resilience.journal_overflows, 1);
}

TEST_F(FailoverTest, FailoverDisabledSurfacesCleanUnavailable) {
  vdb::Engine engine;
  auto options = FastOptions();
  options.failover.enabled = false;
  service::HyperQService service(&engine, options);
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());

  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce());
  auto sel = service.Submit(*sid, "SEL 1");
  ASSERT_FALSE(sel.ok());
  EXPECT_TRUE(sel.status().IsUnavailable()) << sel.status();
  EXPECT_NE(sel.status().message().find("failover disabled"),
            std::string::npos)
      << sel.status();
}

// Recursion emulation runs many backend statements against session-scoped
// WorkTables; a session loss mid-iteration must replay and re-run cleanly.
TEST_F(FailoverTest, RecursiveQuerySurvivesSessionLoss) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)")
          .ok());
  for (const char* row :
       {"(1, 7)", "(7, 8)", "(8, 10)", "(9, 10)", "(10, 11)"}) {
    ASSERT_TRUE(
        service.Submit(*sid, std::string("INS INTO EMP VALUES ") + row).ok());
  }

  // Fire in the middle of the WorkTable machinery (3rd backend statement).
  FaultInjector::Global().Arm(faultpoints::kBackendSessionLost,
                              LoseSessionOnce(/*first_hit=*/3));
  auto out = service.Submit(*sid, R"(
    WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
      SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
      UNION ALL
      SELECT EMP.EMPNO, EMP.MGRNO
      FROM EMP, REPORTS
      WHERE REPORTS.EMPNO = EMP.MGRNO
    )
    SELECT EMPNO FROM REPORTS ORDER BY EMPNO)");
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_EQ(out->timing.failovers, 1);
  auto rows = out->result.DecodeRows();
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(rows->size(), 4u);  // e1, e7, e8, e9
  EXPECT_EQ((*rows)[0][0].int_val(), 1);
  EXPECT_EQ((*rows)[3][0].int_val(), 9);
}

TEST_F(FailoverTest, DropOfVolatileTableCompactsJournal) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(
      service.Submit(*sid, "CREATE VOLATILE TABLE SCRATCH (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO SCRATCH VALUES (1)").ok());
  EXPECT_EQ(service.journal_size(*sid), 2u);
  // Dropping the table makes its DDL + DML entries dead weight: compacted.
  ASSERT_TRUE(service.Submit(*sid, "DROP TABLE SCRATCH").ok());
  EXPECT_EQ(service.journal_size(*sid), 0u);
  // Mid-tier session settings still journal independently.
  ASSERT_TRUE(service.Submit(*sid, "SET SESSION CHARSET 'UTF8'").ok());
  EXPECT_EQ(service.journal_size(*sid), 1u);
}

// --- Result-path fault points ------------------------------------------------

TEST_F(FailoverTest, TdfAppendTransientFaultIsRetried) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  ASSERT_TRUE(service.Submit(*sid, "CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(service.Submit(*sid, "INS INTO T VALUES (1)").ok());

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kTdfAppend, spec);
  auto out = service.Submit(*sid, "SEL * FROM T");
  ASSERT_TRUE(out.ok()) << out.status();
  // TDF packaging faults map to fetch-time failures: re-executed once.
  EXPECT_EQ(out->timing.execution_attempts, 2);
  EXPECT_EQ(FaultInjector::Global().fires(faultpoints::kTdfAppend), 1);
}

TEST_F(FailoverTest, ConvertEncodeRowFaultFailsRequestNotServer) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("CREATE TABLE T (A INTEGER)").ok());
  ASSERT_TRUE(client.Run("INS INTO T VALUES (1)").ok());

  FaultSpec spec;
  spec.kind = FaultKind::kPermanent;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kConvertEncodeRow, spec);
  auto bad = client.Run("SEL * FROM T");
  EXPECT_FALSE(bad.ok()) << "converter fault must fail the request";
  // Same connection, same server: the next request succeeds.
  auto good = client.Run("SEL * FROM T");
  ASSERT_TRUE(good.ok()) << good.status();
  EXPECT_EQ(good->rows.size(), 1u);
  client.Goodbye();
  server.Stop();
}

// Satellite: the wire path must fill conversion_micros (Figure 9) and the
// service-wide wire counters.
TEST_F(FailoverTest, WirePathReportsConversionMicros) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FastOptions());
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("CREATE TABLE T (A INTEGER, B VARCHAR(20))").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(client
                    .Run("INS INTO T VALUES (" + std::to_string(i) +
                         ", 'row-" + std::to_string(i) + "')")
                    .ok());
  }
  auto sel = client.Run("SEL * FROM T ORDER BY A");
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->rows.size(), 20u);
  EXPECT_GT(sel->conversion_micros, 0.0);

  auto rs = service.StatsSnapshot().resilience;
  EXPECT_GE(rs.wire_requests, 22);  // create + 20 inserts + select
  EXPECT_GT(rs.wire_conversion_micros, 0.0);
  client.Goodbye();
  server.Stop();
}

// --- Server overload protection ----------------------------------------------

// Run() blocks until the test hands out a token; logons answer immediately.
class BlockingHandler : public protocol::RequestHandler {
 public:
  Result<protocol::LogonResponse> Logon(
      const protocol::LogonRequest& request) override {
    protocol::LogonResponse resp;
    resp.ok = true;
    resp.session_id = ++sessions_;
    resp.message = "hello " + request.user;
    return resp;
  }
  void Logoff(uint32_t) override {}
  Result<protocol::WireResponse> Run(uint32_t, const std::string&,
                                     QueryContext*) override {
    std::unique_lock<std::mutex> lock(mu_);
    ++entered_;
    cv_.wait(lock, [&] { return tokens_ > 0; });
    --tokens_;
    protocol::WireResponse resp;
    resp.success.tag = "OK";
    return resp;
  }
  void Release(int n) {
    std::lock_guard<std::mutex> lock(mu_);
    tokens_ += n;
    cv_.notify_all();
  }
  int entered() {
    std::lock_guard<std::mutex> lock(mu_);
    return entered_;
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  int tokens_ = 0;
  int entered_ = 0;
  std::atomic<uint32_t> sessions_{0};
};

// Run() takes a fixed amount of wall clock, then answers.
class SlowHandler : public protocol::RequestHandler {
 public:
  explicit SlowHandler(int run_ms) : run_ms_(run_ms) {}
  Result<protocol::LogonResponse> Logon(
      const protocol::LogonRequest& request) override {
    protocol::LogonResponse resp;
    resp.ok = true;
    resp.session_id = ++sessions_;
    resp.message = "hello " + request.user;
    return resp;
  }
  void Logoff(uint32_t) override {}
  Result<protocol::WireResponse> Run(uint32_t, const std::string&,
                                     QueryContext*) override {
    ++entered_;
    std::this_thread::sleep_for(std::chrono::milliseconds(run_ms_));
    protocol::WireResponse resp;
    resp.success.tag = "OK";
    return resp;
  }
  int entered() const { return entered_.load(); }

 private:
  int run_ms_;
  std::atomic<int> entered_{0};
  std::atomic<uint32_t> sessions_{0};
};

// Reads the single error frame a shed connection receives and checks it is
// a well-formed tdwp kResourceExhausted frame.
void ExpectShedFrame(uint16_t port, const std::string& needle) {
  auto raw = protocol::Socket::ConnectLocal(port);
  ASSERT_TRUE(raw.ok());
  auto frame = raw->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->kind, protocol::MessageKind::kError);
  auto err = protocol::DecodeError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, static_cast<uint32_t>(StatusCode::kResourceExhausted));
  EXPECT_NE(err->message.find(needle), std::string::npos) << err->message;
  // Nothing further: the server hangs up after shedding.
  EXPECT_FALSE(raw->ReadFrame().ok());
}

// Acceptance (b): queue depth N with N+k extra connections sheds exactly k,
// each with a well-formed error frame, and everything queued gets served.
TEST_F(FailoverTest, AdmissionQueueShedsExactlyBeyondDepth) {
  BlockingHandler handler;
  TdwpServerOptions options;
  options.max_connections = 1;
  options.admission_queue_depth = 2;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  // c1 occupies the only worker slot, blocked inside Run().
  TdwpClient c1;
  ASSERT_TRUE(c1.Connect(server.port()).ok());
  ASSERT_TRUE(c1.Logon("u", "p").ok());
  std::thread t1([&] {
    auto r = c1.Run("SELECT 1");
    EXPECT_TRUE(r.ok()) << r.status();
  });
  ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));

  // c2 and c3 fill the admission queue (depth 2).
  TdwpClient c2, c3;
  ASSERT_TRUE(c2.Connect(server.port()).ok());
  ASSERT_TRUE(c3.Connect(server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.queued_connections() == 2; }));

  // k = 2 connections beyond capacity + queue: shed, exactly those two.
  ExpectShedFrame(server.port(), "capacity");
  ExpectShedFrame(server.port(), "capacity");
  EXPECT_EQ(server.stats().shed, 2);
  EXPECT_EQ(server.rejected_connections(), 2);
  EXPECT_EQ(server.stats().queued_peak, 2);

  // Zero hangs: release the handler and every queued connection is served.
  handler.Release(3);
  t1.join();
  c1.Goodbye();
  for (TdwpClient* c : {&c2, &c3}) {
    ASSERT_TRUE(c->Logon("u", "p").ok());
    auto r = c->Run("SELECT 1");
    ASSERT_TRUE(r.ok()) << r.status();
    c->Goodbye();
  }
  EXPECT_EQ(server.stats().admitted, 3);
  EXPECT_EQ(server.stats().shed, 2);  // unchanged
  server.Stop();
}

TEST_F(FailoverTest, LowWatermarkHoldsSheddingUntilQueueDrains) {
  BlockingHandler handler;
  TdwpServerOptions options;
  options.max_connections = 1;
  options.admission_queue_depth = 3;
  options.queue_low_watermark = 1;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient c1;
  ASSERT_TRUE(c1.Connect(server.port()).ok());
  ASSERT_TRUE(c1.Logon("u", "p").ok());
  std::thread t1([&] { (void)c1.Run("SELECT 1"); });
  ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));

  // Fill the queue to the high watermark: shedding turns on.
  TdwpClient c2, c3, c4;
  ASSERT_TRUE(c2.Connect(server.port()).ok());
  ASSERT_TRUE(c3.Connect(server.port()).ok());
  ASSERT_TRUE(c4.Connect(server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.queued_connections() == 3; }));
  ExpectShedFrame(server.port(), "capacity");

  // Drain one: c1 finishes, c2 is admitted, queue drops to 2 — still above
  // the low watermark, so the server keeps shedding (hysteresis).
  handler.Release(1);
  t1.join();
  c1.Goodbye();
  ASSERT_TRUE(WaitFor([&] {
    return server.active_connections() == 1 &&
           server.queued_connections() == 2;
  }));
  ExpectShedFrame(server.port(), "capacity");

  // Drain below the low watermark: c2 leaves, c3 is admitted, queue is 1.
  ASSERT_TRUE(c2.Logon("u", "p").ok());
  c2.Goodbye();
  ASSERT_TRUE(WaitFor([&] {
    return server.active_connections() == 1 &&
           server.queued_connections() == 1;
  }));
  // Shedding is off again: a new arrival queues instead of being refused.
  TdwpClient c5;
  ASSERT_TRUE(c5.Connect(server.port()).ok());
  ASSERT_TRUE(WaitFor([&] { return server.queued_connections() == 2; }));
  EXPECT_EQ(server.stats().shed, 2);
  server.Stop();
}

// Acceptance (c): Stop(drain) answers the in-flight request, then refuses
// new connections; stats separate drained from force-closed workers.
TEST_F(FailoverTest, StopWithDrainCompletesInFlightRequests) {
  SlowHandler handler(100);
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());
  uint16_t port = server.port();

  TdwpClient c1;
  ASSERT_TRUE(c1.Connect(port).ok());
  ASSERT_TRUE(c1.Logon("u", "p").ok());
  bool got_response = false;
  std::thread t1([&] {
    auto r = c1.Run("SELECT 1");
    got_response = r.ok() && r->tag == "OK";
  });
  ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));

  server.Stop(/*drain_deadline_ms=*/2000);
  t1.join();
  EXPECT_TRUE(got_response) << "in-flight request must be answered";
  EXPECT_EQ(server.stats().drained, 1);
  EXPECT_EQ(server.stats().force_closed, 0);
  // New connections are refused: the listener is gone.
  EXPECT_FALSE(protocol::Socket::ConnectLocal(port).ok());
}

TEST_F(FailoverTest, StopDrainDeadlineForceClosesStragglers) {
  SlowHandler handler(400);
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient c1;
  ASSERT_TRUE(c1.Connect(server.port()).ok());
  ASSERT_TRUE(c1.Logon("u", "p").ok());
  std::thread t1([&] {
    auto r = c1.Run("SELECT 1");
    EXPECT_FALSE(r.ok()) << "connection was force-closed mid-request";
  });
  ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));

  server.Stop(/*drain_deadline_ms=*/30);
  EXPECT_EQ(server.stats().force_closed, 1);
  EXPECT_EQ(server.stats().drained, 0);
  t1.join();
}

TEST_F(FailoverTest, StopRefusesQueuedConnectionsWithCleanFrame) {
  SlowHandler handler(200);
  TdwpServerOptions options;
  options.max_connections = 1;
  options.admission_queue_depth = 2;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient c1;
  ASSERT_TRUE(c1.Connect(server.port()).ok());
  ASSERT_TRUE(c1.Logon("u", "p").ok());
  std::thread t1([&] {
    auto r = c1.Run("SELECT 1");
    EXPECT_TRUE(r.ok()) << r.status();  // drain lets it finish
  });
  ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));
  auto queued = protocol::Socket::ConnectLocal(server.port());
  ASSERT_TRUE(queued.ok());
  ASSERT_TRUE(WaitFor([&] { return server.queued_connections() == 1; }));

  server.Stop(/*drain_deadline_ms=*/2000);
  t1.join();
  // The queued connection never reached a worker: it gets a shutdown frame.
  auto frame = queued->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  ASSERT_EQ(frame->kind, protocol::MessageKind::kError);
  auto err = protocol::DecodeError(frame->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->message.find("shutting down"), std::string::npos);
  EXPECT_EQ(server.stats().shed, 1);
  EXPECT_EQ(server.stats().drained, 1);
}

// Satellite: a client that vanishes mid-request must not leak its worker or
// its admission slot.
TEST_F(FailoverTest, MidStreamClientDisconnectReleasesAdmissionSlot) {
  SlowHandler handler(50);
  TdwpServerOptions options;
  options.max_connections = 1;  // a leaked slot would wedge the server
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  {
    auto raw = protocol::Socket::ConnectLocal(server.port());
    ASSERT_TRUE(raw.ok());
    protocol::LogonRequest req{"ghost", "pw", "", "ASCII"};
    protocol::Frame logon{protocol::MessageKind::kLogonRequest, 0,
                          protocol::Encode(req)};
    ASSERT_TRUE(raw->WriteFrame(logon).ok());
    ASSERT_TRUE(raw->ReadFrame().ok());  // logon response
    protocol::RunRequest run{"SELECT 1"};
    protocol::Frame f{protocol::MessageKind::kRunRequest, 0,
                      protocol::Encode(run)};
    ASSERT_TRUE(raw->WriteFrame(f).ok());
    ASSERT_TRUE(WaitFor([&] { return handler.entered() == 1; }));
  }  // client disconnects while the request is in flight

  // The worker finishes the request, fails the write, and abandons the
  // connection — releasing its slot.
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  auto st = server.stats();
  EXPECT_EQ(st.admitted, 1);
  EXPECT_EQ(st.shed, 0);

  // The slot is genuinely free: with max_connections=1 a new client gets in.
  TdwpClient next;
  ASSERT_TRUE(next.Connect(server.port()).ok());
  ASSERT_TRUE(next.Logon("u", "p").ok());
  auto r = next.Run("SELECT 1");
  ASSERT_TRUE(r.ok()) << r.status();
  next.Goodbye();
  server.Stop();
  EXPECT_EQ(server.live_workers(), 0u);
}

TEST_F(FailoverTest, ServerAdmitFaultShedsArrivingConnection) {
  SlowHandler handler(0);
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  FaultSpec spec;
  spec.kind = FaultKind::kTransient;
  spec.max_fires = 1;
  FaultInjector::Global().Arm(faultpoints::kServerAdmit, spec);

  auto raw = protocol::Socket::ConnectLocal(server.port());
  ASSERT_TRUE(raw.ok());
  auto frame = raw->ReadFrame();
  ASSERT_TRUE(frame.ok()) << frame.status();
  EXPECT_EQ(frame->kind, protocol::MessageKind::kError);
  EXPECT_EQ(server.stats().shed, 1);

  // The fault is spent: the next connection is served normally.
  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("u", "p").ok());
  ASSERT_TRUE(client.Run("SELECT 1").ok());
  client.Goodbye();
  server.Stop();
}

TEST_F(FailoverTest, PerUserSessionCapRefusesExtraLogons) {
  SlowHandler handler(0);
  TdwpServerOptions options;
  options.max_sessions_per_user = 1;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient alice1;
  ASSERT_TRUE(alice1.Connect(server.port()).ok());
  ASSERT_TRUE(alice1.Logon("alice", "pw").ok());

  // Second concurrent "alice" logon: refused, but the connection survives
  // and can log on as someone else.
  TdwpClient second;
  ASSERT_TRUE(second.Connect(server.port()).ok());
  auto refused = second.Logon("alice", "pw");
  ASSERT_FALSE(refused.ok());
  EXPECT_NE(refused.message().find("too many concurrent sessions"),
            std::string::npos)
      << refused;
  EXPECT_EQ(server.stats().user_capped_logons, 1);
  ASSERT_TRUE(second.Logon("bob", "pw").ok());
  second.Goodbye();

  // The cap frees with the session: alice can log on again after goodbye.
  alice1.Goodbye();
  ASSERT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  TdwpClient alice2;
  ASSERT_TRUE(alice2.Connect(server.port()).ok());
  ASSERT_TRUE(alice2.Logon("alice", "pw").ok());
  alice2.Goodbye();
  server.Stop();
}

}  // namespace
}  // namespace hyperq
