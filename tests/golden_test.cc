// Golden tests for the paper's worked example (Example 2): AST dump
// (Figure 4), XTRA after binding + the comp_date_to_int transformation
// (Figure 5), final XTRA after vector_subq_to_exists (Figure 6), and the
// serialized SQL (Example 3).
//
// Whitespace/formatting is normalized relative to the paper (the original
// figures mix "arith (+)" and "arith(-)"); the structure is asserted 1:1.

#include <filesystem>

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "frontend/ast_printer.h"
#include "golden_corpus.h"
#include "serializer/dialect.h"
#include "serializer/serializer.h"
#include "service/hyperq_service.h"
#include "sql/normalizer.h"
#include "sql/parser.h"
#include "transform/transformer.h"
#include "vdb/engine.h"
#include "xtra/xtra.h"

namespace hyperq {
namespace {

constexpr const char* kExample2 = R"(SEL *
FROM SALES
WHERE
  SALES_DATE > 1140101
  AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
QUALIFY RANK(AMOUNT DESC) <= 10)";

class GoldenTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef sales;
    sales.name = "SALES";
    sales.columns = {{"AMOUNT", SqlType::Decimal(12, 2), true, {}},
                     {"SALES_DATE", SqlType::Date(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(sales).ok());
    TableDef hist;
    hist.name = "SALES_HISTORY";
    hist.columns = {{"GROSS", SqlType::Decimal(12, 2), true, {}},
                    {"NET", SqlType::Decimal(12, 2), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(hist).ok());
  }

  Result<xtra::OpPtr> BindExample2() {
    HQ_ASSIGN_OR_RETURN(
        sql::StatementPtr stmt,
        sql::ParseStatement(kExample2, sql::Dialect::Teradata()));
    binder::Binder binder(&catalog_, sql::Dialect::Teradata());
    return binder.BindStatement(*stmt);
  }

  Status RunStage(transform::Stage stage, xtra::OpPtr* plan) {
    transform::Transformer xf(transform::BackendProfile::Vdb());
    binder::ColIdGenerator ids;
    for (int i = 0; i < 100000; ++i) ids.Next();
    FeatureSet features;
    return xf.Run(stage, plan, &ids, &features, &catalog_);
  }

  Catalog catalog_;
};

// Figure 4: generated AST with mixed ansi_* / td_* nodes.
TEST_F(GoldenTest, Figure4Ast) {
  auto stmt = sql::ParseStatement(kExample2, sql::Dialect::Teradata());
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  std::string dump = frontend::AstToTreeString(**stmt);
  const char* kExpected =
      "+-td_qualify\n"
      "|-ansi_select\n"
      "| |-ansi_get(SALES)\n"
      "| +-ansi_boolexpr(AND)\n"
      "| |-ansi_cmp(GT)\n"
      "| | |-td_ident(SALES_DATE)\n"
      "| | +-ansi_const(1140101)\n"
      "| +-ansi_subq(ANY, GT, [GROSS, NET])\n"
      "| |-ansi_get(SALES_HISTORY)\n"
      "| +-ansi_list\n"
      "| |-td_ident(AMOUNT)\n"
      "| +-ansi_arith(*)\n"
      "| |-td_ident(AMOUNT)\n"
      "| +-ansi_const(0.85)\n"
      "+-ansi_cmp(LTE)\n"
      "|-td_rank(AMOUNT, DESC)\n"
      "+-ansi_const(10)\n";
  EXPECT_EQ(dump, kExpected);
}

// Figure 5: XTRA after binding and the binding-stage comp_date_to_int
// transformation — the DATE side expands to the Teradata integer encoding
// while the vector subquery is still a subq(ANY, GT, [GROSS, NET]) node.
TEST_F(GoldenTest, Figure5XtraAfterBinding) {
  auto plan = BindExample2();
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(RunStage(transform::Stage::kBinding, &*plan).ok());
  std::string dump = xtra::ToTreeString(**plan);

  // Full-tree golden (Figure 5). The RANK output column carries a
  // generated name (W_5); everything else matches the paper verbatim.
  const char* kExpected =
      "+-select\n"
      "|-window(RANK, DESC, AMOUNT)\n"
      "| +-select\n"
      "| |-get(SALES)\n"
      "| +-boolexpr(AND)\n"
      "| |-comp(GT)\n"
      "| | |-arith(+)\n"
      "| | | |-extract(DAY, SALES_DATE)\n"
      "| | | |-arith(*)\n"
      "| | | | |-extract(MONTH, SALES_DATE)\n"
      "| | | | +-const(100)\n"
      "| | | +-arith(*)\n"
      "| | | |-arith(-)\n"
      "| | | | |-extract(YEAR, SALES_DATE)\n"
      "| | | | +-const(1900)\n"
      "| | | +-const(10000)\n"
      "| | +-const(1140101)\n"
      "| +-subq(ANY, GT, [GROSS, NET])\n"
      "| |-get(SALES_HISTORY)\n"
      "| +-list\n"
      "| |-ident(AMOUNT)\n"
      "| +-arith(*)\n"
      "| |-ident(AMOUNT)\n"
      "| +-const(0.85)\n"
      "+-comp(LTE)\n"
      "|-ident(W_5)\n"
      "+-const(10)\n";
  EXPECT_EQ(dump, kExpected);
}

// Figure 6: final XTRA — the quantified vector comparison became an
// existential correlated subquery with the "remap consts: (1)" projection.
TEST_F(GoldenTest, Figure6FinalXtra) {
  auto plan = BindExample2();
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(RunStage(transform::Stage::kBinding, &*plan).ok());
  ASSERT_TRUE(RunStage(transform::Stage::kSerialization, &*plan).ok());
  std::string dump = xtra::ToTreeString(**plan);

  EXPECT_NE(dump.find(
                "+-subq(EXISTS)\n"
                "| +-select\n"
                "| |-remap consts: (1)\n"
                "| | +-get(SALES_HISTORY)\n"
                "| +-boolexpr(OR)\n"
                "| |-comp(GT)\n"
                "| | |-ident(AMOUNT)\n"
                "| | +-ident(GROSS)\n"
                "| +-boolexpr(AND)\n"
                "| |-comp(EQ)\n"
                "| | |-ident(AMOUNT)\n"
                "| | +-ident(GROSS)\n"
                "| +-comp(GT)\n"
                "| |-arith(*)\n"
                "| | |-ident(AMOUNT)\n"
                "| | +-const(0.85)\n"
                "| +-ident(NET)"),
            std::string::npos)
      << dump;
  // No quantified node survives.
  EXPECT_EQ(dump.find("subq(ANY"), std::string::npos) << dump;
}

// Example 3: the serialized target SQL.
TEST_F(GoldenTest, Example3SerializedSql) {
  auto plan = BindExample2();
  ASSERT_TRUE(plan.ok()) << plan.status();
  ASSERT_TRUE(RunStage(transform::Stage::kBinding, &*plan).ok());
  ASSERT_TRUE(RunStage(transform::Stage::kSerialization, &*plan).ok());
  serializer::Serializer ser(transform::BackendProfile::Vdb());
  auto sql = ser.Serialize(**plan);
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Example 3's load-bearing elements, order-checked.
  std::vector<std::string> expect_in_order = {
      "SELECT", "RANK() OVER (ORDER BY", "AMOUNT DESC",
      "EXTRACT(DAY FROM",  "EXTRACT(MONTH FROM", "* 100",
      "EXTRACT(YEAR FROM", "- 1900", "* 10000", "> 1140101",
      "EXISTS", "SELECT 1", "SALES_HISTORY", "OR", "0.85",
      "WHERE", "<= 10"};
  size_t pos = 0;
  for (const auto& token : expect_in_order) {
    size_t at = sql->find(token, pos);
    ASSERT_NE(at, std::string::npos) << token << " missing after " << pos
                                     << " in:\n" << *sql;
    pos = at;
  }
}

// Example 1 binds cleanly: lax clause order, QUALIFY over a windowed SUM,
// chained projections and the CHARS rename.
TEST_F(GoldenTest, Example1FullPipeline) {
  TableDef product;
  product.name = "PRODUCT";
  product.columns = {{"PRODUCT_NAME", SqlType::Varchar(30), true, {}},
                     {"SALES", SqlType::Decimal(12, 2), true, {}},
                     {"STORE", SqlType::Int(), true, {}}};
  ASSERT_TRUE(catalog_.CreateTable(product).ok());

  auto stmt = sql::ParseStatement(
      "SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS "
      "SALES_OFFSET FROM PRODUCT QUALIFY 10 < SUM(SALES) OVER (PARTITION "
      "BY STORE) ORDER BY STORE, PRODUCT_NAME WHERE CHARS(PRODUCT_NAME) > 4",
      sql::Dialect::Teradata());
  ASSERT_TRUE(stmt.ok()) << stmt.status();
  binder::Binder binder(&catalog_, sql::Dialect::Teradata());
  auto plan = binder.BindStatement(**stmt);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(binder.features().Has(Feature::kQualify));
  EXPECT_TRUE(binder.features().Has(Feature::kChainedProjections));
  EXPECT_TRUE(binder.features().Has(Feature::kBuiltinRename));

  ASSERT_TRUE(RunStage(transform::Stage::kBinding, &*plan).ok());
  ASSERT_TRUE(RunStage(transform::Stage::kSerialization, &*plan).ok());
  serializer::Serializer ser(transform::BackendProfile::Vdb());
  auto sql = ser.Serialize(**plan);
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("LENGTH("), std::string::npos) << *sql;       // CHARS
  EXPECT_NE(sql->find("SUM(") , std::string::npos) << *sql;
  EXPECT_NE(sql->find("+ 100"), std::string::npos) << *sql;         // chained
  EXPECT_EQ(sql->find("QUALIFY"), std::string::npos) << *sql;
}

// ---------------------------------------------------------------------------
// File-driven translation-equivalence corpus (tests/golden/*.sql).
// ---------------------------------------------------------------------------

class GoldenCorpusTest : public ::testing::Test {
 protected:
  void SetUp() override {
    service_ =
        std::make_unique<service::HyperQService>(&engine_);
    auto sid = service_->OpenSession("golden");
    ASSERT_TRUE(sid.ok()) << sid.status();
    sid_ = *sid;
    for (const std::string& stmt : golden::SchemaStatements()) {
      auto r = service_->Submit(sid_, stmt);
      ASSERT_TRUE(r.ok()) << stmt << "\n" << r.status();
    }
    cases_ = golden::LoadGoldenCases();
    ASSERT_GE(cases_.size(), 30u)
        << "corpus shrank below the required breadth";
  }

  vdb::Engine engine_;
  std::unique_ptr<service::HyperQService> service_;
  uint32_t sid_ = 0;
  std::vector<golden::GoldenCase> cases_;
};

// Every corpus statement translates, and the SQL-B matches the checked-in
// .expected file byte-for-byte. HQ_REGEN_GOLDEN=1 rewrites the files.
TEST_F(GoldenCorpusTest, TranslationsMatchExpected) {
  bool regen = golden::RegenRequested();
  for (const auto& c : cases_) {
    auto translated = service_->Translate(c.sql, nullptr);
    ASSERT_TRUE(translated.ok()) << c.name << "\n" << translated.status();
    std::string joined = golden::JoinTranslations(*translated);
    if (regen) {
      golden::WriteTextFile(c.expected_path, joined);
      continue;
    }
    ASSERT_FALSE(c.expected.empty())
        << c.name << ": missing " << c.expected_path
        << " (run with HQ_REGEN_GOLDEN=1 to create it)";
    EXPECT_EQ(joined, c.expected) << c.name;
  }
}

// Round-trip property: serialized SQL-B must re-parse under the target
// grammar — a translation the target cannot parse is a translation bug.
TEST_F(GoldenCorpusTest, SerializedSqlReparsesUnderTargetGrammar) {
  for (const auto& c : cases_) {
    auto translated = service_->Translate(c.sql, nullptr);
    ASSERT_TRUE(translated.ok()) << c.name << "\n" << translated.status();
    for (const std::string& sql_b : *translated) {
      if (sql_b.rfind("--", 0) == 0) continue;  // emulation marker
      auto reparsed = sql::ParseStatement(sql_b, sql::Dialect::Ansi());
      EXPECT_TRUE(reparsed.ok())
          << c.name << ": SQL-B does not re-parse under the ANSI grammar\n"
          << sql_b << "\n" << reparsed.status();
    }
  }
}

// Per-dialect sub-corpora (DESIGN.md §12): every root corpus case also has
// a checked-in translation under tests/golden/<dialect>/ for each non-root
// SQL-B dialect, produced by a service running that dialect's profile.
// HQ_REGEN_GOLDEN=1 regenerates the sub-corpora together with the root.
TEST_F(GoldenCorpusTest, DialectSubCorporaMatchExpected) {
  bool regen = golden::RegenRequested();
  namespace fs = std::filesystem;
  for (const std::string& dialect : serializer::DialectNames()) {
    if (dialect == serializer::DefaultDialect().Name()) continue;
    const serializer::SQLDialectGenerator* gen =
        serializer::FindDialect(dialect);
    ASSERT_NE(gen, nullptr) << dialect;
    vdb::Engine engine;
    service::ServiceOptions options;
    options.profile = gen->Profile();
    service::HyperQService service(&engine, options);
    auto sid = service.OpenSession("golden-" + dialect);
    ASSERT_TRUE(sid.ok()) << sid.status();
    for (const std::string& stmt : golden::SchemaStatements()) {
      auto r = service.Submit(*sid, stmt);
      ASSERT_TRUE(r.ok()) << dialect << ": " << stmt << "\n" << r.status();
    }
    std::string subdir = golden::GoldenDir() + "/" + dialect;
    if (regen) fs::create_directories(subdir);
    for (const auto& c : cases_) {
      auto translated = service.Translate(c.sql, nullptr);
      ASSERT_TRUE(translated.ok())
          << dialect << "/" << c.name << "\n" << translated.status();
      std::string joined = golden::JoinTranslations(*translated);
      std::string expected_path = subdir + "/" + c.name + ".expected";
      if (regen) {
        golden::WriteTextFile(expected_path, joined);
        continue;
      }
      std::string expected = golden::ReadTextFile(expected_path);
      ASSERT_FALSE(expected.empty())
          << dialect << "/" << c.name << ": missing " << expected_path
          << " (run with HQ_REGEN_GOLDEN=1 to create it)";
      EXPECT_EQ(joined, expected) << dialect << "/" << c.name;
    }
  }
}

// The sub-corpora must be genuinely dialect-specific: for each case at
// least one non-root dialect translation differs from the root .expected
// (all-identical files would mean the generators are not being exercised).
TEST_F(GoldenCorpusTest, DialectSubCorporaDivergeFromRoot) {
  if (golden::RegenRequested()) GTEST_SKIP() << "regen run";
  int diverging_cases = 0;
  for (const auto& c : cases_) {
    for (const std::string& dialect : serializer::DialectNames()) {
      if (dialect == serializer::DefaultDialect().Name()) continue;
      std::string expected = golden::ReadTextFile(
          golden::GoldenDir() + "/" + dialect + "/" + c.name + ".expected");
      if (!expected.empty() && expected != c.expected) {
        ++diverging_cases;
        break;
      }
    }
  }
  // Nearly every case contains an identifier, so the always-quoting
  // dialects must diverge almost everywhere.
  EXPECT_GE(diverging_cases, static_cast<int>(cases_.size()) - 2);
}

// Normalization property: normalize(normalize(q)) == normalize(q). The
// cache fingerprint must be a fixed point, or equal statements could land
// on different keys.
TEST_F(GoldenCorpusTest, NormalizationIsIdempotent) {
  for (const auto& c : cases_) {
    auto norm = sql::NormalizeStatement(c.sql);
    ASSERT_TRUE(norm.ok()) << c.name << "\n" << norm.status();
    auto again = sql::NormalizeStatement(norm->template_sql);
    ASSERT_TRUE(again.ok()) << c.name << "\n" << again.status();
    EXPECT_EQ(again->template_sql, norm->template_sql) << c.name;
    EXPECT_TRUE(again->literals.empty())
        << c.name << ": literals must not survive normalization";
  }
}

}  // namespace
}  // namespace hyperq
