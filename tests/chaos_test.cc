// Network chaos suite (ctest label `chaos`, DESIGN.md §13): the ChaosNet
// link-fault engine (deterministic schedules, short I/O, corruption,
// resets, one-way partitions), the scenario DSL and orchestrator
// (apply / hold / heal, pass or fail), the slowloris frame-read guard,
// the invariant auditor (planted violations must be caught), and the
// mixed-fault soak: partition + latency + kill/revive + short I/O under
// 8 concurrent sessions with ≥99% query success and a clean audit.
//
// Soak length comes from HQ_CHAOS_SOAK_MS (default 60000). scripts/tier1.sh
// shortens it for the sanitizer passes; scripts/chaos_nightly.sh runs the
// full minute and longer.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "backend/pool.h"
#include "chaos/auditor.h"
#include "chaos/link.h"
#include "chaos/orchestrator.h"
#include "chaos/scenario.h"
#include "chaos/workload.h"
#include "common/fault.h"
#include "common/link_shim.h"
#include "common/resource_governor.h"
#include "observability/metric_names.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "protocol/socket.h"
#include "service/hyperq_service.h"
#include "transform/backend_profile.h"
#include "vdb/engine.h"

namespace hyperq {
namespace {

namespace names = observability::names;
using chaos::ChaosNet;
using chaos::ChaosOrchestrator;
using chaos::ChaosWorkload;
using chaos::ClientLedger;
using chaos::InvariantAuditor;
using chaos::LinkFaults;
using chaos::ParseScenario;
using protocol::Frame;
using protocol::MessageKind;
using protocol::Socket;
using protocol::TdwpClient;
using protocol::TdwpServer;
using protocol::TdwpServerOptions;

class ChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultInjector::Global().Reset();
    ASSERT_EQ(GlobalLinkShim(), nullptr)
        << "a previous test leaked an installed link shim";
  }
  void TearDown() override {
    SetGlobalLinkShim(nullptr);
    FaultInjector::Global().Reset();
  }
};

template <typename Cond>
::testing::AssertionResult WaitFor(Cond cond, int timeout_ms = 2000) {
  for (int i = 0; i < timeout_ms; ++i) {
    if (cond()) return ::testing::AssertionSuccess();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (cond()) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << "condition not met within " << timeout_ms << "ms";
}

std::vector<backend::BackendSpec> Replicas(int n) {
  std::vector<backend::BackendSpec> specs(n);
  for (int i = 0; i < n; ++i) {
    specs[i].name = "r" + std::to_string(i);
    specs[i].profile = transform::BackendProfile::Vdb();
  }
  return specs;
}

service::ServiceOptions FleetServiceOptions(int replicas) {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends = Replicas(replicas);
  return options;
}

// --- ChaosNet: the link-fault engine -----------------------------------------

TEST_F(ChaosTest, SameSeedSameFaultSchedule) {
  auto roll = [](uint64_t seed) {
    ChaosNet net(seed);
    LinkFaults f;
    f.short_io_probability = 0.5;
    f.reset_probability = 0.2;
    f.corrupt_send_probability = 0.3;
    net.Configure(linkscopes::kClient, f);
    std::string trace;
    for (int i = 0; i < 200; ++i) {
      LinkOp op;
      op.scope = linkscopes::kClient;
      op.send = true;
      op.requested = 64;
      size_t chunk = op.requested;
      bool blackhole = false, corrupt = false;
      Status st = net.BeforeTransfer(op, &chunk, &blackhole, &corrupt);
      trace += st.ok() ? 'o' : 'x';
      trace += std::to_string(chunk);
      trace += corrupt ? 'c' : '-';
    }
    return trace;
  };
  EXPECT_EQ(roll(7), roll(7));
  EXPECT_NE(roll(7), roll(8));
}

TEST_F(ChaosTest, OnlyLinkRestrictsBlastRadius) {
  ChaosNet net(1);
  LinkFaults f;
  f.reset_probability = 1.0;
  f.only_link = "r0";
  net.Configure(linkscopes::kBackend, f);

  LinkOp hit;
  hit.scope = linkscopes::kBackend;
  hit.link = "r0";
  hit.send = true;
  hit.requested = 32;
  size_t chunk = hit.requested;
  bool blackhole = false, corrupt = false;
  EXPECT_FALSE(net.BeforeTransfer(hit, &chunk, &blackhole, &corrupt).ok());

  LinkOp miss = hit;
  miss.link = "r1";
  chunk = miss.requested;
  EXPECT_TRUE(net.BeforeTransfer(miss, &chunk, &blackhole, &corrupt).ok());
}

TEST_F(ChaosTest, InstallUninstallRoundTrips) {
  ChaosNet net(1);
  EXPECT_EQ(GlobalLinkShim(), nullptr);
  net.Install();
  EXPECT_EQ(GlobalLinkShim(), &net);
  net.Uninstall();
  EXPECT_EQ(GlobalLinkShim(), nullptr);
}

// --- Socket-level faults over real TCP ----------------------------------------
// Satellite: the partial-transfer audit. With every chunk clamped to a few
// bytes, any Send/Recv loop that assumes one syscall moves everything
// returns garbage; bit-exact query round-trips prove the loops are right.

TEST_F(ChaosTest, ShortIoPreservesByteExactRoundTrips) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  ChaosNet net(42, service.metrics_registry());
  LinkFaults f;
  f.short_io_probability = 1.0;
  f.short_io_max_bytes = 3;
  net.Configure(linkscopes::kFrontend, f);
  net.Configure(linkscopes::kClient, f);
  net.Install();

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("CREATE TABLE T (A INTEGER, B VARCHAR(20))").ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client
                    .Run("INS INTO T VALUES (" + std::to_string(i) +
                         ", 'row-" + std::to_string(i) + "')")
                    .ok());
  }
  auto sel = client.Run("SEL * FROM T ORDER BY A");
  ASSERT_TRUE(sel.ok()) << sel.status();
  ASSERT_EQ(sel->rows.size(), 10u);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sel->rows[i][0].AsInt(), i);
    EXPECT_EQ(sel->rows[i][1].string_val(), "row-" + std::to_string(i));
  }
  client.Goodbye();
  net.Uninstall();
  EXPECT_GT(net.stats().short_ios, 0);
  server.Stop();
}

TEST_F(ChaosTest, LatencyInjectionDelaysQueries) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  ASSERT_TRUE(client.Run("SELECT 1").ok());

  ChaosNet net(42);
  LinkFaults f;
  f.latency_ms = 40;
  net.Configure(linkscopes::kClient, f);
  net.Install();
  auto t0 = std::chrono::steady_clock::now();
  ASSERT_TRUE(client.Run("SELECT 1").ok());
  auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                     std::chrono::steady_clock::now() - t0)
                     .count();
  net.Uninstall();
  EXPECT_GE(elapsed, 40);
  EXPECT_GT(net.stats().latency_injections, 0);
  client.Goodbye();
  server.Stop();
}

TEST_F(ChaosTest, ResetSurfacesAsRetryableUnavailable) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());

  ChaosNet net(42);
  LinkFaults f;
  f.reset_probability = 1.0;
  net.Configure(linkscopes::kClient, f);
  net.Install();
  auto out = client.Run("SELECT 1");
  net.Uninstall();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable) << out.status();
  EXPECT_GT(net.stats().resets, 0);
  client.HardClose();
  server.Stop();
}

TEST_F(ChaosTest, RecvPartitionStallsThenTimesOut) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());

  ChaosNet net(42);
  LinkFaults f;
  f.partition_recv = true;
  f.partition_stall_ms = 10;
  net.Configure(linkscopes::kClient, f);
  net.Install();
  auto out = client.Run("SELECT 1");
  net.Uninstall();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded)
      << out.status();
  EXPECT_GT(net.stats().partition_drops, 0);
  client.HardClose();
  server.Stop();
}

// --- Slowloris guard ---------------------------------------------------------

TEST_F(ChaosTest, StalledFrameGetsTypedFrameStallError) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServerOptions options;
  options.frame_read_timeout_ms = 120;
  TdwpServer server(&service, options);
  ASSERT_TRUE(server.Start(0).ok());

  auto conn = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(conn.ok());
  // First bytes of a frame header, then silence: a classic slowloris hold.
  uint8_t partial[3] = {static_cast<uint8_t>(MessageKind::kStatsRequest), 0,
                        0};
  ASSERT_TRUE(conn->WriteAll(partial, sizeof(partial)).ok());

  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  ASSERT_EQ(reply->kind, MessageKind::kError);
  auto err = protocol::DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, static_cast<uint32_t>(StatusCode::kDeadlineExceeded));
  EXPECT_NE(err->message.find("frame_stall"), std::string::npos)
      << err->message;
  EXPECT_NE(err->message.find("per-frame budget"), std::string::npos)
      << err->message;
  // The stream is mid-frame and unrecoverable: the server must close it.
  uint8_t byte = 0;
  EXPECT_FALSE(conn->ReadExactly(&byte, 1).ok());
  EXPECT_EQ(server.stats().frame_stalls, 1);
  EXPECT_TRUE(WaitFor([&] { return server.active_connections() == 0; }));
  server.Stop();
}

TEST_F(ChaosTest, SlowButSteadyFrameSurvivesTheGuard) {
  vdb::Engine engine;
  service::HyperQService service(&engine, {});
  TdwpServerOptions options;
  options.frame_read_timeout_ms = 2000;
  TdwpServer server(&service, options);
  ASSERT_TRUE(server.Start(0).ok());

  auto conn = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(conn.ok());
  // A stats request trickled one byte at a time: slow, but always inside
  // the budget — the guard must not reap legitimate trickle.
  Frame req{MessageKind::kStatsRequest, 0, {}};
  std::vector<uint8_t> bytes = protocol::EncodeFrame(req);
  for (uint8_t b : bytes) {
    ASSERT_TRUE(conn->WriteAll(&b, 1).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto reply = conn->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->kind, MessageKind::kStatsResponse);
  EXPECT_EQ(server.stats().frame_stalls, 0);
  server.Stop();
}

// --- Scenario DSL ------------------------------------------------------------

TEST_F(ChaosTest, ScenarioParsesTimeline) {
  auto parsed = ParseScenario(R"(
# comment
scenario storm
phase warm 100
phase degrade 250
latency client ms=5 jitter=3
short_io frontend p=0.1 max=4
partition backend recv link=r0 stall=15
phase recover 50
heal
)");
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  EXPECT_EQ(parsed->name, "storm");
  ASSERT_EQ(parsed->phases.size(), 3u);
  EXPECT_EQ(parsed->phases[0].name, "warm");
  EXPECT_EQ(parsed->phases[0].duration_ms, 100);
  EXPECT_TRUE(parsed->phases[0].actions.empty());
  ASSERT_EQ(parsed->phases[1].actions.size(), 3u);
  const auto& part = parsed->phases[1].actions[2];
  EXPECT_EQ(part.verb, "partition");
  EXPECT_EQ(part.target, "backend");
  EXPECT_EQ(part.kv.at("dir"), "recv");
  EXPECT_EQ(part.kv.at("link"), "r0");
  EXPECT_EQ(part.kv.at("stall"), "15");
  EXPECT_EQ(parsed->total_ms(), 400);
}

TEST_F(ChaosTest, ScenarioRejectsMalformedScripts) {
  EXPECT_FALSE(ParseScenario("").ok());  // no phases
  EXPECT_FALSE(ParseScenario("latency client ms=5").ok());  // before phase
  EXPECT_FALSE(ParseScenario("phase p 100\nfrobnicate client").ok());
  EXPECT_FALSE(ParseScenario("phase p 100\nlatency client").ok());  // no ms
  EXPECT_FALSE(ParseScenario("phase p 100\nlatency client ms=abc").ok());
  EXPECT_FALSE(ParseScenario("phase p 100\npartition client sideways").ok());
  EXPECT_FALSE(ParseScenario("phase p -5").ok());
  EXPECT_FALSE(ParseScenario("phase p 100\nslow 0").ok());  // no delay
}

// --- Orchestrator ------------------------------------------------------------

TEST_F(ChaosTest, OrchestratorAppliesPhasesThenHeals) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(2));
  ChaosNet net(1, service.metrics_registry());
  chaos::OrchestratorOptions opt;
  opt.net = &net;
  opt.pool = service.backend_pool();
  opt.metrics = service.metrics_registry();
  ChaosOrchestrator orch(opt);

  std::thread runner([&] {
    Status st = orch.RunScript(R"(
scenario apply_heal
phase hold 300
latency client ms=15
kill 1
)");
    EXPECT_TRUE(st.ok()) << st;
  });
  // Mid-phase: the faults are armed.
  EXPECT_TRUE(WaitFor([&] { return net.faults(linkscopes::kClient).latency_ms == 15; }, 250));
  runner.join();
  // After the run: everything healed — link config cleared, backend revived.
  EXPECT_EQ(net.faults(linkscopes::kClient).latency_ms, 0);
  auto snap = service.metrics_registry()->Snapshot();
  EXPECT_EQ(snap.CounterOr(names::kChaosScenarios, 0), 1);
  EXPECT_EQ(snap.CounterOr(names::kChaosPhases, 0), 1);
  EXPECT_EQ(snap.CounterOr(names::kChaosActions, 0), 2);
  EXPECT_EQ(snap.GaugeOr(names::kChaosScenarioActive, -1), 0);

  // The revived backend serves queries again.
  auto sid = service.OpenSession("tester");
  ASSERT_TRUE(sid.ok());
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(service.Submit(*sid, "SELECT 1").ok());
  }
  service.CloseSession(*sid);
}

TEST_F(ChaosTest, OrchestratorAbortsOnBadActionButStillHeals) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(2));
  ChaosNet net(1);
  chaos::OrchestratorOptions opt;
  opt.net = &net;
  opt.pool = service.backend_pool();
  ChaosOrchestrator orch(opt);

  Status st = orch.RunScript(R"(
scenario bad
phase p 50
latency client ms=10
kill 7
)");
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find("out of range"), std::string::npos) << st;
  EXPECT_EQ(net.faults(linkscopes::kClient).latency_ms, 0) << "not healed";
}

// --- Invariant auditor -------------------------------------------------------

TEST_F(ChaosTest, AuditorPassesCleanLedger) {
  ClientLedger ledger;
  for (int i = 0; i < 5; ++i) {
    int64_t id = ledger.Begin();
    ledger.NoteAttempt(id);
    ledger.NoteSuccess(id);
    ledger.Finish(id, true);
  }
  int64_t id = ledger.Begin();
  ledger.NoteAttempt(id);
  ledger.NoteTypedError(id, static_cast<int>(StatusCode::kUnavailable));
  ledger.Finish(id, false);

  chaos::AuditorOptions opt;
  opt.settle_ms = 50;
  InvariantAuditor auditor(opt);
  auto violations = auditor.Audit(ledger);
  EXPECT_TRUE(violations.empty())
      << "unexpected violation: " << violations.front();
  EXPECT_EQ(ledger.issued(), 6);
  EXPECT_EQ(ledger.delivered(), 5);
  EXPECT_EQ(ledger.failed(), 1);
}

TEST_F(ChaosTest, AuditorCatchesPlantedViolations) {
  ClientLedger ledger;
  // I1: double delivery.
  int64_t twice = ledger.Begin();
  ledger.NoteAttempt(twice);
  ledger.NoteSuccess(twice);
  ledger.NoteSuccess(twice);
  ledger.Finish(twice, true);
  // I3: never finished.
  ledger.Begin();
  // I3: failed with no recorded cause.
  int64_t mute = ledger.Begin();
  ledger.NoteAttempt(mute);
  ledger.Finish(mute, false);
  // I4: error frame with a code outside the StatusCode enum.
  int64_t garbled = ledger.Begin();
  ledger.NoteAttempt(garbled);
  ledger.NoteTypedError(garbled, 9999);
  ledger.Finish(garbled, false);

  chaos::AuditorOptions opt;
  opt.settle_ms = 50;
  InvariantAuditor auditor(opt);
  auto violations = auditor.Audit(ledger);
  auto has = [&](const char* tag) {
    for (const auto& v : violations) {
      if (v.find(tag) != std::string::npos) return true;
    }
    return false;
  };
  EXPECT_TRUE(has("I1 exactly-once"));
  EXPECT_TRUE(has("I3 conservation"));
  EXPECT_TRUE(has("I4 typed-errors"));
  EXPECT_GE(violations.size(), 4u);
}

TEST_F(ChaosTest, FdAndThreadCountersTrackResources) {
  int fds = InvariantAuditor::CountOpenFds();
  int threads = InvariantAuditor::CountThreads();
  ASSERT_GT(fds, 0);
  ASSERT_GT(threads, 0);
  {
    auto listener = protocol::ListenSocket::BindLocal(0);
    ASSERT_TRUE(listener.ok());
    EXPECT_GT(InvariantAuditor::CountOpenFds(), fds);
  }
  EXPECT_TRUE(WaitFor([&] {
    return InvariantAuditor::CountOpenFds() <= fds;
  }));
}

// --- Backend partition + failover --------------------------------------------

TEST_F(ChaosTest, BackendPartitionRoutesAroundReplica) {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetServiceOptions(3));
  TdwpServer server(&service);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(ChaosWorkload::SeedData(server.port(), 8).ok());

  ChaosNet net(42, service.metrics_registry());
  LinkFaults f;
  f.partition_send = true;
  f.only_link = "r0";
  net.Configure(linkscopes::kBackend, f);
  net.Install();

  // Every query must land despite one replica's request path being a
  // one-way black hole: the first failure degrades r0's health and the
  // router steers around it.
  TdwpClient client;
  ASSERT_TRUE(client.Connect(server.port()).ok());
  ASSERT_TRUE(client.Logon("alice", "pw").ok());
  int delivered = 0;
  for (int i = 0; i < 10; ++i) {
    bool ok = false;
    for (int attempt = 0; attempt < 3 && !ok; ++attempt) {
      auto out = client.Run("SEL * FROM CHAOS_T WHERE A < 3 ORDER BY A");
      if (out.ok() && out->rows.size() == 3) ok = true;
    }
    delivered += ok ? 1 : 0;
  }
  net.Uninstall();
  EXPECT_EQ(delivered, 10);
  client.Goodbye();
  server.Stop();
}

// --- The acceptance soak -----------------------------------------------------

int SoakMillis() {
  if (const char* env = std::getenv("HQ_CHAOS_SOAK_MS")) {
    int ms = std::atoi(env);
    if (ms > 0) return ms < 1000 ? 1000 : ms;
  }
  return 60000;
}

constexpr char kMixedSoakScenario[] = R"(
scenario mixed_soak
phase warm 150
phase degrade 350
latency client ms=3 jitter=4
short_io frontend p=0.08 max=5
short_io client p=0.08 max=5
corrupt client send=0.02
phase partition_replica 350
partition backend send link=r0
phase kill_revive 350
kill 1
phase recover 150
heal
)";

TEST_F(ChaosTest, MixedChaosSoakMeetsAvailabilityBarWithCleanAudit) {
  const int soak_ms = SoakMillis();
  vdb::Engine engine;
  auto options = FleetServiceOptions(3);
  auto governor = std::make_shared<ResourceGovernor>();
  options.governor = governor;
  service::HyperQService service(&engine, options);
  TdwpServerOptions server_options;
  // The slowloris guard doubles as the deadlock breaker for corrupted
  // length prefixes: a garbled frame that promises bytes the client never
  // sent would otherwise park the worker forever.
  server_options.frame_read_timeout_ms = 2000;
  TdwpServer server(&service, server_options);
  ASSERT_TRUE(server.Start(0).ok());
  ASSERT_TRUE(ChaosWorkload::SeedData(server.port(), 48).ok());

  chaos::AuditorOptions audit_options;
  audit_options.service = &service;
  audit_options.server = &server;
  audit_options.governor = governor.get();
  audit_options.metrics = service.metrics_registry();
  InvariantAuditor auditor(audit_options);
  auditor.CaptureBaseline();

  ChaosNet net(0xC4A05, service.metrics_registry());
  net.Install();

  std::atomic<bool> done{false};
  std::thread chaos_thread([&] {
    chaos::OrchestratorOptions opt;
    opt.net = &net;
    opt.pool = service.backend_pool();
    opt.metrics = service.metrics_registry();
    ChaosOrchestrator orch(opt);
    while (!done.load()) {
      Status st = orch.RunScript(kMixedSoakScenario);
      ASSERT_TRUE(st.ok()) << st;
    }
  });

  ClientLedger ledger;
  chaos::WorkloadOptions w;
  w.port = server.port();
  w.sessions = 8;
  w.duration_ms = soak_ms;
  w.max_attempts = 4;
  w.rows = 48;
  chaos::WorkloadReport report = ChaosWorkload::Run(w, &ledger);
  done.store(true);
  chaos_thread.join();
  net.Uninstall();

  auto violations = auditor.Audit(ledger);
  for (const auto& v : violations) ADD_FAILURE() << "invariant: " << v;
  EXPECT_GT(report.issued, 0);
  EXPECT_GE(report.success_rate(), 0.99)
      << report.delivered << "/" << report.issued << " delivered, "
      << report.retries << " retries";

  // The chaos actually fired: this was a storm, not a calm sea.
  auto net_stats = net.stats();
  EXPECT_GT(net_stats.short_ios, 0);
  EXPECT_GT(net_stats.latency_injections, 0);
  EXPECT_GT(net_stats.partition_drops, 0);
  auto snap = service.metrics_registry()->Snapshot();
  EXPECT_GT(snap.CounterOr(names::kChaosScenarios, 0), 0);
  EXPECT_EQ(snap.CounterOr(names::kChaosAuditViolations, 0), 0);
  server.Stop();
}

}  // namespace
}  // namespace hyperq
