// End-to-end translation pipeline tests built around the paper's running
// example (Example 2): Teradata SQL in, ANSI SQL out, executed on vdb.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "serializer/serializer.h"
#include "sql/parser.h"
#include "transform/transformer.h"
#include "vdb/engine.h"
#include "xtra/xtra.h"

namespace hyperq {
namespace {

class PipelineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef sales;
    sales.name = "SALES";
    sales.columns = {{"AMOUNT", SqlType::Decimal(12, 2), true, {}},
                     {"SALES_DATE", SqlType::Date(), true, {}},
                     {"STORE", SqlType::Int(), true, {}},
                     {"PRODUCT_NAME", SqlType::Varchar(64), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(sales).ok());

    TableDef hist;
    hist.name = "SALES_HISTORY";
    hist.columns = {{"GROSS", SqlType::Decimal(12, 2), true, {}},
                    {"NET", SqlType::Decimal(12, 2), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(hist).ok());
  }

  // Full pipeline: parse SQL-A, bind, run both transformer stages for the
  // vdb profile, serialize to SQL-B.
  Result<std::string> Translate(const std::string& sql_a) {
    HQ_ASSIGN_OR_RETURN(
        sql::StatementPtr stmt,
        sql::ParseStatement(sql_a, sql::Dialect::Teradata()));
    binder::Binder binder(&catalog_, sql::Dialect::Teradata());
    HQ_ASSIGN_OR_RETURN(xtra::OpPtr plan, binder.BindStatement(*stmt));
    transform::Transformer xf(transform::BackendProfile::Vdb());
    binder::ColIdGenerator ids;
    for (int i = 0; i < 100000; ++i) ids.Next();  // avoid id collisions
    FeatureSet features = binder.features();
    HQ_RETURN_IF_ERROR(xf.Run(transform::Stage::kBinding, &plan, &ids,
                              &features, &catalog_));
    HQ_RETURN_IF_ERROR(xf.Run(transform::Stage::kSerialization, &plan, &ids,
                              &features, &catalog_));
    serializer::Serializer ser(transform::BackendProfile::Vdb());
    return ser.Serialize(*plan);
  }

  Catalog catalog_;
};

constexpr const char* kExample2 = R"(
SEL *
FROM SALES
WHERE
  SALES_DATE > 1140101
  AND (AMOUNT, AMOUNT * 0.85) >
      ANY (SEL GROSS, NET FROM SALES_HISTORY)
QUALIFY RANK(AMOUNT DESC) <= 10;
)";

TEST_F(PipelineTest, Example2Translates) {
  auto sql = Translate(kExample2);
  ASSERT_TRUE(sql.ok()) << sql.status();
  const std::string& out = *sql;
  // Shape of the paper's Example 3.
  EXPECT_NE(out.find("RANK() OVER (ORDER BY"), std::string::npos) << out;
  EXPECT_NE(out.find("EXISTS"), std::string::npos) << out;
  EXPECT_NE(out.find("EXTRACT(DAY FROM"), std::string::npos) << out;
  EXPECT_NE(out.find("* 10000"), std::string::npos) << out;
  // No Teradata-isms may survive.
  EXPECT_EQ(out.find("QUALIFY"), std::string::npos) << out;
  EXPECT_EQ(out.find("SEL *"), std::string::npos) << out;
}

TEST_F(PipelineTest, Example2ExecutesOnVdb) {
  vdb::Engine engine;
  ASSERT_TRUE(engine
                  .ExecuteScript(
                      "CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE "
                      "DATE, STORE INTEGER, PRODUCT_NAME VARCHAR(64));"
                      "CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET "
                      "DECIMAL(12,2));"
                      "INSERT INTO SALES VALUES (100.00, DATE '2014-06-01', "
                      "1, 'widget');"
                      "INSERT INTO SALES VALUES (50.00, DATE '2014-06-02', "
                      "1, 'gadget');"
                      "INSERT INTO SALES VALUES (70.00, DATE '2013-01-01', "
                      "1, 'old');"
                      "INSERT INTO SALES_HISTORY VALUES (60.00, 40.00);")
                  .ok());
  auto sql = Translate(kExample2);
  ASSERT_TRUE(sql.ok()) << sql.status();
  auto result = engine.Execute(*sql);
  ASSERT_TRUE(result.ok()) << result.status() << "\nSQL: " << *sql;
  result->EnsureRows();
  // Row 1 (100.00, date 2014) qualifies: date > 2014-01-01 and 100 > 60.
  // Row 2 (50.00) fails the subquery; row 3 fails the date filter.
  ASSERT_EQ(result->rows.size(), 1u);
  EXPECT_EQ(result->rows[0][0].ToString(), "100.00");
}

TEST_F(PipelineTest, QualifyWithWindowSum) {
  // Paper Example 1 shape: QUALIFY over SUM() OVER with lax clause order.
  auto sql = Translate(
      "SEL PRODUCT_NAME, SALES_DATE FROM SALES "
      "QUALIFY 10 < SUM(STORE) OVER (PARTITION BY PRODUCT_NAME) "
      "ORDER BY PRODUCT_NAME WHERE STORE > 0");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("SUM(") , std::string::npos) << *sql;
  EXPECT_NE(sql->find("PARTITION BY"), std::string::npos) << *sql;
}

TEST_F(PipelineTest, ChainedProjections) {
  auto sql = Translate(
      "SEL AMOUNT AS BASE, BASE + 100 AS OFFS FROM SALES");
  ASSERT_TRUE(sql.ok()) << sql.status();
  // BASE must be expanded to its definition in the second item.
  EXPECT_NE(sql->find("+ 100"), std::string::npos) << *sql;
}

TEST_F(PipelineTest, ImplicitJoinExpansion) {
  auto sql = Translate(
      "SEL SALES.AMOUNT FROM SALES WHERE SALES.AMOUNT > "
      "SALES_HISTORY.GROSS");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("SALES_HISTORY"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("CROSS JOIN"), std::string::npos) << *sql;
}

TEST_F(PipelineTest, DateIntComparisonExpansion) {
  auto sql = Translate("SEL * FROM SALES WHERE SALES_DATE > 1140101");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("EXTRACT(YEAR FROM"), std::string::npos) << *sql;
  EXPECT_NE(sql->find("- 1900"), std::string::npos) << *sql;
}

TEST_F(PipelineTest, TopBecomesLimit) {
  auto sql = Translate("SEL TOP 5 AMOUNT FROM SALES ORDER BY AMOUNT DESC");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("LIMIT 5"), std::string::npos) << *sql;
}

}  // namespace
}  // namespace hyperq
