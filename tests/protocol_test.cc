// tdwp message codec and record-format tests, including bit-level
// round-trip properties and the Teradata DATE wire encoding.

#include <gtest/gtest.h>

#include "protocol/tdwp.h"
#include "types/date.h"

namespace hyperq::protocol {
namespace {

TEST(TdwpCodecTest, LogonRoundTrip) {
  LogonRequest req;
  req.user = "alice";
  req.password = "s3cret";
  req.default_database = "SALES";
  req.charset = "UTF8";
  auto decoded = DecodeLogonRequest(Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user, "alice");
  EXPECT_EQ(decoded->password, "s3cret");
  EXPECT_EQ(decoded->default_database, "SALES");
  EXPECT_EQ(decoded->charset, "UTF8");
}

TEST(TdwpCodecTest, LogonResponseRoundTrip) {
  LogonResponse resp;
  resp.ok = true;
  resp.session_id = 77;
  resp.message = "welcome";
  auto decoded = DecodeLogonResponse(Encode(resp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->session_id, 77u);
}

TEST(TdwpCodecTest, ResultHeaderRoundTrip) {
  ResultHeader header;
  header.columns = {{"A", WireType::kInteger, 0, 0},
                    {"D", WireType::kDecimal, 0, 2},
                    {"S", WireType::kChar, 10, 0}};
  header.total_rows = 123456789;
  auto decoded = DecodeResultHeader(Encode(header));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->total_rows, 123456789u);
  ASSERT_EQ(decoded->columns.size(), 3u);
  EXPECT_EQ(decoded->columns[1].scale, 2);
  EXPECT_EQ(decoded->columns[2].length, 10);
}

TEST(TdwpCodecTest, SuccessCarriesTimingBreakdown) {
  SuccessMessage s;
  s.activity_count = 9;
  s.tag = "SELECT";
  s.translation_micros = 12.5;
  s.execution_micros = 100.25;
  s.conversion_micros = 3.75;
  auto decoded = DecodeSuccess(Encode(s));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->activity_count, 9u);
  EXPECT_DOUBLE_EQ(decoded->translation_micros, 12.5);
  EXPECT_DOUBLE_EQ(decoded->conversion_micros, 3.75);
}

TEST(TdwpCodecTest, TruncatedPayloadRejected) {
  auto bytes = Encode(LogonRequest{"u", "p", "", ""});
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeLogonRequest(bytes).ok());
}

TEST(RecordFormatTest, DateTravelsAsTeradataInteger) {
  auto col = ToWireColumn("D", SqlType::Date());
  ASSERT_TRUE(col.ok());
  std::vector<WireColumn> schema = {*col};
  int32_t days = DaysFromCivil(2014, 1, 1);
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema, {Datum::Date(days)}, &w).ok());
  // Peek into the record: u16 length + 1 bitmap byte + i32 value.
  BufferReader peek(w.data(), w.size());
  ASSERT_TRUE(peek.Skip(2 + 1).ok());
  auto enc = peek.GetI32();
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc, 1140101);  // the paper's encoding of 2014-01-01
  // And decodes back to the same calendar date.
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].date_val(), days);
}

TEST(RecordFormatTest, CharIsFixedWidthBlankPadded) {
  auto col = ToWireColumn("C", SqlType::Char(6));
  ASSERT_TRUE(col.ok());
  std::vector<WireColumn> schema = {*col};
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema, {Datum::String("ab")}, &w).ok());
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].string_val(), "ab    ");
}

TEST(RecordFormatTest, NullBitmapMarksAbsentFields) {
  std::vector<WireColumn> schema;
  for (const char* n : {"A", "B", "C"}) {
    auto col = ToWireColumn(n, SqlType::Int());
    ASSERT_TRUE(col.ok());
    schema.push_back(*col);
  }
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema,
                           {Datum::Int(1), Datum::Null(), Datum::Int(3)}, &w)
                  .ok());
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].int_val(), 1);
  EXPECT_TRUE((*row)[1].is_null());
  EXPECT_EQ((*row)[2].int_val(), 3);
}

// Property: records round-trip bit-identically for a mixed schema across
// many generated rows.
class RecordRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecordRoundTripProperty, RoundTrip) {
  std::vector<WireColumn> schema;
  SqlType types[] = {SqlType::Int(),       SqlType::Decimal(12, 2),
                     SqlType::Double(),    SqlType::Varchar(40),
                     SqlType::Date(),      SqlType::Char(8),
                     SqlType::Timestamp(), SqlType::SmallInt()};
  int i = 0;
  for (const auto& t : types) {
    auto col = ToWireColumn("C" + std::to_string(i++), t);
    ASSERT_TRUE(col.ok());
    schema.push_back(*col);
  }
  uint64_t seed = 0x9E3779B97F4A7C15ULL * (GetParam() + 1);
  auto next = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int row_i = 0; row_i < 50; ++row_i) {
    std::vector<Datum> row;
    row.push_back(next() % 7 == 0 ? Datum::Null()
                                  : Datum::Int(static_cast<int32_t>(next())));
    row.push_back(Datum::MakeDecimal(
        Decimal{static_cast<int64_t>(next() % 1000000) - 500000, 2}));
    row.push_back(Datum::MakeDouble(static_cast<double>(next() % 10000) / 7));
    row.push_back(Datum::String(std::string(next() % 30, 'x')));
    row.push_back(Datum::Date(static_cast<int32_t>(next() % 40000)));
    row.push_back(Datum::String("fix"));
    row.push_back(Datum::Timestamp(static_cast<int64_t>(next() % (1LL << 40))));
    row.push_back(next() % 5 == 0 ? Datum::Null()
                                  : Datum::Int(static_cast<int16_t>(next())));
    BufferWriter w;
    ASSERT_TRUE(EncodeRecord(schema, row, &w).ok());
    BufferReader r(w.data(), w.size());
    auto decoded = DecodeRecord(schema, &r);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), row.size());
    // Null pattern and key values survive.
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ((*decoded)[c].is_null(), row[c].is_null()) << c;
    }
    if (!row[0].is_null()) {
      EXPECT_EQ((*decoded)[0].int_val(), row[0].int_val());
    }
    EXPECT_EQ((*decoded)[1].decimal_val().ToString(),
              row[1].decimal_val().ToString());
    EXPECT_EQ((*decoded)[3].string_val(), row[3].string_val());
    EXPECT_EQ((*decoded)[4].date_val(), row[4].date_val());
    EXPECT_EQ((*decoded)[5].string_val(), "fix     ");  // CHAR(8) padded
    EXPECT_EQ((*decoded)[6].timestamp_val(), row[6].timestamp_val());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordRoundTripProperty,
                         ::testing::Range(0, 6));

TEST(FrameTest, HeaderLayout) {
  Frame f{MessageKind::kRunRequest, 0, {1, 2, 3}};
  auto bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), 8u + 3u);
  EXPECT_EQ(bytes[0], static_cast<uint8_t>(MessageKind::kRunRequest));
  uint32_t len;
  std::memcpy(&len, bytes.data() + 4, 4);
  EXPECT_EQ(len, 3u);
}

TEST(WireColumnTest, IntervalHasNoWireForm) {
  EXPECT_FALSE(ToWireColumn("I", SqlType::Interval()).ok());
}

}  // namespace
}  // namespace hyperq::protocol
