// tdwp message codec and record-format tests, including bit-level
// round-trip properties and the Teradata DATE wire encoding, plus server
// robustness against malformed/truncated frames and overload.

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "protocol/client.h"
#include "protocol/server.h"
#include "protocol/socket.h"
#include "protocol/tdwp.h"
#include "types/date.h"

namespace hyperq::protocol {
namespace {

TEST(TdwpCodecTest, LogonRoundTrip) {
  LogonRequest req;
  req.user = "alice";
  req.password = "s3cret";
  req.default_database = "SALES";
  req.charset = "UTF8";
  auto decoded = DecodeLogonRequest(Encode(req));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->user, "alice");
  EXPECT_EQ(decoded->password, "s3cret");
  EXPECT_EQ(decoded->default_database, "SALES");
  EXPECT_EQ(decoded->charset, "UTF8");
}

TEST(TdwpCodecTest, LogonResponseRoundTrip) {
  LogonResponse resp;
  resp.ok = true;
  resp.session_id = 77;
  resp.message = "welcome";
  auto decoded = DecodeLogonResponse(Encode(resp));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->ok);
  EXPECT_EQ(decoded->session_id, 77u);
}

TEST(TdwpCodecTest, ResultHeaderRoundTrip) {
  ResultHeader header;
  header.columns = {{"A", WireType::kInteger, 0, 0},
                    {"D", WireType::kDecimal, 0, 2},
                    {"S", WireType::kChar, 10, 0}};
  header.total_rows = 123456789;
  auto decoded = DecodeResultHeader(Encode(header));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->total_rows, 123456789u);
  ASSERT_EQ(decoded->columns.size(), 3u);
  EXPECT_EQ(decoded->columns[1].scale, 2);
  EXPECT_EQ(decoded->columns[2].length, 10);
}

TEST(TdwpCodecTest, SuccessCarriesTimingBreakdown) {
  SuccessMessage s;
  s.activity_count = 9;
  s.tag = "SELECT";
  s.translation_micros = 12.5;
  s.execution_micros = 100.25;
  s.conversion_micros = 3.75;
  auto decoded = DecodeSuccess(Encode(s));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->activity_count, 9u);
  EXPECT_DOUBLE_EQ(decoded->translation_micros, 12.5);
  EXPECT_DOUBLE_EQ(decoded->conversion_micros, 3.75);
}

TEST(TdwpCodecTest, TruncatedPayloadRejected) {
  auto bytes = Encode(LogonRequest{"u", "p", "", ""});
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(DecodeLogonRequest(bytes).ok());
}

TEST(RecordFormatTest, DateTravelsAsTeradataInteger) {
  auto col = ToWireColumn("D", SqlType::Date());
  ASSERT_TRUE(col.ok());
  std::vector<WireColumn> schema = {*col};
  int32_t days = DaysFromCivil(2014, 1, 1);
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema, {Datum::Date(days)}, &w).ok());
  // Peek into the record: u16 length + 1 bitmap byte + i32 value.
  BufferReader peek(w.data(), w.size());
  ASSERT_TRUE(peek.Skip(2 + 1).ok());
  auto enc = peek.GetI32();
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(*enc, 1140101);  // the paper's encoding of 2014-01-01
  // And decodes back to the same calendar date.
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].date_val(), days);
}

TEST(RecordFormatTest, CharIsFixedWidthBlankPadded) {
  auto col = ToWireColumn("C", SqlType::Char(6));
  ASSERT_TRUE(col.ok());
  std::vector<WireColumn> schema = {*col};
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema, {Datum::String("ab")}, &w).ok());
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].string_val(), "ab    ");
}

TEST(RecordFormatTest, NullBitmapMarksAbsentFields) {
  std::vector<WireColumn> schema;
  for (const char* n : {"A", "B", "C"}) {
    auto col = ToWireColumn(n, SqlType::Int());
    ASSERT_TRUE(col.ok());
    schema.push_back(*col);
  }
  BufferWriter w;
  ASSERT_TRUE(EncodeRecord(schema,
                           {Datum::Int(1), Datum::Null(), Datum::Int(3)}, &w)
                  .ok());
  BufferReader r(w.data(), w.size());
  auto row = DecodeRecord(schema, &r);
  ASSERT_TRUE(row.ok());
  EXPECT_EQ((*row)[0].int_val(), 1);
  EXPECT_TRUE((*row)[1].is_null());
  EXPECT_EQ((*row)[2].int_val(), 3);
}

// Property: records round-trip bit-identically for a mixed schema across
// many generated rows.
class RecordRoundTripProperty : public ::testing::TestWithParam<int> {};

TEST_P(RecordRoundTripProperty, RoundTrip) {
  std::vector<WireColumn> schema;
  SqlType types[] = {SqlType::Int(),       SqlType::Decimal(12, 2),
                     SqlType::Double(),    SqlType::Varchar(40),
                     SqlType::Date(),      SqlType::Char(8),
                     SqlType::Timestamp(), SqlType::SmallInt()};
  int i = 0;
  for (const auto& t : types) {
    auto col = ToWireColumn("C" + std::to_string(i++), t);
    ASSERT_TRUE(col.ok());
    schema.push_back(*col);
  }
  uint64_t seed = 0x9E3779B97F4A7C15ULL * (GetParam() + 1);
  auto next = [&]() {
    seed ^= seed << 13;
    seed ^= seed >> 7;
    seed ^= seed << 17;
    return seed;
  };
  for (int row_i = 0; row_i < 50; ++row_i) {
    std::vector<Datum> row;
    row.push_back(next() % 7 == 0 ? Datum::Null()
                                  : Datum::Int(static_cast<int32_t>(next())));
    row.push_back(Datum::MakeDecimal(
        Decimal{static_cast<int64_t>(next() % 1000000) - 500000, 2}));
    row.push_back(Datum::MakeDouble(static_cast<double>(next() % 10000) / 7));
    row.push_back(Datum::String(std::string(next() % 30, 'x')));
    row.push_back(Datum::Date(static_cast<int32_t>(next() % 40000)));
    row.push_back(Datum::String("fix"));
    row.push_back(Datum::Timestamp(static_cast<int64_t>(next() % (1LL << 40))));
    row.push_back(next() % 5 == 0 ? Datum::Null()
                                  : Datum::Int(static_cast<int16_t>(next())));
    BufferWriter w;
    ASSERT_TRUE(EncodeRecord(schema, row, &w).ok());
    BufferReader r(w.data(), w.size());
    auto decoded = DecodeRecord(schema, &r);
    ASSERT_TRUE(decoded.ok());
    ASSERT_EQ(decoded->size(), row.size());
    // Null pattern and key values survive.
    for (size_t c = 0; c < row.size(); ++c) {
      EXPECT_EQ((*decoded)[c].is_null(), row[c].is_null()) << c;
    }
    if (!row[0].is_null()) {
      EXPECT_EQ((*decoded)[0].int_val(), row[0].int_val());
    }
    EXPECT_EQ((*decoded)[1].decimal_val().ToString(),
              row[1].decimal_val().ToString());
    EXPECT_EQ((*decoded)[3].string_val(), row[3].string_val());
    EXPECT_EQ((*decoded)[4].date_val(), row[4].date_val());
    EXPECT_EQ((*decoded)[5].string_val(), "fix     ");  // CHAR(8) padded
    EXPECT_EQ((*decoded)[6].timestamp_val(), row[6].timestamp_val());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecordRoundTripProperty,
                         ::testing::Range(0, 6));

TEST(FrameTest, HeaderLayout) {
  Frame f{MessageKind::kRunRequest, 0, {1, 2, 3}};
  auto bytes = EncodeFrame(f);
  ASSERT_EQ(bytes.size(), 8u + 3u);
  EXPECT_EQ(bytes[0], static_cast<uint8_t>(MessageKind::kRunRequest));
  uint32_t len;
  std::memcpy(&len, bytes.data() + 4, 4);
  EXPECT_EQ(len, 3u);
}

TEST(WireColumnTest, IntervalHasNoWireForm) {
  EXPECT_FALSE(ToWireColumn("I", SqlType::Interval()).ok());
}

// --- Server robustness ------------------------------------------------------

// Minimal handler so the wire layer is tested without the whole service.
class StubHandler : public RequestHandler {
 public:
  Result<LogonResponse> Logon(const LogonRequest& request) override {
    LogonResponse resp;
    resp.ok = true;
    resp.session_id = ++sessions_;
    resp.message = "hello " + request.user;
    return resp;
  }
  void Logoff(uint32_t) override { ++logoffs_; }
  Result<WireResponse> Run(uint32_t, const std::string& sql,
                           QueryContext*) override {
    WireResponse resp;
    resp.success.tag = "OK";
    resp.success.activity_count = sql.size();
    return resp;
  }
  uint32_t sessions_ = 0;
  uint32_t logoffs_ = 0;
};

// One scripted session proving the server still serves traffic.
void ExpectServerAlive(uint16_t port) {
  TdwpClient client;
  ASSERT_TRUE(client.Connect(port).ok());
  ASSERT_TRUE(client.Logon("probe", "pw").ok());
  auto result = client.Run("SELECT X");
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->tag, "OK");
  client.Goodbye();
}

void WaitForActiveConnections(const TdwpServer& server, size_t want) {
  for (int i = 0; i < 200 && server.active_connections() != want; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(server.active_connections(), want);
}

TEST(ServerRobustnessTest, OversizedLengthPrefixGetsErrorThenClose) {
  StubHandler handler;
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  auto raw = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(raw.ok());
  // Header claiming a 1 GiB payload: kind, flags, resv, little-endian len.
  uint8_t header[8] = {static_cast<uint8_t>(MessageKind::kRunRequest), 0, 0,
                       0, 0, 0, 0, 0x40};
  ASSERT_TRUE(raw->WriteAll(header, sizeof(header)).ok());
  auto reply = raw->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->kind, MessageKind::kError);
  auto err = DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->message.find("oversized"), std::string::npos);
  // The stream cannot be resynchronized: the server closes it...
  EXPECT_FALSE(raw->ReadFrame().ok());
  // ...but keeps serving everyone else.
  ExpectServerAlive(server.port());
  server.Stop();
}

TEST(ServerRobustnessTest, ZeroLengthRunFrameGetsErrorReply) {
  StubHandler handler;
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  auto raw = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(raw.ok());
  // A zero-length RUN payload is structurally invalid (no SQL string).
  Frame empty{MessageKind::kRunRequest, 0, {}};
  ASSERT_TRUE(raw->WriteFrame(empty).ok());
  auto reply = raw->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->kind, MessageKind::kError);
  // The connection survives a per-message error: logon still works.
  Frame logon{MessageKind::kLogonRequest, 0,
              Encode(LogonRequest{"u", "p", "", "ASCII"})};
  ASSERT_TRUE(raw->WriteFrame(logon).ok());
  auto logon_reply = raw->ReadFrame();
  ASSERT_TRUE(logon_reply.ok());
  EXPECT_EQ(logon_reply->kind, MessageKind::kLogonResponse);
  server.Stop();
}

TEST(ServerRobustnessTest, MidFrameDisconnectClosesCleanly) {
  StubHandler handler;
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  {
    auto raw = Socket::ConnectLocal(server.port());
    ASSERT_TRUE(raw.ok());
    // Half a header, then disappear.
    uint8_t partial[4] = {static_cast<uint8_t>(MessageKind::kRunRequest), 0,
                          0, 0};
    ASSERT_TRUE(raw->WriteAll(partial, sizeof(partial)).ok());
  }  // socket closes here
  WaitForActiveConnections(server, 0);

  {
    // Disconnect mid-payload, after a valid header announcing 64 bytes.
    auto raw = Socket::ConnectLocal(server.port());
    ASSERT_TRUE(raw.ok());
    uint8_t header[8] = {static_cast<uint8_t>(MessageKind::kRunRequest), 0, 0,
                         0, 64, 0, 0, 0};
    ASSERT_TRUE(raw->WriteAll(header, sizeof(header)).ok());
    uint8_t some[10] = {0};
    ASSERT_TRUE(raw->WriteAll(some, sizeof(some)).ok());
  }
  WaitForActiveConnections(server, 0);
  ExpectServerAlive(server.port());
  server.Stop();
}

TEST(ServerRobustnessTest, SaturatedServerSendsCleanErrorFrame) {
  StubHandler handler;
  TdwpServerOptions options;
  options.max_connections = 1;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  TdwpClient first;
  ASSERT_TRUE(first.Connect(server.port()).ok());
  ASSERT_TRUE(first.Logon("one", "pw").ok());
  WaitForActiveConnections(server, 1);

  auto second = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(second.ok());
  auto reply = second->ReadFrame();
  ASSERT_TRUE(reply.ok()) << reply.status();
  EXPECT_EQ(reply->kind, MessageKind::kError);
  auto err = DecodeError(reply->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_EQ(err->code, static_cast<uint32_t>(StatusCode::kResourceExhausted));
  EXPECT_NE(err->message.find("capacity"), std::string::npos);
  EXPECT_EQ(server.rejected_connections(), 1);

  // Capacity frees up once the first client leaves.
  first.Goodbye();
  WaitForActiveConnections(server, 0);
  ExpectServerAlive(server.port());
  server.Stop();
}

TEST(ServerRobustnessTest, IdleConnectionIsReapedWithErrorFrame) {
  StubHandler handler;
  TdwpServerOptions options;
  options.idle_timeout_ms = 15;
  TdwpServer server(&handler, options);
  ASSERT_TRUE(server.Start(0).ok());

  auto raw = Socket::ConnectLocal(server.port());
  ASSERT_TRUE(raw.ok());
  Frame logon{MessageKind::kLogonRequest, 0,
              Encode(LogonRequest{"idle", "pw", "", "ASCII"})};
  ASSERT_TRUE(raw->WriteFrame(logon).ok());
  auto logon_reply = raw->ReadFrame();
  ASSERT_TRUE(logon_reply.ok());
  EXPECT_EQ(logon_reply->kind, MessageKind::kLogonResponse);

  // Say nothing: the server must reap us instead of pinning a thread.
  auto reaped = raw->ReadFrame();
  ASSERT_TRUE(reaped.ok()) << reaped.status();
  EXPECT_EQ(reaped->kind, MessageKind::kError);
  auto err = DecodeError(reaped->payload);
  ASSERT_TRUE(err.ok());
  EXPECT_NE(err->message.find("idle"), std::string::npos);
  WaitForActiveConnections(server, 0);
  EXPECT_EQ(handler.logoffs_, 1u) << "reaped sessions must be logged off";
  server.Stop();
}

TEST(ServerRobustnessTest, FinishedWorkersAreReapedWhileRunning) {
  StubHandler handler;
  TdwpServer server(&handler);
  ASSERT_TRUE(server.Start(0).ok());

  for (int i = 0; i < 8; ++i) {
    TdwpClient client;
    ASSERT_TRUE(client.Connect(server.port()).ok());
    ASSERT_TRUE(client.Logon("user", "pw").ok());
    ASSERT_TRUE(client.Run("Q").ok());
    client.Goodbye();
    WaitForActiveConnections(server, 0);
  }
  // One more accept gives the server a reaping opportunity; the worker list
  // must be bounded by live connections, not by connections ever served.
  ExpectServerAlive(server.port());
  WaitForActiveConnections(server, 0);
  { Socket poke = std::move(Socket::ConnectLocal(server.port())).value(); }
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_LE(server.live_workers(), 2u);
  EXPECT_EQ(handler.logoffs_, 9u);
  server.Stop();
}

}  // namespace
}  // namespace hyperq::protocol
