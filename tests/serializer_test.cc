// Serializer tests: SQL-B synthesis details, quoting, literals, and the
// capability guard errors for constructs that must not reach it.

#include <gtest/gtest.h>

#include "binder/binder.h"
#include "serializer/dialect.h"
#include "serializer/serializer.h"
#include "sql/parser.h"
#include "types/date.h"
#include "transform/transformer.h"
#include "vdb/engine.h"

namespace hyperq::serializer {
namespace {

class SerializerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TableDef t;
    t.name = "T";
    t.columns = {{"A", SqlType::Int(), true, {}},
                 {"B", SqlType::Varchar(20), true, {}},
                 {"D", SqlType::Date(), true, {}},
                 {"P", SqlType::PeriodDate(), true, {}}};
    ASSERT_TRUE(catalog_.CreateTable(t).ok());
  }

  // Bind only (no transformations) — tests the serializer's raw behaviour.
  Result<std::string> SerializeRaw(const std::string& sql,
                                   transform::BackendProfile profile =
                                       transform::BackendProfile::Vdb()) {
    HQ_ASSIGN_OR_RETURN(sql::StatementPtr stmt,
                        sql::ParseStatement(sql, sql::Dialect::Teradata()));
    binder::Binder binder(&catalog_, sql::Dialect::Teradata());
    HQ_ASSIGN_OR_RETURN(xtra::OpPtr plan, binder.BindStatement(*stmt));
    Serializer ser(profile);
    return ser.Serialize(*plan);
  }

  // Full translate + re-execute on vdb to prove emitted SQL re-parses.
  void RoundTripsThroughVdb(const std::string& sql_b) {
    vdb::Engine engine;
    ASSERT_TRUE(engine
                    .ExecuteScript(
                        "CREATE TABLE T (A INTEGER, B VARCHAR(20), D DATE, "
                        "P_BEGIN DATE, P_END DATE)")
                    .ok());
    auto r = engine.Execute(sql_b);
    EXPECT_TRUE(r.ok()) << sql_b << "\n" << r.status();
  }

  Catalog catalog_;
};

TEST_F(SerializerTest, LiteralRendering) {
  auto sql = SerializeRaw(
      "SEL A FROM T WHERE B = 'it''s' AND D = DATE '2014-01-01' AND A = "
      "-5 AND B IS NULL");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("'it''s'"), std::string::npos);
  EXPECT_NE(sql->find("DATE '2014-01-01'"), std::string::npos);
  EXPECT_NE(sql->find("IS NULL"), std::string::npos);
  RoundTripsThroughVdb(*sql);
}

TEST_F(SerializerTest, FloatLiteralStaysFloat) {
  auto sql = SerializeRaw("SEL A FROM T WHERE A > 2e0");
  ASSERT_TRUE(sql.ok());
  // Must re-parse as a double, not an integer.
  EXPECT_NE(sql->find("2.0"), std::string::npos) << *sql;
}

TEST_F(SerializerTest, AliasesAreUniqueAndDeterministic) {
  auto a = SerializeRaw("SEL x.A FROM (SEL A FROM T) x, (SEL A FROM T) y");
  ASSERT_TRUE(a.ok()) << a.status();
  EXPECT_NE(a->find("T1"), std::string::npos);
  EXPECT_NE(a->find("T2"), std::string::npos);
  auto b = SerializeRaw("SEL x.A FROM (SEL A FROM T) x, (SEL A FROM T) y");
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(*a, *b);  // deterministic output
}

TEST_F(SerializerTest, QuotesNonSimpleIdentifiers) {
  TableDef weird;
  weird.name = "Weird Name";
  weird.columns = {{"Spaced Col", SqlType::Int(), true, {}}};
  ASSERT_TRUE(catalog_.CreateTable(weird).ok());
  auto sql = SerializeRaw("SEL \"Spaced Col\" FROM \"Weird Name\"");
  ASSERT_TRUE(sql.ok()) << sql.status();
  // Table names are normalized to upper case by the catalog.
  EXPECT_NE(sql->find("\"WEIRD NAME\""), std::string::npos) << *sql;
  EXPECT_NE(sql->find("\"Spaced Col\""), std::string::npos) << *sql;
}

TEST_F(SerializerTest, RecursionMustBeEmulated) {
  auto sql = SerializeRaw(
      "WITH RECURSIVE R (N) AS (SEL A FROM T UNION ALL SEL N FROM R WHERE "
      "N < 3) SEL N FROM R");
  ASSERT_FALSE(sql.ok());
  EXPECT_TRUE(sql.status().IsNotSupported());
  EXPECT_NE(sql.status().message().find("emulation"), std::string::npos);
}

TEST_F(SerializerTest, VectorSubqueryGuard) {
  // Without the transformer, a vector subquery must not silently serialize
  // for a target that cannot run it.
  auto sql = SerializeRaw(
      "SEL A FROM T WHERE (A, A) > ANY (SEL A, A FROM T)");
  ASSERT_FALSE(sql.ok());
  EXPECT_TRUE(sql.status().IsNotSupported());
}

TEST_F(SerializerTest, GroupingSetsGuard) {
  auto sql = SerializeRaw("SEL A, COUNT(*) FROM T GROUP BY ROLLUP(A)");
  ASSERT_FALSE(sql.ok());
  EXPECT_TRUE(sql.status().IsNotSupported());
}

TEST_F(SerializerTest, PeriodColumnsRequireAccessors) {
  auto bare = SerializeRaw("SEL P FROM T");
  ASSERT_FALSE(bare.ok());
  EXPECT_TRUE(bare.status().IsNotSupported());
  auto accessors = SerializeRaw(
      "SEL A FROM T WHERE BEGIN(P) > DATE '2014-01-01' AND END(P) < DATE "
      "'2015-01-01'");
  ASSERT_TRUE(accessors.ok()) << accessors.status();
  EXPECT_NE(accessors->find("P_BEGIN"), std::string::npos) << *accessors;
  EXPECT_NE(accessors->find("P_END"), std::string::npos) << *accessors;
  RoundTripsThroughVdb(*accessors);
}

TEST_F(SerializerTest, DmlForms) {
  auto ins = SerializeRaw("INS INTO T (A, B) VALUES (1, 'x'), (2, 'y')");
  ASSERT_TRUE(ins.ok());
  EXPECT_EQ(ins->find("SELECT"), std::string::npos);
  EXPECT_NE(ins->find("VALUES (1, 'x'), (2, 'y')"), std::string::npos);

  auto upd = SerializeRaw("UPD T SET A = A + 1 WHERE B = 'x'");
  ASSERT_TRUE(upd.ok());
  EXPECT_NE(upd->find("UPDATE T SET A ="), std::string::npos) << *upd;

  auto del = SerializeRaw("DEL FROM T");
  ASSERT_TRUE(del.ok());
  EXPECT_EQ(*del, "DELETE FROM T");
}

TEST_F(SerializerTest, UpdateCorrelatedSubqueryQualifiesTarget) {
  TableDef s;
  s.name = "S";
  s.columns = {{"A", SqlType::Int(), true, {}},
               {"V", SqlType::Int(), true, {}}};
  ASSERT_TRUE(catalog_.CreateTable(s).ok());
  auto upd = SerializeRaw(
      "UPD T SET A = 0 WHERE EXISTS (SEL 1 FROM S WHERE S.A = T.A)");
  ASSERT_TRUE(upd.ok()) << upd.status();
  // The outer reference must be target-qualified inside the subquery.
  EXPECT_NE(upd->find("= T.A"), std::string::npos) << *upd;
}

TEST_F(SerializerTest, FromlessSelect) {
  auto sql = SerializeRaw("SEL 1 + 1 AS two");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_EQ(sql->find("FROM"), std::string::npos) << *sql;
  vdb::Engine engine;
  auto r = engine.Execute(*sql);
  ASSERT_TRUE(r.ok());
  r->EnsureRows();
  EXPECT_EQ(r->rows[0][0].int_val(), 2);
}

TEST_F(SerializerTest, WindowSpecRendering) {
  auto sql = SerializeRaw(
      "SEL A, SUM(A) OVER (PARTITION BY B ORDER BY D DESC) FROM T");
  ASSERT_TRUE(sql.ok()) << sql.status();
  EXPECT_NE(sql->find("SUM(T.A) OVER (PARTITION BY T.B ORDER BY T.D DESC)"),
            std::string::npos)
      << *sql;
}

// ---------------------------------------------------------------------------
// Pluggable dialect generators (DESIGN.md §12)
// ---------------------------------------------------------------------------

TEST(DialectRegistryTest, ThreeDialectsRegisteredAndResolvable) {
  auto names = DialectNames();
  ASSERT_GE(names.size(), 3u);
  for (const auto& n : {"ansi", "sierra", "granite"}) {
    const SQLDialectGenerator* gen = FindDialect(n);
    ASSERT_NE(gen, nullptr) << n;
    EXPECT_EQ(gen->Name(), n);
    EXPECT_EQ(gen->Profile().dialect, n);
  }
  EXPECT_EQ(FindDialect("no-such"), nullptr);
  EXPECT_EQ(DefaultDialect().Name(), "ansi");
}

TEST(DialectRegistryTest, CapabilityMatricesDiverge) {
  const auto& ansi = FindDialect("ansi")->Profile();
  const auto& sierra = FindDialect("sierra")->Profile();
  const auto& granite = FindDialect("granite")->Profile();
  // Sierra loses quantified subqueries (the EXISTS rewrites must fire);
  // granite gains native date arithmetic and NULLs-sort-low semantics.
  EXPECT_TRUE(ansi.supports_quantified_subquery);
  EXPECT_FALSE(sierra.supports_quantified_subquery);
  EXPECT_TRUE(granite.supports_quantified_subquery);
  EXPECT_FALSE(ansi.supports_date_arithmetic);
  EXPECT_TRUE(granite.supports_date_arithmetic);
  EXPECT_FALSE(ansi.nulls_sort_low);
  EXPECT_TRUE(granite.nulls_sort_low);
  // Three pairwise-distinct cache digests.
  EXPECT_NE(ansi.CacheKeyDigest(), sierra.CacheKeyDigest());
  EXPECT_NE(ansi.CacheKeyDigest(), granite.CacheKeyDigest());
  EXPECT_NE(sierra.CacheKeyDigest(), granite.CacheKeyDigest());
}

TEST(DialectGeneratorTest, IdentifierQuotingDiverges) {
  const auto& ansi = *FindDialect("ansi");
  const auto& sierra = *FindDialect("sierra");
  const auto& granite = *FindDialect("granite");
  // Simple identifier: ansi leaves it bare, the others always quote.
  EXPECT_EQ(ansi.QuoteIdent("SALES"), "SALES");
  EXPECT_EQ(sierra.QuoteIdent("SALES"), "`SALES`");
  EXPECT_EQ(granite.QuoteIdent("SALES"), "\"SALES\"");
  // Non-simple identifier: everyone quotes, each in its own style.
  EXPECT_EQ(ansi.QuoteIdent("ORDER TOTAL"), "\"ORDER TOTAL\"");
  EXPECT_EQ(sierra.QuoteIdent("ORDER TOTAL"), "`ORDER TOTAL`");
  EXPECT_EQ(granite.QuoteIdent("ORDER TOTAL"), "\"ORDER TOTAL\"");
}

TEST(DialectGeneratorTest, TemporalLiteralSyntaxDiverges) {
  Datum d = Datum::Date(DaysFromCivil(2024, 3, 15));
  EXPECT_EQ(FindDialect("ansi")->RenderLiteral(d), "DATE '2024-03-15'");
  EXPECT_EQ(FindDialect("sierra")->RenderLiteral(d),
            "CAST('2024-03-15' AS DATE)");
  EXPECT_EQ(FindDialect("granite")->RenderLiteral(d),
            "TO_DATE('2024-03-15')");
}

TEST(DialectGeneratorTest, SetOpAndRowLimitSyntaxDiverges) {
  const auto& ansi = *FindDialect("ansi");
  const auto& sierra = *FindDialect("sierra");
  const auto& granite = *FindDialect("granite");
  EXPECT_EQ(ansi.SetOpKeyword(xtra::SetOpKind::kExcept), " EXCEPT ");
  EXPECT_EQ(sierra.SetOpKeyword(xtra::SetOpKind::kExcept),
            " EXCEPT DISTINCT ");
  EXPECT_EQ(granite.SetOpKeyword(xtra::SetOpKind::kExcept), " MINUS ");
  EXPECT_EQ(ansi.RowLimitClause(7), " LIMIT 7");
  EXPECT_EQ(granite.RowLimitClause(7), " FETCH FIRST 7 ROWS ONLY");
}

TEST(DialectSerializerTest, SerializerRendersUnderEachDialect) {
  Catalog catalog;
  TableDef t;
  t.name = "T";
  t.columns = {{"A", SqlType::Int(), true, {}},
               {"D", SqlType::Date(), true, {}}};
  ASSERT_TRUE(catalog.CreateTable(t).ok());
  auto serialize = [&](const std::string& dialect) {
    auto stmt = sql::ParseStatement("SEL A FROM T WHERE D = DATE '2024-03-15'",
                                    sql::Dialect::Teradata());
    EXPECT_TRUE(stmt.ok()) << stmt.status();
    binder::Binder binder(&catalog, sql::Dialect::Teradata());
    auto plan = binder.BindStatement(**stmt);
    EXPECT_TRUE(plan.ok()) << plan.status();
    Serializer ser(FindDialect(dialect)->Profile());
    auto sql_b = ser.Serialize(**plan);
    EXPECT_TRUE(sql_b.ok()) << sql_b.status();
    return sql_b.ok() ? *sql_b : std::string();
  };
  std::string ansi = serialize("ansi");
  std::string sierra = serialize("sierra");
  std::string granite = serialize("granite");
  EXPECT_NE(ansi.find("DATE '2024-03-15'"), std::string::npos) << ansi;
  EXPECT_NE(sierra.find("CAST('2024-03-15' AS DATE)"), std::string::npos)
      << sierra;
  EXPECT_NE(sierra.find("`T`"), std::string::npos) << sierra;
  EXPECT_NE(granite.find("TO_DATE('2024-03-15')"), std::string::npos)
      << granite;
  EXPECT_NE(granite.find("\"T\""), std::string::npos) << granite;
  // All three are distinct texts of the same statement.
  EXPECT_NE(ansi, sierra);
  EXPECT_NE(ansi, granite);
  EXPECT_NE(sierra, granite);
}

}  // namespace
}  // namespace hyperq::serializer
