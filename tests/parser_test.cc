// Parser tests: dialect gating between SQL-A (Teradata-ish) and SQL-B
// (ANSI-ish), plus structural checks on the harder constructs.

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace hyperq::sql {
namespace {

StatementPtr ParseTd(const std::string& text) {
  auto r = ParseStatement(text, Dialect::Teradata());
  EXPECT_TRUE(r.ok()) << text << "\n" << r.status();
  return r.ok() ? std::move(r).value() : nullptr;
}

Status TdError(const std::string& text) {
  auto r = ParseStatement(text, Dialect::Teradata());
  EXPECT_FALSE(r.ok()) << text;
  return r.ok() ? Status::OK() : r.status();
}

Status AnsiError(const std::string& text) {
  auto r = ParseStatement(text, Dialect::Ansi());
  EXPECT_FALSE(r.ok()) << text << " unexpectedly parsed in ANSI dialect";
  return r.ok() ? Status::OK() : r.status();
}

TEST(ParserTest, SelAbbreviationTeradataOnly) {
  auto stmt = ParseTd("SEL a FROM t");
  ASSERT_NE(stmt, nullptr);
  EXPECT_EQ(stmt->kind, StmtKind::kSelect);
  AnsiError("SEL a FROM t");
}

TEST(ParserTest, QualifyTeradataOnly) {
  auto stmt = ParseTd("SELECT a FROM t QUALIFY RANK() OVER (ORDER BY a) < 3");
  ASSERT_NE(stmt, nullptr);
  EXPECT_NE(stmt->As<SelectStatement>()->query->block->qualify, nullptr);
  AnsiError("SELECT a FROM t QUALIFY RANK() OVER (ORDER BY a) < 3");
}

TEST(ParserTest, LaxClauseOrderExample1) {
  // Paper Example 1: ORDER BY precedes WHERE.
  auto stmt = ParseTd(
      "SEL PRODUCT_NAME, SALES AS SALES_BASE, SALES_BASE + 100 AS "
      "SALES_OFFSET FROM PRODUCT QUALIFY 10 < SUM(SALES) OVER (PARTITION "
      "BY STORE) ORDER BY STORE, PRODUCT_NAME WHERE CHARS(PRODUCT_NAME) > "
      "4");
  ASSERT_NE(stmt, nullptr);
  const auto* sel = stmt->As<SelectStatement>();
  EXPECT_NE(sel->query->block->where, nullptr);
  EXPECT_NE(sel->query->block->qualify, nullptr);
  EXPECT_EQ(sel->query->order_by.size(), 2u);
  AnsiError("SELECT a FROM t ORDER BY a WHERE a > 1");
}

TEST(ParserTest, TdOrderedRank) {
  auto stmt = ParseTd("SEL * FROM t QUALIFY RANK(AMOUNT DESC) <= 10");
  const auto& qualify = stmt->As<SelectStatement>()->query->block->qualify;
  ASSERT_NE(qualify, nullptr);
  const Expr* rank = qualify->children[0].get();
  ASSERT_EQ(rank->kind, ExprKind::kWindow);
  EXPECT_TRUE(rank->td_ordered_analytic);
  ASSERT_EQ(rank->window.order_by.size(), 1u);
  EXPECT_TRUE(rank->window.order_by[0].descending);
}

TEST(ParserTest, VectorSubqueryTeradataOnly) {
  auto stmt = ParseTd(
      "SEL * FROM s WHERE (a, b) > ANY (SEL g, n FROM h)");
  const auto& where = stmt->As<SelectStatement>()->query->block->where;
  ASSERT_EQ(where->kind, ExprKind::kQuantified);
  EXPECT_EQ(where->children.size(), 2u);
  EXPECT_EQ(where->quantifier, SubqQuantifier::kAny);
  AnsiError("SELECT * FROM s WHERE (a, b) > ANY (SELECT g, n FROM h)");
}

TEST(ParserTest, ScalarQuantifiedAllowedInAnsi) {
  auto r = ParseStatement("SELECT * FROM s WHERE a > ANY (SELECT g FROM h)",
                          Dialect::Ansi());
  EXPECT_TRUE(r.ok()) << r.status();
}

TEST(ParserTest, TopWithTies) {
  auto stmt = ParseTd("SEL TOP 10 WITH TIES a FROM t ORDER BY a");
  const auto* block = stmt->As<SelectStatement>()->query->block.get();
  EXPECT_EQ(block->top_n, 10);
  EXPECT_TRUE(block->top_with_ties);
  AnsiError("SELECT TOP 10 a FROM t");
}

TEST(ParserTest, LimitAnsiOnly) {
  auto r = ParseStatement("SELECT a FROM t LIMIT 5", Dialect::Ansi());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ((*r)->As<SelectStatement>()->query->limit, 5);
  // Teradata dialect has TOP, not LIMIT.
  EXPECT_FALSE(
      ParseStatement("SELECT a FROM t LIMIT 5", Dialect::Teradata()).ok());
}

TEST(ParserTest, RecursiveCteShape) {
  auto stmt = ParseTd(
      "WITH RECURSIVE r (a) AS (SELECT a FROM t UNION ALL SELECT a + 1 "
      "FROM r WHERE a < 5) SELECT a FROM r");
  const auto* sel = stmt->As<SelectStatement>();
  EXPECT_TRUE(sel->query->with_recursive);
  ASSERT_EQ(sel->query->with.size(), 1u);
  EXPECT_EQ(sel->query->with[0].column_names.size(), 1u);
  EXPECT_EQ(sel->query->with[0].query->set_op, SetOpKind::kUnionAll);
  AnsiError(
      "WITH RECURSIVE r (a) AS (SELECT 1 UNION ALL SELECT a + 1 FROM r) "
      "SELECT a FROM r");
}

TEST(ParserTest, SetOperations) {
  auto stmt = ParseTd("SEL a FROM t UNION SEL b FROM u INTERSECT SEL c "
                      "FROM v");
  const auto* q = stmt->As<SelectStatement>()->query.get();
  EXPECT_EQ(q->set_op, SetOpKind::kIntersect);  // left-assoc chain
  EXPECT_EQ(q->set_left->set_op, SetOpKind::kUnion);
}

TEST(ParserTest, GroupByVariants) {
  auto plain = ParseTd("SEL a, COUNT(*) FROM t GROUP BY a");
  EXPECT_EQ(plain->As<SelectStatement>()->query->block->group_by.kind,
            GroupByKind::kPlain);
  auto rollup = ParseTd("SEL a, b FROM t GROUP BY ROLLUP(a, b)");
  EXPECT_EQ(rollup->As<SelectStatement>()->query->block->group_by.kind,
            GroupByKind::kRollup);
  auto cube = ParseTd("SEL a, b FROM t GROUP BY CUBE(a, b)");
  EXPECT_EQ(cube->As<SelectStatement>()->query->block->group_by.kind,
            GroupByKind::kCube);
  auto sets = ParseTd(
      "SEL a, b FROM t GROUP BY GROUPING SETS((a, b), (a), ())");
  EXPECT_EQ(sets->As<SelectStatement>()->query->block->group_by.sets.size(),
            3u);
  // In the ANSI dialect ROLLUP is no keyword: it parses as a plain
  // function call and is rejected later by the binder ("unknown function"),
  // like a real target would report it.
  auto ansi = ParseStatement("SELECT a FROM t GROUP BY ROLLUP(a)",
                             Dialect::Ansi());
  ASSERT_TRUE(ansi.ok());
  EXPECT_EQ((*ansi)->As<SelectStatement>()->query->block->group_by.kind,
            GroupByKind::kPlain);
}

TEST(ParserTest, MergeStatement) {
  auto stmt = ParseTd(
      "MERGE INTO t USING s ON t.k = s.k WHEN MATCHED THEN UPDATE SET v = "
      "s.v WHEN NOT MATCHED THEN INSERT (k, v) VALUES (s.k, s.v)");
  const auto* merge = stmt->As<MergeStatement>();
  EXPECT_TRUE(merge->has_matched_update);
  EXPECT_TRUE(merge->has_not_matched_insert);
  EXPECT_EQ(merge->insert_columns.size(), 2u);
  AnsiError("MERGE INTO t USING s ON t.k = s.k WHEN MATCHED THEN UPDATE "
            "SET v = 1");
}

TEST(ParserTest, CreateMacroCapturesRawBody) {
  auto stmt = ParseTd(
      "CREATE MACRO m (x INTEGER, y VARCHAR(8) DEFAULT 'hi') AS "
      "(SELECT :x; UPDATE t SET a = :y;)");
  const auto* macro = stmt->As<CreateMacroStatement>();
  ASSERT_EQ(macro->params.size(), 2u);
  EXPECT_TRUE(macro->params[1].has_default);
  EXPECT_EQ(macro->params[1].default_literal, "'hi'");
  ASSERT_EQ(macro->body_statements.size(), 2u);
  EXPECT_EQ(macro->body_statements[0], "SELECT :x");
  EXPECT_EQ(macro->body_statements[1], "UPDATE t SET a = :y");
}

TEST(ParserTest, ExecMacroPositionalAndNamed) {
  auto stmt = ParseTd("EXEC m (1, y = 'v')");
  const auto* exec = stmt->As<ExecMacroStatement>();
  EXPECT_EQ(exec->positional_args.size(), 1u);
  ASSERT_EQ(exec->named_args.size(), 1u);
  EXPECT_EQ(exec->named_args[0].first, "Y");
}

TEST(ParserTest, CreateTableTeradataAttributes) {
  auto stmt = ParseTd(
      "CREATE SET TABLE t (a INTEGER NOT NULL, b VARCHAR(10) NOT "
      "CASESPECIFIC, c DATE DEFAULT CURRENT_DATE, p PERIOD(DATE)) "
      "PRIMARY INDEX (a)");
  const auto* ct = stmt->As<CreateTableStatement>();
  EXPECT_TRUE(ct->set_semantics);
  ASSERT_EQ(ct->columns.size(), 4u);
  EXPECT_TRUE(ct->columns[0].not_null);
  EXPECT_TRUE(ct->columns[1].not_case_specific);
  EXPECT_NE(ct->columns[2].default_expr, nullptr);
  EXPECT_EQ(ct->columns[3].type.kind, TypeKind::kPeriodDate);
  EXPECT_EQ(ct->primary_index.size(), 1u);
  AnsiError("CREATE SET TABLE t (a INTEGER)");
  AnsiError("CREATE TABLE t (p PERIOD(DATE))");
}

TEST(ParserTest, InsertForms) {
  auto full = ParseTd("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')");
  EXPECT_EQ(full->As<InsertStatement>()->values_rows.size(), 2u);
  auto shorthand = ParseTd("INS t (1, 'x')");  // Teradata bare-values form
  EXPECT_EQ(shorthand->As<InsertStatement>()->values_rows.size(), 1u);
  auto select_src = ParseTd("INS INTO t SELECT a, b FROM u");
  EXPECT_NE(select_src->As<InsertStatement>()->source, nullptr);
}

TEST(ParserTest, DeleteAllShorthand) {
  auto stmt = ParseTd("DEL t ALL");
  EXPECT_EQ(stmt->As<DeleteStatement>()->where, nullptr);
}

TEST(ParserTest, HelpAndCollectTeradataOnly) {
  EXPECT_EQ(ParseTd("HELP SESSION")->kind, StmtKind::kHelp);
  EXPECT_EQ(ParseTd("HELP TABLE t")->As<HelpStatement>()->object, "t");
  EXPECT_EQ(ParseTd("COLLECT STATISTICS ON t COLUMN (a, b)")
                ->As<CollectStatsStatement>()
                ->columns.size(),
            2u);
  AnsiError("HELP SESSION");
  AnsiError("COLLECT STATISTICS ON t COLUMN a");
}

TEST(ParserTest, TransactionShorthand) {
  EXPECT_EQ(ParseTd("BT")->kind, StmtKind::kBeginTxn);
  EXPECT_EQ(ParseTd("ET")->kind, StmtKind::kEndTxn);
  EXPECT_EQ(ParseTd("COMMIT WORK")->kind, StmtKind::kCommit);
  AnsiError("BT");
}

TEST(ParserTest, CaseExpressions) {
  auto stmt = ParseTd(
      "SEL CASE WHEN a > 1 THEN 'big' ELSE 'small' END, "
      "CASE b WHEN 1 THEN 'one' END FROM t");
  const auto& items = stmt->As<SelectStatement>()->query->block->select_list;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kCase);
  EXPECT_NE(items[1].expr->case_operand, nullptr);
}

TEST(ParserTest, SpecialFunctionSyntax) {
  auto stmt = ParseTd(
      "SEL EXTRACT(YEAR FROM d), TRIM(LEADING '0' FROM s), "
      "SUBSTRING(s FROM 2 FOR 3), POSITION('x' IN s), CAST(a AS "
      "DECIMAL(10,2)) FROM t");
  const auto& items = stmt->As<SelectStatement>()->query->block->select_list;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kExtract);
  EXPECT_EQ(items[0].expr->func_name, "YEAR");
  EXPECT_EQ(items[1].expr->func_name, "LTRIM");
  EXPECT_EQ(items[2].expr->func_name, "SUBSTR");
  EXPECT_EQ(items[2].expr->children.size(), 3u);
  EXPECT_EQ(items[3].expr->func_name, "POSITION");
  EXPECT_EQ(items[4].expr->kind, ExprKind::kCast);
  EXPECT_EQ(items[4].expr->cast_type.scale, 2);
}

TEST(ParserTest, TypedLiterals) {
  auto stmt = ParseTd(
      "SEL DATE '2014-01-01', TIME '12:30:00', TIMESTAMP '2014-01-01 "
      "12:30:00' FROM t");
  const auto& items = stmt->As<SelectStatement>()->query->block->select_list;
  EXPECT_TRUE(items[0].expr->value.is_date());
  EXPECT_TRUE(items[1].expr->value.is_time());
  EXPECT_TRUE(items[2].expr->value.is_timestamp());
}

TEST(ParserTest, IntervalLiterals) {
  auto stmt = ParseTd("SEL d + INTERVAL '3' DAY, d + INTERVAL '2' MONTH "
                      "FROM t");
  const auto& items = stmt->As<SelectStatement>()->query->block->select_list;
  EXPECT_EQ(items[0].expr->kind, ExprKind::kBinary);
  // Month intervals arrive as the internal months marker.
  EXPECT_EQ(items[1].expr->children[1]->func_name, "$INTERVAL_MONTHS");
}

TEST(ParserTest, JoinTree) {
  auto stmt = ParseTd(
      "SEL * FROM a INNER JOIN b ON a.x = b.x LEFT OUTER JOIN c ON b.y = "
      "c.y CROSS JOIN d");
  const auto& from = stmt->As<SelectStatement>()->query->block->from;
  ASSERT_EQ(from.size(), 1u);
  EXPECT_EQ(from[0]->kind, TableRef::Kind::kJoin);
  EXPECT_EQ(from[0]->join_type, JoinType::kCross);
  EXPECT_EQ(from[0]->left->join_type, JoinType::kLeft);
}

TEST(ParserTest, DerivedTableWithColumnAliases) {
  auto stmt = ParseTd(
      "SEL c_count FROM (SEL k, COUNT(*) FROM t GROUP BY k) AS d (k, "
      "c_count)");
  const auto& from = stmt->As<SelectStatement>()->query->block->from;
  EXPECT_EQ(from[0]->kind, TableRef::Kind::kDerived);
  EXPECT_EQ(from[0]->column_aliases.size(), 2u);
}

TEST(ParserTest, NotVariants) {
  auto stmt = ParseTd(
      "SEL * FROM t WHERE a NOT IN (1, 2) AND b NOT LIKE 'x%' AND c NOT "
      "BETWEEN 1 AND 5 AND d IS NOT NULL");
  EXPECT_NE(stmt, nullptr);
}

TEST(ParserTest, SplitStatementsRespectsQuotes) {
  auto parts = SplitStatements("SELECT 'a;b'; SELECT 2;\n SELECT 3");
  ASSERT_TRUE(parts.ok());
  ASSERT_EQ(parts->size(), 3u);
  EXPECT_EQ((*parts)[0], "SELECT 'a;b'");
}

TEST(ParserTest, TrailingGarbageRejected) {
  TdError("SELECT a FROM t extra_token ,");
}

TEST(ParserTest, TypeNameParsing) {
  auto t = ParseTypeName("DECIMAL(15,2)", Dialect::Teradata());
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->precision, 15);
  auto p = ParseTypeName("PERIOD(DATE)", Dialect::Teradata());
  EXPECT_TRUE(p.ok());
  EXPECT_FALSE(ParseTypeName("PERIOD(DATE)", Dialect::Ansi()).ok());
  EXPECT_FALSE(ParseTypeName("FROB", Dialect::Ansi()).ok());
}

}  // namespace
}  // namespace hyperq::sql
