// Migration assessment (paper use case B.4: "Performance evaluation of
// cloud databases" / the discovery phase of Appendix A.1).
//
// Before committing to a target, a customer points Hyper-Q at a workload
// and asks: which non-portable features does it use, how many queries does
// each rewrite class touch, and which candidate targets could absorb it
// with rewrites alone? This example runs the bundled Health-customer
// workload through the instrumented translator and prints the assessment.
//
// Run: ./build/examples/example_migration_assessment

#include <cstdio>

#include "common/features.h"
#include "service/hyperq_service.h"
#include "transform/backend_profile.h"
#include "vdb/engine.h"
#include "workload/customer.h"

using namespace hyperq;

int main() {
  vdb::Engine warehouse;
  service::HyperQService hyperq(&warehouse);
  auto sid = hyperq.OpenSession("assessor");
  if (!sid.ok()) return 1;
  if (!workload::SetUpCustomerSchema(&hyperq, *sid).ok()) return 1;

  auto profile = workload::CustomerProfile::Customer1Health();
  auto queries = workload::SynthesizeWorkload(profile, /*scale=*/0.1);

  WorkloadFeatureStats stats;
  int failures = 0;
  for (const auto& q : queries) {
    FeatureSet features;
    auto translated = hyperq.Translate(q.sql, &features);
    if (!translated.ok()) {
      ++failures;
      continue;
    }
    stats.AddQuery(features);
  }

  std::printf("Workload assessment: %s (%s), %zu distinct queries\n\n",
              profile.name.c_str(), profile.sector.c_str(), queries.size());
  std::printf("%-34s %10s\n", "Tracked feature", "queries");
  for (int i = 0; i < kNumFeatures; ++i) {
    if (stats.feature_query_counts[i] == 0) continue;
    std::printf("%-34s %10lld\n", FeatureName(static_cast<Feature>(i)),
                static_cast<long long>(stats.feature_query_counts[i]));
  }
  std::printf("\nRewrite classes (share of distinct queries):\n");
  for (int c = 0; c < 3; ++c) {
    auto cls = static_cast<RewriteClass>(c);
    std::printf("  %-16s %6.1f%%\n", RewriteClassName(cls),
                100.0 * stats.QueryFraction(cls));
  }
  std::printf("  translation failures: %d (must be 0 for a go-live)\n\n",
              failures);

  // Which candidate targets would need which machinery?
  std::printf("Candidate-target readiness (rewrite vs. emulation need):\n");
  for (const auto& target : transform::BackendProfile::CloudFleet()) {
    int native = 0, rewrite = 0, emulate = 0;
    if (target.supports_qualify) ++native; else ++rewrite;
    if (target.supports_vector_subquery) ++native; else ++rewrite;
    if (target.supports_grouping_sets) ++native; else ++rewrite;
    if (target.supports_ordinal_group_by) ++native; else ++rewrite;
    if (target.supports_recursive_cte) ++native; else ++emulate;
    if (target.supports_merge) ++native; else ++emulate;
    if (target.supports_macros) ++native; else ++emulate;
    if (target.supports_set_tables) ++native; else ++emulate;
    if (target.supports_period_type) ++native; else ++emulate;
    std::printf("  %-12s native %d, query-rewrite %d, mid-tier emulation "
                "%d\n",
                target.name.c_str(), native, rewrite, emulate);
  }
  std::printf("\nAll gaps are closed automatically by Hyper-Q; the numbers "
              "above size the\nrewriting machinery each target would "
              "exercise.\n");
  return 0;
}
