// Recursive-query emulation, step by step (paper §6 / Example 4 / Fig. 7).
//
// Runs the paper's org-chart query over EMP(EMPNO, MGRNO) with the sample
// hierarchy and prints the exact WorkTable/TempTable statement sequence the
// mid-tier drives against a target without native recursion.
//
// Run: ./build/examples/example_recursive_reports

#include <cstdio>

#include "binder/binder.h"
#include "emulation/recursion.h"
#include "serializer/serializer.h"
#include "service/hyperq_service.h"
#include "transform/transformer.h"
#include "vdb/engine.h"

using namespace hyperq;

int main() {
  vdb::Engine warehouse;
  service::HyperQService hyperq(&warehouse);
  auto sid = hyperq.OpenSession("hr");
  if (!sid.ok()) return 1;

  // Paper Figure 7 sample data: {(e1,e7),(e7,e8),(e8,e10),(e9,e10),(e10,e11)}.
  const char* setup[] = {
      "CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)",
      "INS INTO EMP VALUES (1, 7)",  "INS INTO EMP VALUES (7, 8)",
      "INS INTO EMP VALUES (8, 10)", "INS INTO EMP VALUES (9, 10)",
      "INS INTO EMP VALUES (10, 11)"};
  for (const char* sql : setup) {
    if (!hyperq.Submit(*sid, sql).ok()) return 1;
  }

  const char* query = R"(WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS (
  SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10
  UNION ALL
  SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS
  WHERE REPORTS.EMPNO = EMP.MGRNO
)
SELECT EMPNO FROM REPORTS ORDER BY EMPNO)";
  std::printf("SQL-A (Example 4):\n%s\n\n", query);

  // Drive the emulation manually so we can print its trace.
  auto stmt = sql::ParseStatement(query, sql::Dialect::Teradata());
  if (!stmt.ok()) return 1;
  binder::Binder binder(hyperq.catalog(), sql::Dialect::Teradata());
  auto plan = binder.BindStatement(**stmt);
  if (!plan.ok()) {
    std::printf("bind: %s\n", plan.status().ToString().c_str());
    return 1;
  }
  transform::Transformer xform(transform::BackendProfile::Vdb());
  binder::ColIdGenerator ids;
  for (int i = 0; i < 1000000; ++i) ids.Next();
  FeatureSet features;
  if (!xform.Run(transform::Stage::kSerialization, &*plan, &ids, &features,
                 hyperq.catalog())
           .ok()) {
    return 1;
  }

  serializer::Serializer ser(transform::BackendProfile::Vdb());
  backend::BackendConnector connector(&warehouse);
  emulation::RecursionDriver driver(&ser, &connector);
  std::vector<emulation::RecursionStep> trace;
  auto result = driver.Execute(**plan, &trace);
  if (!result.ok()) {
    std::printf("emulation failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("Emulation steps (paper Figure 7):\n");
  for (size_t i = 0; i < trace.size(); ++i) {
    std::printf("  %2zu. [%-18s]", i + 1, trace[i].description.c_str());
    if (trace[i].produced_rows >= 0) {
      std::printf(" -> %lld row(s)",
                  static_cast<long long>(trace[i].produced_rows));
    }
    std::printf("\n      %s\n", trace[i].sql.c_str());
  }

  auto rows = result->DecodeRows();
  std::printf("\nEmployees reporting (directly or indirectly) to e10:\n ");
  if (rows.ok()) {
    for (const auto& row : *rows) {
      std::printf(" e%s", row[0].ToString().c_str());
    }
  }
  std::printf("\n");
  return 0;
}
