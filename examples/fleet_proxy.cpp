// Multi-backend fleet demo (DESIGN.md §10).
//
// Starts Hyper-Q over three compute replicas (shared storage, one vdb
// engine) with health-based routing, then walks the failure drill the
// subsystem exists for: a client with session state (volatile table +
// SET SESSION) keeps querying while its bound replica is hard-killed.
// The proxy replays the session journal onto a different replica — the
// client sees identical results, never an error. The killed replica is
// then revived and re-admitted on probation.
//
// Run: ./build/examples/example_fleet_proxy
//
// Chaos drills: HYPERQ_FAULTS reaches the fleet's own fault points, e.g.
//   HYPERQ_FAULTS="backend.ejected=transient:every=5" (flapping replica)
//   HYPERQ_FAULTS="pool.probe=transient:every=2"      (failing probes)
//   HYPERQ_FAULTS="router.pick=transient:first=10,max=1"

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "backend/pool.h"
#include "common/fault.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

void RunAndPrint(service::HyperQService& proxy, uint32_t sid,
                 const std::string& sql) {
  std::printf("sql> %s\n", sql.c_str());
  auto result = proxy.Submit(sid, sql);
  if (!result.ok()) {
    std::printf("  !! %s\n\n", result.status().ToString().c_str());
    return;
  }
  auto rows = result->result.DecodeRows();
  if (rows.ok()) {
    for (const auto& row : *rows) {
      std::printf("  ");
      for (const auto& v : row) std::printf("%-14s", v.ToString(true).c_str());
      std::printf("\n");
    }
  }
  std::printf("  [%s%s]\n\n", result->result.command_tag.c_str(),
              result->timing.failovers > 0 ? ", FAILED OVER transparently"
                                           : "");
}

void PrintFleet(service::HyperQService& proxy) {
  backend::BackendPool* pool = proxy.backend_pool();
  std::printf("fleet:");
  for (size_t i = 0; i < pool->size(); ++i) {
    std::printf("  %s=%s%s", pool->spec(i).name.c_str(),
                backend::BackendHealthName(pool->health(i)),
                pool->killed(i) ? "(killed)" : "");
  }
  std::printf("\n\n");
}

}  // namespace

int main() {
  if (const char* faults_env = std::getenv("HYPERQ_FAULTS")) {
    Status st = FaultInjector::Global().Configure(faults_env);
    if (!st.ok()) {
      std::fprintf(stderr, "bad HYPERQ_FAULTS: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const std::string& point : FaultInjector::Global().armed_points()) {
      std::printf("fault injection armed at '%s'\n", point.c_str());
    }
  }

  // Three compute replicas over shared storage (one vdb engine), active
  // health probing every 50ms, fast re-admission for the demo.
  vdb::Engine warehouse;
  service::ServiceOptions options;
  for (int i = 0; i < 3; ++i) {
    backend::BackendSpec spec;
    spec.name = "replica-" + std::to_string(i);
    spec.profile = transform::BackendProfile::Vdb();
    options.fleet.backends.push_back(spec);
  }
  options.fleet.health.probe_interval_ms = 50;
  options.fleet.health.readmit_cooldown_ms = 200;
  service::HyperQService proxy(&warehouse, options);

  auto sid = proxy.OpenSession("fleet_app", "SALESDB");
  if (!sid.ok()) {
    std::fprintf(stderr, "logon failed\n");
    return 1;
  }
  int bound = proxy.session_backend(*sid);
  std::printf("session %u established on %s\n\n", *sid,
              proxy.backend_pool()->spec(bound).name.c_str());
  PrintFleet(proxy);

  // Session state that only exists on the proxy + bound replica.
  RunAndPrint(proxy, *sid, "CREATE VOLATILE TABLE HOT_SKUS (SKU INTEGER)");
  RunAndPrint(proxy, *sid, "INS INTO HOT_SKUS VALUES (101)");
  RunAndPrint(proxy, *sid, "INS INTO HOT_SKUS VALUES (202)");
  RunAndPrint(proxy, *sid, "SET SESSION CHARSET 'UTF8'");
  RunAndPrint(proxy, *sid, "SEL * FROM HOT_SKUS ORDER BY SKU");

  std::printf("--- hard-killing %s ---\n\n",
              proxy.backend_pool()->spec(bound).name.c_str());
  proxy.backend_pool()->KillBackend(bound);
  PrintFleet(proxy);

  // Same query again: the proxy fails over — journal replay rebuilds the
  // volatile table and session settings on another replica.
  RunAndPrint(proxy, *sid, "SEL * FROM HOT_SKUS ORDER BY SKU");
  int moved = proxy.session_backend(*sid);
  std::printf("session now bound to %s\n\n",
              proxy.backend_pool()->spec(moved).name.c_str());

  std::printf("--- reviving %s (re-admitted on probation) ---\n\n",
              proxy.backend_pool()->spec(bound).name.c_str());
  proxy.backend_pool()->ReviveBackend(bound);
  PrintFleet(proxy);
  RunAndPrint(proxy, *sid, "SEL * FROM HOT_SKUS ORDER BY SKU");

  // Let the background prober run a few rounds before reading its stats.
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  auto stats = proxy.backend_pool()->stats();
  std::printf("pool: %lld probes, %lld probe failures\n",
              static_cast<long long>(stats.probes),
              static_cast<long long>(stats.probe_failures));
  proxy.CloseSession(*sid);
  return 0;
}
