// Drop-in replace over the wire (paper Figure 1 / use case B.1).
//
// Starts Hyper-Q as a network proxy speaking the legacy wire protocol
// (tdwp) and drives it with the bundled bteq-like client — exactly the
// deployment shape of the paper: the application keeps its dialect and
// connector while the database underneath is swapped.
//
// Run: ./build/examples/example_replatform_proxy [port]
//      (default: an ephemeral port; the example runs a scripted session)

// Fault drills: set HYPERQ_FAULTS to exercise the resilience path, e.g.
//   HYPERQ_FAULTS="vdb.execute=transient:every=3" [run this example]
// (syntax in src/common/fault.h; HYPERQ_FAULT_SEED seeds probability-based
// faults deterministically).

#include <cstdio>
#include <cstdlib>

#include "common/fault.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

int main(int argc, char** argv) {
  uint16_t port = argc > 1 ? static_cast<uint16_t>(std::atoi(argv[1])) : 0;

  if (const char* seed_env = std::getenv("HYPERQ_FAULT_SEED")) {
    FaultInjector::Global().SetSeed(std::strtoull(seed_env, nullptr, 10));
  }
  if (const char* faults_env = std::getenv("HYPERQ_FAULTS")) {
    Status st = FaultInjector::Global().Configure(faults_env);
    if (!st.ok()) {
      std::fprintf(stderr, "bad HYPERQ_FAULTS: %s\n", st.ToString().c_str());
      return 1;
    }
    for (const std::string& point : FaultInjector::Global().armed_points()) {
      std::printf("fault injection armed at '%s'\n", point.c_str());
    }
  }

  vdb::Engine warehouse;
  service::HyperQService hyperq(&warehouse);
  protocol::TdwpServer server(&hyperq);
  if (!server.Start(port).ok()) {
    std::fprintf(stderr, "cannot start tdwp server\n");
    return 1;
  }
  std::printf("Hyper-Q proxy listening on 127.0.0.1:%u (tdwp)\n\n",
              server.port());

  // The "existing application": logs on with its legacy credentials and
  // runs its unmodified Teradata workload.
  protocol::TdwpClient app;
  if (!app.Connect(server.port()).ok() ||
      !app.Logon("legacy_app", "secret", "SALESDB").ok()) {
    std::fprintf(stderr, "client connection failed\n");
    return 1;
  }

  const char* script[] = {
      "CREATE SET TABLE DAILY_KPI (DAY_D DATE, REGION INTEGER, REVENUE "
      "DECIMAL(14,2))",
      "INS INTO DAILY_KPI VALUES (DATE '2014-01-01', 1, 1000.00)",
      "INS INTO DAILY_KPI VALUES (DATE '2014-01-01', 1, 1000.00)",  // dup:
                                                                    // SET
                                                                    // table
      "INS INTO DAILY_KPI VALUES (DATE '2014-01-02', 2, 1750.50)",
      "SEL TOP 5 REGION, SUM(REVENUE) AS TOTAL FROM DAILY_KPI "
      "GROUP BY 1 ORDER BY TOTAL DESC",
      "HELP SESSION",
      "SEL * FROM DAILY_KPI WHERE DAY_D > 1140101 ORDER BY DAY_D, REGION",
  };
  for (const char* sql : script) {
    std::printf("tdwp> %s\n", sql);
    auto result = app.Run(sql);
    if (!result.ok()) {
      std::printf("  !! %s\n\n", result.status().ToString().c_str());
      continue;
    }
    if (!result->columns.empty()) {
      for (const auto& col : result->columns) {
        std::printf("  %-22s", col.name.c_str());
      }
      std::printf("\n");
      for (const auto& row : result->rows) {
        std::printf("  ");
        for (const auto& v : row) {
          std::printf("%-22s", v.ToString(true).c_str());
        }
        std::printf("\n");
      }
    }
    std::printf("  [%s, activity %llu, translate %.0fus execute %.0fus "
                "convert %.0fus]\n\n",
                result->tag.c_str(),
                static_cast<unsigned long long>(result->activity_count),
                result->translation_micros, result->execution_micros,
                result->conversion_micros);
  }
  app.Goodbye();
  server.Stop();
  std::printf("proxy stopped.\n");
  return 0;
}
