// Quickstart: run a Teradata-dialect application against a modern target
// without changing a line of its SQL.
//
//   1. stand up the target warehouse (the embedded vdb engine),
//   2. put Hyper-Q in front of it,
//   3. submit SQL-A — including the paper's Example 2 with QUALIFY,
//      vector subqueries and date-integer comparison — and read results.
//
// Build & run:  cmake --build build && ./build/examples/example_quickstart

#include <cstdio>

#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

void Run(service::HyperQService& service, uint32_t sid,
         const std::string& sql) {
  auto outcome = service.Submit(sid, sql);
  if (!outcome.ok()) {
    std::printf("!! %s\n", outcome.status().ToString().c_str());
    return;
  }
  std::printf("SQL-A> %s\n", sql.c_str());
  for (const auto& b : outcome->backend_sql) {
    std::printf("SQL-B> %s\n", b.c_str());
  }
  if (outcome->result.is_rowset()) {
    auto rows = outcome->result.DecodeRows();
    if (rows.ok()) {
      for (const auto& col : outcome->result.columns) {
        std::printf("%-14s", col.name.c_str());
      }
      std::printf("\n");
      for (const auto& row : *rows) {
        for (const auto& v : row) {
          std::printf("%-14s", v.ToString(/*teradata_style=*/true).c_str());
        }
        std::printf("\n");
      }
    }
  } else {
    std::printf("-- %s, %lld row(s) affected\n",
                outcome->result.command_tag.c_str(),
                static_cast<long long>(outcome->result.affected_rows));
  }
  std::printf("   features: %s | translate %.0fus, execute %.0fus\n\n",
              outcome->features.ToString().c_str(),
              outcome->timing.translation_micros,
              outcome->timing.execution_micros);
}

}  // namespace

int main() {
  vdb::Engine warehouse;                      // the modern target (DB-B)
  service::HyperQService hyperq(&warehouse);  // the virtualization layer
  auto sid = hyperq.OpenSession("appuser");
  if (!sid.ok()) return 1;

  // DDL flows through Hyper-Q's schema translation.
  Run(hyperq, *sid,
      "CREATE TABLE SALES (AMOUNT DECIMAL(12,2), SALES_DATE DATE, "
      "STORE INTEGER, PRODUCT_NAME VARCHAR(64))");
  Run(hyperq, *sid,
      "CREATE TABLE SALES_HISTORY (GROSS DECIMAL(12,2), NET DECIMAL(12,2))");

  // Teradata-style abbreviated DML.
  Run(hyperq, *sid,
      "INS INTO SALES VALUES (100.00, DATE '2014-06-01', 1, 'widget')");
  Run(hyperq, *sid,
      "INS INTO SALES VALUES (250.00, DATE '2014-07-04', 2, 'gadget')");
  Run(hyperq, *sid,
      "INS INTO SALES VALUES (50.00, DATE '2013-02-02', 1, 'legacy')");
  Run(hyperq, *sid, "INS INTO SALES_HISTORY VALUES (60.00, 40.00)");

  // The paper's Example 2, verbatim Teradata-isms and all.
  Run(hyperq, *sid, R"(SEL *
FROM SALES
WHERE SALES_DATE > 1140101
  AND (AMOUNT, AMOUNT * 0.85) > ANY (SEL GROSS, NET FROM SALES_HISTORY)
QUALIFY RANK(AMOUNT DESC) <= 10)");

  hyperq.CloseSession(*sid);
  return 0;
}
