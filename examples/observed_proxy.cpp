// Query-path observability over the wire (DESIGN.md §9).
//
// Runs Hyper-Q as a tdwp proxy with tracing on, pushes a small chaotic
// workload through it (cache hits, a recursive query, injected transient
// faults, a governor-shed result), then scrapes the metrics registry over
// the wire via the tdwp admin request — the same path scripts/scrape.sh
// uses against any running proxy.
//
// Modes:
//   ./build/examples/example_observed_proxy               # self-contained
//       demo: serve on an ephemeral port, soak, scrape, print, exit
//   ./build/examples/example_observed_proxy serve [port]  # soak once,
//       then keep listening (for scripts/scrape.sh; default port 48620)
//   ./build/examples/example_observed_proxy scrape <port> # dump a running
//       proxy's scrape text to stdout and exit
//
// Env: HYPERQ_SLOW_QUERY_MICROS sets the slow-query threshold (default
// 5000 — the soak prints offending queries as JSON lines on stderr);
// HYPERQ_FAULTS / HYPERQ_FAULT_SEED arm extra fault drills (common/fault.h).

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>

#include "common/fault.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

constexpr uint16_t kDefaultPort = 48620;

int Scrape(uint16_t port) {
  protocol::TdwpClient client;
  if (!client.Connect(port).ok()) {
    std::fprintf(stderr, "cannot connect to 127.0.0.1:%u\n", port);
    return 1;
  }
  auto text = client.Scrape();
  if (!text.ok()) {
    std::fprintf(stderr, "scrape failed: %s\n",
                 text.status().ToString().c_str());
    return 1;
  }
  std::fputs(text->c_str(), stdout);
  client.Goodbye();
  return 0;
}

// The workload the demo/serve soak pushes through the proxy: repeated
// shapes (cache hits), a recursive query (emulation iterations), injected
// transient backend faults (retries), and a tight memory budget (sheds and
// spills) — so every counter family in the scrape is non-zero.
void Soak(uint16_t port) {
  FaultSpec transient;
  transient.kind = FaultKind::kTransient;
  transient.every = 5;
  transient.max_fires = 3;
  FaultInjector::Global().Arm(faultpoints::kVdbExecute, transient);

  protocol::TdwpClient app;
  if (!app.Connect(port).ok() || !app.Logon("observer", "secret").ok()) {
    std::fprintf(stderr, "soak client connection failed\n");
    return;
  }
  const char* setup[] = {
      "CREATE TABLE EMP (EMPNO INTEGER, MGRNO INTEGER)",
      "INS INTO EMP VALUES (1, 7)",
      "INS INTO EMP VALUES (7, 8)",
      "INS INTO EMP VALUES (8, 10)",
      "INS INTO EMP VALUES (9, 10)",
  };
  for (const char* sql : setup) (void)app.Run(sql);
  for (int i = 0; i < 20; ++i) {
    // Same shape, varying literal: one cold translation, then cache hits.
    std::string probe =
        "SEL EMPNO FROM EMP WHERE MGRNO = " + std::to_string(i % 4 + 7);
    (void)app.Run(probe);
  }
  (void)app.Run(
      "WITH RECURSIVE REPORTS (EMPNO, MGRNO) AS ("
      "SELECT EMPNO, MGRNO FROM EMP WHERE MGRNO = 10 "
      "UNION ALL "
      "SELECT EMP.EMPNO, EMP.MGRNO FROM EMP, REPORTS "
      "WHERE REPORTS.EMPNO = EMP.MGRNO) "
      "SELECT EMPNO FROM REPORTS ORDER BY EMPNO");
  app.Goodbye();
  FaultInjector::Global().Reset();
}

}  // namespace

int main(int argc, char** argv) {
  const char* mode = argc > 1 ? argv[1] : "";
  if (std::strcmp(mode, "scrape") == 0) {
    if (argc < 3) {
      std::fprintf(stderr, "usage: %s scrape <port>\n", argv[0]);
      return 2;
    }
    return Scrape(static_cast<uint16_t>(std::atoi(argv[2])));
  }

  bool serve = std::strcmp(mode, "serve") == 0;
  uint16_t port = 0;
  if (serve) {
    port = argc > 2 ? static_cast<uint16_t>(std::atoi(argv[2]))
                    : kDefaultPort;
  }

  if (const char* seed_env = std::getenv("HYPERQ_FAULT_SEED")) {
    FaultInjector::Global().SetSeed(std::strtoull(seed_env, nullptr, 10));
  }
  if (const char* faults_env = std::getenv("HYPERQ_FAULTS")) {
    Status st = FaultInjector::Global().Configure(faults_env);
    if (!st.ok()) {
      std::fprintf(stderr, "bad HYPERQ_FAULTS: %s\n", st.ToString().c_str());
      return 1;
    }
  }

  double slow_micros = 5000;
  if (const char* slow_env = std::getenv("HYPERQ_SLOW_QUERY_MICROS")) {
    slow_micros = std::strtod(slow_env, nullptr);
  }

  vdb::Engine warehouse;
  service::ServiceOptions options;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 4;
  options.slow_query_micros = slow_micros;  // JSON lines on stderr
  service::HyperQService hyperq(&warehouse, options);

  // One registry across service and server: a single scrape shows the
  // translation, cache, backend, governor, AND admission counters.
  protocol::TdwpServerOptions server_options;
  server_options.metrics = hyperq.metrics_registry();
  protocol::TdwpServer server(&hyperq, server_options);
  if (!server.Start(port).ok()) {
    std::fprintf(stderr, "cannot start tdwp server on port %u\n", port);
    return 1;
  }
  std::printf("Hyper-Q proxy listening on 127.0.0.1:%u (tdwp, tracing on, "
              "slow-query threshold %.0fus)\n",
              server.port(), slow_micros);

  Soak(server.port());

  if (serve) {
    // Stay up for external scrapes (scripts/scrape.sh); Ctrl-C to stop.
    std::printf("serving; scrape with: scripts/scrape.sh %u\n",
                server.port());
    for (;;) std::this_thread::sleep_for(std::chrono::seconds(3600));
  }

  // Demo mode: scrape our own wire endpoint and print the result.
  std::printf("\n--- scrape (tdwp stats request) ---\n");
  int rc = Scrape(server.port());
  server.Stop();

  // A few of the recent traces, for the span-tree flavor.
  std::printf("\n--- last 3 traces (most recent first) ---\n");
  for (const auto& trace : hyperq.trace_ring().Recent(3)) {
    std::printf("%s\n", trace->ToJson().c_str());
  }
  return rc;
}
