# Empty dependencies file for example_migration_assessment.
# This may be replaced when dependencies are built.
