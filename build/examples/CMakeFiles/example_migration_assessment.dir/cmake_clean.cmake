file(REMOVE_RECURSE
  "CMakeFiles/example_migration_assessment.dir/migration_assessment.cpp.o"
  "CMakeFiles/example_migration_assessment.dir/migration_assessment.cpp.o.d"
  "example_migration_assessment"
  "example_migration_assessment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_migration_assessment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
