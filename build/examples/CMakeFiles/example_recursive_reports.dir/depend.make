# Empty dependencies file for example_recursive_reports.
# This may be replaced when dependencies are built.
