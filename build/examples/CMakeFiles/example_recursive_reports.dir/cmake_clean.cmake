file(REMOVE_RECURSE
  "CMakeFiles/example_recursive_reports.dir/recursive_reports.cpp.o"
  "CMakeFiles/example_recursive_reports.dir/recursive_reports.cpp.o.d"
  "example_recursive_reports"
  "example_recursive_reports.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_recursive_reports.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
