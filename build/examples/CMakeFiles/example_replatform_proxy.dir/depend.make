# Empty dependencies file for example_replatform_proxy.
# This may be replaced when dependencies are built.
