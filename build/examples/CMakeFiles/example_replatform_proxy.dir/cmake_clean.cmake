file(REMOVE_RECURSE
  "CMakeFiles/example_replatform_proxy.dir/replatform_proxy.cpp.o"
  "CMakeFiles/example_replatform_proxy.dir/replatform_proxy.cpp.o.d"
  "example_replatform_proxy"
  "example_replatform_proxy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_replatform_proxy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
