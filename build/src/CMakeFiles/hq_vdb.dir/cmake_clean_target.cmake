file(REMOVE_RECURSE
  "libhq_vdb.a"
)
