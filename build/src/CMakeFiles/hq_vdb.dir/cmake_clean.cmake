file(REMOVE_RECURSE
  "CMakeFiles/hq_vdb.dir/vdb/engine.cc.o"
  "CMakeFiles/hq_vdb.dir/vdb/engine.cc.o.d"
  "CMakeFiles/hq_vdb.dir/vdb/executor.cc.o"
  "CMakeFiles/hq_vdb.dir/vdb/executor.cc.o.d"
  "CMakeFiles/hq_vdb.dir/vdb/optimizer.cc.o"
  "CMakeFiles/hq_vdb.dir/vdb/optimizer.cc.o.d"
  "CMakeFiles/hq_vdb.dir/vdb/storage.cc.o"
  "CMakeFiles/hq_vdb.dir/vdb/storage.cc.o.d"
  "libhq_vdb.a"
  "libhq_vdb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_vdb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
