# Empty dependencies file for hq_vdb.
# This may be replaced when dependencies are built.
