file(REMOVE_RECURSE
  "CMakeFiles/hq_workload.dir/workload/customer.cc.o"
  "CMakeFiles/hq_workload.dir/workload/customer.cc.o.d"
  "CMakeFiles/hq_workload.dir/workload/placeholder.cc.o"
  "CMakeFiles/hq_workload.dir/workload/placeholder.cc.o.d"
  "CMakeFiles/hq_workload.dir/workload/tpch.cc.o"
  "CMakeFiles/hq_workload.dir/workload/tpch.cc.o.d"
  "libhq_workload.a"
  "libhq_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
