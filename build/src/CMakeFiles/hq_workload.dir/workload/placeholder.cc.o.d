src/CMakeFiles/hq_workload.dir/workload/placeholder.cc.o: \
 /root/repo/src/workload/placeholder.cc /usr/include/stdc-predef.h
