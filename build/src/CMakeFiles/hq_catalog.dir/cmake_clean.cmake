file(REMOVE_RECURSE
  "CMakeFiles/hq_catalog.dir/catalog/catalog.cc.o"
  "CMakeFiles/hq_catalog.dir/catalog/catalog.cc.o.d"
  "libhq_catalog.a"
  "libhq_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
