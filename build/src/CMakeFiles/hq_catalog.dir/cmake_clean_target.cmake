file(REMOVE_RECURSE
  "libhq_catalog.a"
)
