# Empty compiler generated dependencies file for hq_catalog.
# This may be replaced when dependencies are built.
