file(REMOVE_RECURSE
  "libhq_backend.a"
)
