# Empty dependencies file for hq_backend.
# This may be replaced when dependencies are built.
