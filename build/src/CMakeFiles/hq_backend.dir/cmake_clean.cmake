file(REMOVE_RECURSE
  "CMakeFiles/hq_backend.dir/backend/connector.cc.o"
  "CMakeFiles/hq_backend.dir/backend/connector.cc.o.d"
  "CMakeFiles/hq_backend.dir/backend/result_store.cc.o"
  "CMakeFiles/hq_backend.dir/backend/result_store.cc.o.d"
  "CMakeFiles/hq_backend.dir/backend/tdf.cc.o"
  "CMakeFiles/hq_backend.dir/backend/tdf.cc.o.d"
  "libhq_backend.a"
  "libhq_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
