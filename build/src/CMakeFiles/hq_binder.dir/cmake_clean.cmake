file(REMOVE_RECURSE
  "CMakeFiles/hq_binder.dir/binder/binder.cc.o"
  "CMakeFiles/hq_binder.dir/binder/binder.cc.o.d"
  "libhq_binder.a"
  "libhq_binder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_binder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
