file(REMOVE_RECURSE
  "libhq_binder.a"
)
