# Empty dependencies file for hq_binder.
# This may be replaced when dependencies are built.
