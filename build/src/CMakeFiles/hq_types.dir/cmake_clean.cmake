file(REMOVE_RECURSE
  "CMakeFiles/hq_types.dir/types/date.cc.o"
  "CMakeFiles/hq_types.dir/types/date.cc.o.d"
  "CMakeFiles/hq_types.dir/types/datum.cc.o"
  "CMakeFiles/hq_types.dir/types/datum.cc.o.d"
  "CMakeFiles/hq_types.dir/types/decimal.cc.o"
  "CMakeFiles/hq_types.dir/types/decimal.cc.o.d"
  "CMakeFiles/hq_types.dir/types/type.cc.o"
  "CMakeFiles/hq_types.dir/types/type.cc.o.d"
  "libhq_types.a"
  "libhq_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
