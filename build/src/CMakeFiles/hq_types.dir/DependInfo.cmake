
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/types/date.cc" "src/CMakeFiles/hq_types.dir/types/date.cc.o" "gcc" "src/CMakeFiles/hq_types.dir/types/date.cc.o.d"
  "/root/repo/src/types/datum.cc" "src/CMakeFiles/hq_types.dir/types/datum.cc.o" "gcc" "src/CMakeFiles/hq_types.dir/types/datum.cc.o.d"
  "/root/repo/src/types/decimal.cc" "src/CMakeFiles/hq_types.dir/types/decimal.cc.o" "gcc" "src/CMakeFiles/hq_types.dir/types/decimal.cc.o.d"
  "/root/repo/src/types/type.cc" "src/CMakeFiles/hq_types.dir/types/type.cc.o" "gcc" "src/CMakeFiles/hq_types.dir/types/type.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
