file(REMOVE_RECURSE
  "libhq_serializer.a"
)
