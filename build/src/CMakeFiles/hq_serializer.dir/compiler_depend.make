# Empty compiler generated dependencies file for hq_serializer.
# This may be replaced when dependencies are built.
