file(REMOVE_RECURSE
  "CMakeFiles/hq_transform.dir/transform/backend_profile.cc.o"
  "CMakeFiles/hq_transform.dir/transform/backend_profile.cc.o.d"
  "CMakeFiles/hq_transform.dir/transform/transformer.cc.o"
  "CMakeFiles/hq_transform.dir/transform/transformer.cc.o.d"
  "libhq_transform.a"
  "libhq_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
