file(REMOVE_RECURSE
  "libhq_transform.a"
)
