# Empty compiler generated dependencies file for hq_transform.
# This may be replaced when dependencies are built.
