file(REMOVE_RECURSE
  "CMakeFiles/hq_frontend.dir/frontend/ast_printer.cc.o"
  "CMakeFiles/hq_frontend.dir/frontend/ast_printer.cc.o.d"
  "CMakeFiles/hq_frontend.dir/frontend/feature_scan.cc.o"
  "CMakeFiles/hq_frontend.dir/frontend/feature_scan.cc.o.d"
  "libhq_frontend.a"
  "libhq_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
