file(REMOVE_RECURSE
  "libhq_frontend.a"
)
