# Empty dependencies file for hq_frontend.
# This may be replaced when dependencies are built.
