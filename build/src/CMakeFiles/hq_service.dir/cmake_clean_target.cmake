file(REMOVE_RECURSE
  "libhq_service.a"
)
