# Empty dependencies file for hq_service.
# This may be replaced when dependencies are built.
