file(REMOVE_RECURSE
  "CMakeFiles/hq_service.dir/service/hyperq_service.cc.o"
  "CMakeFiles/hq_service.dir/service/hyperq_service.cc.o.d"
  "libhq_service.a"
  "libhq_service.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_service.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
