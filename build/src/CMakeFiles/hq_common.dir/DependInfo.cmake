
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/fault.cc" "src/CMakeFiles/hq_common.dir/common/fault.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/fault.cc.o.d"
  "/root/repo/src/common/features.cc" "src/CMakeFiles/hq_common.dir/common/features.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/features.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/hq_common.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/logging.cc.o.d"
  "/root/repo/src/common/retry.cc" "src/CMakeFiles/hq_common.dir/common/retry.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/retry.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/hq_common.dir/common/status.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "src/CMakeFiles/hq_common.dir/common/str_util.cc.o" "gcc" "src/CMakeFiles/hq_common.dir/common/str_util.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
