# Empty compiler generated dependencies file for hq_common.
# This may be replaced when dependencies are built.
