file(REMOVE_RECURSE
  "CMakeFiles/hq_common.dir/common/fault.cc.o"
  "CMakeFiles/hq_common.dir/common/fault.cc.o.d"
  "CMakeFiles/hq_common.dir/common/features.cc.o"
  "CMakeFiles/hq_common.dir/common/features.cc.o.d"
  "CMakeFiles/hq_common.dir/common/logging.cc.o"
  "CMakeFiles/hq_common.dir/common/logging.cc.o.d"
  "CMakeFiles/hq_common.dir/common/retry.cc.o"
  "CMakeFiles/hq_common.dir/common/retry.cc.o.d"
  "CMakeFiles/hq_common.dir/common/status.cc.o"
  "CMakeFiles/hq_common.dir/common/status.cc.o.d"
  "CMakeFiles/hq_common.dir/common/str_util.cc.o"
  "CMakeFiles/hq_common.dir/common/str_util.cc.o.d"
  "libhq_common.a"
  "libhq_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
