file(REMOVE_RECURSE
  "libhq_convert.a"
)
