# Empty dependencies file for hq_convert.
# This may be replaced when dependencies are built.
