file(REMOVE_RECURSE
  "CMakeFiles/hq_convert.dir/convert/result_converter.cc.o"
  "CMakeFiles/hq_convert.dir/convert/result_converter.cc.o.d"
  "libhq_convert.a"
  "libhq_convert.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_convert.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
