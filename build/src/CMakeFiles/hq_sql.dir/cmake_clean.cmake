file(REMOVE_RECURSE
  "CMakeFiles/hq_sql.dir/sql/ast.cc.o"
  "CMakeFiles/hq_sql.dir/sql/ast.cc.o.d"
  "CMakeFiles/hq_sql.dir/sql/lexer.cc.o"
  "CMakeFiles/hq_sql.dir/sql/lexer.cc.o.d"
  "CMakeFiles/hq_sql.dir/sql/parser.cc.o"
  "CMakeFiles/hq_sql.dir/sql/parser.cc.o.d"
  "libhq_sql.a"
  "libhq_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
