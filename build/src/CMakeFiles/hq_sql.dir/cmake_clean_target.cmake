file(REMOVE_RECURSE
  "libhq_sql.a"
)
