file(REMOVE_RECURSE
  "CMakeFiles/hq_emulation.dir/emulation/macro.cc.o"
  "CMakeFiles/hq_emulation.dir/emulation/macro.cc.o.d"
  "CMakeFiles/hq_emulation.dir/emulation/merge.cc.o"
  "CMakeFiles/hq_emulation.dir/emulation/merge.cc.o.d"
  "CMakeFiles/hq_emulation.dir/emulation/recursion.cc.o"
  "CMakeFiles/hq_emulation.dir/emulation/recursion.cc.o.d"
  "CMakeFiles/hq_emulation.dir/emulation/session.cc.o"
  "CMakeFiles/hq_emulation.dir/emulation/session.cc.o.d"
  "libhq_emulation.a"
  "libhq_emulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_emulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
