file(REMOVE_RECURSE
  "libhq_emulation.a"
)
