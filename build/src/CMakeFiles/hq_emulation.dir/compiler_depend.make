# Empty compiler generated dependencies file for hq_emulation.
# This may be replaced when dependencies are built.
