
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/protocol/client.cc" "src/CMakeFiles/hq_protocol.dir/protocol/client.cc.o" "gcc" "src/CMakeFiles/hq_protocol.dir/protocol/client.cc.o.d"
  "/root/repo/src/protocol/server.cc" "src/CMakeFiles/hq_protocol.dir/protocol/server.cc.o" "gcc" "src/CMakeFiles/hq_protocol.dir/protocol/server.cc.o.d"
  "/root/repo/src/protocol/socket.cc" "src/CMakeFiles/hq_protocol.dir/protocol/socket.cc.o" "gcc" "src/CMakeFiles/hq_protocol.dir/protocol/socket.cc.o.d"
  "/root/repo/src/protocol/tdwp.cc" "src/CMakeFiles/hq_protocol.dir/protocol/tdwp.cc.o" "gcc" "src/CMakeFiles/hq_protocol.dir/protocol/tdwp.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
