file(REMOVE_RECURSE
  "CMakeFiles/hq_protocol.dir/protocol/client.cc.o"
  "CMakeFiles/hq_protocol.dir/protocol/client.cc.o.d"
  "CMakeFiles/hq_protocol.dir/protocol/server.cc.o"
  "CMakeFiles/hq_protocol.dir/protocol/server.cc.o.d"
  "CMakeFiles/hq_protocol.dir/protocol/socket.cc.o"
  "CMakeFiles/hq_protocol.dir/protocol/socket.cc.o.d"
  "CMakeFiles/hq_protocol.dir/protocol/tdwp.cc.o"
  "CMakeFiles/hq_protocol.dir/protocol/tdwp.cc.o.d"
  "libhq_protocol.a"
  "libhq_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hq_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
