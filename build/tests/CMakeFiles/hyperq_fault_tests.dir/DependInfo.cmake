
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/fault_test.cc" "tests/CMakeFiles/hyperq_fault_tests.dir/fault_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_fault_tests.dir/fault_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_service.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_serializer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_vdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_xtra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
