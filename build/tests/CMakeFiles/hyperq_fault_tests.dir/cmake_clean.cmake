file(REMOVE_RECURSE
  "CMakeFiles/hyperq_fault_tests.dir/fault_test.cc.o"
  "CMakeFiles/hyperq_fault_tests.dir/fault_test.cc.o.d"
  "hyperq_fault_tests"
  "hyperq_fault_tests.pdb"
  "hyperq_fault_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hyperq_fault_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
