# Empty dependencies file for hyperq_fault_tests.
# This may be replaced when dependencies are built.
