# Empty dependencies file for hyperq_tests.
# This may be replaced when dependencies are built.
