
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/backend_test.cc" "tests/CMakeFiles/hyperq_tests.dir/backend_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/backend_test.cc.o.d"
  "/root/repo/tests/binder_test.cc" "tests/CMakeFiles/hyperq_tests.dir/binder_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/binder_test.cc.o.d"
  "/root/repo/tests/catalog_test.cc" "tests/CMakeFiles/hyperq_tests.dir/catalog_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/catalog_test.cc.o.d"
  "/root/repo/tests/common_test.cc" "tests/CMakeFiles/hyperq_tests.dir/common_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/common_test.cc.o.d"
  "/root/repo/tests/convert_test.cc" "tests/CMakeFiles/hyperq_tests.dir/convert_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/convert_test.cc.o.d"
  "/root/repo/tests/emulation_test.cc" "tests/CMakeFiles/hyperq_tests.dir/emulation_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/emulation_test.cc.o.d"
  "/root/repo/tests/frontend_test.cc" "tests/CMakeFiles/hyperq_tests.dir/frontend_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/frontend_test.cc.o.d"
  "/root/repo/tests/golden_test.cc" "tests/CMakeFiles/hyperq_tests.dir/golden_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/golden_test.cc.o.d"
  "/root/repo/tests/lexer_test.cc" "tests/CMakeFiles/hyperq_tests.dir/lexer_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/lexer_test.cc.o.d"
  "/root/repo/tests/optimizer_test.cc" "tests/CMakeFiles/hyperq_tests.dir/optimizer_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/optimizer_test.cc.o.d"
  "/root/repo/tests/parser_test.cc" "tests/CMakeFiles/hyperq_tests.dir/parser_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/parser_test.cc.o.d"
  "/root/repo/tests/pipeline_test.cc" "tests/CMakeFiles/hyperq_tests.dir/pipeline_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/pipeline_test.cc.o.d"
  "/root/repo/tests/protocol_test.cc" "tests/CMakeFiles/hyperq_tests.dir/protocol_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/protocol_test.cc.o.d"
  "/root/repo/tests/serializer_test.cc" "tests/CMakeFiles/hyperq_tests.dir/serializer_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/serializer_test.cc.o.d"
  "/root/repo/tests/service_extra_test.cc" "tests/CMakeFiles/hyperq_tests.dir/service_extra_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/service_extra_test.cc.o.d"
  "/root/repo/tests/service_test.cc" "tests/CMakeFiles/hyperq_tests.dir/service_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/service_test.cc.o.d"
  "/root/repo/tests/smoke_test.cc" "tests/CMakeFiles/hyperq_tests.dir/smoke_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/smoke_test.cc.o.d"
  "/root/repo/tests/tpch_test.cc" "tests/CMakeFiles/hyperq_tests.dir/tpch_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/tpch_test.cc.o.d"
  "/root/repo/tests/transformer_test.cc" "tests/CMakeFiles/hyperq_tests.dir/transformer_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/transformer_test.cc.o.d"
  "/root/repo/tests/types_test.cc" "tests/CMakeFiles/hyperq_tests.dir/types_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/types_test.cc.o.d"
  "/root/repo/tests/vdb_test.cc" "tests/CMakeFiles/hyperq_tests.dir/vdb_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/vdb_test.cc.o.d"
  "/root/repo/tests/workload_test.cc" "tests/CMakeFiles/hyperq_tests.dir/workload_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/workload_test.cc.o.d"
  "/root/repo/tests/xtra_test.cc" "tests/CMakeFiles/hyperq_tests.dir/xtra_test.cc.o" "gcc" "tests/CMakeFiles/hyperq_tests.dir/xtra_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/hq_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_service.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_convert.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_emulation.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_serializer.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_backend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_vdb.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_binder.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_xtra.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_protocol.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_types.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/hq_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
