file(REMOVE_RECURSE
  "CMakeFiles/bench_result_pipeline.dir/bench_result_pipeline.cc.o"
  "CMakeFiles/bench_result_pipeline.dir/bench_result_pipeline.cc.o.d"
  "bench_result_pipeline"
  "bench_result_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_result_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
