# Empty dependencies file for bench_result_pipeline.
# This may be replaced when dependencies are built.
