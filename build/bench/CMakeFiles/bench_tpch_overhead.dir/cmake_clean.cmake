file(REMOVE_RECURSE
  "CMakeFiles/bench_tpch_overhead.dir/bench_tpch_overhead.cc.o"
  "CMakeFiles/bench_tpch_overhead.dir/bench_tpch_overhead.cc.o.d"
  "bench_tpch_overhead"
  "bench_tpch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_tpch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
