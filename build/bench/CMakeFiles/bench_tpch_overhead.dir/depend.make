# Empty dependencies file for bench_tpch_overhead.
# This may be replaced when dependencies are built.
