# Empty dependencies file for bench_stress_test.
# This may be replaced when dependencies are built.
