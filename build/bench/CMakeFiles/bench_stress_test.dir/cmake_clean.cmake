file(REMOVE_RECURSE
  "CMakeFiles/bench_stress_test.dir/bench_stress_test.cc.o"
  "CMakeFiles/bench_stress_test.dir/bench_stress_test.cc.o.d"
  "bench_stress_test"
  "bench_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
