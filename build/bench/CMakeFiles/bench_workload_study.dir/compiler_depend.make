# Empty compiler generated dependencies file for bench_workload_study.
# This may be replaced when dependencies are built.
