file(REMOVE_RECURSE
  "CMakeFiles/bench_workload_study.dir/bench_workload_study.cc.o"
  "CMakeFiles/bench_workload_study.dir/bench_workload_study.cc.o.d"
  "bench_workload_study"
  "bench_workload_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_workload_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
