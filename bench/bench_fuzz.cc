// Differential fuzz campaign driver (DESIGN.md §12). Runs an open-ended
// generate → translate → execute → compare → reduce campaign over every
// registered SQL-B dialect and writes the summary to BENCH_fuzz.json.
// Exit code is non-zero when any mismatch survives, and doubly so when one
// could not be reduced — scripts/fuzz_nightly.sh keys off this.
//
// Flags:
//   --seed=N       stream seed (default 20260809)
//   --count=N      queries to generate; 0 = unbounded, use --seconds
//   --count N / --seed N spellings accepted too
//   --seconds=S    wall-clock bound in seconds (default 0 = none)
//   --dialects=a,b comma-separated dialect names (default: all registered)
//   --json=PATH    summary output path (default BENCH_fuzz.json)
//
// Also registers a micro-benchmark for the per-query differential cost.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "fuzz/campaign.h"
#include "fuzz/query_gen.h"
#include "serializer/dialect.h"

using namespace hyperq;

namespace {

std::vector<std::string> SplitCsv(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

// Accepts --name=value and "--name value"; consumed args are blanked so
// benchmark::Initialize never sees them.
std::string TakeFlag(int* argc, char** argv, const char* name) {
  std::string prefix = std::string("--") + name;
  for (int i = 1; i < *argc; ++i) {
    if (argv[i] == nullptr) continue;
    if (std::strncmp(argv[i], prefix.c_str(), prefix.size()) != 0) continue;
    const char* rest = argv[i] + prefix.size();
    if (*rest == '=') {
      argv[i] = nullptr;
      return rest + 1;
    }
    if (*rest == '\0' && i + 1 < *argc && argv[i + 1] != nullptr) {
      std::string v = argv[i + 1];
      argv[i] = nullptr;
      argv[i + 1] = nullptr;
      return v;
    }
  }
  return "";
}

void Compact(int* argc, char** argv) {
  int w = 1;
  for (int i = 1; i < *argc; ++i) {
    if (argv[i] != nullptr) argv[w++] = argv[i];
  }
  *argc = w;
}

// Micro-benchmark: one generated query through the full differential loop
// (translate to every dialect + execute + canonical compare).
void BM_DifferentialQuery(benchmark::State& state) {
  static fuzz::DifferentialHarness* harness = new fuzz::DifferentialHarness();
  uint64_t i = 0;
  for (auto _ : state) {
    fuzz::QuerySpec spec = fuzz::GenerateQuery(7, i++);
    auto outcome = harness->Run(spec.ToSql());
    benchmark::DoNotOptimize(outcome);
  }
}
BENCHMARK(BM_DifferentialQuery);

}  // namespace

int main(int argc, char** argv) {
  fuzz::CampaignOptions opts;
  opts.seed = 20260809;
  opts.count = 500;
  opts.dialects = serializer::DialectNames();
  std::string json_path = "BENCH_fuzz.json";

  std::string v;
  if (!(v = TakeFlag(&argc, argv, "seed")).empty()) {
    opts.seed = std::strtoull(v.c_str(), nullptr, 10);
  }
  if (!(v = TakeFlag(&argc, argv, "count")).empty()) {
    opts.count = std::atoi(v.c_str());
  }
  if (!(v = TakeFlag(&argc, argv, "seconds")).empty()) {
    opts.max_seconds = std::atof(v.c_str());
  }
  if (!(v = TakeFlag(&argc, argv, "dialects")).empty()) {
    opts.dialects = SplitCsv(v);
  }
  if (!(v = TakeFlag(&argc, argv, "json")).empty()) json_path = v;
  bool run_micro = !TakeFlag(&argc, argv, "micro").empty();
  Compact(&argc, argv);

  std::string names;
  for (const auto& d : opts.dialects) {
    if (!names.empty()) names += ",";
    names += d;
  }
  std::printf("fuzz campaign: seed=%llu count=%d seconds=%.0f dialects=%s\n",
              static_cast<unsigned long long>(opts.seed), opts.count,
              opts.max_seconds, names.c_str());

  fuzz::CampaignSummary summary = fuzz::RunCampaign(opts);
  std::printf(
      "fuzz: %d generated, %d translated on all dialects, %d executed, %d "
      "rejected, %d mismatched (%d reduced, %d unreduced) in %.1fs\n",
      summary.generated, summary.translated, summary.executed,
      summary.rejected, summary.mismatched, summary.reduced,
      summary.unreduced(), summary.seconds);
  for (const auto& m : summary.mismatches) {
    std::printf("  [%s] #%llu: %s\n    original (%d clauses): %s\n    "
                "reduced (%d clauses): %s\n",
                m.classification.c_str(),
                static_cast<unsigned long long>(m.index), m.detail.c_str(),
                m.original_clauses, m.original_sql.c_str(),
                m.reduced_clauses, m.reduced_sql.c_str());
  }

  FILE* f = std::fopen(json_path.c_str(), "w");
  if (f != nullptr) {
    std::string json = summary.ToJson();
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", json_path.c_str());
  } else {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
  }

  if (run_micro) {
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
  }
  if (summary.mismatched > 0) {
    return summary.unreduced() > 0 ? 2 : 1;
  }
  return 0;
}
