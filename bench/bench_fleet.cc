// Fleet availability under replica kill (DESIGN.md §10).
//
// Three compute replicas behind one proxy serve a steady multi-session
// SELECT workload; mid-run one replica is hard-killed, then revived. The
// study buckets completed queries over time and reports
//   * baseline QPS (median bucket rate before the kill),
//   * dip depth (worst bucket during the outage, as % of baseline),
//   * recovery time (kill -> first bucket back at >= 90% of baseline),
//   * end-to-end success rate (the >= 99% availability acceptance), and
//   * the pool's ejection/re-admission and failover counters,
// written to BENCH_fleet.json. The dip should be shallow and brief: sessions
// bound to the dead replica fail over (journal replay onto a live one) at
// their next statement, so only in-flight work pays the latency.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "backend/pool.h"
#include "backend/router.h"
#include "observability/metric_names.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

constexpr int kReplicas = 3;
constexpr int kWorkers = 4;
constexpr int kBucketMs = 50;
constexpr int kWarmupMs = 400;   // pre-kill baseline window
constexpr int kOutageMs = 300;   // kill -> revive
constexpr int kTailMs = 500;     // revived tail (probation re-entry)
constexpr int kTotalMs = kWarmupMs + kOutageMs + kTailMs;
constexpr int kBuckets = kTotalMs / kBucketMs;

service::ServiceOptions FleetOptions() {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends.resize(kReplicas);
  for (int i = 0; i < kReplicas; ++i) {
    options.fleet.backends[i].name = "replica-" + std::to_string(i);
    options.fleet.backends[i].profile = transform::BackendProfile::Vdb();
  }
  options.fleet.health.decay_half_life_ms = 200;
  options.fleet.health.readmit_cooldown_ms = 100;
  return options;
}

struct StudyResult {
  double baseline_qps = 0;
  double dip_min_qps = 0;
  double dip_depth_pct = 0;
  double recovery_ms = -1;
  long long completed = 0;
  long long failed = 0;
  backend::BackendPoolStats pool;
  int64_t cross_replica_failovers = 0;
};

StudyResult RunAvailabilityStudy() {
  vdb::Engine engine;
  service::HyperQService service(&engine, FleetOptions());
  {
    auto setup = service.OpenSession("setup");
    if (!setup.ok()) std::abort();
    if (!service.Submit(*setup, "CREATE TABLE T (A INTEGER, B VARCHAR(20))")
             .ok()) {
      std::abort();
    }
    for (int i = 0; i < 50; ++i) {
      if (!service
               .Submit(*setup, "INS INTO T VALUES (" + std::to_string(i) +
                                   ", 'row-" + std::to_string(i) + "')")
               .ok()) {
        std::abort();
      }
    }
    service.CloseSession(*setup);
  }

  std::vector<std::atomic<long long>> bucket_ok(kBuckets);
  for (auto& b : bucket_ok) b.store(0);
  std::atomic<long long> completed{0}, failed{0};
  std::atomic<bool> stop{false};
  auto start = std::chrono::steady_clock::now();

  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto sid = service.OpenSession("bench" + std::to_string(w));
      if (!sid.ok()) std::abort();
      int q = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        auto r = service.Submit(*sid, "SEL * FROM T WHERE A < " +
                                          std::to_string(10 + (q++ % 30)) +
                                          " ORDER BY A");
        int bucket = static_cast<int>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::steady_clock::now() - start)
                .count() /
            kBucketMs);
        if (r.ok()) {
          completed.fetch_add(1, std::memory_order_relaxed);
          if (bucket >= 0 && bucket < kBuckets) {
            bucket_ok[bucket].fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      service.CloseSession(*sid);
    });
  }

  std::this_thread::sleep_for(std::chrono::milliseconds(kWarmupMs));
  service.backend_pool()->KillBackend(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(kOutageMs));
  service.backend_pool()->ReviveBackend(0);
  std::this_thread::sleep_for(std::chrono::milliseconds(kTailMs));
  stop.store(true);
  for (auto& t : workers) t.join();

  StudyResult result;
  result.completed = completed.load();
  result.failed = failed.load();
  result.pool = service.backend_pool()->stats();
  result.cross_replica_failovers =
      service.metrics_registry()
          ->counter(observability::names::kFailoverCrossReplica)
          ->value();

  auto bucket_qps = [&](int b) {
    return bucket_ok[b].load() * 1000.0 / kBucketMs;
  };
  // Baseline: median bucket QPS before the kill (skip bucket 0, startup).
  std::vector<double> pre;
  for (int b = 1; b < kWarmupMs / kBucketMs; ++b) pre.push_back(bucket_qps(b));
  std::sort(pre.begin(), pre.end());
  result.baseline_qps = pre.empty() ? 0 : pre[pre.size() / 2];

  int kill_bucket = kWarmupMs / kBucketMs;
  result.dip_min_qps = bucket_qps(kill_bucket);
  for (int b = kill_bucket; b < kBuckets - 1; ++b) {
    result.dip_min_qps = std::min(result.dip_min_qps, bucket_qps(b));
  }
  result.dip_depth_pct =
      result.baseline_qps > 0
          ? 100.0 * (result.baseline_qps - result.dip_min_qps) /
                result.baseline_qps
          : 0;
  for (int b = kill_bucket; b < kBuckets - 1; ++b) {
    if (bucket_qps(b) >= 0.9 * result.baseline_qps) {
      result.recovery_ms = (b - kill_bucket) * kBucketMs;
      break;
    }
  }
  return result;
}

void WriteBenchJson(const StudyResult& r) {
  const char* path = "BENCH_fleet.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  long long total = r.completed + r.failed;
  double success_pct = total > 0 ? 100.0 * r.completed / total : 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"fleet_availability\",\n");
  std::fprintf(f, "  \"replicas\": %d,\n", kReplicas);
  std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
  std::fprintf(f, "  \"duration_ms\": %d,\n", kTotalMs);
  std::fprintf(f, "  \"outage_ms\": %d,\n", kOutageMs);
  std::fprintf(f, "  \"availability\": {\n");
  std::fprintf(f, "    \"completed\": %lld,\n", r.completed);
  std::fprintf(f, "    \"failed\": %lld,\n", r.failed);
  std::fprintf(f, "    \"success_pct\": %.3f,\n", success_pct);
  std::fprintf(f, "    \"acceptance_99pct\": %s\n",
               success_pct >= 99.0 ? "true" : "false");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"qps\": {\n");
  std::fprintf(f, "    \"baseline\": %.1f,\n", r.baseline_qps);
  std::fprintf(f, "    \"dip_min\": %.1f,\n", r.dip_min_qps);
  std::fprintf(f, "    \"dip_depth_pct\": %.1f,\n", r.dip_depth_pct);
  std::fprintf(f, "    \"recovery_ms\": %.0f\n", r.recovery_ms);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"fleet\": {\n");
  std::fprintf(f, "    \"cross_replica_failovers\": %lld,\n",
               static_cast<long long>(r.cross_replica_failovers));
  std::fprintf(f, "    \"ejections\": %lld,\n",
               static_cast<long long>(r.pool.ejections));
  std::fprintf(f, "    \"readmissions\": %lld,\n",
               static_cast<long long>(r.pool.readmissions));
  std::fprintf(f, "    \"probes\": %lld\n",
               static_cast<long long>(r.pool.probes));
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// Micro-benchmark: one routing decision over a healthy 3-replica pool.
void BM_RouterPick(benchmark::State& state) {
  static vdb::Engine* engine = new vdb::Engine();
  static backend::BackendPool* pool = [] {
    std::vector<backend::BackendSpec> specs(kReplicas);
    for (int i = 0; i < kReplicas; ++i) {
      specs[i].name = "replica-" + std::to_string(i);
      specs[i].profile = transform::BackendProfile::Vdb();
    }
    return new backend::BackendPool(engine, specs);
  }();
  static backend::Router* router = new backend::Router(pool);
  for (auto _ : state) {
    auto r = router->Pick();
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_RouterPick);

}  // namespace

int main(int argc, char** argv) {
  StudyResult result = RunAvailabilityStudy();
  std::printf(
      "fleet availability: %lld ok / %lld failed, baseline %.0f qps, dip "
      "%.0f qps (%.1f%%), recovery %.0f ms, %lld cross-replica failovers\n",
      result.completed, result.failed, result.baseline_qps,
      result.dip_min_qps, result.dip_depth_pct, result.recovery_ms,
      static_cast<long long>(result.cross_replica_failovers));
  WriteBenchJson(result);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
