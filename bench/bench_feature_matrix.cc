// Experiment F2 + A-T2: the Teradata feature support matrix (Figure 2) and
// the feature implementation map (Appendix Table 2).
//
// Figure 2 reports, for a selection of Teradata features, the percentage of
// leading cloud databases supporting them. We model five simulated cloud
// targets with heterogeneous capability profiles and additionally *probe*
// dynamic features by attempting a serialization against each profile —
// the probe must agree with the declared capability (self-check).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "binder/binder.h"
#include "catalog/catalog.h"
#include "serializer/serializer.h"
#include "sql/parser.h"
#include "transform/backend_profile.h"
#include "transform/transformer.h"

using namespace hyperq;
using transform::BackendProfile;

namespace {

struct FeatureRow {
  const char* name;
  bool BackendProfile::* flag;
  const char* component;  // Appendix Table 2: implementing component
  const char* hyperq_impl;
};

const std::vector<FeatureRow>& Rows() {
  static const std::vector<FeatureRow> kRows = {
      {"QUALIFY", &BackendProfile::supports_qualify, "Parser",
       "window Project + post-window filter"},
      {"Implicit joins", &BackendProfile::supports_implicit_join, "Binder",
       "expand FROM with referenced tables"},
      {"Named expression reuse", &BackendProfile::supports_named_expr_reuse,
       "Binder", "replace reference by definition"},
      {"Derived table column aliases",
       &BackendProfile::supports_derived_col_aliases, "Binder",
       "rename derived outputs"},
      {"Vector subqueries", &BackendProfile::supports_vector_subquery,
       "Transformer (serialization)", "rewrite to correlated EXISTS"},
      {"Grouping sets / ROLLUP / CUBE",
       &BackendProfile::supports_grouping_sets,
       "Transformer (serialization)", "expand to UNION ALL"},
      {"Recursive queries", &BackendProfile::supports_recursive_cte,
       "Emulation", "WorkTable/TempTable loop"},
      {"MERGE", &BackendProfile::supports_merge, "Emulation",
       "UPDATE + INSERT decomposition"},
      {"Macros / stored procedures",
       &BackendProfile::supports_stored_procedures, "Emulation (Binder)",
       "mid-tier expansion"},
      {"Ordinal GROUP BY", &BackendProfile::supports_ordinal_group_by,
       "Binder", "replace position by expression"},
      {"Date/integer comparison",
       &BackendProfile::supports_date_int_comparison,
       "Transformer (binding)", "expand date to integer encoding"},
      {"Date arithmetic", &BackendProfile::supports_date_arithmetic,
       "Transformer (serialization)", "DATE_ADD_DAYS rewrite"},
      {"SET tables", &BackendProfile::supports_set_tables,
       "Transformer (serialization)", "EXCEPT-based deduplication"},
      {"Global temporary tables",
       &BackendProfile::supports_global_temp_tables, "Emulation",
       "session-scoped tables + cleanup"},
      {"PERIOD data type", &BackendProfile::supports_period_type,
       "Binder/Transformer", "two DATE columns + DTM catalog"},
      {"Updatable views", &BackendProfile::supports_updatable_views,
       "Binder", "DML redirected to base table"},
      {"Non-constant column defaults",
       &BackendProfile::supports_nonconstant_defaults, "Binder",
       "mid-tier default evaluation"},
      {"Case-insensitive columns",
       &BackendProfile::supports_case_insensitive_columns, "Binder",
       "UPPER() wrapping + DTM catalog"},
  };
  return kRows;
}

// Dynamic probe: does serializing a vector-subquery comparison against this
// profile fail exactly when the profile says the feature is unsupported
// (and no transformation ran)?
bool ProbeVectorSubquery(const BackendProfile& profile) {
  Catalog catalog;
  TableDef t;
  t.name = "S";
  t.columns = {{"A", SqlType::Int(), true, {}},
               {"B", SqlType::Int(), true, {}}};
  if (!catalog.CreateTable(t).ok()) return false;
  auto stmt = sql::ParseStatement(
      "SELECT A FROM S WHERE (A, B) > ANY (SELECT A, B FROM S)",
      sql::Dialect::Teradata());
  if (!stmt.ok()) return false;
  binder::Binder binder(&catalog, sql::Dialect::Teradata());
  auto plan = binder.BindStatement(**stmt);
  if (!plan.ok()) return false;
  serializer::Serializer ser(profile);
  return ser.Serialize(**plan).ok();  // no transformer: raw capability
}

void PrintMatrix() {
  std::vector<BackendProfile> fleet = BackendProfile::CloudFleet();

  std::printf("\n=== Figure 2: Support for select Teradata features across "
              "major cloud databases ===\n");
  std::printf("%-34s", "Feature");
  for (const auto& p : fleet) std::printf(" %-11s", p.name.c_str());
  std::printf(" %8s\n", "support");
  for (const auto& row : Rows()) {
    std::printf("%-34s", row.name);
    int supported = 0;
    for (const auto& p : fleet) {
      bool s = p.*(row.flag);
      supported += s ? 1 : 0;
      std::printf(" %-11s", s ? "yes" : "-");
    }
    std::printf(" %7.0f%%\n", 100.0 * supported / fleet.size());
  }

  std::printf("\nCapability self-check (declared vs. probed, vector "
              "subqueries):\n");
  for (const auto& p : fleet) {
    bool probed = ProbeVectorSubquery(p);
    std::printf("  %-12s declared=%-3s probed=%-3s %s\n", p.name.c_str(),
                p.supports_vector_subquery ? "yes" : "no",
                probed ? "yes" : "no",
                probed == p.supports_vector_subquery ? "[ok]" : "[MISMATCH]");
  }

  std::printf("\n=== Appendix Table 2: feature -> implementing component "
              "===\n");
  std::printf("%-34s %-28s %s\n", "Feature", "Component",
              "Hyper-Q implementation");
  for (const auto& row : Rows()) {
    std::printf("%-34s %-28s %s\n", row.name, row.component,
                row.hyperq_impl);
  }
  std::printf("\n");
}

void BM_ProbeVectorSubquery(benchmark::State& state) {
  BackendProfile profile = BackendProfile::Vdb();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProbeVectorSubquery(profile));
  }
}
BENCHMARK(BM_ProbeVectorSubquery);

}  // namespace

int main(int argc, char** argv) {
  PrintMatrix();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
