// Experiment T1 + F8a + F8b: the customer workload study (paper §7.1).
//
// Reproduces Table 1 (workload overview) and Figure 8 (a: fraction of the
// 27 tracked features per class appearing at least once; b: fraction of
// distinct queries affected per class). The workloads are synthesized to
// the paper's published fractions (see workload/customer.h); the numbers
// printed here are *re-measured* by the instrumented rewrite engine, not
// echoed from the generator.
//
// Scale: HQ_WORKLOAD_SCALE (default 0.25) shrinks the distinct-query
// population; fractions are scale-invariant.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/features.h"
#include "common/stopwatch.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/customer.h"

using namespace hyperq;

namespace {

double WorkloadScale() {
  const char* env = std::getenv("HQ_WORKLOAD_SCALE");
  return env != nullptr ? std::atof(env) : 0.25;
}

struct StudyResult {
  workload::CustomerProfile profile;
  WorkloadFeatureStats measured;
  int64_t distinct = 0;
  int64_t total = 0;
  double translate_micros_total = 0;
};

StudyResult RunStudy(const workload::CustomerProfile& profile, double scale) {
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("study");
  if (!sid.ok()) std::abort();
  if (!workload::SetUpCustomerSchema(&service, *sid).ok()) std::abort();

  auto queries = workload::SynthesizeWorkload(profile, scale);
  StudyResult result;
  result.profile = profile;
  result.distinct = static_cast<int64_t>(queries.size());
  Stopwatch total;
  for (const auto& q : queries) {
    result.total += q.replay_count;
    FeatureSet features;
    auto translated = service.Translate(q.sql, &features);
    if (!translated.ok()) {
      std::fprintf(stderr, "translate failed: %s\n  %s\n",
                   translated.status().ToString().c_str(), q.sql.c_str());
      std::abort();
    }
    result.measured.AddQuery(features);
  }
  result.translate_micros_total = total.ElapsedMicros();
  return result;
}

void PrintStudy(const std::vector<StudyResult>& results) {
  std::printf("\n=== Table 1: Overview of customers and workloads ===\n");
  std::printf("%-12s %-8s %22s\n", "Customer", "Sector",
              "Total (Distinct) Queries");
  for (const auto& r : results) {
    // Table 1 reports the full-scale customer numbers; the scaled replay
    // population preserves the total:distinct ratio.
    std::printf("%-12s %-8s %15lld (%lld)\n", r.profile.name.c_str(),
                r.profile.sector.c_str(),
                static_cast<long long>(r.total),
                static_cast<long long>(r.distinct));
  }

  std::printf(
      "\n=== Figure 8(a): %% of tracked features contained in each workload "
      "===\n");
  std::printf("%-16s %14s %14s  (paper W1 / W2: 55.6/22.2, 77.8/66.7, "
              "33.3/33.3)\n",
              "Class", "Workload 1", "Workload 2");
  const char* classes[] = {"Translation", "Transformation", "Emulation"};
  for (int c = 0; c < 3; ++c) {
    std::printf("%-16s %13.1f%% %13.1f%%\n", classes[c],
                100.0 * results[0].measured.FeatureCoverage(
                            static_cast<RewriteClass>(c)),
                100.0 * results[1].measured.FeatureCoverage(
                            static_cast<RewriteClass>(c)));
  }

  std::printf(
      "\n=== Figure 8(b): %% of distinct queries affected by each class "
      "===\n");
  std::printf("%-16s %14s %14s  (paper W1 / W2: 1.4/0.2, 33.6/4.0, "
              "0.2/79.1)\n",
              "Class", "Workload 1", "Workload 2");
  for (int c = 0; c < 3; ++c) {
    std::printf("%-16s %13.1f%% %13.1f%%\n", classes[c],
                100.0 * results[0].measured.QueryFraction(
                            static_cast<RewriteClass>(c)),
                100.0 * results[1].measured.QueryFraction(
                            static_cast<RewriteClass>(c)));
  }

  std::printf("\nPer-feature query counts (distinct queries using each "
              "tracked feature):\n");
  std::printf("%-34s %12s %12s\n", "Feature", "Workload 1", "Workload 2");
  for (int i = 0; i < kNumFeatures; ++i) {
    Feature f = static_cast<Feature>(i);
    std::printf("%-34s %12lld %12lld\n", FeatureName(f),
                static_cast<long long>(results[0].measured
                                           .feature_query_counts[i]),
                static_cast<long long>(results[1].measured
                                           .feature_query_counts[i]));
  }
  std::printf("\n");
}

std::vector<StudyResult>* g_results = nullptr;

// Micro-benchmark: translation throughput over the workload-1 mix.
void BM_TranslateWorkloadQuery(benchmark::State& state) {
  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("bench");
  if (!sid.ok() ||
      !workload::SetUpCustomerSchema(&service, *sid).ok()) {
    state.SkipWithError("schema setup failed");
    return;
  }
  auto queries = workload::SynthesizeWorkload(
      workload::CustomerProfile::Customer1Health(), 0.02);
  size_t i = 0;
  for (auto _ : state) {
    FeatureSet features;
    auto r = service.Translate(queries[i % queries.size()].sql, &features);
    benchmark::DoNotOptimize(r);
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TranslateWorkloadQuery);

}  // namespace

int main(int argc, char** argv) {
  double scale = WorkloadScale();
  std::printf("Customer workload study (scale %.3f of distinct queries)\n",
              scale);
  std::vector<StudyResult> results;
  results.push_back(
      RunStudy(workload::CustomerProfile::Customer1Health(), scale));
  results.push_back(
      RunStudy(workload::CustomerProfile::Customer2Telco(), scale));
  g_results = &results;
  PrintStudy(results);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
