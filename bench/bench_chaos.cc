// Chaos resilience study (DESIGN.md §13).
//
// A wire-level proxy (TdwpServer over real TCP) serves an 8-session
// self-checking workload while declarative chaos scenarios degrade the
// links and the fleet. Per scenario the study reports
//   * availability (% of logical queries delivered, after retries),
//   * MTTR (fault-phase start -> first delivered query, averaged),
//   * client-observed latency p50/p99 (including retries),
//   * fault-injection counts (the storm actually fired), and
//   * the invariant audit verdict (violations fail the study),
// written to BENCH_chaos.json. Scenarios: baseline (no chaos), latency
// + jitter, a one-way partition of one replica's request path, a replica
// kill/revive cycle, and the full mixed soak from the acceptance bar.
//
// Flags: --chaos_seconds=N (per scenario; default 6) and
// --chaos_sessions=N (default 8). scripts/chaos_nightly.sh runs the long
// version. Remaining args go to Google Benchmark (micro-benchmarks for
// the disarmed-seam overhead and the ChaosNet decision path).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "chaos/auditor.h"
#include "chaos/link.h"
#include "chaos/orchestrator.h"
#include "chaos/workload.h"
#include "common/link_shim.h"
#include "common/resource_governor.h"
#include "observability/metric_names.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

int g_seconds = 6;
int g_sessions = 8;

struct ScenarioSpec {
  const char* name;
  /// Scenario script run in a loop for the study window; empty = no chaos.
  /// "%d" nowhere — scripts are literal. Fault phases are the ones whose
  /// name starts with "fault": MTTR is measured from their start.
  const char* script;
};

// Phase names starting with "fault" mark MTTR measurement points.
const ScenarioSpec kScenarios[] = {
    {"baseline", ""},
    {"latency_jitter", R"(
scenario latency_jitter
phase fault_latency 600
latency client ms=5 jitter=10
latency frontend ms=2 jitter=4
phase recover 200
heal
)"},
    {"partition_replica", R"(
scenario partition_replica
phase calm 200
phase fault_partition 500
partition backend send link=r0
phase recover 200
heal
)"},
    {"kill_revive", R"(
scenario kill_revive
phase calm 200
phase fault_kill 500
kill 1
phase recover 200
heal
)"},
    {"mixed_soak", R"(
scenario mixed_soak
phase warm 150
phase fault_degrade 350
latency client ms=3 jitter=4
short_io frontend p=0.08 max=5
short_io client p=0.08 max=5
corrupt client send=0.02
phase fault_partition 350
partition backend send link=r0
phase fault_kill 350
kill 1
phase recover 150
heal
)"},
};

struct ScenarioResult {
  std::string name;
  chaos::WorkloadReport report;
  chaos::LinkChaosStats net;
  double mttr_ms = 0;       // mean fault-start -> next delivery
  double p50_ms = 0;        // client-observed latency (incl. retries)
  double p99_ms = 0;
  int fault_phases = 0;
  std::vector<std::string> violations;
};

double Percentile(std::vector<double>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  size_t i = static_cast<size_t>(p * (v.size() - 1));
  return v[i];
}

ScenarioResult RunScenarioStudy(const ScenarioSpec& spec) {
  ScenarioResult result;
  result.name = spec.name;

  vdb::Engine engine;
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends.resize(3);
  for (int i = 0; i < 3; ++i) {
    options.fleet.backends[i].name = "r" + std::to_string(i);
    options.fleet.backends[i].profile = transform::BackendProfile::Vdb();
  }
  auto governor = std::make_shared<ResourceGovernor>();
  options.governor = governor;
  service::HyperQService service(&engine, options);

  protocol::TdwpServerOptions server_options;
  server_options.frame_read_timeout_ms = 2000;
  protocol::TdwpServer server(&service, server_options);
  if (!server.Start(0).ok()) std::abort();
  if (!chaos::ChaosWorkload::SeedData(server.port(), 48).ok()) std::abort();

  chaos::AuditorOptions audit_options;
  audit_options.service = &service;
  audit_options.server = &server;
  audit_options.governor = governor.get();
  audit_options.metrics = service.metrics_registry();
  chaos::InvariantAuditor auditor(audit_options);
  auditor.CaptureBaseline();

  chaos::ClientLedger ledger;
  chaos::ChaosNet net(0xC4A05, service.metrics_registry());
  net.Install();

  // Fault-phase start marks on the ledger clock, for MTTR.
  std::mutex marks_mutex;
  std::vector<int64_t> fault_marks;
  std::atomic<bool> done{false};
  std::thread chaos_thread;
  if (spec.script[0] != '\0') {
    chaos_thread = std::thread([&] {
      chaos::OrchestratorOptions opt;
      opt.net = &net;
      opt.pool = service.backend_pool();
      opt.metrics = service.metrics_registry();
      opt.on_phase = [&](const std::string& label) {
        if (label.find(") phase fault") != std::string::npos) {
          std::lock_guard<std::mutex> lock(marks_mutex);
          fault_marks.push_back(ledger.now_ms());
        }
      };
      chaos::ChaosOrchestrator orch(opt);
      while (!done.load()) {
        Status st = orch.RunScript(spec.script);
        if (!st.ok()) {
          std::fprintf(stderr, "scenario %s: %s\n", spec.name,
                       st.ToString().c_str());
          std::abort();
        }
      }
    });
  }

  chaos::WorkloadOptions w;
  w.port = server.port();
  w.sessions = g_sessions;
  w.duration_ms = g_seconds * 1000;
  w.max_attempts = 4;
  w.rows = 48;
  result.report = chaos::ChaosWorkload::Run(w, &ledger);
  done.store(true);
  if (chaos_thread.joinable()) chaos_thread.join();
  net.Uninstall();
  result.net = net.stats();

  result.violations = auditor.Audit(ledger);

  // Latency percentiles over delivered queries (retries included: this is
  // what the BI client experienced).
  std::vector<double> latencies;
  for (const auto& e : ledger.Entries()) {
    if (e.delivered) {
      latencies.push_back(static_cast<double>(e.t_end_ms - e.t_begin_ms));
    }
  }
  result.p50_ms = Percentile(latencies, 0.50);
  result.p99_ms = Percentile(latencies, 0.99);

  // MTTR: for each fault-phase start, time until the next delivered query
  // anywhere in the fleet of sessions. A shallow dip means milliseconds.
  auto samples = ledger.Samples();
  double mttr_sum = 0;
  int mttr_n = 0;
  {
    std::lock_guard<std::mutex> lock(marks_mutex);
    result.fault_phases = static_cast<int>(fault_marks.size());
    for (int64_t mark : fault_marks) {
      for (const auto& s : samples) {
        if (s.ok && s.t_ms >= mark) {
          mttr_sum += static_cast<double>(s.t_ms - mark);
          ++mttr_n;
          break;
        }
      }
    }
  }
  result.mttr_ms = mttr_n > 0 ? mttr_sum / mttr_n : 0;
  server.Stop();
  return result;
}

void WriteBenchJson(const std::vector<ScenarioResult>& results) {
  const char* path = "BENCH_chaos.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"chaos_resilience\",\n");
  std::fprintf(f, "  \"sessions\": %d,\n", g_sessions);
  std::fprintf(f, "  \"seconds_per_scenario\": %d,\n", g_seconds);
  std::fprintf(f, "  \"scenarios\": [\n");
  for (size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    double avail = 100.0 * r.report.success_rate();
    std::fprintf(f, "    {\n");
    std::fprintf(f, "      \"name\": \"%s\",\n", r.name.c_str());
    std::fprintf(f, "      \"issued\": %lld,\n",
                 static_cast<long long>(r.report.issued));
    std::fprintf(f, "      \"delivered\": %lld,\n",
                 static_cast<long long>(r.report.delivered));
    std::fprintf(f, "      \"failed\": %lld,\n",
                 static_cast<long long>(r.report.failed));
    std::fprintf(f, "      \"retries\": %lld,\n",
                 static_cast<long long>(r.report.retries));
    std::fprintf(f, "      \"availability_pct\": %.4f,\n", avail);
    std::fprintf(f, "      \"acceptance_99pct\": %s,\n",
                 avail >= 99.0 ? "true" : "false");
    std::fprintf(f, "      \"mttr_ms\": %.1f,\n", r.mttr_ms);
    std::fprintf(f, "      \"fault_phases\": %d,\n", r.fault_phases);
    std::fprintf(f, "      \"latency_p50_ms\": %.1f,\n", r.p50_ms);
    std::fprintf(f, "      \"latency_p99_ms\": %.1f,\n", r.p99_ms);
    std::fprintf(f, "      \"injected\": {\n");
    std::fprintf(f, "        \"latency\": %lld,\n",
                 static_cast<long long>(r.net.latency_injections));
    std::fprintf(f, "        \"short_ios\": %lld,\n",
                 static_cast<long long>(r.net.short_ios));
    std::fprintf(f, "        \"corruptions\": %lld,\n",
                 static_cast<long long>(r.net.corruptions));
    std::fprintf(f, "        \"resets\": %lld,\n",
                 static_cast<long long>(r.net.resets));
    std::fprintf(f, "        \"partition_drops\": %lld\n",
                 static_cast<long long>(r.net.partition_drops));
    std::fprintf(f, "      },\n");
    std::fprintf(f, "      \"audit_violations\": %zu\n",
                 r.violations.size());
    std::fprintf(f, "    }%s\n", i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// Micro-benchmark: the disarmed seam — the production-path cost of chaos
// support is one relaxed atomic load per transfer chunk.
void BM_LinkSeamDisarmed(benchmark::State& state) {
  SetGlobalLinkShim(nullptr);
  for (auto _ : state) {
    Status st = CheckLink(linkscopes::kBackend, "r0", true, 4096);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_LinkSeamDisarmed);

// Micro-benchmark: one armed ChaosNet decision (mutex + PRNG draws).
void BM_ChaosNetDecision(benchmark::State& state) {
  static chaos::ChaosNet* net = [] {
    auto* n = new chaos::ChaosNet(7);
    chaos::LinkFaults f;
    f.short_io_probability = 0.1;
    f.corrupt_send_probability = 0.05;
    n->Configure(linkscopes::kClient, f);
    return n;
  }();
  LinkOp op;
  op.scope = linkscopes::kClient;
  op.send = true;
  op.requested = 4096;
  for (auto _ : state) {
    size_t chunk = op.requested;
    bool blackhole = false, corrupt = false;
    Status st = net->BeforeTransfer(op, &chunk, &blackhole, &corrupt);
    benchmark::DoNotOptimize(st);
  }
}
BENCHMARK(BM_ChaosNetDecision);

}  // namespace

int main(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--chaos_seconds=", 16) == 0) {
      g_seconds = std::atoi(argv[i] + 16);
    } else if (std::strncmp(argv[i], "--chaos_sessions=", 17) == 0) {
      g_sessions = std::atoi(argv[i] + 17);
    }
  }
  if (g_seconds < 1) g_seconds = 1;
  if (g_sessions < 1) g_sessions = 1;

  std::vector<ScenarioResult> results;
  bool clean = true;
  for (const auto& spec : kScenarios) {
    ScenarioResult r = RunScenarioStudy(spec);
    std::printf(
        "%-18s %6lld issued, %.3f%% delivered, mttr %.1fms, p99 %.1fms, "
        "%zu violations\n",
        r.name.c_str(), static_cast<long long>(r.report.issued),
        100.0 * r.report.success_rate(), r.mttr_ms, r.p99_ms,
        r.violations.size());
    for (const auto& v : r.violations) {
      std::fprintf(stderr, "  invariant violation: %s\n", v.c_str());
      clean = false;
    }
    if (r.report.success_rate() < 0.99) {
      std::fprintf(stderr,
                   "  availability bar missed: %s delivered %.3f%% < 99%%\n",
                   r.name.c_str(), 100.0 * r.report.success_rate());
      clean = false;
    }
    results.push_back(std::move(r));
  }
  WriteBenchJson(results);

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return clean ? 0 : 1;
}
