// Ablation: the result data pipeline (paper §4.5/§4.6).
//
// Sweeps result-set sizes through the TDF packaging (ODBC-Server analog)
// and the Result Converter, in both buffered-in-memory and spill-to-disk
// regimes, and across converter parallelism — the design choices DESIGN.md
// calls out for the Result Store / Result Converter components.
//
// The run also performs the row-vs-batch study (DESIGN.md §15): the same
// result set pushed through the legacy per-row plane (TdfWriter::AddRow +
// encoded-blob Append) and through the columnar plane (zero-copy batch
// spans), medians over repeated runs, written to BENCH_pipeline.json. The
// process exits non-zero if the batch path is not at least 2x faster —
// the columnar redesign's floor, enforced where it can fail the build.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "backend/connector.h"
#include "backend/result_store.h"
#include "backend/tdf.h"
#include "common/stopwatch.h"
#include "convert/result_converter.h"
#include "protocol/tdwp.h"
#include "vdb/column_batch.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

vdb::QueryResult MakeResult(int64_t rows) {
  vdb::QueryResult result;
  result.columns = {{"ID", SqlType::Int()},
                    {"NAME", SqlType::Varchar(32)},
                    {"AMOUNT", SqlType::Decimal(12, 2)},
                    {"WHEN_D", SqlType::Date()}};
  result.rows.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    result.rows.push_back({Datum::Int(i),
                           Datum::String("row_" + std::to_string(i % 997)),
                           Datum::MakeDecimal(Decimal{i * 37, 2}),
                           Datum::Date(static_cast<int32_t>(8000 + i % 365))});
  }
  result.command_tag = "SELECT";
  return result;
}

// TDF packaging: rows -> TDF batches in the ResultStore, optionally
// spilling (memory budget = 64KiB forces spill for larger results).
void BM_TdfPackage(benchmark::State& state) {
  int64_t rows = state.range(0);
  bool spill = state.range(1) != 0;
  vdb::QueryResult result = MakeResult(rows);
  backend::ConnectorOptions opts;
  opts.store_memory_budget = spill ? (64 << 10) : (256 << 20);
  int64_t spilled = 0;
  for (auto _ : state) {
    // Same packaging path the BackendConnector uses internally.
    vdb::QueryResult copy = result;
    auto packaged = [&]() -> Result<backend::BackendResult> {
      backend::BackendResult out;
      for (const auto& col : copy.columns) {
        out.columns.push_back({col.name, col.type});
      }
      out.store = std::make_shared<backend::ResultStore>(
          opts.store_memory_budget, opts.spill_dir);
      size_t i = 0;
      while (i < copy.rows.size()) {
        backend::TdfWriter writer(out.columns);
        size_t end = std::min(copy.rows.size(), i + opts.batch_rows);
        for (; i < end; ++i) {
          HQ_RETURN_IF_ERROR(writer.AddRow(copy.rows[i]));
        }
        size_t n = writer.row_count();
        HQ_RETURN_IF_ERROR(out.store->Append(writer.Finish(), n));
      }
      return out;
    }();
    if (!packaged.ok()) {
      state.SkipWithError(packaged.status().ToString().c_str());
      return;
    }
    spilled = static_cast<int64_t>(packaged->store->spilled_batches());
    benchmark::DoNotOptimize(packaged);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spilled_batches"] = static_cast<double>(spilled);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_TdfPackage)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

// Result conversion: TDF -> frontend binary records across parallelism.
void BM_ResultConvert(benchmark::State& state) {
  int64_t rows = state.range(0);
  int parallelism = static_cast<int>(state.range(1));
  vdb::QueryResult result = MakeResult(rows);
  backend::BackendResult packaged;
  for (const auto& col : result.columns) {
    packaged.columns.push_back({col.name, col.type});
  }
  packaged.store = std::make_shared<backend::ResultStore>();
  backend::TdfWriter writer(packaged.columns);
  for (const auto& row : result.rows) {
    if (!writer.AddRow(row).ok()) {
      state.SkipWithError("tdf encode failed");
      return;
    }
  }
  size_t nrows = writer.row_count();
  if (!packaged.store->Append(writer.Finish(), nrows).ok()) {
    state.SkipWithError("store append failed");
    return;
  }

  convert::ResultConverter converter(parallelism);
  for (auto _ : state) {
    auto converted = converter.Convert(packaged);
    if (!converted.ok()) {
      state.SkipWithError(converted.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(converted);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ResultConvert)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({100000, 1})
    ->Args({100000, 4});

// Round trip including the client-side decode (bit-identical check path).
void BM_RecordRoundTrip(benchmark::State& state) {
  std::vector<protocol::WireColumn> schema;
  auto c1 = protocol::ToWireColumn("ID", SqlType::Int());
  auto c2 = protocol::ToWireColumn("D", SqlType::Date());
  auto c3 = protocol::ToWireColumn("S", SqlType::Varchar(32));
  if (!c1.ok() || !c2.ok() || !c3.ok()) {
    state.SkipWithError("schema");
    return;
  }
  schema = {*c1, *c2, *c3};
  std::vector<Datum> row = {Datum::Int(42), Datum::Date(16071),
                            Datum::String("hello world")};
  for (auto _ : state) {
    BufferWriter w;
    if (!protocol::EncodeRecord(schema, row, &w).ok()) {
      state.SkipWithError("encode");
      return;
    }
    BufferReader r(w.data(), w.size());
    auto decoded = protocol::DecodeRecord(schema, &r);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordRoundTrip);

double Median(std::vector<double> v) {
  if (v.empty()) return 0.0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

// Row-vs-batch study (DESIGN.md §15): the same rowset through both data
// planes, package + convert end to end.
//
//   row   — per-row Datum encode (TdfWriter::AddRow), encoded-blob Append
//           into the store, converter re-decodes each blob into a batch.
//   batch — columnar chunks appended as zero-copy spans; the converter
//           encodes wire records straight from the column vectors.
//
// The chunks themselves are built outside the timed region: on the batch
// plane the executor produces them natively, so constructing them is not
// part of the pipeline being replaced.
struct RowVsBatchStudy {
  double row_us = 0;
  double batch_us = 0;
  double speedup = 0;
};

RowVsBatchStudy RunRowVsBatchStudy() {
  constexpr int64_t kRows = 100000;
  constexpr size_t kBatchRows = 2048;
  constexpr int kIters = 9;

  vdb::QueryResult result = MakeResult(kRows);
  result.EnsureRows();
  std::vector<backend::TdfColumn> schema;
  std::vector<SqlType> types;
  for (const auto& col : result.columns) {
    schema.push_back({col.name, col.type});
    types.push_back(col.type);
  }
  std::vector<std::shared_ptr<const vdb::ColumnBatch>> chunks;
  for (size_t i = 0; i < result.rows.size(); i += kBatchRows) {
    size_t end = std::min(result.rows.size(), i + kBatchRows);
    chunks.push_back(vdb::BatchFromRows(types, result.rows, i, end));
  }

  convert::ResultConverter converter{convert::ConverterOptions{}};
  uint64_t row_rows = 0, batch_rows = 0;

  auto row_pass = [&]() -> double {
    Stopwatch sw;
    backend::BackendResult br;
    br.columns = schema;
    br.store = std::make_shared<backend::ResultStore>();
    size_t i = 0;
    while (i < result.rows.size()) {
      backend::TdfWriter writer(schema);
      size_t end = std::min(result.rows.size(), i + kBatchRows);
      for (; i < end; ++i) {
        if (!writer.AddRow(result.rows[i]).ok()) std::abort();
      }
      size_t n = writer.row_count();
      if (!br.store->Append(writer.Finish(), n).ok()) std::abort();
    }
    auto converted = converter.Convert(br);
    if (!converted.ok()) std::abort();
    row_rows = converted->total_rows;
    return sw.ElapsedMicros();
  };

  auto batch_pass = [&]() -> double {
    Stopwatch sw;
    backend::BackendResult br;
    br.columns = schema;
    br.store = std::make_shared<backend::ResultStore>();
    br.store->set_schema(schema);
    for (const auto& chunk : chunks) {
      if (!br.store->AppendBatch(chunk, 0, chunk->rows).ok()) std::abort();
    }
    auto converted = converter.Convert(br);
    if (!converted.ok()) std::abort();
    batch_rows = converted->total_rows;
    return sw.ElapsedMicros();
  };

  std::vector<double> row_us, batch_us;
  for (int it = 0; it < kIters; ++it) {
    row_us.push_back(row_pass());
    batch_us.push_back(batch_pass());
  }
  if (row_rows != static_cast<uint64_t>(kRows) || batch_rows != row_rows) {
    std::fprintf(stderr, "row-vs-batch study row-count mismatch\n");
    std::abort();
  }

  RowVsBatchStudy study;
  study.row_us = Median(row_us);
  study.batch_us = Median(batch_us);
  study.speedup = study.batch_us > 0 ? study.row_us / study.batch_us : 0;
  std::printf("Row-vs-batch data plane (%lld rows x 4 cols, %d iters):\n",
              static_cast<long long>(kRows), kIters);
  std::printf("  row plane:   %10.1f us (median)\n", study.row_us);
  std::printf("  batch plane: %10.1f us (median)\n", study.batch_us);
  std::printf("  speedup:     %10.2fx (floor: 2x)\n", study.speedup);
  return study;
}

void WritePipelineJson(const RowVsBatchStudy& study) {
  const char* path = "BENCH_pipeline.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"result_pipeline\",\n");
  std::fprintf(f, "  \"row_vs_batch\": {\n");
  std::fprintf(f, "    \"row_us\": %.1f,\n", study.row_us);
  std::fprintf(f, "    \"batch_us\": %.1f,\n", study.batch_us);
  std::fprintf(f, "    \"speedup\": %.2f,\n", study.speedup);
  std::fprintf(f, "    \"floor\": 2.0\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

}  // namespace

int main(int argc, char** argv) {
  RowVsBatchStudy study = RunRowVsBatchStudy();
  WritePipelineJson(study);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  // Gate: the columnar plane must hold at least 2x over the row plane
  // (acceptance bar for the DESIGN.md §15 redesign).
  return study.speedup >= 2.0 ? 0 : 1;
}
