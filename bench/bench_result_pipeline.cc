// Ablation: the result data pipeline (paper §4.5/§4.6).
//
// Sweeps result-set sizes through the TDF packaging (ODBC-Server analog)
// and the Result Converter, in both buffered-in-memory and spill-to-disk
// regimes, and across converter parallelism — the design choices DESIGN.md
// calls out for the Result Store / Result Converter components.

#include <benchmark/benchmark.h>

#include "backend/connector.h"
#include "backend/result_store.h"
#include "backend/tdf.h"
#include "convert/result_converter.h"
#include "protocol/tdwp.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

vdb::QueryResult MakeResult(int64_t rows) {
  vdb::QueryResult result;
  result.columns = {{"ID", SqlType::Int()},
                    {"NAME", SqlType::Varchar(32)},
                    {"AMOUNT", SqlType::Decimal(12, 2)},
                    {"WHEN_D", SqlType::Date()}};
  result.rows.reserve(rows);
  for (int64_t i = 0; i < rows; ++i) {
    result.rows.push_back({Datum::Int(i),
                           Datum::String("row_" + std::to_string(i % 997)),
                           Datum::MakeDecimal(Decimal{i * 37, 2}),
                           Datum::Date(static_cast<int32_t>(8000 + i % 365))});
  }
  result.command_tag = "SELECT";
  return result;
}

// TDF packaging: rows -> TDF batches in the ResultStore, optionally
// spilling (memory budget = 64KiB forces spill for larger results).
void BM_TdfPackage(benchmark::State& state) {
  int64_t rows = state.range(0);
  bool spill = state.range(1) != 0;
  vdb::QueryResult result = MakeResult(rows);
  backend::ConnectorOptions opts;
  opts.store_memory_budget = spill ? (64 << 10) : (256 << 20);
  int64_t spilled = 0;
  for (auto _ : state) {
    // Same packaging path the BackendConnector uses internally.
    vdb::QueryResult copy = result;
    auto packaged = [&]() -> Result<backend::BackendResult> {
      backend::BackendResult out;
      for (const auto& col : copy.columns) {
        out.columns.push_back({col.name, col.type});
      }
      out.store = std::make_shared<backend::ResultStore>(
          opts.store_memory_budget, opts.spill_dir);
      size_t i = 0;
      while (i < copy.rows.size()) {
        backend::TdfWriter writer(out.columns);
        size_t end = std::min(copy.rows.size(), i + opts.batch_rows);
        for (; i < end; ++i) {
          HQ_RETURN_IF_ERROR(writer.AddRow(copy.rows[i]));
        }
        size_t n = writer.row_count();
        HQ_RETURN_IF_ERROR(out.store->Append(writer.Finish(), n));
      }
      return out;
    }();
    if (!packaged.ok()) {
      state.SkipWithError(packaged.status().ToString().c_str());
      return;
    }
    spilled = static_cast<int64_t>(packaged->store->spilled_batches());
    benchmark::DoNotOptimize(packaged);
  }
  state.counters["rows"] = static_cast<double>(rows);
  state.counters["spilled_batches"] = static_cast<double>(spilled);
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_TdfPackage)
    ->Args({1000, 0})
    ->Args({1000, 1})
    ->Args({20000, 0})
    ->Args({20000, 1})
    ->Args({100000, 0})
    ->Args({100000, 1});

// Result conversion: TDF -> frontend binary records across parallelism.
void BM_ResultConvert(benchmark::State& state) {
  int64_t rows = state.range(0);
  int parallelism = static_cast<int>(state.range(1));
  vdb::QueryResult result = MakeResult(rows);
  backend::BackendResult packaged;
  for (const auto& col : result.columns) {
    packaged.columns.push_back({col.name, col.type});
  }
  packaged.store = std::make_shared<backend::ResultStore>();
  backend::TdfWriter writer(packaged.columns);
  for (const auto& row : result.rows) {
    if (!writer.AddRow(row).ok()) {
      state.SkipWithError("tdf encode failed");
      return;
    }
  }
  size_t nrows = writer.row_count();
  if (!packaged.store->Append(writer.Finish(), nrows).ok()) {
    state.SkipWithError("store append failed");
    return;
  }

  convert::ResultConverter converter(parallelism);
  for (auto _ : state) {
    auto converted = converter.Convert(packaged);
    if (!converted.ok()) {
      state.SkipWithError(converted.status().ToString().c_str());
      return;
    }
    benchmark::DoNotOptimize(converted);
  }
  state.SetItemsProcessed(state.iterations() * rows);
}
BENCHMARK(BM_ResultConvert)
    ->Args({20000, 1})
    ->Args({20000, 2})
    ->Args({20000, 4})
    ->Args({100000, 1})
    ->Args({100000, 4});

// Round trip including the client-side decode (bit-identical check path).
void BM_RecordRoundTrip(benchmark::State& state) {
  std::vector<protocol::WireColumn> schema;
  auto c1 = protocol::ToWireColumn("ID", SqlType::Int());
  auto c2 = protocol::ToWireColumn("D", SqlType::Date());
  auto c3 = protocol::ToWireColumn("S", SqlType::Varchar(32));
  if (!c1.ok() || !c2.ok() || !c3.ok()) {
    state.SkipWithError("schema");
    return;
  }
  schema = {*c1, *c2, *c3};
  std::vector<Datum> row = {Datum::Int(42), Datum::Date(16071),
                            Datum::String("hello world")};
  for (auto _ : state) {
    BufferWriter w;
    if (!protocol::EncodeRecord(schema, row, &w).ok()) {
      state.SkipWithError("encode");
      return;
    }
    BufferReader r(w.data(), w.size());
    auto decoded = protocol::DecodeRecord(schema, &r);
    benchmark::DoNotOptimize(decoded);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RecordRoundTrip);

}  // namespace

BENCHMARK_MAIN();
