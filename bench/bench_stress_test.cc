// Experiment F9b: concurrent stress test (paper §7.3, Figure 9b).
//
// Mimics the Fortune-10 customer scenario: N client sessions connect over
// the tdwp wire protocol and continuously pump TPC-H queries through
// Hyper-Q to the target warehouse. Per-query timing decompositions are
// carried back in the Success message; the aggregate shows Hyper-Q's
// overhead shrinking to a tiny fraction under concurrency (paper: 0.1-0.2%)
// because execution time grows with the concurrency level while the
// translation cost per query stays constant.
//
// Knobs: HQ_STRESS_CLIENTS (default 10), HQ_STRESS_SECONDS (default 10),
// HQ_TPCH_SF (default 0.005).

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/stopwatch.h"
#include "protocol/client.h"
#include "protocol/server.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/tpch.h"

using namespace hyperq;

namespace {

int EnvInt(const char* name, int dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atoi(v) : dflt;
}
double EnvDouble(const char* name, double dflt) {
  const char* v = std::getenv(name);
  return v != nullptr ? std::atof(v) : dflt;
}

struct ClientTotals {
  double translation = 0, execution = 0, conversion = 0;
  int64_t queries = 0, failures = 0;
};

// The lighter two-thirds of the TPC-H mix keeps per-query latency low
// enough for meaningful concurrency on the embedded target.
const std::vector<int> kStressQueries = {0, 2, 3, 4, 5, 9, 11, 13, 18, 21};

}  // namespace

int main() {
  int clients = EnvInt("HQ_STRESS_CLIENTS", 10);
  int seconds = EnvInt("HQ_STRESS_SECONDS", 10);
  double sf = EnvDouble("HQ_TPCH_SF", 0.005);

  vdb::Engine engine;
  service::HyperQService service(&engine);
  auto sid = service.OpenSession("loader");
  if (!sid.ok()) return 1;
  if (!workload::LoadTpch(&service, *sid, &engine, {sf, 7}).ok()) {
    std::fprintf(stderr, "load failed\n");
    return 1;
  }

  protocol::TdwpServer server(&service);
  if (!server.Start(0).ok()) return 1;

  std::printf("Stress test: %d concurrent tdwp sessions, %ds, TPC-H SF "
              "%.3g\n",
              clients, seconds, sf);

  std::atomic<bool> stop{false};
  std::vector<ClientTotals> totals(clients);
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      protocol::TdwpClient client;
      if (!client.Connect(server.port()).ok()) return;
      if (!client.Logon("stress" + std::to_string(c), "pw").ok()) return;
      size_t qi = static_cast<size_t>(c);
      while (!stop.load(std::memory_order_relaxed)) {
        int q = kStressQueries[qi++ % kStressQueries.size()];
        auto result = client.Run(workload::TpchQueries()[q]);
        if (!result.ok()) {
          ++totals[c].failures;
          continue;
        }
        totals[c].translation += result->translation_micros;
        totals[c].conversion += result->conversion_micros;
        totals[c].execution += result->execution_micros;
        ++totals[c].queries;
      }
      client.Goodbye();
    });
  }

  Stopwatch wall;
  while (wall.ElapsedSeconds() < seconds) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  stop = true;
  for (auto& t : threads) t.join();
  server.Stop();

  ClientTotals sum;
  for (const auto& t : totals) {
    sum.translation += t.translation;
    sum.execution += t.execution;
    sum.conversion += t.conversion;
    sum.queries += t.queries;
    sum.failures += t.failures;
  }
  double total = sum.translation + sum.execution + sum.conversion;
  std::printf("\n=== Figure 9(b): aggregated elapsed time, concurrent "
              "stress test ===\n");
  std::printf("  Sessions:              %10d\n", clients);
  std::printf("  Queries completed:     %10lld (%lld failures)\n",
              static_cast<long long>(sum.queries),
              static_cast<long long>(sum.failures));
  std::printf("  Throughput:            %10.1f queries/s\n",
              sum.queries / wall.ElapsedSeconds());
  if (total > 0) {
    std::printf("  Query translation:     %10.1f us  (%6.3f%%)\n",
                sum.translation, 100.0 * sum.translation / total);
    std::printf("  Execution:             %10.1f us  (%6.3f%%)\n",
                sum.execution, 100.0 * sum.execution / total);
    std::printf("  Result transformation: %10.1f us  (%6.3f%%)\n",
                sum.conversion, 100.0 * sum.conversion / total);
    std::printf("  Hyper-Q overhead:      %29.3f%%  (paper: 0.1-0.2%%)\n",
                100.0 * (sum.translation + sum.conversion) / total);
  }
  return sum.failures == 0 ? 0 : 2;
}
