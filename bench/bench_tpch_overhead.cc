// Experiment F9a: Hyper-Q overhead on TPC-H (paper §7.2, Figure 9a).
//
// All 22 TPC-H queries are submitted in the Teradata-ish dialect through
// the full pipeline against the vdb target; per query we record
//   * query translation time (parse + bind + transform + serialize),
//   * execution time on the target, and
//   * result transformation time (TDF -> frontend binary records),
// then report each component's share of end-to-end time. The paper measures
// <2% total overhead (≈0.5% translation, ≈1% conversion).
//
// Scale factor: HQ_TPCH_SF (default 0.01).

#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>

#include "common/stopwatch.h"
#include "convert/result_converter.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/tpch.h"

using namespace hyperq;

namespace {

double ScaleFactor() {
  const char* env = std::getenv("HQ_TPCH_SF");
  return env != nullptr ? std::atof(env) : 0.01;
}

struct Fixture {
  vdb::Engine engine;
  std::unique_ptr<service::HyperQService> service;
  uint32_t sid = 0;

  explicit Fixture(double sf) {
    service = std::make_unique<service::HyperQService>(&engine);
    auto s = service->OpenSession("tpch");
    if (!s.ok()) std::abort();
    sid = *s;
    Status load = workload::LoadTpch(service.get(), sid, &engine,
                                     {sf, 19620718});
    if (!load.ok()) {
      std::fprintf(stderr, "TPC-H load failed: %s\n",
                   load.ToString().c_str());
      std::abort();
    }
  }
};

void RunOverheadStudy(double sf) {
  Fixture fx(sf);
  const auto& queries = workload::TpchQueries();

  std::printf("\n=== Figure 9(a): Hyper-Q overhead, TPC-H SF %.3g, "
              "sequential run ===\n",
              sf);
  std::printf("%5s %12s %12s %12s %12s %8s\n", "query", "translate(us)",
              "execute(us)", "convert(us)", "total(us)", "rows");

  double sum_translate = 0, sum_execute = 0, sum_convert = 0;
  convert::ResultConverter converter(2);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto outcome = fx.service->Submit(fx.sid, queries[i]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s\n", i + 1,
                   outcome.status().ToString().c_str());
      std::abort();
    }
    Stopwatch conv;
    size_t rows = 0;
    if (outcome->result.is_rowset()) {
      auto converted = converter.Convert(outcome->result);
      if (!converted.ok()) std::abort();
      rows = converted->total_rows;
    }
    double convert_us = conv.ElapsedMicros();
    double total = outcome->timing.translation_micros +
                   outcome->timing.execution_micros + convert_us;
    std::printf("%5zu %12.1f %12.1f %12.1f %12.1f %8zu\n", i + 1,
                outcome->timing.translation_micros,
                outcome->timing.execution_micros, convert_us, total, rows);
    sum_translate += outcome->timing.translation_micros;
    sum_execute += outcome->timing.execution_micros;
    sum_convert += convert_us;
  }

  double sum_total = sum_translate + sum_execute + sum_convert;
  std::printf("\nAggregated elapsed time (all 22 queries):\n");
  std::printf("  Query translation:     %10.1f us  (%5.2f%%)\n",
              sum_translate, 100.0 * sum_translate / sum_total);
  std::printf("  Execution:             %10.1f us  (%5.2f%%)\n", sum_execute,
              100.0 * sum_execute / sum_total);
  std::printf("  Result transformation: %10.1f us  (%5.2f%%)\n", sum_convert,
              100.0 * sum_convert / sum_total);
  std::printf("  Hyper-Q overhead:      %29.2f%%  (paper: < 2%%)\n",
              100.0 * (sum_translate + sum_convert) / sum_total);
}

// Micro-benchmark: full translation (no execution) of a representative
// TPC-H query.
void BM_TranslateTpchQ1(benchmark::State& state) {
  static Fixture* fx = new Fixture(0.001);
  for (auto _ : state) {
    FeatureSet features;
    auto r = fx->service->Translate(workload::TpchQueries()[0], &features);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateTpchQ1);

}  // namespace

int main(int argc, char** argv) {
  RunOverheadStudy(ScaleFactor());
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
