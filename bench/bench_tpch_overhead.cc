// Experiment F9a: Hyper-Q overhead on TPC-H (paper §7.2, Figure 9a).
//
// All 22 TPC-H queries are submitted in the Teradata-ish dialect through
// the full pipeline against the vdb target; per query we record
//   * query translation time (parse + bind + transform + serialize),
//   * execution time on the target, and
//   * result transformation time (TDF -> frontend binary records),
// then report each component's share of end-to-end time. The paper measures
// <2% total overhead (≈0.5% translation, ≈1% conversion).
//
// Scale factor: HQ_TPCH_SF (default 0.01).
//
// The run also performs the translation-cache study (DESIGN.md §7): per
// query, cold-path translation (cache disabled) vs steady-state hit-path
// translation (cache warm), medians over repeated runs, written to
// BENCH_tpch_overhead.json alongside the overhead aggregates.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/stopwatch.h"
#include "convert/result_converter.h"
#include "observability/metric_names.h"
#include "observability/metrics.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"
#include "workload/tpch.h"

using namespace hyperq;

namespace {

double ScaleFactor() {
  const char* env = std::getenv("HQ_TPCH_SF");
  return env != nullptr ? std::atof(env) : 0.01;
}

struct Fixture {
  vdb::Engine engine;
  std::unique_ptr<service::HyperQService> service;
  uint32_t sid = 0;

  explicit Fixture(double sf,
                   service::ServiceOptions options = {}) {
    service = std::make_unique<service::HyperQService>(&engine, options);
    auto s = service->OpenSession("tpch");
    if (!s.ok()) std::abort();
    sid = *s;
    Status load = workload::LoadTpch(service.get(), sid, &engine,
                                     {sf, 19620718});
    if (!load.ok()) {
      std::fprintf(stderr, "TPC-H load failed: %s\n",
                   load.ToString().c_str());
      std::abort();
    }
  }
};

double Median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  return v.empty() ? 0.0 : v[v.size() / 2];
}

struct CacheStudyRow {
  size_t query = 0;
  double cold_us = 0;
  double hit_us = 0;
  bool cached = false;
};

struct LatencyStudy {
  int64_t samples = 0;
  double p50_us = 0, p95_us = 0, p99_us = 0;  // from hyperq.query.micros
  double traced_median_us = 0;   // wall-clock medians, tracing on vs off
  double untraced_median_us = 0;
  double tracing_overhead_pct = 0;
};

/// Cold vs hit translation latency per TPC-H query. Cold numbers come
/// from a cache-disabled service, hit numbers from a cache-enabled one
/// after seeding — both via Translate(), so execution never pollutes the
/// measurement.
std::vector<CacheStudyRow> RunCacheStudy(double sf) {
  Fixture warm(sf);
  service::ServiceOptions off;
  off.translation_cache.enabled = false;
  Fixture cold(sf, off);
  const auto& queries = workload::TpchQueries();

  std::printf("\n=== Translation cache: cold vs hit translation latency "
              "(median of 15) ===\n");
  std::printf("%5s %12s %12s %9s %8s\n", "query", "cold(us)", "hit(us)",
              "speedup", "cached");

  constexpr int kIters = 15;
  std::vector<CacheStudyRow> rows;
  for (size_t i = 0; i < queries.size(); ++i) {
    CacheStudyRow row;
    row.query = i + 1;
    // Seed the template, then check the shape actually landed in the
    // cache (emulated multi-statement shapes bypass it by design).
    auto seeded = warm.service->Translate(queries[i], nullptr);
    if (!seeded.ok()) std::abort();
    int64_t hits_before = warm.service->StatsSnapshot().translation_cache.hits;
    auto probe = warm.service->Translate(queries[i], nullptr);
    if (!probe.ok()) std::abort();
    row.cached =
        warm.service->StatsSnapshot().translation_cache.hits > hits_before;

    std::vector<double> cold_us, hit_us;
    for (int it = 0; it < kIters; ++it) {
      Stopwatch sw_cold;
      auto c = cold.service->Translate(queries[i], nullptr);
      if (!c.ok()) std::abort();
      cold_us.push_back(sw_cold.ElapsedMicros());
      Stopwatch sw_hit;
      auto h = warm.service->Translate(queries[i], nullptr);
      if (!h.ok()) std::abort();
      hit_us.push_back(sw_hit.ElapsedMicros());
    }
    row.cold_us = Median(cold_us);
    row.hit_us = Median(hit_us);
    std::printf("%5zu %12.1f %12.1f %8.1fx %8s\n", row.query, row.cold_us,
                row.hit_us, row.cold_us / row.hit_us,
                row.cached ? "yes" : "no");
    rows.push_back(row);
  }
  return rows;
}

void WriteBenchJson(double sf, const std::vector<CacheStudyRow>& rows,
                    const LatencyStudy& latency, double sum_translate,
                    double sum_execute, double sum_convert) {
  const char* path = "BENCH_tpch_overhead.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  double sum_total = sum_translate + sum_execute + sum_convert;
  std::vector<double> speedups;
  for (const auto& r : rows) {
    if (r.cached && r.hit_us > 0) speedups.push_back(r.cold_us / r.hit_us);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"tpch_overhead\",\n");
  std::fprintf(f, "  \"scale_factor\": %g,\n", sf);
  std::fprintf(f, "  \"overhead\": {\n");
  std::fprintf(f, "    \"translate_us\": %.1f,\n", sum_translate);
  std::fprintf(f, "    \"execute_us\": %.1f,\n", sum_execute);
  std::fprintf(f, "    \"convert_us\": %.1f,\n", sum_convert);
  std::fprintf(f, "    \"overhead_pct\": %.3f\n",
               sum_total > 0
                   ? 100.0 * (sum_translate + sum_convert) / sum_total
                   : 0.0);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"latency\": {\n");
  std::fprintf(f, "    \"samples\": %lld,\n",
               static_cast<long long>(latency.samples));
  std::fprintf(f, "    \"p50_us\": %.1f,\n", latency.p50_us);
  std::fprintf(f, "    \"p95_us\": %.1f,\n", latency.p95_us);
  std::fprintf(f, "    \"p99_us\": %.1f,\n", latency.p99_us);
  std::fprintf(f, "    \"tracing_median_us\": %.1f,\n",
               latency.traced_median_us);
  std::fprintf(f, "    \"tracing_off_median_us\": %.1f,\n",
               latency.untraced_median_us);
  std::fprintf(f, "    \"tracing_overhead_pct\": %.2f\n",
               latency.tracing_overhead_pct);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"translation_cache\": {\n");
  std::fprintf(f, "    \"cached_queries\": %zu,\n", speedups.size());
  std::fprintf(f, "    \"bypassed_queries\": %zu,\n",
               rows.size() - speedups.size());
  std::fprintf(f, "    \"median_speedup\": %.2f,\n", Median(speedups));
  std::fprintf(f, "    \"queries\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    std::fprintf(f,
                 "      {\"query\": %zu, \"cold_us\": %.1f, \"hit_us\": "
                 "%.1f, \"cached\": %s}%s\n",
                 r.query, r.cold_us, r.hit_us, r.cached ? "true" : "false",
                 i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "    ]\n");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("\nwrote %s (median hit-path speedup over cold translation: "
              "%.1fx across %zu cached queries)\n",
              path, Median(speedups), speedups.size());
}

/// End-to-end latency distribution over repeated runs of all 22 queries,
/// read back from the service's own hyperq.query.micros{class="library"}
/// histogram — so the numbers exercise the observability stack they
/// describe. The same workload against a tracing-off service bounds the
/// cost of tracing itself (acceptance: < 2% on the median).
LatencyStudy RunLatencyStudy(double sf) {
  namespace names = observability::names;
  Fixture traced(sf);
  service::ServiceOptions off;
  off.tracing = false;
  Fixture untraced(sf, off);
  const auto& queries = workload::TpchQueries();

  constexpr int kRounds = 5;
  std::vector<double> on_us, off_us;
  for (int round = 0; round < kRounds; ++round) {
    for (const auto& q : queries) {
      Stopwatch sw_on;
      if (!traced.service->Submit(traced.sid, q).ok()) std::abort();
      on_us.push_back(sw_on.ElapsedMicros());
      Stopwatch sw_off;
      if (!untraced.service->Submit(untraced.sid, q).ok()) std::abort();
      off_us.push_back(sw_off.ElapsedMicros());
    }
  }

  LatencyStudy study;
  auto snap = traced.service->StatsSnapshot().metrics;
  auto it = snap.histograms.find(observability::LabeledName(
      names::kQueryMicros, {{"class", "library"}}));
  if (it != snap.histograms.end()) {
    study.samples = it->second.count;
    study.p50_us = it->second.p50();
    study.p95_us = it->second.p95();
    study.p99_us = it->second.p99();
  }
  study.traced_median_us = Median(on_us);
  study.untraced_median_us = Median(off_us);
  study.tracing_overhead_pct =
      study.untraced_median_us > 0
          ? 100.0 *
                (study.traced_median_us - study.untraced_median_us) /
                study.untraced_median_us
          : 0.0;
  std::printf("\n=== Latency distribution (hyperq.query.micros, %lld "
              "samples) ===\n",
              static_cast<long long>(study.samples));
  std::printf("  p50 %.1fus  p95 %.1fus  p99 %.1fus\n", study.p50_us,
              study.p95_us, study.p99_us);
  std::printf("  tracing on/off median: %.1fus / %.1fus (overhead "
              "%+.2f%%, target < 2%%)\n",
              study.traced_median_us, study.untraced_median_us,
              study.tracing_overhead_pct);
  return study;
}

struct OverheadSums {
  double translate = 0, execute = 0, convert = 0;
};

OverheadSums RunOverheadStudy(double sf) {
  Fixture fx(sf);
  const auto& queries = workload::TpchQueries();

  std::printf("\n=== Figure 9(a): Hyper-Q overhead, TPC-H SF %.3g, "
              "sequential run ===\n",
              sf);
  std::printf("%5s %12s %12s %12s %12s %8s\n", "query", "translate(us)",
              "execute(us)", "convert(us)", "total(us)", "rows");

  double sum_translate = 0, sum_execute = 0, sum_convert = 0;
  convert::ResultConverter converter(2);
  for (size_t i = 0; i < queries.size(); ++i) {
    auto outcome = fx.service->Submit(fx.sid, queries[i]);
    if (!outcome.ok()) {
      std::fprintf(stderr, "Q%zu failed: %s\n", i + 1,
                   outcome.status().ToString().c_str());
      std::abort();
    }
    Stopwatch conv;
    size_t rows = 0;
    if (outcome->result.is_rowset()) {
      auto converted = converter.Convert(outcome->result);
      if (!converted.ok()) std::abort();
      rows = converted->total_rows;
    }
    double convert_us = conv.ElapsedMicros();
    double total = outcome->timing.translation_micros +
                   outcome->timing.execution_micros + convert_us;
    std::printf("%5zu %12.1f %12.1f %12.1f %12.1f %8zu\n", i + 1,
                outcome->timing.translation_micros,
                outcome->timing.execution_micros, convert_us, total, rows);
    sum_translate += outcome->timing.translation_micros;
    sum_execute += outcome->timing.execution_micros;
    sum_convert += convert_us;
  }

  double sum_total = sum_translate + sum_execute + sum_convert;
  std::printf("\nAggregated elapsed time (all 22 queries):\n");
  std::printf("  Query translation:     %10.1f us  (%5.2f%%)\n",
              sum_translate, 100.0 * sum_translate / sum_total);
  std::printf("  Execution:             %10.1f us  (%5.2f%%)\n", sum_execute,
              100.0 * sum_execute / sum_total);
  std::printf("  Result transformation: %10.1f us  (%5.2f%%)\n", sum_convert,
              100.0 * sum_convert / sum_total);
  std::printf("  Hyper-Q overhead:      %29.2f%%  (paper: < 2%%)\n",
              100.0 * (sum_translate + sum_convert) / sum_total);
  return {sum_translate, sum_execute, sum_convert};
}

// Micro-benchmark: full translation (no execution) of a representative
// TPC-H query.
void BM_TranslateTpchQ1(benchmark::State& state) {
  static Fixture* fx = new Fixture(0.001);
  for (auto _ : state) {
    FeatureSet features;
    auto r = fx->service->Translate(workload::TpchQueries()[0], &features);
    benchmark::DoNotOptimize(r);
  }
}
BENCHMARK(BM_TranslateTpchQ1);

}  // namespace

int main(int argc, char** argv) {
  double sf = ScaleFactor();
  OverheadSums sums = RunOverheadStudy(sf);
  std::vector<CacheStudyRow> cache_rows = RunCacheStudy(sf);
  LatencyStudy latency = RunLatencyStudy(sf);
  WriteBenchJson(sf, cache_rows, latency, sums.translate, sums.execute,
                 sums.convert);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
