// Tail-latency study: hedged reads vs. stragglers (DESIGN.md §11).
//
// Three compute replicas serve a steady multi-session SELECT workload
// while a deterministic latency fault turns every 20th backend execution
// (~5% of traffic) into a 20ms straggler — the classic long-tail shape
// hedging exists for. The same workload runs twice, unhedged and hedged
// (2ms trigger floor, retry budget at a 10% ratio), and the study reports
//   * p50/p95/p99 client latency per configuration,
//   * backend attempt counts (hedges are extra attempts; the acceptance
//     bound is <= 10% added attempts over the unhedged run),
//   * hedge outcome counters (launched/wins/losses/denials), and
//   * the two acceptance gates: p99 cut >= 2x, added attempts <= 10%,
// written to BENCH_tail.json.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "backend/adaptive_limit.h"
#include "common/brownout.h"
#include "common/fault.h"
#include "common/retry_budget.h"
#include "observability/metric_names.h"
#include "service/hyperq_service.h"
#include "vdb/engine.h"

using namespace hyperq;

namespace {

namespace names = observability::names;

constexpr int kReplicas = 3;
constexpr int kWorkers = 4;
constexpr int kQueriesPerWorker = 250;
constexpr int kStragglerEvery = 20;  // 1-in-20 backend calls stall...
constexpr int kStragglerMs = 20;     // ...for 20ms

service::ServiceOptions TailOptions(bool hedging) {
  service::ServiceOptions options;
  options.connector.retry.max_attempts = 2;
  options.connector.retry.base_delay_ms = 1;
  options.connector.retry.max_delay_ms = 2;
  options.fleet.backends.resize(kReplicas);
  for (int i = 0; i < kReplicas; ++i) {
    options.fleet.backends[i].name = "replica-" + std::to_string(i);
    options.fleet.backends[i].profile = transform::BackendProfile::Vdb();
  }
  if (hedging) {
    options.tail.hedge.enabled = true;
    options.tail.hedge.min_threshold_micros = 2000;
    options.tail.hedge.max_hedge_fraction = 1.0;
    // Speculative work still pays into the shared retry budget: ~5%
    // stragglers fit comfortably inside the 10% ratio.
    options.tail.retry_budget.enabled = true;
    options.tail.retry_budget.ratio = 0.1;
    options.tail.retry_budget.initial_tokens = 10;
    options.tail.retry_budget.max_tokens = 50;
  }
  return options;
}

struct RunResult {
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  long long queries = 0;
  long long failed = 0;
  int64_t backend_attempts = 0;
  int64_t hedges_launched = 0;
  int64_t hedge_wins = 0;
  int64_t hedge_losses = 0;
  int64_t hedge_denied = 0;
};

RunResult RunStudy(bool hedging) {
  FaultInjector::Global().Reset();
  FaultInjector::Global().SetSeed(0x7A11);

  vdb::Engine engine;
  service::HyperQService service(&engine, TailOptions(hedging));
  {
    auto setup = service.OpenSession("setup");
    if (!setup.ok()) std::abort();
    if (!service.Submit(*setup, "CREATE TABLE T (A INTEGER, B VARCHAR(20))")
             .ok()) {
      std::abort();
    }
    for (int i = 0; i < 50; ++i) {
      if (!service
               .Submit(*setup, "INS INTO T VALUES (" + std::to_string(i) +
                                   ", 'row-" + std::to_string(i) + "')")
               .ok()) {
        std::abort();
      }
    }
    service.CloseSession(*setup);
  }
  const int64_t setup_attempts =
      service.metrics_registry()->counter(names::kBackendAttempts)->value();

  // Arm the straggler shape only for the measured workload.
  if (!FaultInjector::Global()
           .Configure("vdb.execute=latency:ms=" +
                      std::to_string(kStragglerMs) +
                      ",every=" + std::to_string(kStragglerEvery))
           .ok()) {
    std::abort();
  }

  std::mutex latencies_mutex;
  std::vector<double> latencies;
  latencies.reserve(kWorkers * kQueriesPerWorker);
  std::atomic<long long> failed{0};
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      auto sid = service.OpenSession("bench" + std::to_string(w));
      if (!sid.ok()) std::abort();
      std::vector<double> local;
      local.reserve(kQueriesPerWorker);
      for (int q = 0; q < kQueriesPerWorker; ++q) {
        auto start = std::chrono::steady_clock::now();
        auto r = service.Submit(*sid, "SEL * FROM T WHERE A < " +
                                          std::to_string(10 + (q % 30)) +
                                          " ORDER BY A");
        auto micros = std::chrono::duration_cast<std::chrono::microseconds>(
                          std::chrono::steady_clock::now() - start)
                          .count();
        if (r.ok()) {
          local.push_back(static_cast<double>(micros));
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
      service.CloseSession(*sid);
      std::lock_guard<std::mutex> lock(latencies_mutex);
      latencies.insert(latencies.end(), local.begin(), local.end());
    });
  }
  for (auto& t : workers) t.join();
  FaultInjector::Global().Reset();

  std::sort(latencies.begin(), latencies.end());
  auto quantile = [&](double q) {
    if (latencies.empty()) return 0.0;
    size_t idx = static_cast<size_t>(q * (latencies.size() - 1));
    return latencies[idx] / 1000.0;
  };
  RunResult result;
  result.p50_ms = quantile(0.50);
  result.p95_ms = quantile(0.95);
  result.p99_ms = quantile(0.99);
  result.queries = static_cast<long long>(latencies.size());
  result.failed = failed.load();
  result.backend_attempts =
      service.metrics_registry()->counter(names::kBackendAttempts)->value() -
      setup_attempts;
  result.hedges_launched =
      service.metrics_registry()->counter(names::kHedgeLaunched)->value();
  result.hedge_wins =
      service.metrics_registry()->counter(names::kHedgeWins)->value();
  result.hedge_losses =
      service.metrics_registry()->counter(names::kHedgeLosses)->value();
  result.hedge_denied =
      service.metrics_registry()->counter(names::kHedgeDeniedBudget)->value() +
      service.metrics_registry()->counter(names::kHedgeDeniedLoad)->value() +
      service.metrics_registry()
          ->counter(names::kHedgeDeniedNoReplica)
          ->value();
  return result;
}

void WriteRun(FILE* f, const char* key, const RunResult& r, bool last) {
  std::fprintf(f, "  \"%s\": {\n", key);
  std::fprintf(f, "    \"p50_ms\": %.3f,\n", r.p50_ms);
  std::fprintf(f, "    \"p95_ms\": %.3f,\n", r.p95_ms);
  std::fprintf(f, "    \"p99_ms\": %.3f,\n", r.p99_ms);
  std::fprintf(f, "    \"queries\": %lld,\n", r.queries);
  std::fprintf(f, "    \"failed\": %lld,\n", r.failed);
  std::fprintf(f, "    \"backend_attempts\": %lld,\n",
               static_cast<long long>(r.backend_attempts));
  std::fprintf(f, "    \"hedges_launched\": %lld,\n",
               static_cast<long long>(r.hedges_launched));
  std::fprintf(f, "    \"hedge_wins\": %lld,\n",
               static_cast<long long>(r.hedge_wins));
  std::fprintf(f, "    \"hedge_losses\": %lld,\n",
               static_cast<long long>(r.hedge_losses));
  std::fprintf(f, "    \"hedge_denied\": %lld\n",
               static_cast<long long>(r.hedge_denied));
  std::fprintf(f, "  }%s\n", last ? "" : ",");
}

void WriteBenchJson(const RunResult& off, const RunResult& on) {
  const char* path = "BENCH_tail.json";
  FILE* f = std::fopen(path, "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path);
    return;
  }
  double speedup = on.p99_ms > 0 ? off.p99_ms / on.p99_ms : 0;
  double added_pct =
      off.backend_attempts > 0
          ? 100.0 * (on.backend_attempts - off.backend_attempts) /
                static_cast<double>(off.backend_attempts)
          : 0;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"benchmark\": \"tail_hedging\",\n");
  std::fprintf(f, "  \"replicas\": %d,\n", kReplicas);
  std::fprintf(f, "  \"workers\": %d,\n", kWorkers);
  std::fprintf(f, "  \"straggler\": \"1-in-%d backend calls +%dms\",\n",
               kStragglerEvery, kStragglerMs);
  WriteRun(f, "unhedged", off, false);
  WriteRun(f, "hedged", on, false);
  std::fprintf(f, "  \"acceptance\": {\n");
  std::fprintf(f, "    \"p99_speedup\": %.2f,\n", speedup);
  std::fprintf(f, "    \"p99_cut_2x\": %s,\n",
               speedup >= 2.0 ? "true" : "false");
  std::fprintf(f, "    \"added_attempts_pct\": %.2f,\n", added_pct);
  std::fprintf(f, "    \"added_attempts_le_10pct\": %s\n",
               added_pct <= 10.0 ? "true" : "false");
  std::fprintf(f, "  }\n");
  std::fprintf(f, "}\n");
  std::fclose(f);
  std::printf("wrote %s\n", path);
}

// Micro-benchmarks: the per-request cost of the tail-tolerance control
// plane (these sit on every submit/attempt hot path).
void BM_RetryBudgetDepositWithdraw(benchmark::State& state) {
  RetryBudgetOptions options;
  options.enabled = true;
  static RetryBudget* budget = new RetryBudget([] {
    RetryBudgetOptions o;
    o.enabled = true;
    o.ratio = 0.5;
    return o;
  }());
  for (auto _ : state) {
    budget->NoteRequest();
    benchmark::DoNotOptimize(budget->TryWithdraw());
  }
}
BENCHMARK(BM_RetryBudgetDepositWithdraw);

void BM_BrownoutAdmit(benchmark::State& state) {
  static BrownoutController* brownout = new BrownoutController([] {
    BrownoutOptions o;
    o.enabled = true;
    return o;
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(brownout->Admit("library"));
  }
}
BENCHMARK(BM_BrownoutAdmit);

void BM_AdaptiveLimitOnComplete(benchmark::State& state) {
  static backend::AdaptiveLimit* limit = new backend::AdaptiveLimit([] {
    backend::AdaptiveLimitOptions o;
    o.enabled = true;
    o.latency_factor = 2.0;
    return o;
  }());
  for (auto _ : state) {
    benchmark::DoNotOptimize(limit->OnComplete(false, 500.0));
  }
}
BENCHMARK(BM_AdaptiveLimitOnComplete);

}  // namespace

int main(int argc, char** argv) {
  RunResult off = RunStudy(/*hedging=*/false);
  RunResult on = RunStudy(/*hedging=*/true);
  std::printf(
      "tail study: unhedged p50/p95/p99 %.2f/%.2f/%.2f ms, hedged "
      "%.2f/%.2f/%.2f ms (p99 cut %.1fx), attempts %lld -> %lld "
      "(%+.1f%%), hedges %lld launched / %lld won\n",
      off.p50_ms, off.p95_ms, off.p99_ms, on.p50_ms, on.p95_ms, on.p99_ms,
      on.p99_ms > 0 ? off.p99_ms / on.p99_ms : 0,
      static_cast<long long>(off.backend_attempts),
      static_cast<long long>(on.backend_attempts),
      off.backend_attempts > 0
          ? 100.0 * (on.backend_attempts - off.backend_attempts) /
                static_cast<double>(off.backend_attempts)
          : 0,
      static_cast<long long>(on.hedges_launched),
      static_cast<long long>(on.hedge_wins));
  WriteBenchJson(off, on);
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
